#!/usr/bin/env python3
"""Conjecture lab: machine exploration of the Section 8 open problems.

1. Conjecture 8.1: if Q_d(f) embeds isometrically then so does Q_d(ff).
   Sweeps all factors up to length 4, all d <= 9, reporting support and
   hunting for a counterexample.

2. Problem 8.3: can a non-embeddable Q_d(f) still embed in a *bigger*
   hypercube?  The paper works out Q_d(101): Theta != Theta*, so by
   Winkler's theorem the answer is NO for that family.  We verify the
   ladder, then apply the same Winkler test to every non-embeddable cube
   with |f| <= 4 in range -- gathering evidence that the answer is "no"
   in most (if not all) cases, exactly as the paper suspects.

Run:  python examples/conjecture_lab.py
"""

from repro.classify import Status, classify_with_bruteforce
from repro.conjectures import (
    q101_ladder_certificate,
    q101_not_partial_cube,
    sweep_conjecture_81,
)
from repro.cubes.generalized import generalized_fibonacci_cube
from repro.isometry.theta import is_partial_cube
from repro.words.core import all_words


def conjecture_81() -> None:
    print("=" * 64)
    print("Conjecture 8.1: Q_d(f) embeddable => Q_d(ff) embeddable")
    print("=" * 64)
    cases = sweep_conjecture_81(max_factor_length=4, max_d=9)
    violations = [c for c in cases if c.violates]
    print(f"  non-vacuous cases tested: {len(cases)}")
    print(f"  supporting: {sum(1 for c in cases if c.supports)}")
    print(f"  violations: {len(violations)}")
    if violations:
        for c in violations[:5]:
            print("   counterexample:", c)
    else:
        print("  -> conjecture survives the sweep\n")


def problem_83() -> None:
    print("=" * 64)
    print("Problem 8.3: does a non-embeddable Q_d(f) fit a bigger cube?")
    print("=" * 64)

    cert = q101_ladder_certificate(5)
    print(f"  Q_5(101) ladder: {len(cert.rungs)} rungs verified; "
          f"e Theta* g but not e Theta g")
    assert q101_not_partial_cube(5)
    print("  -> Q_5(101) is isometric in NO hypercube (Winkler)\n")

    print("  sweeping all non-embeddable cubes, |f| <= 4, d <= 7:")
    total = refuted = 0
    for length in (3, 4):
        for f in all_words(length):
            for d in range(length + 1, 8):
                v = classify_with_bruteforce(f, d)
                if v.status is not Status.NOT_ISOMETRIC:
                    continue
                total += 1
                g = generalized_fibonacci_cube(f, d).graph()
                if not is_partial_cube(g):
                    refuted += 1
    print(f"  non-embeddable cases: {total}")
    print(f"  of which partial cubes (could embed elsewhere): {total - refuted}")
    print(f"  of which in NO hypercube at all: {refuted}")
    print("  -> supports the paper's belief that the answer is negative\n")


if __name__ == "__main__":
    conjecture_81()
    problem_83()
