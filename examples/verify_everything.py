#!/usr/bin/env python3
"""One-shot reproduction driver: re-verify every paper artefact in order.

Runs the complete experiment index of DESIGN.md (T1, F1, F2, E1-E12, plus
the X1 extension findings) in a single pass and prints a PASS/FAIL line
per artefact.  This is the "did the reproduction really reproduce?"
script -- a condensed, assertion-checked version of what the benchmark
suite measures.

Run:  python examples/verify_everything.py
"""

import sys
import time

from repro.classify import classification_table, table1_expected
from repro.combinat.identities import gamma_square_count
from repro.conjectures import q101_ladder_certificate, q101_not_partial_cube, sweep_conjecture_81
from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.multifactor import multi_factor_cube
from repro.dimension.fdim import f_dimension, isometric_dimension
from repro.graphs.core import Graph
from repro.invariants.counts import (
    brute_counts,
    edges_110_closed,
    recurrences_110,
    recurrences_111,
    squares_110_closed,
    vertices_110_closed,
)
from repro.invariants.medianclosed import is_median_closed, median_certificate_triple
from repro.invariants.structure import structure_report
from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.critical import paper_critical_pair
from repro.isometry.vectorized import is_isometric_dp


def check(label: str, fn) -> bool:
    start = time.perf_counter()
    try:
        fn()
        elapsed = time.perf_counter() - start
        print(f"  PASS  {label}  ({elapsed:.2f}s)")
        return True
    except AssertionError as exc:
        print(f"  FAIL  {label}: {exc}")
        return False


def t1_table1():
    rows = classification_table(max_length=5, max_d=9)
    got = {r.f: r.threshold for r in rows}
    assert got == table1_expected(), "Table 1 mismatch"


def f1_figure1():
    cube = generalized_fibonacci_cube("101", 4)
    assert (cube.num_vertices, cube.num_edges) == (12, 18)
    assert not is_isometric_dp(cube)


def f2_figure2():
    g5, h4 = brute_counts("11", 5), brute_counts("110", 4)
    assert g5.vertices == h4.vertices + 1
    assert g5.edges == h4.edges + 1
    assert g5.squares == h4.squares


def e1_e2_recurrences():
    r111, r110 = recurrences_111(9), recurrences_110(9)
    for d in range(10):
        assert brute_counts("111", d) == r111[d], ("111", d)
        assert brute_counts("110", d) == r110[d], ("110", d)


def e3_e4_closed_forms():
    for d in range(10):
        c = brute_counts("110", d)
        assert vertices_110_closed(d) == c.vertices
        assert edges_110_closed(d) == c.edges
        assert squares_110_closed(d) == c.squares
        assert gamma_square_count(d + 1) == c.squares


def e5_structure():
    for f, d in [("11", 7), ("110", 7), ("1010", 7), ("11010", 7)]:
        assert structure_report((f, d)).satisfies_prop_6_1(), (f, d)


def e6_median():
    assert is_median_closed("11", 5) and is_median_closed("10", 5)
    assert not is_median_closed("110", 5)
    median_certificate_triple("110", 5)  # raises if the proof shape fails


def e7_computer_checks():
    for f, d, want in [("1100", 6, True), ("10110", 6, True),
                       ("10101", 6, True), ("10101", 7, True),
                       ("1100", 7, False), ("10101", 8, False)]:
        assert is_isometric_bfs((f, d)) == want, (f, d)


def e8_crossovers():
    for s in (2, 3, 4):
        f = "11" + "0" * s
        for d in range(2, s + 7):
            assert is_isometric_bfs((f, d)) == (d <= s + 4), (f, d)


def e9_critical_words():
    for f, d in [("101", 4), ("1100", 7), ("10110", 7), ("10101", 8)]:
        assert paper_critical_pair(f, d) is not None, (f, d)


def e10_dimension():
    c6 = Graph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
    d0 = isometric_dimension(c6)
    assert d0 == 3
    assert d0 <= f_dimension(c6, "11") <= 3 * d0 - 2


def e11_ladder():
    for d in (4, 5):
        q101_ladder_certificate(d)
        assert q101_not_partial_cube(d)


def e12_conjecture():
    cases = sweep_conjecture_81(3, 8)
    assert cases and not any(c.violates for c in cases)


def x1_extensions():
    assert is_isometric_bfs(multi_factor_cube(("111", "000"), 3))
    assert not is_isometric_bfs(multi_factor_cube(("111", "000"), 4))


def main() -> int:
    artefacts = [
        ("T1  Table 1 (22 orbits, incl. computer checks)", t1_table1),
        ("F1  Figure 1: Q_4(101)", f1_figure1),
        ("F2  Figure 2: Q_5(11) vs Q_4(110)", f2_figure2),
        ("E1/E2  recurrences (1)-(6)", e1_e2_recurrences),
        ("E3/E4  Props 6.2, 6.3 closed forms", e3_e4_closed_forms),
        ("E5  Prop 6.1 degree/diameter", e5_structure),
        ("E6  Prop 6.4 median closure", e6_median),
        ("E7  Section 5 computer checks", e7_computer_checks),
        ("E8  Theorem 3.3 crossovers", e8_crossovers),
        ("E9  Lemma 2.4 critical words", e9_critical_words),
        ("E10 Prop 7.1 dimension bounds", e10_dimension),
        ("E11 Q_d(101) Theta* ladder", e11_ladder),
        ("E12 Conjecture 8.1 sweep", e12_conjecture),
        ("X1  extension findings", x1_extensions),
    ]
    print("Reproduction verification: Generalized Fibonacci cubes")
    print("=" * 60)
    results = [check(label, fn) for label, fn in artefacts]
    print("=" * 60)
    print(f"{sum(results)}/{len(results)} artefacts verified")
    return 0 if all(results) else 1


if __name__ == "__main__":
    sys.exit(main())
