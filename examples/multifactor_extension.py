#!/usr/bin/env python3
"""Extension study: cubes avoiding a SET of factors.

The paper forbids one factor; this study forbids several at once (the
Aho-Corasick generalization) and asks the paper's own question of the
richer family: when is Q_d(F) an isometric subgraph of Q_d?

Headline finding (machine-checked here): admissibility does NOT compose.
Q_d(111) and Q_d(000) are each isometric in Q_d for every d, but their
intersection Q_d({111, 000}) stops being isometric at d = 4.

Run:  python examples/multifactor_extension.py
"""

from repro.cubes.multifactor import MultiFactorCube
from repro.graphs.traversal import is_connected
from repro.invariants.cubepoly import cube_coefficients
from repro.isometry.bruteforce import isometric_defect
from repro.words.aho import MultiFactorAutomaton


def composition_failure() -> None:
    print("=" * 68)
    print("Does single-factor admissibility compose under intersection?")
    print("=" * 68)
    print(f"{'d':>3} {'|V|':>6} {'connected':>10} {'isometric':>10}   defect")
    for d in range(2, 9):
        cube = MultiFactorCube(["111", "000"], d)
        defect = isometric_defect(cube)
        print(
            f"{d:>3} {cube.num_vertices:>6} {str(is_connected(cube.graph())):>10} "
            f"{str(defect is None):>10}   {defect if defect else ''}"
        )
    print(
        "\n  -> Q_d(111) and Q_d(000) are isometric for EVERY d "
        "(Prop 3.1 + Lemma 2.2),\n"
        "     but the joint cube loses isometry at d = 4: "
        "admissibility does not compose.\n"
    )


def extreme_intersections() -> None:
    print("=" * 68)
    print("Extreme intersections")
    print("=" * 68)
    # alternating words only
    cube = MultiFactorCube(["11", "00"], 6)
    print(f"  Q_6({{11,00}}): {cube.num_vertices} vertices "
          f"(the two alternating words), connected={is_connected(cube.graph())}")
    # run-length-limited codes: the {1^a+1, 0^b+1} cubes are RLL(0,a)/(0,b)
    auto = MultiFactorAutomaton(["111", "0000"])
    series = [auto.count_vertices(d) for d in range(10)]
    print(f"  RLL-style Q_d({{111,0000}}) orders: {series}")
    print(f"  ... and exactly, at d = 200: {auto.count_vertices(200)}\n")


def polynomial_view() -> None:
    print("=" * 68)
    print("Cube polynomial of the joint cube vs its single-factor parents")
    print("=" * 68)
    d = 7
    for label, spec in [
        ("Q_7(111)", ("111", d)),
        ("Q_7(000)", ("000", d)),
        ("Q_7({111,000})", MultiFactorCube(["111", "000"], d)),
    ]:
        co = cube_coefficients(spec if not isinstance(spec, tuple) else spec)
        print(f"  {label:<16} c = {co}")
    print("\n  (c_0, c_1, c_2 are the paper's |V|, |E|, |S|; higher k extends"
          " Section 6.)\n")


if __name__ == "__main__":
    composition_failure()
    extreme_intersections()
    polynomial_view()
