#!/usr/bin/env python3
"""Quickstart: build a generalized Fibonacci cube and interrogate it.

Walks through the paper's core loop on the Fig. 1 graph Q_4(101):
construct the cube, inspect its structure, test isometric embeddability
(three different ways), and see why it fails for d >= 4.

Run:  python examples/quickstart.py
"""

from repro import (
    classify,
    classify_with_bruteforce,
    find_critical_pair,
    generalized_fibonacci_cube,
    is_partial_cube,
    isometry_report,
)


def main() -> None:
    # --- construction -----------------------------------------------------
    cube = generalized_fibonacci_cube("101", 4)
    print(f"Q_4(101): {cube.num_vertices} vertices, {cube.num_edges} edges")
    print("vertices:", " ".join(cube.words()))

    # --- embeddability, three ways ---------------------------------------
    # 1. the theorem engine (Proposition 3.2 applies)
    verdict = classify("101", 4)
    print("\ntheorem engine :", verdict)

    # 2. the actual graph (vectorised DP over Hamming levels)
    report = isometry_report(cube)
    print(
        f"DP engine      : isometric={report.isometric}, "
        f"first bad level={report.first_bad_level}, witness={report.witness}"
    )

    # 3. a Lemma 2.4 certificate: a 2-critical pair of words
    pair = find_critical_pair(cube)
    print(
        f"critical words : b={pair.b} c={pair.c} at Hamming distance {pair.p}; "
        "no interval neighbour of b stays inside the cube"
    )

    # --- the stronger Section 8 fact --------------------------------------
    # Q_4(101) is isometric in NO hypercube, of any dimension (Winkler).
    print("\npartial cube?  :", is_partial_cube(cube.graph()))

    # --- where the theorems go quiet, compute -----------------------------
    # Table 1's "computer check" cell: Q_6(10110)
    v = classify("10110", 6)
    print("\nQ_6(10110) by theorems    :", v.status.value)
    v = classify_with_bruteforce("10110", 6)
    print("Q_6(10110) by computation :", v.status.value, f"({v.source})")


if __name__ == "__main__":
    main()
