#!/usr/bin/env python3
"""f-dimension study (Section 7).

For a corpus of small partial cubes, computes the isometric dimension,
the Fibonacci dimension dim_11 (the [2] special case), dim_110, and the
Proposition 7.1 sandwich idim <= dim_f <= 3 idim - 2 -- including the
explicit spreading embedding that witnesses the upper bound.

Also demonstrates the inverse dimension dim^{-1}_f of Section 7 and what
happens on a graph that is NOT a partial cube.

Run:  python examples/dimension_study.py
"""

from repro.dimension import (
    f_dimension,
    inverse_dimension,
    isometric_dimension,
    prop71_upper_bound_embedding,
)
from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph


def path(n):
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle(n):
    return Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def star(k):
    return Graph.from_edges(k + 1, [(0, i + 1) for i in range(k)])


def grid(r, c):
    e = []
    for i in range(r):
        for j in range(c):
            if j + 1 < c:
                e.append((i * c + j, i * c + j + 1))
            if i + 1 < r:
                e.append((i * c + j, (i + 1) * c + j))
    return Graph.from_edges(r * c, e)


CORPUS = [
    ("P5 (path)", path(5)),
    ("C4 (square)", cycle(4)),
    ("C6 (hexagon)", cycle(6)),
    ("K_{1,4} (star)", star(4)),
    ("2x3 grid", grid(2, 3)),
    ("Q_2", hypercube(2)),
    ("Q_3", hypercube(3)),
]


def main() -> None:
    print(f"{'graph':<16}{'idim':>6}{'dim_11':>8}{'dim_110':>9}{'3*idim-2':>10}")
    for name, g in CORPUS:
        d0 = isometric_dimension(g)
        d11 = f_dimension(g, "11")
        d110 = f_dimension(g, "110")
        print(f"{name:<16}{d0:>6}{d11:>8}{d110:>9}{3 * d0 - 2:>10}")
        assert d0 <= d11 <= 3 * d0 - 2 and d0 <= d110 <= 3 * d0 - 2

    print("\nProposition 7.1 constructive upper bound on C6 (f = 11):")
    words, dp = prop71_upper_bound_embedding(cycle(6), "11")
    print(f"  C6 spread into Q_{dp}(11) as:", " ".join(words))

    print("\nInverse dimension: largest Q_d(11) isometric inside Q_4:")
    print("  dim^-1_11(Q_4) =", inverse_dimension(hypercube(4), "11", d_max=6))

    print("\nA non-partial-cube has no finite f-dimension:")
    k3 = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
    print("  dim_11(K_3) =", f_dimension(k3, "11"))


if __name__ == "__main__":
    main()
