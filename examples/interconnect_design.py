#!/usr/bin/env python3
"""Interconnection-network design study (the ICPP'93 reading of the paper).

Fibonacci cubes were proposed as interconnection topologies that scale in
finer steps than hypercubes while keeping their routing structure.  This
study compares, at equal dimension:

    Q_d          the hypercube,
    Q_d(11)      the Fibonacci cube,
    Q_d(111)     the order-3 Hsu-Liu cube,
    Q_d(1010)    an embeddable generalized Fibonacci cube (Thm 4.4),

on: size economics, distributed canonical routing (no tables -- the
Proposition 3.1 / Theorem 4.4 isometry is what makes it optimal),
single-port broadcast, latency under uniform traffic, fault tolerance,
and Hamiltonicity.

Run:  python examples/interconnect_design.py [d]
"""

import sys

from repro.cubes.hypercube import hypercube
from repro.network import (
    BfsRouter,
    CanonicalRouter,
    NetworkSimulator,
    broadcast_rounds,
    fault_tolerance_trial,
    find_hamiltonian_path,
    route_stats,
    topology_of,
    uniform_traffic,
)


def build(d: int):
    yield topology_of(hypercube(d), name=f"Q_{d}")
    yield topology_of(("11", d))
    yield topology_of(("111", d))
    yield topology_of(("1010", d))


def main(d: int = 7) -> None:
    topos = list(build(d))

    print(f"--- topology economics at d = {d} ---")
    print(f"{'topology':<12}{'nodes':>7}{'links':>7}{'maxdeg':>8}{'diam':>6}{'avgdist':>9}")
    for topo in topos:
        m = topo.metrics()
        print(
            f"{topo.name:<12}{m['nodes']:>7}{m['links']:>7}{m['max_degree']:>8}"
            f"{m['diameter']:>6}{m['avg_distance']:>9.2f}"
        )

    print("\n--- distributed canonical routing (table-free) ---")
    for topo in topos:
        stats = route_stats(topo, CanonicalRouter())
        print(
            f"{topo.name:<12} delivery {stats.delivery_rate:6.3f}   "
            f"optimal {stats.optimality_rate:6.3f}   stretch {stats.stretch:6.3f}"
        )

    print("\n--- single-port broadcast from node 0 ---")
    for topo in topos:
        used, bound = broadcast_rounds(topo, 0)
        print(f"{topo.name:<12} {used} rounds  (log2 lower bound {bound})")

    print("\n--- uniform random traffic, store-and-forward ---")
    for topo in topos:
        traffic = uniform_traffic(topo, 200, 120, seed=17)
        res = NetworkSimulator(topo, BfsRouter()).run(traffic)
        print(
            f"{topo.name:<12} delivered {res.delivered}/{res.injected}   "
            f"avg latency {res.avg_latency:6.2f}   max queue {res.max_queue}"
        )

    print("\n--- 3 random node faults ---")
    for topo in topos:
        rep = fault_tolerance_trial(topo, 3, seed=5)
        print(
            f"{topo.name:<12} connected={rep.still_connected}   "
            f"largest component {rep.largest_component_fraction:6.3f}   "
            f"diameter {rep.diameter_before} -> {rep.diameter_after}"
        )

    print("\n--- Hamiltonicity ('mostly Hamiltonian') ---")
    for topo in topos:
        path = find_hamiltonian_path(topo.graph)
        verdict = "Hamiltonian path found" if path else "no Hamiltonian path"
        print(f"{topo.name:<12} {verdict}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
