#!/usr/bin/env python3
"""Reproduce Table 1 and push the classification beyond the paper.

Part 1 regenerates the paper's Table 1 (factors of length <= 5) from the
theorem engine plus the two computer checks, and diffs it against the
printed table.

Part 2 goes where the paper stopped: it classifies all 20 factor orbits of
length 6 by combining the theorems with brute force, reporting which cells
the paper's machinery decides and which still need a computer -- i.e. the
empirical frontier of Problem 8.2's landscape.

Run:  python examples/classification_study.py
"""

from collections import Counter

from repro.classify import (
    Status,
    classification_table,
    classify,
    classify_with_bruteforce,
    table1_expected,
)
from repro.classify.table1 import orbit_representatives


def part1_table1() -> None:
    print("=" * 64)
    print("Part 1: Table 1, regenerated")
    print("=" * 64)
    expected = table1_expected()
    rows = classification_table(max_length=5, max_d=9)
    mismatch = 0
    for row in rows:
        status = "always" if row.threshold is None else f"iff d <= {row.threshold}"
        ok = expected[row.f] == row.threshold
        mismatch += 0 if ok else 1
        print(f"  {'OK' if ok else '!!'}  {row.f:>6}  {status:<12} ({'; '.join(row.sources)})")
    print(f"\n  -> {len(rows)} orbits, {mismatch} mismatches with the paper\n")


def part2_length6() -> None:
    print("=" * 64)
    print("Part 2: the length-6 frontier (beyond the paper)")
    print("=" * 64)
    reps = orbit_representatives(6)
    tally = Counter()
    for f in reps:
        pattern = []
        needed_computer = False
        for d in range(1, 10):
            v = classify(f, d)
            if v.status is Status.UNKNOWN:
                needed_computer = True
                v = classify_with_bruteforce(f, d)
            pattern.append(v.status is Status.ISOMETRIC)
        if all(pattern):
            summary = "always (d <= 9)"
            tally["always"] += 1
        else:
            threshold = pattern.index(False)  # last isometric d
            summary = f"iff d <= {threshold}"
            tally["threshold"] += 1
        flag = "computer" if needed_computer else "theorems"
        tally[flag] += 1
        print(f"  {f}  {summary:<16} [{flag}]")
    print(
        f"\n  -> {len(reps)} orbits: {tally['always']} always-embeddable, "
        f"{tally['threshold']} with a threshold; "
        f"{tally['computer']} needed computation beyond the paper's theorems\n"
    )


if __name__ == "__main__":
    part1_table1()
    part2_length6()
