/* The store-and-forward advance inner loop, in C.
 *
 * This is the native backend's half of the contract declared in
 * src/repro/network/backends/: a bit-identical implementation of the
 * NumPy store-and-forward stepper in repro.network.kernel._SfEngine,
 * operating in place on the exact arrays that class builds (int64
 * throughout).  The Python side prepares the batch (disjoint link-id
 * spaces, global pid order, per-run accounting arrays), hands the raw
 * pointers over through ctypes, and reads the same arrays back for
 * finalization -- so the only thing that moves into C is the per-cycle
 * hot loop: link arbitration, FIFO queue advance, fault drops and the
 * per-run bookkeeping scatter-adds.
 *
 * Bit-identity rules this file must (and does) preserve, in the order
 * the NumPy stepper applies them each cycle:
 *
 *   1. inject every packet whose cycle has come, in ascending pid
 *      order: zero-hop packets deliver at their injection cycle, the
 *      rest append to their first link's FIFO; injecting marks the
 *      run busy this cycle;
 *   2. a run with packets in flight is busy this cycle even if a fault
 *      empties it below;
 *   3. per-link queue depth high-water marks are measured before any
 *      fault drop;
 *   4. a dead link drops its entire queue this cycle;
 *   5. every surviving busy link serves exactly its head-of-queue
 *      packet; arrivals append behind everything already queued, in
 *      ascending pid order within the cycle (the _fifo_append
 *      (link, pid) lexsort discipline) -- realised here by collecting
 *      each target link's arrivals into a pid-sorted pending list
 *      during the serve scan (a target link receives at most the
 *      in-degree of its tail node per cycle, so sorted insertion into
 *      these tiny lists beats any global per-cycle sort) and flushing
 *      the lists after the scan;
 *   6. when nothing moved, the clock jumps straight to the next
 *      injection (run mode only -- in step mode the Python driver owns
 *      the clock so mixed sf/flow batches stay in lock step).
 *
 * Scalars that the NumPy class keeps as Python ints (next_pid,
 * in_flight) travel in the two-slot `state` array so they survive
 * between calls.  No allocation happens here: `touched` is
 * caller-owned scratch of at least `num` slots, `pend` of `num_links`
 * slots initialised to -1 (both return to that state after every
 * call).
 *
 * Keep this file dependency-free (stdint only): it is compiled on
 * demand by src/repro/network/backends/native.py with the system cc,
 * content-addressed by its own source hash.
 */

#include <stdint.h>

typedef int64_t i64;

#define STATE_NEXT_PID 0
#define STATE_IN_FLIGHT 1

/* Bump when the exported ABI below changes shape: the Python binder
 * refuses a library whose ABI it does not recognise instead of
 * calling into it with the wrong argument layout. */
#define REPRO_ADVANCE_ABI 2

i64 repro_abi_version(void) { return REPRO_ADVANCE_ABI; }

/* Append one packet to a per-link FIFO kept as an intrusive linked
 * list (qhead/qtail/qlen per link, a succ pointer per packet) -- the
 * same queue discipline as kernel._fifo_append; callers guarantee
 * ascending pid order within a cycle, which is all the lexsort there
 * ever established. */
static void fifo_append(
    i64 p, i64 ln, i64 *succ, i64 *qhead, i64 *qtail, i64 *qlen)
{
    succ[p] = -1;
    if (qhead[ln] == -1) {
        qhead[ln] = p;
    } else {
        succ[qtail[ln]] = p;
    }
    qtail[ln] = p;
    qlen[ln] += 1;
}

/* One store-and-forward cycle over the whole prepared batch; returns
 * 1 when anything moved (injection, fault drop or queue advance). */
static i64 sf_step(
    i64 cycle,
    i64 num, i64 K, i64 num_links, i64 has_dead,
    const i64 *inject, const i64 *nhops, const i64 *first_link_at,
    const i64 *run_of, const i64 *gl_seq, const i64 *run_of_link,
    const i64 *dead_at,
    i64 *delivered_at, i64 *pos, i64 *succ,
    i64 *qhead, i64 *qtail, i64 *qlen,
    i64 *in_flight_r, i64 *last_busy_r, i64 *maxq_r, i64 *drop_r,
    i64 *touched, i64 *pend, i64 *state)
{
    i64 moved = 0;
    i64 next_pid = state[STATE_NEXT_PID];
    i64 in_flight = state[STATE_IN_FLIGHT];

    /* 1. inject every packet whose cycle has come (pids ascending) */
    if (next_pid < num && inject[next_pid] <= cycle) {
        while (next_pid < num && inject[next_pid] <= cycle) {
            const i64 p = next_pid++;
            last_busy_r[run_of[p]] = cycle;
            if (nhops[p] == 0) {
                delivered_at[p] = inject[p];
            } else {
                fifo_append(p, gl_seq[first_link_at[p]],
                            succ, qhead, qtail, qlen);
                in_flight_r[run_of[p]] += 1;
                in_flight += 1;
            }
        }
        moved = 1;
    }

    if (in_flight > 0) {
        /* 2. a run with packets in flight is busy this cycle even if a
         *    fault empties it below */
        for (i64 k = 0; k < K; k++) {
            if (in_flight_r[k] > 0) {
                last_busy_r[k] = cycle;
            }
        }
        i64 ntouch = 0;
        for (i64 ln = 0; ln < num_links; ln++) {
            const i64 len = qlen[ln];
            if (len == 0) {
                continue;
            }
            const i64 rk = run_of_link[ln];
            /* 3. queue depth per run, measured before any fault drop */
            if (len > maxq_r[rk]) {
                maxq_r[rk] = len;
            }
            /* 4. a dead link loses its whole queue this cycle */
            if (has_dead && dead_at[ln] <= cycle) {
                drop_r[rk] += len;
                in_flight_r[rk] -= len;
                in_flight -= len;
                qhead[ln] = -1;
                qtail[ln] = -1;
                qlen[ln] = 0;
                continue;
            }
            /* 5. serve the head-of-queue packet */
            const i64 p = qhead[ln];
            qhead[ln] = succ[p];
            qlen[ln] = len - 1;
            pos[p] += 1;
            if (pos[p] == nhops[p]) {
                delivered_at[p] = cycle + 1;
                in_flight_r[run_of[p]] -= 1;
                in_flight -= 1;
            } else {
                /* park the mover on its target link's pending list,
                 * kept pid-sorted by insertion (succ doubles as the
                 * next pointer: p left its queue, nothing reads
                 * succ[p] until the flush below rewrites it) */
                const i64 t = gl_seq[first_link_at[p] + pos[p]];
                i64 prev = -1;
                i64 cur = pend[t];
                if (cur < 0) {
                    touched[ntouch++] = t;
                }
                while (cur >= 0 && cur < p) {
                    prev = cur;
                    cur = succ[cur];
                }
                succ[p] = cur;
                if (prev < 0) {
                    pend[t] = p;
                } else {
                    succ[prev] = p;
                }
            }
        }
        /* flush: arrivals join behind this cycle's injections, in
         * (link, pid) order within each target link */
        for (i64 j = 0; j < ntouch; j++) {
            const i64 t = touched[j];
            i64 p = pend[t];
            pend[t] = -1;
            while (p >= 0) {
                const i64 nx = succ[p];
                fifo_append(p, t, succ, qhead, qtail, qlen);
                p = nx;
            }
        }
        moved = 1;
    }

    state[STATE_NEXT_PID] = next_pid;
    state[STATE_IN_FLIGHT] = in_flight;
    return moved;
}

/* Step mode: one cycle under the Python driver's clock (mixed
 * sf/flow batches advance both mode engines against one clock, so
 * time-advance decisions stay on the Python side). */
i64 repro_sf_step(
    i64 cycle,
    i64 num, i64 K, i64 num_links, i64 has_dead,
    const i64 *inject, const i64 *nhops, const i64 *first_link_at,
    const i64 *run_of, const i64 *gl_seq, const i64 *run_of_link,
    const i64 *dead_at,
    i64 *delivered_at, i64 *pos, i64 *succ,
    i64 *qhead, i64 *qtail, i64 *qlen,
    i64 *in_flight_r, i64 *last_busy_r, i64 *maxq_r, i64 *drop_r,
    i64 *touched, i64 *pend, i64 *state)
{
    return sf_step(cycle, num, K, num_links, has_dead,
                   inject, nhops, first_link_at, run_of, gl_seq,
                   run_of_link, dead_at, delivered_at, pos, succ,
                   qhead, qtail, qlen, in_flight_r, last_busy_r,
                   maxq_r, drop_r, touched, pend, state);
}

/* Run mode: the whole cycle loop for an sf-only batch, replicating
 * run_fused's driver exactly -- advance one cycle after any movement,
 * jump to the next injection when quiescent (store-and-forward always
 * progresses while anything is queued, so the next injection is the
 * only event worth waking for), stop when the work or the cycle cap
 * runs out.  Returns the final cycle (finalization only reads the
 * arrays, but the value is handy for debugging). */
i64 repro_sf_run(
    i64 max_cycles,
    i64 num, i64 K, i64 num_links, i64 has_dead,
    const i64 *inject, const i64 *nhops, const i64 *first_link_at,
    const i64 *run_of, const i64 *gl_seq, const i64 *run_of_link,
    const i64 *dead_at,
    i64 *delivered_at, i64 *pos, i64 *succ,
    i64 *qhead, i64 *qtail, i64 *qlen,
    i64 *in_flight_r, i64 *last_busy_r, i64 *maxq_r, i64 *drop_r,
    i64 *touched, i64 *pend, i64 *state)
{
    i64 cycle = 0;
    while (cycle < max_cycles) {
        const i64 moved = sf_step(
            cycle, num, K, num_links, has_dead,
            inject, nhops, first_link_at, run_of, gl_seq, run_of_link,
            dead_at, delivered_at, pos, succ, qhead, qtail, qlen,
            in_flight_r, last_busy_r, maxq_r, drop_r, touched, pend,
            state);
        if (moved) {
            cycle += 1;
            continue;
        }
        if (state[STATE_NEXT_PID] < num) {
            const i64 ev = inject[state[STATE_NEXT_PID]];
            cycle = ev < max_cycles ? ev : max_cycles;
            continue;
        }
        break;
    }
    return cycle;
}
