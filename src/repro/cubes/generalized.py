"""The generalized Fibonacci cube :math:`Q_d(f)` -- the paper's central object.

:math:`Q_d(f)` is the subgraph of :math:`Q_d` induced by the binary words
of length ``d`` that avoid the factor ``f``.  :class:`GeneralizedFibonacciCube`
wraps the vertex set (as a sorted array of integer codes), the induced
graph, and cube-specific operations (Hamming distance between vertices,
neighbourhood in the *host* cube, bitwise-majority median closure).

Construction is vectorised: the vertex set comes from the automaton sweep
of :func:`repro.words.enumerate.avoiding_int_array`, and for each of the
``d`` directions the edge set is one XOR + sorted membership query over
the whole vertex array.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Optional

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.median import majority_word
from repro.words.core import int_to_word, validate_word, word_to_int
from repro.words.enumerate import avoiding_int_array

__all__ = ["GeneralizedFibonacciCube", "generalized_fibonacci_cube"]


class GeneralizedFibonacciCube:
    """The graph :math:`Q_d(f)` with its word structure retained.

    Parameters
    ----------
    f:
        Non-empty forbidden factor over ``{0, 1}``.
    d:
        Word length (cube dimension), ``d >= 0``.

    Notes
    -----
    For ``d < len(f)`` no word can contain ``f``, so
    :math:`Q_d(f) = Q_d`; for ``d == len(f)`` exactly the word ``f``
    itself is removed (Lemma 2.1 territory).
    """

    def __init__(self, f: str, d: int):
        validate_word(f, name="forbidden factor")
        if not f:
            raise ValueError("forbidden factor must be non-empty")
        if d < 0:
            raise ValueError(f"dimension must be non-negative, got {d}")
        self.f = f
        self.d = d
        self.codes: np.ndarray = avoiding_int_array(f, d)
        self._graph: Optional[Graph] = None
        self._index = {int(c): i for i, c in enumerate(self.codes)}

    # -- vertex set ----------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return int(self.codes.size)

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, word) -> bool:
        """Membership test for a word (``str``) or an integer code."""
        if isinstance(word, str):
            if len(word) != self.d:
                return False
            code = word_to_int(word)
        else:
            code = int(word)
        return code in self._index

    def words(self) -> List[str]:
        """All vertex words, lexicographically sorted."""
        return [int_to_word(int(c), self.d) for c in self.codes]

    def iter_words(self) -> Iterator[str]:
        for c in self.codes:
            yield int_to_word(int(c), self.d)

    def index_of_code(self, code: int) -> int:
        """Vertex index of an integer code (KeyError when absent)."""
        return self._index[code]

    def index_of_word(self, word: str) -> int:
        """Vertex index of a word (KeyError when absent)."""
        if len(word) != self.d:
            raise KeyError(f"word {word!r} has wrong length for d={self.d}")
        return self._index[word_to_int(word)]

    def code_of(self, index: int) -> int:
        return int(self.codes[index])

    def word_of(self, index: int) -> str:
        return int_to_word(int(self.codes[index]), self.d)

    # -- graph structure -------------------------------------------------------

    def graph(self) -> Graph:
        """The induced graph (built once, labels are the vertex words)."""
        if self._graph is None:
            self._graph = self._build_graph()
        return self._graph

    def _build_graph(self) -> Graph:
        codes = self.codes
        n = int(codes.size)
        g = Graph(n)
        if n:
            for i in range(self.d):
                bit = np.int64(1) << np.int64(i)
                partners = codes ^ bit
                # sorted membership: where would each partner insert?
                pos = np.minimum(np.searchsorted(codes, partners), n - 1)
                hit = codes[pos] == partners
                # add each edge once: from the endpoint with the 0-bit
                lower = (codes & bit) == 0
                for u_idx in np.flatnonzero(hit & lower):
                    g.add_edge(int(u_idx), int(pos[u_idx]))
        g.set_labels(self.words())
        return g

    @property
    def num_edges(self) -> int:
        return self.graph().num_edges

    def degree_sequence(self) -> List[int]:
        return sorted(self.graph().degrees())

    # -- cube-specific operations ----------------------------------------------

    def hamming(self, i: int, j: int) -> int:
        """Host-cube distance :math:`d_{Q_d}` between vertices ``i`` and ``j``."""
        return int(self.codes[i] ^ self.codes[j]).bit_count()

    def host_neighbors(self, i: int) -> List[int]:
        """Codes of all ``d`` neighbours of vertex ``i`` in the *host* cube
        :math:`Q_d` (present in this cube or not)."""
        c = int(self.codes[i])
        return [c ^ (1 << k) for k in range(self.d)]

    def is_median_closed(self) -> bool:
        """Is :math:`Q_d(f)` closed under bitwise majority in :math:`Q_d`?

        By Mulder's theorem this is equivalent (for induced connected
        subgraphs) to being a median graph; Proposition 6.4 proves it holds
        iff ``len(f) == 2``.  Cubic in the number of vertices with a tiny
        constant (three ANDs and one OR per triple).
        """
        codes = [int(c) for c in self.codes]
        index = self._index
        n = len(codes)
        for a_pos in range(n):
            a = codes[a_pos]
            for b_pos in range(a_pos + 1, n):
                b = codes[b_pos]
                ab = a & b
                ab_or = a | b
                for c_pos in range(b_pos + 1, n):
                    c = codes[c_pos]
                    med = ab | (c & ab_or)
                    if med not in index:
                        return False
        return True

    def median_violation(self):
        """A triple of words whose majority is missing, or ``None`` if closed."""
        codes = [int(c) for c in self.codes]
        index = self._index
        n = len(codes)
        for a_pos in range(n):
            a = codes[a_pos]
            for b_pos in range(a_pos + 1, n):
                b = codes[b_pos]
                for c_pos in range(b_pos + 1, n):
                    c = codes[c_pos]
                    med = majority_word(a, b, c)
                    if med not in index:
                        return (
                            int_to_word(a, self.d),
                            int_to_word(b, self.d),
                            int_to_word(c, self.d),
                        )
        return None

    def __repr__(self) -> str:
        return f"GeneralizedFibonacciCube(f={self.f!r}, d={self.d}, n={self.num_vertices})"


@lru_cache(maxsize=256)
def generalized_fibonacci_cube(f: str, d: int) -> GeneralizedFibonacciCube:
    """Cached constructor for :class:`GeneralizedFibonacciCube`.

    The cubes are immutable once built, and the experiment harnesses touch
    the same ``(f, d)`` pairs from many angles, so memoizing the
    construction keeps the benchmark suite honest about algorithm cost
    rather than rebuild cost.
    """
    return GeneralizedFibonacciCube(f, d)
