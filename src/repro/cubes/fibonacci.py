"""Fibonacci cubes :math:`\\Gamma_d = Q_d(11)` and the Lucas cube.

The Fibonacci cube is the motivating special case of the paper
(introduced by Hsu as an interconnection topology -- the 1993 lineage).
Its vertices are the length-``d`` words with no two consecutive 1s; there
are :math:`F_{d+2}` of them, and the *Zeckendorf* correspondence ranks
them: reading the allowed positions as Fibonacci weights maps the vertex
set bijectively onto ``{0, ..., F_{d+2} - 1}``.  That ranking is exactly
Hsu's processor-numbering scheme, so we expose it for the network
experiments.

The Lucas cube :math:`\\Lambda_d` forbids 11 *circularly* (also no 1 in
both the first and last position); it is included as the closest sibling
family for the extension benchmarks.
"""

from __future__ import annotations

from typing import List

from repro.combinat.sequences import fibonacci
from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.graphs.core import Graph
from repro.words.core import word_to_int
from repro.words.enumerate import list_avoiding

__all__ = ["fibonacci_cube", "fibonacci_labels", "zeckendorf_rank", "lucas_cube"]


def fibonacci_cube(d: int) -> GeneralizedFibonacciCube:
    """The Fibonacci cube :math:`\\Gamma_d` as a generalized Fibonacci cube."""
    return generalized_fibonacci_cube("11", d)


def fibonacci_labels(d: int) -> List[str]:
    """Vertex words of :math:`\\Gamma_d` in lexicographic order."""
    return list_avoiding("11", d)


def zeckendorf_rank(word: str) -> int:
    """Zeckendorf rank of a Fibonacci-cube vertex.

    With ``word = b_1 ... b_d`` containing no ``11``, the rank is
    :math:`\\sum_i b_i F_{d+1-i}` where positions are 1-based -- i.e. the
    leftmost position carries weight :math:`F_{d}`... concretely, position
    ``i`` (0-based) carries weight :math:`F_{d + 1 - i}`.  By Zeckendorf's
    theorem the map is a bijection onto ``{0, ..., F_{d+2} - 1}``.
    """
    if "11" in word:
        raise ValueError(f"{word!r} is not a Fibonacci-cube vertex (contains 11)")
    d = len(word)
    rank = 0
    for i, ch in enumerate(word):
        if ch == "1":
            rank += fibonacci(d + 1 - i)
    return rank


def lucas_cube(d: int) -> Graph:
    """The Lucas cube :math:`\\Lambda_d`: forbid 11 cyclically.

    Vertices are words with no two consecutive 1s *and* not 1 in both the
    first and last position; adjacency is single-bit difference.  For
    ``d = 0`` this is the one-vertex graph.
    """
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    words = [
        w
        for w in list_avoiding("11", d)
        if not (d >= 1 and w[0] == "1" and w[-1] == "1")
    ]
    index = {word_to_int(w): i for i, w in enumerate(words)}
    g = Graph(len(words))
    for i, w in enumerate(words):
        code = word_to_int(w)
        for k in range(d):
            partner = code ^ (1 << k)
            j = index.get(partner)
            if j is not None and i < j:
                g.add_edge(i, j)
    g.set_labels(words)
    return g
