"""Cube graph families of the paper.

- :mod:`repro.cubes.hypercube` -- the d-cube :math:`Q_d`, Hamming
  distances, canonical paths (Section 2);
- :mod:`repro.cubes.generalized` -- the generalized Fibonacci cube
  :math:`Q_d(f)` (the paper's central object);
- :mod:`repro.cubes.fibonacci` -- the classical Fibonacci cube
  :math:`\\Gamma_d = Q_d(11)`, its Zeckendorf labelling, and the Lucas
  cube (a closely related family used in the extension experiments);
- :mod:`repro.cubes.symmetries` -- the isomorphisms of Lemmas 2.2/2.3 and
  the canonical form of a forbidden factor under complement + reversal.
"""

from repro.cubes.hypercube import canonical_path, hamming_int, hypercube
from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.cubes.multifactor import MultiFactorCube, multi_factor_cube
from repro.cubes.fibonacci import (
    fibonacci_cube,
    fibonacci_labels,
    lucas_cube,
    zeckendorf_rank,
)
from repro.cubes.symmetries import (
    canonical_factor,
    complement_isomorphism,
    factor_orbit,
    reverse_isomorphism,
)

__all__ = [
    "canonical_path",
    "hamming_int",
    "hypercube",
    "GeneralizedFibonacciCube",
    "MultiFactorCube",
    "multi_factor_cube",
    "generalized_fibonacci_cube",
    "fibonacci_cube",
    "fibonacci_labels",
    "lucas_cube",
    "zeckendorf_rank",
    "canonical_factor",
    "complement_isomorphism",
    "factor_orbit",
    "reverse_isomorphism",
]
