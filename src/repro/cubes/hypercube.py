"""The hypercube :math:`Q_d` and canonical paths (Section 2).

Vertices of :math:`Q_d` are all binary words of length ``d``; two words
are adjacent when they differ in exactly one bit, and
:math:`d_{Q_d}(b, c)` is the Hamming distance.

The *canonical* ``b,c``-path flips, scanning left to right, first every
bit where ``b`` has 1 and ``c`` has 0 (1 -> 0 moves) and then every bit
where ``b`` has 0 and ``c`` has 1 (0 -> 1 moves).  The paper uses canonical
paths to show :math:`\\Gamma_d \\hookrightarrow Q_d` and throughout the
embeddability proofs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.core import Graph
from repro.words.core import flip, hamming, validate_word

__all__ = ["hypercube", "hamming_int", "canonical_path", "canonical_path_ints"]


def hamming_int(a: int, b: int) -> int:
    """Hamming distance between two integer-coded words (popcount of XOR)."""
    return int(a ^ b).bit_count()


def hypercube(d: int) -> Graph:
    """Build :math:`Q_d` with vertices labelled by their binary words.

    Vertex ``i`` is the word ``format(i, f"0{d}b")``; adjacency is
    generated bit-parallel (one vectorised XOR per dimension).
    """
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    n = 1 << d
    g = Graph(n)
    codes = np.arange(n, dtype=np.int64)
    for i in range(d):
        bit = 1 << i
        lower = codes[(codes & bit) == 0]
        for u in lower:
            g.add_edge(int(u), int(u) | bit)
    g.set_labels([format(i, f"0{d}b") if d else "" for i in range(n)])
    return g


def canonical_path(b: str, c: str) -> List[str]:
    """The canonical ``b,c``-path of Section 2, as a list of words.

    Scanning positions left to right, first flip every bit with
    ``b_i = 1, c_i = 0`` (each flip moves strictly closer to ``c``), then
    every bit with ``b_i = 0, c_i = 1``.  The result starts at ``b``, ends
    at ``c`` and has length ``hamming(b, c)``.
    """
    validate_word(b)
    validate_word(c)
    if len(b) != len(c):
        raise ValueError("words must have equal length")
    path = [b]
    cur = b
    for i in range(len(b)):
        if cur[i] == "1" and c[i] == "0":
            cur = flip(cur, i)
            path.append(cur)
    for i in range(len(b)):
        if cur[i] == "0" and c[i] == "1":
            cur = flip(cur, i)
            path.append(cur)
    assert cur == c and len(path) == hamming(b, c) + 1
    return path


def canonical_path_ints(b: int, c: int, d: int) -> List[int]:
    """Integer-coded version of :func:`canonical_path`.

    Bit ``d-1-i`` of the code corresponds to (0-based) string position
    ``i``; the scan order therefore goes from the most significant bit
    down.
    """
    if b < 0 or c < 0 or b >= (1 << d) or c >= (1 << d):
        raise ValueError("codes out of range")
    path = [b]
    cur = b
    for i in range(d - 1, -1, -1):
        bit = 1 << i
        if (cur & bit) and not (c & bit):
            cur ^= bit
            path.append(cur)
    for i in range(d - 1, -1, -1):
        bit = 1 << i
        if not (cur & bit) and (c & bit):
            cur ^= bit
            path.append(cur)
    assert cur == c
    return path
