"""Multi-factor generalized Fibonacci cubes :math:`Q_d(F)`.

The extension invited by the paper's definition: forbid a *set* ``F`` of
factors instead of a single one.  :math:`Q_d(F)` is the subgraph of
:math:`Q_d` induced by the words avoiding every member of ``F``.

:class:`MultiFactorCube` is duck-compatible with
:class:`repro.cubes.generalized.GeneralizedFibonacciCube` (``codes``,
``d``, ``graph()``, ``word_of``, ...), so the isometry engines, structure
reports and network machinery run on it unchanged -- which is what the
extension benchmarks exploit.

Facts worth noting (and tested):

- :math:`Q_d(\\{f\\}) = Q_d(f)`;
- :math:`Q_d(F \\cup \\{g\\}) \\subseteq Q_d(F)` (monotone);
- single-factor embeddability does **not** compose: there are sets of
  individually admissible factors whose joint cube is not isometric --
  the extension study in ``examples``/benchmarks quantifies this.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.graphs.core import Graph
from repro.words.aho import MultiFactorAutomaton
from repro.words.core import int_to_word, word_to_int

__all__ = ["MultiFactorCube", "multi_factor_cube"]


class MultiFactorCube:
    """The graph :math:`Q_d(F)` for a set ``F`` of forbidden factors."""

    def __init__(self, factors: Iterable[str], d: int):
        if d < 0:
            raise ValueError(f"dimension must be non-negative, got {d}")
        self.automaton = MultiFactorAutomaton(factors)
        self.factors: Tuple[str, ...] = self.automaton.factors
        self.d = d
        self.codes: np.ndarray = self.automaton.avoiding_int_array(d)
        self._graph: Optional[Graph] = None
        self._index = {int(c): i for i, c in enumerate(self.codes)}

    # -- vertex set (same surface as GeneralizedFibonacciCube) -------------

    @property
    def num_vertices(self) -> int:
        return int(self.codes.size)

    def __len__(self) -> int:
        return self.num_vertices

    def __contains__(self, word) -> bool:
        if isinstance(word, str):
            if len(word) != self.d:
                return False
            code = word_to_int(word)
        else:
            code = int(word)
        return code in self._index

    def words(self) -> List[str]:
        return [int_to_word(int(c), self.d) for c in self.codes]

    def word_of(self, index: int) -> str:
        return int_to_word(int(self.codes[index]), self.d)

    def code_of(self, index: int) -> int:
        return int(self.codes[index])

    def index_of_word(self, word: str) -> int:
        if len(word) != self.d:
            raise KeyError(f"word {word!r} has wrong length for d={self.d}")
        return self._index[word_to_int(word)]

    # -- graph ---------------------------------------------------------------

    def graph(self) -> Graph:
        if self._graph is None:
            self._graph = self._build_graph()
        return self._graph

    def _build_graph(self) -> Graph:
        codes = self.codes
        n = int(codes.size)
        g = Graph(n)
        if n:
            for i in range(self.d):
                bit = np.int64(1) << np.int64(i)
                partners = codes ^ bit
                pos = np.minimum(np.searchsorted(codes, partners), n - 1)
                hit = codes[pos] == partners
                lower = (codes & bit) == 0
                for u_idx in np.flatnonzero(hit & lower):
                    g.add_edge(int(u_idx), int(pos[u_idx]))
        g.set_labels(self.words())
        return g

    @property
    def num_edges(self) -> int:
        return self.graph().num_edges

    def __repr__(self) -> str:
        return (
            f"MultiFactorCube(factors={list(self.factors)!r}, d={self.d}, "
            f"n={self.num_vertices})"
        )


@lru_cache(maxsize=128)
def multi_factor_cube(factors: Tuple[str, ...], d: int) -> MultiFactorCube:
    """Cached constructor; ``factors`` must be a (hashable) tuple."""
    return MultiFactorCube(factors, d)
