"""Vectorised isometry check: dynamic program over Hamming levels.

For vertices ``b, c`` of :math:`Q_d(f)` define ``ok(b, c)`` = "the
subgraph distance equals the Hamming distance".  A geodesic realizing the
Hamming distance can waste no flips, so its first hop must flip a bit on
which ``b`` and ``c`` differ and stay inside the cube; hence

    ok(b, c)  <=>  exists differing bit k with  b + e_k in V(Q_d(f))
                   and  ok(b + e_k, c),

a recursion on the Hamming distance ``p = H(b, c)`` with base ``p <= 1``.
The DP fills a boolean ``n x n`` matrix level by level with one fused
NumPy pass per (level, bit) pair -- no Python loop over vertex pairs.
This is the HPC-notes "replace the inner loop by array ops" pattern; the
benchmark ``bench_perf.py`` measures its advantage over the per-vertex
BFS reference.

A bonus of the level order: the *first* failing level ``p`` yields pairs
that are exactly **p-critical words** in the sense of Lemma 2.4 -- at the
minimal level every in-cube neighbour one step closer would have a true
``ok``, so failure means *no* neighbour of ``b`` in the interval lies in
the cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.isometry.bruteforce import popcount64

__all__ = ["is_isometric_dp", "isometry_report", "IsometryReport"]

CubeLike = Union[GeneralizedFibonacciCube, Tuple[str, int]]


def _as_cube(cube: CubeLike):
    """Accept an ``(f, d)`` pair or any cube-shaped object (duck typed)."""
    if isinstance(cube, tuple):
        f, d = cube
        return generalized_fibonacci_cube(f, d)
    if all(hasattr(cube, attr) for attr in ("codes", "d", "graph", "word_of")):
        return cube
    raise TypeError(f"not a cube-like object: {cube!r}")


@dataclass(frozen=True)
class IsometryReport:
    """Outcome of the DP isometry check.

    Attributes
    ----------
    isometric:
        Whether :math:`Q_d(f) \\hookrightarrow Q_d`.
    first_bad_level:
        Minimal Hamming distance ``p`` of a failing pair (``None`` when
        isometric).  Failing pairs at this level are p-critical words.
    witness:
        A failing pair of words at the first bad level (``None`` when
        isometric).
    num_bad_pairs:
        Total number of ordered failing pairs across all levels.
    """

    isometric: bool
    first_bad_level: Optional[int]
    witness: Optional[Tuple[str, str]]
    num_bad_pairs: int


def isometry_report(cube: CubeLike, max_vertices: int = 9000) -> IsometryReport:
    """Run the Hamming-level DP and report the outcome.

    ``max_vertices`` guards the :math:`O(n^2)` memory footprint; the BFS
    engine in :mod:`repro.isometry.bruteforce` has no such limit.
    """
    cube = _as_cube(cube)
    n = cube.num_vertices
    if n > max_vertices:
        raise MemoryError(
            f"DP engine needs an {n}x{n} matrix; raise max_vertices to allow it"
        )
    if n <= 1:
        return IsometryReport(True, None, None, 0)
    codes = cube.codes
    d = cube.d
    # Hamming matrix (n x n, int8 suffices for d <= 127)
    xor = codes[:, None] ^ codes[None, :]
    ham = popcount64(xor).astype(np.int8)
    max_h = int(ham.max())
    # neighbour index per (vertex, bit): -1 when the flipped word leaves V
    nbr = np.full((n, d), -1, dtype=np.int64)
    for k in range(d):
        partners = codes ^ (np.int64(1) << np.int64(k))
        pos = np.minimum(np.searchsorted(codes, partners), n - 1)
        hit = codes[pos] == partners
        nbr[hit, k] = pos[hit]
    bits = ((codes[:, None] >> np.arange(d)[None, :]) & 1).astype(bool)  # (n, d)

    ok = ham <= 1
    first_bad: Optional[int] = None
    witness: Optional[Tuple[str, str]] = None
    num_bad = 0
    for p in range(2, max_h + 1):
        level = ham == p
        if not level.any():
            continue
        acc = np.zeros((n, n), dtype=bool)
        for k in range(d):
            rows = np.flatnonzero(nbr[:, k] >= 0)
            if rows.size == 0:
                continue
            # differing bit k between row vertex and every column vertex
            diff = bits[rows, k][:, None] != bits[None, :, k]
            acc[rows] |= diff & ok[nbr[rows, k], :]
        ok = np.where(level, acc, ok)
        bad = level & ~acc
        bad_count = int(bad.sum())
        if bad_count and first_bad is None:
            first_bad = p
            i, j = np.argwhere(bad)[0]
            witness = (cube.word_of(int(i)), cube.word_of(int(j)))
        num_bad += bad_count
    return IsometryReport(num_bad == 0, first_bad, witness, num_bad)


def is_isometric_dp(cube: CubeLike, max_vertices: int = 9000) -> bool:
    """``True`` iff :math:`Q_d(f) \\hookrightarrow Q_d` (vectorised engine)."""
    return isometry_report(cube, max_vertices=max_vertices).isometric
