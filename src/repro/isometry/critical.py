"""p-critical words (Lemma 2.4): search and constructive certificates.

Vertices ``b, c`` of :math:`Q_d(f)` are *p-critical* when their Hamming
distance is ``p >= 2`` but none of the neighbours of ``b`` inside the
interval :math:`I_{Q_d}(b, c)` belongs to :math:`Q_d(f)`, **or** none of
the neighbours of ``c`` does.  Lemma 2.4: the existence of p-critical
words forces :math:`Q_d(f) \\not\\hookrightarrow Q_d`.

Two sources of certificates:

- :func:`find_critical_pair` searches the cube exhaustively (smallest
  ``p`` first) -- this is the mechanical route;
- :func:`paper_critical_pair` builds the explicit pairs written down in
  the proofs of Proposition 3.2, Theorem 3.3, Proposition 4.1 and
  Proposition 4.2, and *verifies* them (the constructor raises if the
  construction were wrong, so a passing test-suite certifies the paper's
  formulas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.words.core import blocks, concat_blocks, contains_factor, flip, hamming

__all__ = [
    "CriticalPair",
    "verify_critical_pair",
    "find_critical_pair",
    "paper_critical_pair",
]


@dataclass(frozen=True)
class CriticalPair:
    """A verified pair of p-critical words for :math:`Q_d(f)`.

    ``source`` records provenance: ``"search"`` or the paper statement the
    construction comes from (e.g. ``"Proposition 3.2"``).
    """

    f: str
    d: int
    b: str
    c: str
    p: int
    source: str

    def __post_init__(self):
        problem = _critical_violation(self.f, self.b, self.c)
        if problem is not None:
            raise ValueError(
                f"invalid critical pair for f={self.f!r}: {problem} (b={self.b}, c={self.c})"
            )


def _critical_violation(f: str, b: str, c: str) -> Optional[str]:
    """Why (b, c) fails to be a critical pair, or ``None`` when it is one."""
    if len(b) != len(c):
        return "words of different lengths"
    if contains_factor(b, f):
        return "b contains the forbidden factor"
    if contains_factor(c, f):
        return "c contains the forbidden factor"
    p = hamming(b, c)
    if p < 2:
        return f"Hamming distance {p} < 2"
    diff = [i for i in range(len(b)) if b[i] != c[i]]
    b_side = all(contains_factor(flip(b, i), f) for i in diff)
    c_side = all(contains_factor(flip(c, i), f) for i in diff)
    if not (b_side or c_side):
        return "both b and c have an interval neighbour inside the cube"
    return None


def verify_critical_pair(f: str, b: str, c: str) -> bool:
    """Check the Lemma 2.4 condition for an explicit pair of words."""
    return _critical_violation(f, b, c) is None


def find_critical_pair(
    cube, p_max: Optional[int] = None
) -> Optional[CriticalPair]:
    """Exhaustive search for a p-critical pair, smallest ``p`` first.

    ``cube`` is a :class:`GeneralizedFibonacciCube` or an ``(f, d)``
    tuple.  Returns ``None`` when no critical pair with ``p <= p_max``
    exists (``p_max`` defaults to ``d``).
    """
    if not isinstance(cube, GeneralizedFibonacciCube):
        f, d = cube
        cube = generalized_fibonacci_cube(f, d)
    f, d = cube.f, cube.d
    if p_max is None:
        p_max = d
    words = cube.words()
    present = set(words)
    n = len(words)
    for p in range(2, p_max + 1):
        for i in range(n):
            b = words[i]
            for j in range(i + 1, n):
                c = words[j]
                if hamming(b, c) != p:
                    continue
                diff = [k for k in range(d) if b[k] != c[k]]
                if all(flip(b, k) not in present for k in diff) or all(
                    flip(c, k) not in present for k in diff
                ):
                    return CriticalPair(f, d, b, c, p, source="search")
    return None


def paper_critical_pair(f: str, d: int) -> Optional[CriticalPair]:
    """The explicit critical pair from the paper's proofs, when one applies.

    Covered constructions (each verified on creation):

    - Proposition 3.2 for ``f = 1^r 0^s 1^t`` and ``d >= r + s + t + 1``;
    - Theorem 3.3 Case 1 (``f = 1^2 0^s``, ``s >= 2``): the 2-critical pair
      for ``s >= 4, d > s + 4`` and the 3-critical pair for ``s = 2,
      d >= 7``;
    - Theorem 3.3 Case 2 (``f = 1^r 0^s``, ``r > 2 or s > 2``,
      ``d >= 2r + 2s - 2``);
    - Proposition 4.1 for ``f = (10)^s 1`` and ``d >= 4s`` (``s >= 2``);
    - Proposition 4.2 for ``f = (10)^r 1 (10)^s`` and ``d >= 2r + 2s + 3``.

    Returns ``None`` when no catalogued construction matches ``(f, d)``.
    Strings are matched directly (not up to symmetry); callers wanting the
    full orbit should canonicalize first.
    """
    parts = blocks(f)
    runs = [(digit, ln) for digit, ln in parts]

    # Proposition 3.2: f = 1^r 0^s 1^t
    if len(runs) == 3 and runs[0][0] == "1" and runs[1][0] == "0" and runs[2][0] == "1":
        r, s, t = runs[0][1], runs[1][1], runs[2][1]
        if d >= r + s + t + 1:
            pad = "1" * (d - (r + s + t + 1))
            b = pad + concat_blocks(("1", r), ("1", 1), ("0", s - 1), ("1", 1), ("1", t))
            c = pad + concat_blocks(("1", r), ("0", 1), ("0", s - 1), ("0", 1), ("1", t))
            return CriticalPair(f, d, b, c, 2, source="Proposition 3.2")

    # Theorem 3.3 for two blocks f = 1^r 0^s
    if len(runs) == 2 and runs[0][0] == "1" and runs[1][0] == "0":
        r, s = runs[0][1], runs[1][1]
        if r == 2 and s == 2 and d >= 7:
            pad = "1" * (d - 7)
            b = pad + "11" + "1010" + "0"  # 1^2 1 0 1 0 0 of length 7
            c = pad + "11" + "0100" + "0"  # 1^2 0 1 0 0 0
            return CriticalPair(f, d, b, c, 3, source="Theorem 3.3 (r=s=2)")
        if r == 2 and s >= 2 and d > s + 4:
            k = d - s - 4
            if 1 <= k <= s - 3:
                b = concat_blocks(("1", 2), ("0", k), ("1", 1), ("0", 1), ("0", s))
                c = concat_blocks(("1", 2), ("0", k), ("0", 1), ("1", 1), ("0", s))
                return CriticalPair(f, d, b, c, 2, source="Theorem 3.3 Case 1")
        if (r > 2 or s > 2) and r >= 2 and s >= 2 and d >= 2 * r + 2 * s - 2:
            pad = "1" * (d - (2 * r + 2 * s - 2))
            b = pad + concat_blocks(
                ("1", r), ("0", s - 2), ("1", 1), ("0", 1), ("1", r - 2), ("0", s)
            )
            c = pad + concat_blocks(
                ("1", r), ("0", s - 2), ("0", 1), ("1", 1), ("1", r - 2), ("0", s)
            )
            return CriticalPair(f, d, b, c, 2, source="Theorem 3.3 Case 2")

    # Proposition 4.1: f = (10)^s 1, s >= 2, d >= 4s
    if f == "10" * (len(f) // 2) + "1" and len(f) >= 5:
        s = len(f) // 2
        if d >= 4 * s:
            pad = "1" * (d - 4 * s)
            stem = "10" * (s - 1)
            b = pad + stem + "100" + stem + "1"
            c = pad + stem + "111" + stem + "1"
            return CriticalPair(f, d, b, c, 2, source="Proposition 4.1")

    # Proposition 4.2: f = (10)^r 1 (10)^s
    hit = _split_10r1_10s(f)
    if hit is not None:
        r, s = hit
        if d >= 2 * r + 2 * s + 3:
            pad = "1" * (d - (2 * r + 2 * s + 3))
            b = pad + "10" * r + "100" + "10" * s
            c = pad + "10" * r + "111" + "10" * s
            return CriticalPair(f, d, b, c, 2, source="Proposition 4.2")

    return None


def _split_10r1_10s(f: str) -> Optional[tuple]:
    """Decompose ``f`` as ``(10)^r 1 (10)^s`` with ``r, s >= 1``, if possible."""
    n = len(f)
    for r in range(1, n // 2 + 1):
        prefix = "10" * r + "1"
        if not f.startswith(prefix):
            continue
        rest = f[len(prefix):]
        if rest and len(rest) % 2 == 0 and rest == "10" * (len(rest) // 2):
            return (r, len(rest) // 2)
    return None
