"""Isometric-embedding machinery.

- :mod:`repro.isometry.bruteforce` -- reference BFS check that
  :math:`Q_d(f) \\hookrightarrow Q_d` (subgraph distances = Hamming);
- :mod:`repro.isometry.vectorized` -- NumPy dynamic program over vertex
  pairs ordered by Hamming distance (the fast engine, also the one that
  produces p-critical certificates);
- :mod:`repro.isometry.critical` -- p-critical words (Lemma 2.4): search
  and the paper's constructive certificates for Props 3.2, 4.1, 4.2 and
  Theorem 3.3;
- :mod:`repro.isometry.theta` -- Djoković--Winkler relation
  :math:`\\Theta`, its transitive closure :math:`\\Theta^*`, Winkler's
  partial-cube recognition, isometric dimension ``idim`` and the
  canonical hypercube coordinatization.
"""

from repro.isometry.bruteforce import (
    is_isometric_bfs,
    isometric_defect,
    subgraph_distances,
)
from repro.isometry.vectorized import is_isometric_dp, isometry_report
from repro.isometry.critical import (
    CriticalPair,
    find_critical_pair,
    paper_critical_pair,
    verify_critical_pair,
)
from repro.isometry.theta import (
    idim,
    hypercube_coordinates,
    is_partial_cube,
    theta_classes,
    theta_matrix,
)

__all__ = [
    "is_isometric_bfs",
    "isometric_defect",
    "subgraph_distances",
    "is_isometric_dp",
    "isometry_report",
    "CriticalPair",
    "find_critical_pair",
    "paper_critical_pair",
    "verify_critical_pair",
    "idim",
    "hypercube_coordinates",
    "is_partial_cube",
    "theta_classes",
    "theta_matrix",
]
