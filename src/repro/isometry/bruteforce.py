"""Reference isometry check: per-vertex BFS against Hamming distance.

:math:`Q_d(f) \\hookrightarrow Q_d` means that for every pair of vertices
``b, c`` of :math:`Q_d(f)` the distance *inside the subgraph* equals the
Hamming distance.  This module measures it directly: run a BFS from each
vertex within the subgraph and compare.  It is the ground-truth engine
(clear, obviously correct) that the vectorised DP in
:mod:`repro.isometry.vectorized` is validated against, and it doubles as
the "computer check" re-implementation for the paper's Table 1 footnotes
(experiment E7).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.graphs.traversal import bfs_distances, bfs_distances_csr

__all__ = ["subgraph_distances", "is_isometric_bfs", "isometric_defect"]

CubeLike = Union[GeneralizedFibonacciCube, Tuple[str, int]]


def _as_cube(cube: CubeLike):
    """Accept an ``(f, d)`` pair or any cube-shaped object.

    Duck typing (``codes``, ``d``, ``graph()``, ``word_of``) lets the same
    engines run on :class:`~repro.cubes.multifactor.MultiFactorCube` and
    other hypercube-subgraph wrappers.
    """
    if isinstance(cube, tuple):
        f, d = cube
        return generalized_fibonacci_cube(f, d)
    if all(hasattr(cube, attr) for attr in ("codes", "d", "graph", "word_of")):
        return cube
    raise TypeError(f"not a cube-like object: {cube!r}")


def subgraph_distances(cube: CubeLike, source_index: int) -> np.ndarray:
    """BFS distances from a vertex, measured inside :math:`Q_d(f)`."""
    cube = _as_cube(cube)
    g = cube.graph()
    engine = bfs_distances_csr if g.num_vertices >= 256 else bfs_distances
    return engine(g, source_index)


def hamming_row(cube: GeneralizedFibonacciCube, source_index: int) -> np.ndarray:
    """Hamming distances from a vertex to all vertices (host-cube metric)."""
    xor = cube.codes ^ cube.codes[source_index]
    return popcount64(xor)


def popcount64(values: np.ndarray) -> np.ndarray:
    """Vectorised popcount for non-negative ``int64`` arrays."""
    v = values.astype(np.uint64)
    out = np.zeros(v.shape, dtype=np.int64)
    while True:
        nz = v != 0
        if not nz.any():
            break
        out += (v & np.uint64(1)).astype(np.int64)
        v >>= np.uint64(1)
    return out


def is_isometric_bfs(cube: CubeLike) -> bool:
    """``True`` iff :math:`Q_d(f) \\hookrightarrow Q_d` (reference engine).

    Early-exits on the first vertex whose BFS row deviates from its
    Hamming row (including unreachable vertices, i.e. a disconnected
    subgraph is never isometric unless it has at most one vertex).
    """
    return isometric_defect(cube) is None


def isometric_defect(cube: CubeLike) -> Optional[Tuple[str, str, int, int]]:
    """The first isometry violation, or ``None`` when isometric.

    Returns ``(word_b, word_c, subgraph_distance, hamming_distance)``
    where ``subgraph_distance`` is ``-1`` for disconnected pairs.
    """
    cube = _as_cube(cube)
    n = cube.num_vertices
    if n <= 1:
        return None
    g = cube.graph()
    engine = bfs_distances_csr if n >= 256 else bfs_distances
    for i in range(n):
        inner = engine(g, i)
        outer = hamming_row(cube, i)
        bad = inner != outer
        if bad.any():
            j = int(np.flatnonzero(bad)[0])
            return (cube.word_of(i), cube.word_of(j), int(inner[j]), int(outer[j]))
    return None
