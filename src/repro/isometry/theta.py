"""Djoković--Winkler relation, partial cubes, and isometric dimension.

Edges ``e = xy`` and ``g = uv`` of a connected graph are in relation
:math:`\\Theta` when :math:`d(x,u) + d(y,v) \\ne d(x,v) + d(y,u)`.
:math:`\\Theta^*` is the transitive closure.  Winkler's theorem [21]: a
connected bipartite graph is a *partial cube* (isometrically embeddable
into some hypercube) iff :math:`\\Theta` is transitive.

For a partial cube the :math:`\\Theta^*`-classes (= :math:`\\Theta`-classes)
are the coordinate cuts; their number is the isometric dimension
``idim(G)``, and removing one class splits the graph into the two sides
of a cut, giving the canonical coordinatization
(:func:`hypercube_coordinates`).  The paper uses this machinery in
Section 7 (``dim_f``) and in the Section 8 worked example showing that
:math:`Q_d(101)`, ``d >= 4``, is a partial cube of *no* dimension.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances, is_connected

__all__ = [
    "theta_matrix",
    "theta_classes",
    "is_bipartite",
    "is_partial_cube",
    "idim",
    "hypercube_coordinates",
]


def is_bipartite(graph: Graph) -> bool:
    """2-colourability via BFS layering."""
    n = graph.num_vertices
    color = [-1] * n
    for start in range(n):
        if color[start] != -1:
            continue
        color[start] = 0
        stack = [start]
        while stack:
            u = stack.pop()
            for v in graph.neighbors(u):
                if color[v] == -1:
                    color[v] = color[u] ^ 1
                    stack.append(v)
                elif color[v] == color[u]:
                    return False
    return True


def theta_matrix(graph: Graph, dist: Optional[np.ndarray] = None) -> np.ndarray:
    """Boolean ``m x m`` matrix of the :math:`\\Theta` relation on edges.

    Edge order follows :meth:`Graph.edges`.  Vectorised: for each edge we
    evaluate the defining inequality against all edges at once.
    """
    if dist is None:
        dist = all_pairs_distances(graph)
    edges = list(graph.edges())
    m = len(edges)
    if m == 0:
        return np.zeros((0, 0), dtype=bool)
    us = np.array([e[0] for e in edges])
    vs = np.array([e[1] for e in edges])
    out = np.zeros((m, m), dtype=bool)
    for i, (x, y) in enumerate(edges):
        lhs = dist[x, us] + dist[y, vs]
        rhs = dist[x, vs] + dist[y, us]
        out[i] = lhs != rhs
    return out


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def theta_classes(
    graph: Graph, dist: Optional[np.ndarray] = None
) -> List[List[Tuple[int, int]]]:
    """:math:`\\Theta^*`-classes as lists of edges (transitive closure)."""
    if dist is None:
        dist = all_pairs_distances(graph)
    edges = list(graph.edges())
    theta = theta_matrix(graph, dist)
    uf = _UnionFind(len(edges))
    rows, cols = np.nonzero(theta)
    for i, j in zip(rows.tolist(), cols.tolist()):
        if i < j:
            uf.union(i, j)
    groups: Dict[int, List[Tuple[int, int]]] = {}
    for idx, e in enumerate(edges):
        groups.setdefault(uf.find(idx), []).append(e)
    return list(groups.values())


def is_partial_cube(graph: Graph) -> bool:
    """Winkler recognition + a belt-and-braces embedding verification.

    Checks connected, bipartite, and :math:`\\Theta = \\Theta^*`; then
    re-verifies by building the canonical coordinates and comparing word
    distance with graph distance (so a theory slip cannot silently
    mislabel a graph).
    """
    if graph.num_vertices == 0:
        return False
    if not is_connected(graph):
        return False
    if not is_bipartite(graph):
        return False
    dist = all_pairs_distances(graph)
    theta = theta_matrix(graph, dist)
    # transitivity: Theta (with reflexive diagonal) must equal its closure.
    m = theta.shape[0]
    reach = theta | np.eye(m, dtype=bool)
    closure = _transitive_closure(reach)
    if (closure != reach).any():
        return False
    coords = _coordinates_from_theta(graph, dist, theta)
    return _verify_coordinates(graph, dist, coords)


def _transitive_closure(mat: np.ndarray) -> np.ndarray:
    """Boolean transitive closure by repeated squaring."""
    closure = mat.copy()
    while True:
        nxt = closure | (closure @ closure)
        if (nxt == closure).all():
            return closure
        closure = nxt


def idim(graph: Graph) -> Optional[int]:
    """Isometric dimension: number of :math:`\\Theta`-classes, or ``None``
    when the graph embeds isometrically in no hypercube.

    ``idim(K_1) == 0`` (the one-vertex graph is :math:`Q_0`).
    """
    if graph.num_vertices == 1:
        return 0
    if not is_partial_cube(graph):
        return None
    return len(theta_classes(graph))


def _coordinates_from_theta(
    graph: Graph, dist: np.ndarray, theta: np.ndarray
) -> List[str]:
    edges = list(graph.edges())
    uf = _UnionFind(len(edges))
    rows, cols = np.nonzero(theta)
    for i, j in zip(rows.tolist(), cols.tolist()):
        if i < j:
            uf.union(i, j)
    roots: List[int] = []
    seen = set()
    for idx in range(len(edges)):
        r = uf.find(idx)
        if r not in seen:
            seen.add(r)
            roots.append(idx)
    n = graph.num_vertices
    bits: List[List[str]] = [[] for _ in range(n)]
    for idx in roots:
        x, y = edges[idx]
        for w in range(n):
            bits[w].append("1" if dist[w, x] > dist[w, y] else "0")
    return ["".join(b) for b in bits]


def _verify_coordinates(graph: Graph, dist: np.ndarray, coords: List[str]) -> bool:
    n = graph.num_vertices
    for u in range(n):
        cu = coords[u]
        for v in range(u + 1, n):
            h = sum(a != b for a, b in zip(cu, coords[v]))
            if h != int(dist[u, v]):
                return False
    return True


def hypercube_coordinates(graph: Graph) -> List[str]:
    """Canonical isometric embedding of a partial cube into
    :math:`Q_{idim(G)}`: one binary word per vertex.

    Raises :class:`ValueError` when the graph is not a partial cube.
    """
    if graph.num_vertices == 0:
        raise ValueError("empty graph has no hypercube embedding")
    if graph.num_vertices == 1:
        return [""]
    if not is_connected(graph) or not is_bipartite(graph):
        raise ValueError("graph is not a partial cube")
    dist = all_pairs_distances(graph)
    theta = theta_matrix(graph, dist)
    coords = _coordinates_from_theta(graph, dist, theta)
    if not _verify_coordinates(graph, dist, coords):
        raise ValueError("graph is not a partial cube (Theta not transitive)")
    return coords
