"""Transfer-matrix counting systems with linear-recurrence extraction.

Every regular address language gives its cube family two exact counting
problems -- vertices (accepted words of length ``d``) and edges
(accepted pairs differing in one bit) -- and both are path-counting
problems in a fixed digraph, so both satisfy *integer linear
recurrences* of order at most the digraph size.  A
:class:`CountingSystem` packages the digraph as ``(matrix, start,
accept)`` and offers three evaluation routes:

- :meth:`CountingSystem.term` -- one huge ``d`` via binary matrix
  powering, :math:`O(m^3 \\log d)`;
- :meth:`CountingSystem.series` -- the first ``n`` terms by
  vector--matrix iteration, :math:`O(n m^2)`;
- :meth:`CountingSystem.smart_enumeration` -- extract the minimal
  recurrence once (Berlekamp--Massey over exact rationals), then extend
  at :math:`O(r)` per term.  For the Fibonacci cube this *discovers*
  ``V(d) = V(d-1) + V(d-2)`` from the machine.

The recurrence coefficients are provably integers: the minimal
polynomial of the sequence divides the (monic, integer) characteristic
polynomial of the transfer matrix, and Gauss's lemma keeps monic
integer divisors integer.  :func:`berlekamp_massey` still runs over
:class:`fractions.Fraction` internally and the integrality is checked,
not assumed.

The edge digraph is the *pair-marked* construction: phase-0 states
track one word before the flipped position, a flip jumps to a phase-1
state pair (bit-0 branch, bit-1 branch), and phase-1 pairs consume the
shared suffix bits.  Accepted paths of length ``d`` are exactly the
edges of the ``d``-dimensional cube, so edge counts inherit the whole
recurrence toolkit.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Sequence

from repro.analytic.fsm import FSM
from repro.words.automaton import matrix_power

__all__ = [
    "CountingSystem",
    "berlekamp_massey",
    "edge_system",
    "vertex_system",
]


def berlekamp_massey(seq: Sequence[int]) -> List[Fraction]:
    """Shortest linear recurrence of ``seq`` over the rationals.

    Returns coefficients ``c`` such that
    ``seq[k] == sum(c[i] * seq[k - 1 - i])`` for every
    ``k >= len(c)``; the empty list means the sequence is eventually
    all-zero from the start.  ``2r + 1`` terms suffice to pin down a
    recurrence of order ``r``.
    """
    ls: List[Fraction] = []
    cur: List[Fraction] = []
    lf = 0
    ld = Fraction(0)
    for i in range(len(seq)):
        t = Fraction(seq[i])
        for j in range(len(cur)):
            t -= cur[j] * seq[i - 1 - j]
        if t == 0:
            continue
        if not cur:
            cur = [Fraction(0)] * (i + 1)
            lf, ld = i, t
            continue
        k = t / ld
        c = [Fraction(0)] * (i - lf - 1) + [k] + [-k * x for x in ls]
        if len(c) < len(cur):
            c += [Fraction(0)] * (len(cur) - len(c))
        for j in range(len(cur)):
            c[j] += cur[j]
        if i - lf + len(ls) >= len(cur):
            ls, lf, ld = list(cur), i, t
        cur = c
    return cur


class CountingSystem:
    """Path counting in a weighted digraph: ``start . matrix^d . accept``.

    ``matrix`` is a square non-negative integer matrix, ``start`` a row
    vector (the initial weight on each state), ``accept`` a 0/1 column
    vector marking the states whose weight is counted at the end.
    """

    __slots__ = ("matrix", "start", "accept", "_recurrence", "_prefix")

    def __init__(
        self,
        matrix: Sequence[Sequence[int]],
        start: Sequence[int],
        accept: Sequence[int],
    ):
        n = len(matrix)
        if any(len(row) != n for row in matrix):
            raise ValueError("counting matrix must be square")
        if len(start) != n or len(accept) != n:
            raise ValueError("start/accept vectors must match the matrix size")
        self.matrix = [list(map(int, row)) for row in matrix]
        self.start = list(map(int, start))
        self.accept = list(map(int, accept))
        self._recurrence: "List[int] | None" = None
        self._prefix: List[int] = []

    @property
    def size(self) -> int:
        return len(self.matrix)

    # -- direct evaluation ---------------------------------------------------

    def term(self, d: int) -> int:
        """The ``d``-th term by binary matrix powering (huge ``d`` ok)."""
        if d < 0:
            raise ValueError(f"index must be non-negative, got {d}")
        power = matrix_power(self.matrix, d)
        return sum(
            self.start[s] * power[s][t] * self.accept[t]
            for s in range(self.size) for t in range(self.size)
        )

    def series(self, n: int) -> List[int]:
        """The first ``n`` terms (indices ``0 .. n-1``) by iterating the
        row vector -- one matrix application per term."""
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        vec = list(self.start)
        out: List[int] = []
        m = self.size
        for _ in range(n):
            out.append(sum(vec[t] * self.accept[t] for t in range(m)))
            vec = [
                sum(vec[s] * self.matrix[s][t] for s in range(m))
                for t in range(m)
            ]
        return out

    # -- smart enumeration ---------------------------------------------------

    def linear_recurrence(self) -> List[int]:
        """The minimal integer linear recurrence of the sequence.

        Extracted once from ``2m + 2`` seed terms (``m`` = matrix size
        bounds the recurrence order) and cached; the integrality of the
        Berlekamp--Massey output is verified, not assumed.
        """
        if self._recurrence is None:
            seed = self.series(2 * self.size + 2)
            coeffs = berlekamp_massey(seed)
            ints: List[int] = []
            for c in coeffs:
                if c.denominator != 1:
                    raise ArithmeticError(
                        f"recurrence coefficient {c} is not an integer; "
                        "the transfer matrix is not what it claims to be"
                    )
                ints.append(int(c))
            self._recurrence = ints
            self._prefix = seed
        return list(self._recurrence)

    def smart_enumeration(self, n: int) -> List[int]:
        """The first ``n`` terms via the extracted recurrence:
        :math:`O(m)` seed work once, then :math:`O(r)` per term."""
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        rec = self.linear_recurrence()
        out = list(self._prefix[:n])
        if len(out) < n and not rec:
            out += [0] * (n - len(out))
        while len(out) < n:
            k = len(out)
            out.append(sum(rec[i] * out[k - 1 - i] for i in range(len(rec))))
        return out

    def smart_term(self, d: int) -> int:
        """The ``d``-th term, recurrence-extended (linear in ``d``;
        prefer :meth:`term` when ``d`` is astronomically large)."""
        if d < 0:
            raise ValueError(f"index must be non-negative, got {d}")
        return self.smart_enumeration(d + 1)[d]


def vertex_system(fsm: FSM) -> CountingSystem:
    """Vertex counts of the cube family of ``fsm``'s language:
    term ``d`` is the number of accepted length-``d`` words."""
    n = fsm.num_states
    start = [1 if s == 0 else 0 for s in range(n)]
    accept = [1 if s in fsm.accepting else 0 for s in range(n)]
    return CountingSystem(fsm.transfer_matrix(), start, accept)


def edge_system(fsm: FSM) -> CountingSystem:
    """Edge counts of the cube family of ``fsm``'s language.

    States of the pair-marked digraph: ``m`` phase-0 states (one word,
    before the flip) then ``m^2`` phase-1 pairs ``(s, t)`` tracking the
    bit-0 / bit-1 branches after the flip, indexed ``m + s*m + t``.
    Accepted length-``d`` paths are exactly the edges ``{w, w + e_i}``
    with ``w_i = 0``, counted once each.
    """
    m = fsm.num_states
    size = m + m * m
    mat = [[0] * size for _ in range(size)]
    for s in range(m):
        t0, t1 = fsm.table[s]
        # phase 0: consume one un-flipped bit
        mat[s][t0] += 1
        mat[s][t1] += 1
        # or flip here: w takes bit 0, w + e_i takes bit 1
        mat[s][m + t0 * m + t1] += 1
    for s in range(m):
        for t in range(m):
            row = m + s * m + t
            for bit in (0, 1):
                s2 = fsm.table[s][bit]
                t2 = fsm.table[t][bit]
                mat[row][m + s2 * m + t2] += 1
    start = [1 if i == 0 else 0 for i in range(size)]
    accept = [0] * size
    for s in fsm.accepting:
        for t in fsm.accepting:
            accept[m + s * m + t] = 1
    return CountingSystem(mat, start, accept)
