"""Analytic layer: closed-form structure of the cube address languages.

Hsu's generalized Fibonacci cubes are *defined* by forbidden-factor
address languages, so their node/link/bisection structure is computable
exactly from finite automata -- no simulation, no enumeration, any
dimension.  This package turns that observation into a predict-then-
verify harness:

- :mod:`repro.analytic.fsm` -- avoidance FSMs with a full language
  algebra (union / intersection / complement / minimization);
- :mod:`repro.analytic.enumeration` -- transfer-matrix counting systems
  with linear-recurrence extraction (``smart_enumeration``) for exact
  node and edge counts at arbitrary ``d``;
- :mod:`repro.analytic.bounds` -- direction-cut profiles, an analytic
  bisection-width estimate and the uniform-traffic saturation bound
  (the classical ``2B/N`` channel-load model);
- :mod:`repro.analytic.crosscheck` -- the driver comparing analytic
  bounds against the insight engine's simulated saturation knees
  (imported directly, not re-exported here: it pulls in the network
  layer, which the model modules deliberately do not).
"""

from repro.analytic.bounds import (
    DirectionCut,
    analytic_saturation_bound,
    analytic_summary,
    bisection_estimate,
    cube_model,
    cut_profile,
    parse_cube_name,
    saturation_bound,
)
from repro.analytic.enumeration import (
    CountingSystem,
    berlekamp_massey,
    edge_system,
    vertex_system,
)
from repro.analytic.fsm import FSM

__all__ = [
    "CountingSystem",
    "DirectionCut",
    "FSM",
    "analytic_saturation_bound",
    "analytic_summary",
    "berlekamp_massey",
    "bisection_estimate",
    "cube_model",
    "cut_profile",
    "edge_system",
    "parse_cube_name",
    "saturation_bound",
    "vertex_system",
]
