"""Avoidance FSMs over ``{0, 1}`` with a full language algebra.

The address set of every cube family in the paper is a *regular
language*: the hypercube accepts everything, :math:`Q_d(f)` the words
avoiding ``f``, :math:`Q_d(F)` the words avoiding a set.  This module
lifts the KMP / Aho--Corasick machinery of :mod:`repro.words` into a
general complete-DFA type closed under union, intersection, complement
and minimization, so composite address languages ("avoids ``11`` *or*
avoids ``000``", "avoids ``101`` *and* ``010``") get the same exact
transfer-matrix counting as the primitive families.

Conventions: states are ``0 .. n-1`` with start state ``0``; ``table``
is total (every state has both transitions), so the dead/forbidden
state of an avoidance automaton is just a non-accepting absorbing
state.  All constructors produce deterministic state numberings -- BFS
discovery order, bit 0 before bit 1 -- so equal constructions are
``==``-equal, and :meth:`FSM.minimize` is a canonical form: two FSMs
accept the same language iff their minimizations compare equal.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.words.aho import MultiFactorAutomaton
from repro.words.automaton import matrix_power

__all__ = ["FSM"]


class FSM:
    """Complete DFA over ``{0, 1}``; the cube address-language type.

    Parameters
    ----------
    table:
        ``table[s] == (t0, t1)``: successor of state ``s`` on bit 0 / 1.
        Must be total and in-range; state 0 is the start state.
    accepting:
        The accepting states (any iterable of state indices).
    """

    __slots__ = ("table", "accepting")

    def __init__(self, table: Sequence[Sequence[int]], accepting: Iterable[int]):
        tbl: List[Tuple[int, int]] = []
        n = len(table)
        if n == 0:
            raise ValueError("FSM needs at least one state (the start state)")
        for s, row in enumerate(table):
            if len(row) != 2:
                raise ValueError(f"state {s}: need exactly two transitions, got {row!r}")
            t0, t1 = int(row[0]), int(row[1])
            if not (0 <= t0 < n and 0 <= t1 < n):
                raise ValueError(f"state {s}: transition out of range: {row!r}")
            tbl.append((t0, t1))
        self.table: Tuple[Tuple[int, int], ...] = tuple(tbl)
        acc: FrozenSet[int] = frozenset(int(s) for s in accepting)
        for s in acc:
            if not (0 <= s < n):
                raise ValueError(f"accepting state {s} out of range")
        self.accepting = acc

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_factors(cls, factors: Iterable[str]) -> "FSM":
        """The avoidance language of a factor set ``F``: accepts exactly
        the words containing no member of ``F`` (the address language of
        :math:`Q_d(F)` at every ``d`` simultaneously).  Built on the
        Aho--Corasick automaton, so subsumed factors are already dropped."""
        auto = MultiFactorAutomaton(factors)
        return cls(auto.table, range(auto.forbidden))

    @classmethod
    def universal(cls) -> "FSM":
        """Accepts every word: the hypercube's address language."""
        return cls([(0, 0)], [0])

    # -- running ------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self.table)

    def accepts(self, word: str) -> bool:
        """``True`` iff ``word`` (over ``'0'``/``'1'``) is in the language."""
        s = 0
        for ch in word:
            if ch not in ("0", "1"):
                raise ValueError(f"word must be binary, got {word!r}")
            s = self.table[s][ch == "1"]
        return s in self.accepting

    # -- language algebra ---------------------------------------------------

    def complement(self) -> "FSM":
        """Words *not* in the language (totality makes this a state flip)."""
        return FSM(self.table, set(range(self.num_states)) - self.accepting)

    def _product(self, other: "FSM", keep) -> "FSM":
        """Reachable product construction; ``keep(a_acc, b_acc)`` decides
        acceptance of a pair state.  BFS discovery order (bit 0 first)
        numbers the states, so the result is deterministic."""
        ids: Dict[Tuple[int, int], int] = {(0, 0): 0}
        order: List[Tuple[int, int]] = [(0, 0)]
        table: List[Tuple[int, int]] = []
        i = 0
        while i < len(order):
            a, b = order[i]
            row = []
            for bit in (0, 1):
                pair = (self.table[a][bit], other.table[b][bit])
                if pair not in ids:
                    ids[pair] = len(order)
                    order.append(pair)
                row.append(ids[pair])
            table.append((row[0], row[1]))
            i += 1
        accepting = [
            ids[(a, b)] for (a, b) in order
            if keep(a in self.accepting, b in other.accepting)
        ]
        return FSM(table, accepting)

    def union(self, other: "FSM") -> "FSM":
        """Words in either language."""
        return self._product(other, lambda a, b: a or b)

    def intersection(self, other: "FSM") -> "FSM":
        """Words in both languages."""
        return self._product(other, lambda a, b: a and b)

    # -- minimization -------------------------------------------------------

    def minimize(self) -> "FSM":
        """Canonical minimal DFA: reachable trim, Moore partition
        refinement, then BFS renumbering.  Two FSMs accept the same
        language iff their minimizations are ``==``-equal."""
        # reachable states, in BFS order
        reach: List[int] = [0]
        seen = {0}
        i = 0
        while i < len(reach):
            s = reach[i]
            for bit in (0, 1):
                t = self.table[s][bit]
                if t not in seen:
                    seen.add(t)
                    reach.append(t)
            i += 1
        # Moore refinement over the reachable part
        block = {s: int(s in self.accepting) for s in reach}
        while True:
            sig = {
                s: (block[s], block[self.table[s][0]], block[self.table[s][1]])
                for s in reach
            }
            renum: Dict[Tuple[int, int, int], int] = {}
            nxt = {}
            for s in reach:  # BFS order keeps the numbering deterministic
                if sig[s] not in renum:
                    renum[sig[s]] = len(renum)
                nxt[s] = renum[sig[s]]
            if nxt == block:
                break
            block = nxt
        # quotient, renumbered by BFS from the start block
        rep: Dict[int, int] = {}
        for s in reach:
            rep.setdefault(block[s], s)
        old_order: List[int] = [block[0]]
        new_id = {block[0]: 0}
        i = 0
        table: List[Tuple[int, int]] = []
        while i < len(old_order):
            b = old_order[i]
            s = rep[b]
            row = []
            for bit in (0, 1):
                tb = block[self.table[s][bit]]
                if tb not in new_id:
                    new_id[tb] = len(old_order)
                    old_order.append(tb)
                row.append(new_id[tb])
            table.append((row[0], row[1]))
            i += 1
        accepting = [new_id[b] for b in old_order if rep[b] in self.accepting]
        return FSM(table, accepting)

    def equivalent(self, other: "FSM") -> bool:
        """Language equality, via canonical minimization."""
        return self.minimize() == other.minimize()

    # -- counting -----------------------------------------------------------

    def transfer_matrix(self) -> List[List[int]]:
        """``M[s][t]``: number of bits (0, 1 or 2) from ``s`` to ``t``.
        ``sum_{t accepting} (M^d)[0][t]`` counts accepted length-``d``
        words -- the vertex count of the cube the language defines."""
        n = self.num_states
        mat = [[0] * n for _ in range(n)]
        for s in range(n):
            for bit in (0, 1):
                mat[s][self.table[s][bit]] += 1
        return mat

    def count_words(self, d: int) -> int:
        """Number of accepted words of length ``d`` (exact, any ``d``)."""
        if d < 0:
            raise ValueError(f"length must be non-negative, got {d}")
        row = matrix_power(self.transfer_matrix(), d)[0]
        return sum(row[t] for t in self.accepting)

    # -- plumbing -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FSM):
            return NotImplemented
        return self.table == other.table and self.accepting == other.accepting

    def __hash__(self) -> int:
        return hash((self.table, self.accepting))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FSM(states={self.num_states}, accepting={sorted(self.accepting)})"
