"""Analytic bisection and saturation bounds for cube address languages.

Every dimension ``i`` of a ``d``-dimensional cube defines a *direction
cut*: split the vertices by bit ``i``.  Because edges flip exactly one
bit, the edges crossing that cut are precisely the direction-``i``
edges, so the whole cut profile -- part sizes and crossing width per
direction -- falls out of the same automaton DP that counts edges, and
the direction cuts together tile the edge set
(``sum_i crossing(i) == |E|``, an invariant the tests enforce).

The **bisection estimate** picks the most balanced direction cut
(tie-break: fewest crossing edges, then lowest position).  For the
hypercube every direction cut is an exact bisection; for factor-avoiding
cubes direction cuts are the natural upper-bound family the paper's
partial-order arguments work with.

The **saturation bound** is the classical channel-load model, calibrated
to the simulator's link discipline (one packet per *directed* link per
cycle -- full-duplex channels, see :mod:`repro.network.simulator`).
Under uniform traffic at ``theta`` packets/node/cycle, the load offered
to each direction of a cut with ``crossing`` links separating ``n0``
and ``n1`` of the ``N`` nodes is ``theta * n0 * n1 / N``, and each
direction has ``crossing`` channels of capacity one, so the sustainable
injection rate is

    ``theta* = crossing * N / (n0 * n1)``

-- the textbook ``2B/N`` for a balanced cut, with ``B = 2 * crossing``
the bisection width in channels.  For the hypercube this gives
``theta* = 2.0`` packets/node/cycle, which the simulator's steady-state
knee reproduces exactly.  Simulated knees should sit at or below
``theta*``; a knee far *above* it means the model and the simulator
disagree about the machine being measured -- the
``analytic-divergence`` insight rule and the
:mod:`repro.analytic.crosscheck` driver both key off this bound.

This module imports only :mod:`repro.words` (via the FSM layer) --
never the network stack -- so the network layer can import it freely.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.analytic.enumeration import edge_system, vertex_system
from repro.analytic.fsm import FSM

__all__ = [
    "DirectionCut",
    "analytic_saturation_bound",
    "analytic_summary",
    "bisection_estimate",
    "cube_model",
    "cut_profile",
    "parse_cube_name",
    "saturation_bound",
]


@dataclass(frozen=True)
class DirectionCut:
    """One direction cut: split on bit ``position``.

    ``n0`` / ``n1`` count the vertices with that bit 0 / 1, and
    ``crossing`` the edges across the cut (= the direction-``position``
    edges).  ``n0 + n1 == N`` for every cut of one cube.
    """

    position: int
    n0: int
    n1: int
    crossing: int


def cut_profile(fsm: FSM, d: int) -> List[DirectionCut]:
    """All ``d`` direction cuts of the ``d``-dimensional cube of
    ``fsm``'s language, exactly.

    One forward sweep stores the prefix weight vectors (``O(d * m)``
    memory), then one backward sweep streams the suffix single- and
    pair-weights (``O(m^2)`` live state), evaluating every cut on the
    way -- no per-position suffix tables.
    """
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    m = fsm.num_states
    table = fsm.table
    acc = [1 if s in fsm.accepting else 0 for s in range(m)]

    # forward: prefix[j][s] = number of length-j prefixes reaching s
    prefix: List[List[int]] = [[0] * m]
    prefix[0][0] = 1
    for _ in range(d):
        cur = prefix[-1]
        nxt = [0] * m
        for s in range(m):
            v = cur[s]
            if v:
                nxt[table[s][0]] += v
                nxt[table[s][1]] += v
        prefix.append(nxt)

    # backward: suffix weights for single runs and run pairs, streamed
    suf = list(acc)                      # length-0 suffixes
    suf_pair = [[a * b for b in acc] for a in acc]
    cuts: List[DirectionCut] = []
    for i in range(d - 1, -1, -1):
        pre = prefix[i]
        n0 = n1 = crossing = 0
        for s in range(m):
            v = pre[s]
            if not v:
                continue
            t0, t1 = table[s]
            n0 += v * suf[t0]
            n1 += v * suf[t1]
            crossing += v * suf_pair[t0][t1]
        cuts.append(DirectionCut(position=i, n0=n0, n1=n1, crossing=crossing))
        # extend the suffixes by one bit (now length d - i)
        suf = [suf[table[s][0]] + suf[table[s][1]] for s in range(m)]
        suf_pair = [
            [
                suf_pair[table[s][0]][table[t][0]]
                + suf_pair[table[s][1]][table[t][1]]
                for t in range(m)
            ]
            for s in range(m)
        ]
    cuts.reverse()
    return cuts


def bisection_estimate(profile: List[DirectionCut]) -> Optional[DirectionCut]:
    """The most balanced direction cut: minimal ``|n0 - n1|``,
    tie-broken by fewest crossing edges, then lowest position.  ``None``
    for an empty profile (a 0-dimensional cube has no cuts)."""
    if not profile:
        return None
    return min(profile, key=lambda c: (abs(c.n0 - c.n1), c.crossing, c.position))


def saturation_bound(cut: Optional[DirectionCut]) -> float:
    """Uniform-traffic saturation bound ``theta* = crossing * N /
    (n0 * n1)`` for the given cut, in packets/node/cycle under the
    simulator's one-packet-per-directed-link discipline (``0.0`` when
    either side is empty -- no traffic ever crosses, so the cut bounds
    nothing)."""
    if cut is None or cut.n0 <= 0 or cut.n1 <= 0:
        return 0.0
    n = cut.n0 + cut.n1
    return cut.crossing * n / (1.0 * cut.n0 * cut.n1)


# -- topology-name bridge ----------------------------------------------------

_NAME_RE = re.compile(r"Q_(\d+)(?:\(([01]+(?:,[01]+)*)\))?")


def parse_cube_name(topology: str) -> Optional[Tuple[int, Tuple[str, ...]]]:
    """Recognize a cube topology as ``(d, factors)``.

    Accepts both the display-name form the sweep writes into records
    (``"Q_7"``, ``"Q_7(11)"``, ``"Q_7(00,11)"``) and the CLI spec form
    (``"Q:7"``, ``"hypercube:7"``, ``"11:7"``, ``"00,11:7"``).  An
    empty factor tuple means the hypercube.  Returns ``None`` for
    anything else -- callers treat that as "no analytic model".
    """
    m = _NAME_RE.fullmatch(topology)
    if m:
        factors = tuple(m.group(2).split(",")) if m.group(2) else ()
        return int(m.group(1)), factors
    name, sep, dim = topology.partition(":")
    if not sep:
        return None
    try:
        d = int(dim)
    except ValueError:
        return None
    if d < 0:
        return None
    if name in ("Q", "hypercube"):
        return d, ()
    parts = tuple(name.split(","))
    if not all(p and not set(p) - set("01") for p in parts):
        return None
    return d, parts


@lru_cache(maxsize=256)
def cube_model(factors: Tuple[str, ...]) -> FSM:
    return FSM.universal() if not factors else FSM.from_factors(factors)


@lru_cache(maxsize=256)
def analytic_summary(topology: str) -> Optional[Dict[str, Any]]:
    """The full analytic picture of a cube topology name/spec:
    exact node and edge counts, the bisection-estimate cut and the
    uniform-traffic saturation bound.  ``None`` when the name is not a
    recognizable (unfaulted) cube."""
    parsed = parse_cube_name(topology)
    if parsed is None:
        return None
    d, factors = parsed
    fsm = cube_model(factors)
    nodes = vertex_system(fsm).term(d)
    edges = edge_system(fsm).term(d)
    profile = cut_profile(fsm, d)
    cut = bisection_estimate(profile)
    return {
        "dimension": d,
        "factors": list(factors),
        "nodes": nodes,
        "edges": edges,
        "bisection": None if cut is None else {
            "position": cut.position,
            "n0": cut.n0,
            "n1": cut.n1,
            "crossing": cut.crossing,
        },
        "saturation_bound": saturation_bound(cut),
    }


def analytic_saturation_bound(topology: str) -> float:
    """``theta*`` for a cube topology name/spec; ``0.0`` when no
    analytic model applies (unrecognized name, empty cube, ``d = 0``).
    This is what fills the ``analytic_bound`` column of sweep records."""
    summary = analytic_summary(topology)
    if summary is None:
        return 0.0
    return summary["saturation_bound"]
