"""Predict-then-verify driver: analytic bounds vs simulated knees.

The model half of this package predicts, per cube topology, a uniform-
traffic saturation bound ``theta*`` (:mod:`repro.analytic.bounds`); the
simulation half of the repo measures, per sweep curve, a saturation
knee (:func:`repro.network.insights.knee_of`).  This module is the
bridge that holds the two to account: for every *eligible* curve --
uniform pattern, no faults, plain store-and-forward, no collective, a
topology the analytic layer recognizes -- it compares knee against
bound and issues a verdict:

- ``consistent`` -- the knee sits at or below
  ``tolerance * theta*`` (the simulator saturates no later than the
  channel-load model allows; knees *below* the bound are expected,
  since ``theta*`` is an upper bound that ignores routing and queueing
  losses);
- ``divergent`` -- the knee exceeds the band: the simulator claims to
  push more uniform traffic through the bisection than the wiring can
  carry, so one of the two sides is wrong;
- ``no-knee`` -- the curve never saturated on its load axis, so there
  is nothing to compare (the data records how far the axis reached
  relative to the bound).

The default ``tolerance`` is :data:`KNEE_TOLERANCE`; the knee is
quantized to the sweep's load grid (the recorded knee is the first
*grid point* past saturation, which overshoots the true knee by up to
one load step), which is why the band is a ratio above 1 rather than
equality.  The report is stable and canonical exactly like the insight
engine's -- same sorted-keys two-space JSON -- and is byte-compared by
a golden-fixture test.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.analytic.bounds import analytic_summary
from repro.network.insights import knee_of
from repro.network.sweep import SweepRecord, saturation_curves

__all__ = [
    "COMPARE_FORMAT",
    "COMPARE_VERSION",
    "KNEE_TOLERANCE",
    "crosscheck_report",
    "render_text",
    "report_to_json",
]

COMPARE_FORMAT = "repro-analytic-crosscheck"
COMPARE_VERSION = 1

# Accept simulated knees up to this multiple of the analytic bound: the
# knee is quantized upward to the next grid load, so a knee one step
# past theta* is measurement granularity, not model failure.
KNEE_TOLERANCE = 1.25

VERDICTS = ("consistent", "divergent", "no-knee")


def crosscheck_report(
    records: Sequence[SweepRecord], tolerance: float = KNEE_TOLERANCE
) -> Dict[str, Any]:
    """Compare every eligible curve's simulated knee against its
    topology's analytic saturation bound.

    Deterministic and canonical: comparisons sort by (topology,
    router), every value is a plain JSON type, no timestamps -- the
    same records always serialize to the same bytes.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    records = list(records)
    curves = saturation_curves(records)
    comparisons: List[Dict[str, Any]] = []
    skipped = 0
    for key in curves:
        topology, router, pattern, faults, flow, collective = key
        if pattern != "uniform" or faults or flow or collective:
            skipped += 1
            continue
        summary = analytic_summary(topology)
        if summary is None or summary["saturation_bound"] <= 0:
            skipped += 1
            continue
        curve = curves[key]
        bound = summary["saturation_bound"]
        knee = knee_of(curve)
        max_load = curve[-1].load
        if knee is None:
            verdict = "no-knee"
            ratio = None
        else:
            ratio = knee / bound
            verdict = "consistent" if ratio <= tolerance else "divergent"
        comparisons.append({
            "topology": topology,
            "router": router,
            "nodes": summary["nodes"],
            "edges": summary["edges"],
            "bisection_crossing": summary["bisection"]["crossing"],
            "analytic_bound": bound,
            "knee_load": knee,
            "knee_ratio": ratio,
            "max_load": max_load,
            "verdict": verdict,
        })
    comparisons.sort(key=lambda c: (c["topology"], c["router"]))
    counts = {v: 0 for v in VERDICTS}
    for c in comparisons:
        counts[c["verdict"]] += 1
    return {
        "format": COMPARE_FORMAT,
        "version": COMPARE_VERSION,
        "tolerance": tolerance,
        "records": len(records),
        "curves": len(curves),
        "compared": len(comparisons),
        "skipped": skipped,
        "verdict_counts": counts,
        "comparisons": comparisons,
    }


def report_to_json(report: Mapping[str, Any]) -> str:
    """The one canonical serialization (sorted keys, two-space indent,
    trailing newline) -- what the golden-fixture test byte-compares."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_text(report: Mapping[str, Any]) -> str:
    """Human-readable rendering: divergences first, then the rest."""
    counts = report["verdict_counts"]
    lines = [
        f"{report['records']} records, {report['curves']} curves, "
        f"{report['compared']} compared against analytic bounds "
        f"({counts['consistent']} consistent, {counts['divergent']} "
        f"divergent, {counts['no-knee']} without a knee; "
        f"tolerance {report['tolerance']}x)"
    ]
    marker = {"divergent": "!!", "no-knee": " ?", "consistent": "  "}
    order = {"divergent": 0, "no-knee": 1, "consistent": 2}
    for c in sorted(report["comparisons"], key=lambda c: order[c["verdict"]]):
        if c["knee_load"] is None:
            detail = (
                f"no knee up to load {c['max_load']!r} "
                f"(bound theta*={c['analytic_bound']:.3f})"
            )
        else:
            detail = (
                f"knee {c['knee_load']!r} vs theta*={c['analytic_bound']:.3f} "
                f"(ratio {c['knee_ratio']:.2f})"
            )
        lines.append(
            f"{marker[c['verdict']]} [{c['verdict']}] {c['topology']} / "
            f"{c['router']}: {detail}"
        )
    return "\n".join(lines)
