"""Proposition 6.1: degree and diameter of embeddable cubes.

For any ``f`` (other than the trivial paths ``01``/``10``) of length at
least two with :math:`Q_d(f) \\hookrightarrow Q_d`, the maximum degree and
the diameter of :math:`Q_d(f)` both equal ``d``.  The module produces a
full structural report (degree extremes, diameter, radius, vertex counts)
that the E5 experiment sweeps over the embeddable factors, plus
paper-specific accessors for the Fig. 2 comparison (:math:`Q_5(11)` vs
:math:`Q_4(110)`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.traversal import diameter, is_connected, radius

__all__ = ["StructureReport", "structure_report"]


@dataclass(frozen=True)
class StructureReport:
    """Degree/diameter/radius summary of one generalized Fibonacci cube."""

    f: str
    d: int
    num_vertices: int
    num_edges: int
    min_degree: int
    max_degree: int
    diameter: int
    radius: int
    connected: bool

    def satisfies_prop_6_1(self) -> bool:
        """Does the cube exhibit the Proposition 6.1 conclusion
        (max degree = diameter = d)?"""
        return self.max_degree == self.d and self.diameter == self.d


def structure_report(cube) -> StructureReport:
    """Compute the :class:`StructureReport` of a cube (or ``(f, d)`` pair).

    Accepts any cube-shaped object (including
    :class:`~repro.cubes.multifactor.MultiFactorCube`; the report's ``f``
    field then joins the factor set with commas).
    """
    if isinstance(cube, tuple):
        f, d = cube
        cube = generalized_fibonacci_cube(f, d)
    f_label = getattr(cube, "f", None)
    if f_label is None:
        f_label = ",".join(getattr(cube, "factors", ()))
    g = cube.graph()
    connected = is_connected(g)
    degs: List[int] = g.degrees()
    if connected and g.num_vertices > 0:
        dia = diameter(g)
        rad = radius(g)
    else:
        dia = -1
        rad = -1
    return StructureReport(
        f=f_label,
        d=cube.d,
        num_vertices=g.num_vertices,
        num_edges=g.num_edges,
        min_degree=min(degs) if degs else 0,
        max_degree=max(degs) if degs else 0,
        diameter=dia,
        radius=rad,
        connected=connected,
    )
