"""Vertex, edge and square counts (Section 6, eqs. (1)-(6), Props 6.2, 6.3).

Three independent count sources are implemented so the experiments can
triangulate:

1. **brute force** on the constructed graph (:func:`brute_counts`);
2. the paper's **recurrences**: eqs. (1)-(3) for
   :math:`G_d = Q_d(111)` and (4)-(6) for :math:`H_d = Q_d(110)`
   (:func:`recurrences_111`, :func:`recurrences_110`);
3. **closed forms**: :math:`|V(H_d)| = F_{d+3} - 1`, Proposition 6.2 for
   :math:`|E(H_d)|` (convolution and the /5 form), and Proposition 6.3
   for :math:`|S(H_d)|`.

The generic automaton counters of :mod:`repro.words.counting` provide a
fourth source valid for any factor and huge ``d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List

from repro.combinat.identities import fibonacci_convolution
from repro.combinat.sequences import fibonacci
from repro.cubes.generalized import generalized_fibonacci_cube

__all__ = [
    "Counts",
    "brute_counts",
    "recurrences_111",
    "recurrences_110",
    "vertices_110_closed",
    "edges_110_convolution",
    "edges_110_closed",
    "squares_110_closed",
]


@dataclass(frozen=True)
class Counts:
    """Triple of invariants of one cube: order, size, number of squares."""

    vertices: int
    edges: int
    squares: int


def brute_counts(f: str, d: int) -> Counts:
    """Count vertices, edges and squares of :math:`Q_d(f)` from the graph.

    Squares are counted by their normal form: a base code ``w`` with zero
    bits in positions ``i < j`` such that all of ``w + e_i``, ``w + e_j``,
    ``w + e_i + e_j`` are vertices -- each 4-cycle of a hypercube subgraph
    arises exactly once this way.
    """
    cube = generalized_fibonacci_cube(f, d)
    codes = set(int(c) for c in cube.codes)
    squares = 0
    for w in codes:
        for i in range(d):
            bi = 1 << i
            if w & bi or (w | bi) not in codes:
                continue
            for j in range(i + 1, d):
                bj = 1 << j
                if w & bj:
                    continue
                if (w | bj) in codes and (w | bi | bj) in codes:
                    squares += 1
    return Counts(cube.num_vertices, cube.num_edges, squares)


def recurrences_111(up_to: int) -> List[Counts]:
    """Eqs. (1)-(3): coupled recurrences for :math:`G_d = Q_d(111)`.

    .. math::
       |V(G_d)| &= |V(G_{d-1})| + |V(G_{d-2})| + |V(G_{d-3})| \\\\
       |E(G_d)| &= |E(G_{d-1})| + |E(G_{d-2})| + |E(G_{d-3})|
                   + |V(G_{d-2})| + 2 |V(G_{d-3})| \\\\
       |S(G_d)| &= |S(G_{d-1})| + |S(G_{d-2})| + |S(G_{d-3})|
                   + |E(G_{d-2})| + 2 |E(G_{d-3})| + |V(G_{d-3})|

    with starting values ``V: 1, 2, 4``, ``E: 0, 1, 4``, ``S: 0, 0, 1``
    for ``d = 0, 1, 2``.  Returns ``[Counts(d=0), ..., Counts(d=up_to)]``.
    """
    if up_to < 0:
        raise ValueError(f"up_to must be non-negative, got {up_to}")
    V = [1, 2, 4]
    E = [0, 1, 4]
    S = [0, 0, 1]
    for d in range(3, up_to + 1):
        V.append(V[d - 1] + V[d - 2] + V[d - 3])
        E.append(E[d - 1] + E[d - 2] + E[d - 3] + V[d - 2] + 2 * V[d - 3])
        S.append(
            S[d - 1] + S[d - 2] + S[d - 3] + E[d - 2] + 2 * E[d - 3] + V[d - 3]
        )
    return [Counts(V[d], E[d], S[d]) for d in range(up_to + 1)]


def recurrences_110(up_to: int) -> List[Counts]:
    """Eqs. (4)-(6): coupled recurrences for :math:`H_d = Q_d(110)`.

    .. math::
       |V(H_d)| &= |V(H_{d-1})| + |V(H_{d-2})| + 1 \\\\
       |E(H_d)| &= |E(H_{d-1})| + |E(H_{d-2})| + |V(H_{d-2})| + 2 \\\\
       |S(H_d)| &= |S(H_{d-1})| + |S(H_{d-2})| + |E(H_{d-2})| + 1

    with starting values ``V: 1, 2``, ``E: 0, 1``, ``S: 0, 0`` for
    ``d = 0, 1``.
    """
    if up_to < 0:
        raise ValueError(f"up_to must be non-negative, got {up_to}")
    V = [1, 2]
    E = [0, 1]
    S = [0, 0]
    for d in range(2, up_to + 1):
        V.append(V[d - 1] + V[d - 2] + 1)
        E.append(E[d - 1] + E[d - 2] + V[d - 2] + 2)
        S.append(S[d - 1] + S[d - 2] + E[d - 2] + 1)
    return [Counts(V[d], E[d], S[d]) for d in range(up_to + 1)]


def vertices_110_closed(d: int) -> int:
    """:math:`|V(H_d)| = F_{d+3} - 1` (stated after eqs. (4)-(6))."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    return fibonacci(d + 3) - 1


def edges_110_convolution(d: int) -> int:
    """Proposition 6.2: :math:`|E(H_d)| = -1 + \\sum_{i=1}^{d+1} F_i F_{d+2-i}`."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    return -1 + fibonacci_convolution(d)


def edges_110_closed(d: int) -> int:
    """The [12, Corollary 4] form:
    :math:`|E(H_d)| = -1 + ((d+1) F_{d+2} + 2 (d+2) F_{d+1}) / 5`."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    num = (d + 1) * fibonacci(d + 2) + 2 * (d + 2) * fibonacci(d + 1)
    frac = Fraction(num, 5)
    if frac.denominator != 1:
        raise ArithmeticError(f"|E(H_{d})| closed form is non-integral: {frac}")
    return -1 + frac.numerator


def squares_110_closed(d: int) -> int:
    """Proposition 6.3:

    .. math::
       |S(H_d)| = -\\frac{3(d+1)}{25} F_{d+2}
         + \\Big(\\frac{(d+1)^2}{10} + \\frac{3(d+1)}{50}
           - \\frac{1}{25}\\Big) F_{d+1}.
    """
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    k = d + 1
    coeff_a = Fraction(-3 * k, 25)
    coeff_b = Fraction(k * k, 10) + Fraction(3 * k, 50) - Fraction(1, 25)
    value = coeff_a * fibonacci(d + 2) + coeff_b * fibonacci(d + 1)
    if value.denominator != 1:
        raise ArithmeticError(f"|S(H_{d})| closed form is non-integral: {value}")
    return value.numerator
