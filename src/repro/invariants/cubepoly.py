"""Cube polynomial: counting induced subcubes of every dimension.

The vertex/edge/square counts of Section 6 are the first three
coefficients of the *cube polynomial*

.. math:: C(G, x) = \\sum_{k \\ge 0} c_k(G)\\, x^k,

where :math:`c_k` is the number of induced subgraphs isomorphic to
:math:`Q_k` (so :math:`c_0 = |V|`, :math:`c_1 = |E|`, :math:`c_2 = |S|`).
Cube polynomials of Fibonacci cubes are a studied object (Klavžar's
surveys); here we compute them for arbitrary generalized Fibonacci cubes,
extending eqs. (1)--(6) to all ``k`` at once.

In a subgraph of the hypercube every induced :math:`Q_k` has a normal
form: a base word ``w`` and a set ``S`` of ``k`` zero-positions of ``w``
such that all :math:`2^k` words ``w + sum of e_i over a subset`` are
vertices.  :func:`cube_coefficients` enumerates them with a per-vertex
DFS over sorted candidate directions (counting each subcube once).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cubes.generalized import generalized_fibonacci_cube

__all__ = ["cube_coefficients", "cube_polynomial_eval", "gamma_cube_coefficient"]


def cube_coefficients(cube_or_spec, max_k: int = None) -> List[int]:
    """Coefficients ``[c_0, c_1, ..., c_K]`` of the cube polynomial.

    ``cube_or_spec`` is a cube object (anything with ``codes`` and ``d``)
    or an ``(f, d)`` pair.  ``max_k`` truncates the computation (defaults
    to ``d``).  Exponential in the output size, fine for the moderate
    cubes used by the experiments.
    """
    if isinstance(cube_or_spec, tuple):
        f, d = cube_or_spec
        cube = generalized_fibonacci_cube(f, d)
    else:
        cube = cube_or_spec
    d = cube.d
    if max_k is None:
        max_k = d
    codes = set(int(c) for c in cube.codes)
    counts = [0] * (max_k + 1)
    counts[0] = len(codes)

    # DFS: grow a direction set S (ascending) from each base word w whose
    # bits vanish on S; maintain the frontier of current subcube vertices
    # and test all shifted copies at once.
    for w in codes:
        # candidate directions: zero bits of w whose flip stays a vertex
        cand = [i for i in range(d) if not (w >> i) & 1 and (w | (1 << i)) in codes]

        def grow(start: int, members: List[int], depth: int) -> None:
            if depth >= max_k:
                return
            for pos in range(start, len(cand)):
                i = cand[pos]
                bit = 1 << i
                # all current members shifted by e_i must be vertices
                if all((m | bit) in codes for m in members):
                    new_members = members + [m | bit for m in members]
                    counts[depth + 1] += 1
                    grow(pos + 1, new_members, depth + 1)

        grow(0, [w], 0)
    return counts


def cube_polynomial_eval(coeffs: Sequence[int], x: float) -> float:
    """Evaluate ``C(G, x)`` from its coefficient list."""
    return sum(c * x**k for k, c in enumerate(coeffs))


def gamma_cube_coefficient(d: int, k: int) -> int:
    """:math:`c_k(\\Gamma_d)` for the Fibonacci cube via its fundamental
    decomposition.

    :math:`\\Gamma_d = 0\\Gamma_{d-1} \\uplus 10\\Gamma_{d-2}` with a
    perfect matching from :math:`10\\Gamma_{d-2}` onto
    :math:`00\\Gamma_{d-2}`: an induced :math:`Q_k` lives entirely in one
    part, or pairs a :math:`Q_{k-1}` of :math:`10\\Gamma_{d-2}` with its
    matched copy.  Hence

    .. math:: c_k(\\Gamma_d) = c_k(\\Gamma_{d-1}) + c_k(\\Gamma_{d-2})
                               + c_{k-1}(\\Gamma_{d-2}),

    with :math:`c_k(\\Gamma_0) = [k = 0]` and :math:`c_k(\\Gamma_1) =
    [k \\le 1]`.  For ``k = 0, 1, 2`` this specializes to the paper's
    eqs. (1)-(2)-shaped recurrences for :math:`|V|, |E|, |S|`.  This
    function evaluates the recurrence exactly.
    """
    if d < 0 or k < 0:
        raise ValueError("d and k must be non-negative")
    # c[j] over dimensions built iteratively
    prev2 = [1]           # Gamma_0: one vertex  (c_0 = 1)
    prev1 = [2, 1]        # Gamma_1: an edge     (c_0 = 2, c_1 = 1)
    if d == 0:
        return prev2[k] if k < 1 else 0
    if d == 1:
        return prev1[k] if k < 2 else 0
    for _ in range(2, d + 1):
        size = max(len(prev1), len(prev2) + 1)
        cur = [0] * size
        for j in range(size):
            a = prev1[j] if j < len(prev1) else 0
            b = prev2[j] if j < len(prev2) else 0
            c = prev2[j - 1] if 0 <= j - 1 < len(prev2) else 0
            cur[j] = a + b + c
        prev2, prev1 = prev1, cur
    return prev1[k] if k < len(prev1) else 0
