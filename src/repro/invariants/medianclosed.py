"""Proposition 6.4: median-closed generalized Fibonacci cubes.

The only median closed :math:`Q_d(f)` with ``|f| >= 2`` and ``d >= |f|``
are those with ``|f| = 2``: the paths :math:`Q_d(10), Q_d(01)` and the
Fibonacci cubes :math:`Q_d(11) \\cong Q_d(00)`.  For ``|f| >= 3`` the
proof constructs an explicit triple ``x, y, z`` of vertices, pairwise at
distance 2, whose unique median candidate contains ``f`` -- implemented
(and verified) by :func:`median_certificate_triple`.
"""

from __future__ import annotations

from typing import Tuple

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.median import majority_word
from repro.words.core import complement, contains_factor, hamming, validate_word
from repro.words.core import word_to_int

__all__ = ["is_median_closed", "median_certificate_triple"]


def is_median_closed(f: str, d: int) -> bool:
    """Whether :math:`Q_d(f)` is closed under medians inside :math:`Q_d`.

    Direct bitwise-majority closure test on the actual vertex set (cubic
    in the order -- keep ``d`` moderate).
    """
    return generalized_fibonacci_cube(f, d).is_median_closed()


def median_certificate_triple(f: str, d: int) -> Tuple[str, str, str, str]:
    """The Proposition 6.4 certificate for ``|f| >= 3`` and ``d >= |f|``.

    With ``g`` the complement of the last letter of ``f`` and ``pad`` a run
    of ``d - |f|`` copies of ``g``, set ``m = f + pad`` (not a vertex: it
    starts with ``f``) and take ``x, y, z`` to be ``m`` with a *single*
    bit complemented, at three distinct positions inside the ``f``-prefix
    (the last three positions of the prefix -- any three work; ``|f| >= 3``
    is exactly what makes three such positions available).

    Each of ``x, y, z`` avoids ``f``: an occurrence ending inside the pad
    would need its last letter to be ``f``'s last letter, but every pad
    letter is its complement; an occurrence inside the prefix would have
    to be the whole prefix, which carries the flipped bit.  The three are
    pairwise at distance 2, and their bitwise majority -- the unique
    median candidate in :math:`Q_d` -- is ``m`` itself, which is missing.

    Returns ``(x, y, z, median)`` after verifying all of that; raises
    :class:`ValueError` on misuse (``|f| < 3`` or ``d < |f|``).
    """
    validate_word(f, name="forbidden factor")
    if len(f) < 3:
        raise ValueError("certificate exists only for |f| >= 3")
    if d < len(f):
        raise ValueError(f"need d >= |f|, got d={d}, |f|={len(f)}")
    g = complement(f[-1])
    pad = g * (d - len(f))
    m = f + pad

    def flip_at(word: str, i: int) -> str:
        return word[:i] + complement(word[i]) + word[i + 1 :]

    n = len(f)
    x = flip_at(m, n - 1)
    y = flip_at(m, n - 2)
    z = flip_at(m, n - 3)
    median = majority_word(word_to_int(x), word_to_int(y), word_to_int(z))
    median_word = format(median, f"0{d}b")
    # verification (the proof's content, checked mechanically)
    for w in (x, y, z):
        if contains_factor(w, f):
            raise AssertionError(f"certificate vertex {w} contains {f}")
    for a, b in ((x, y), (x, z), (y, z)):
        if hamming(a, b) != 2:
            raise AssertionError(f"certificate pair {a},{b} not at distance 2")
    if median_word != f + pad:
        raise AssertionError(
            f"median candidate {median_word} differs from expected {f + pad}"
        )
    if not contains_factor(median_word, f):
        raise AssertionError("median candidate unexpectedly avoids f")
    return (x, y, z, median_word)
