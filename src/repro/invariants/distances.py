"""Distance invariants: Wiener index, average distance, distance distribution.

Interconnection-network papers report average inter-node distance; graph
theory reports the Wiener index :math:`W(G) = \\sum_{\\{u,v\\}} d(u, v)`.
Both come from the same all-pairs BFS.  Known closed forms used as test
anchors: :math:`W(Q_d) = d\\, 4^{d-1}` (each of the ``d`` coordinates
contributes :math:`2^{d-1} \\cdot 2^{d-1}` split pairs).

For the Fibonacci cube, [Klavžar's survey] gives a closed Wiener formula;
here we expose the measured quantity plus the coordinate-cut
decomposition: in any *isometric* subgraph of :math:`Q_d`, the Wiener
index equals :math:`\\sum_{i=1}^{d} n_i (n - n_i)` where ``n_i`` counts
vertices with bit 1 in coordinate ``i`` -- distances are Hamming, so each
coordinate contributes independently.  The decomposition is itself a
checkable isometry invariant: it fails exactly when the cube is not
isometric, which the tests exploit.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.traversal import all_pairs_distances

__all__ = [
    "wiener_index",
    "average_distance",
    "distance_distribution",
    "wiener_by_cuts",
    "hypercube_wiener",
]


def _as_cube(cube_or_spec):
    if isinstance(cube_or_spec, tuple):
        f, d = cube_or_spec
        return generalized_fibonacci_cube(f, d)
    return cube_or_spec


def wiener_index(cube_or_spec) -> int:
    """:math:`W = \\sum_{\\{u,v\\}} d_G(u, v)` measured on the graph."""
    cube = _as_cube(cube_or_spec)
    dist = all_pairs_distances(cube.graph())
    if (dist < 0).any():
        raise ValueError("Wiener index is undefined on a disconnected graph")
    return int(dist.sum()) // 2


def average_distance(cube_or_spec) -> float:
    """Mean distance over unordered vertex pairs."""
    cube = _as_cube(cube_or_spec)
    n = cube.num_vertices
    if n < 2:
        return 0.0
    return wiener_index(cube) / (n * (n - 1) / 2)


def distance_distribution(cube_or_spec) -> Dict[int, int]:
    """``{distance: number of unordered pairs}`` including distance 0 pairs? No:
    distances >= 1 over unordered pairs."""
    cube = _as_cube(cube_or_spec)
    dist = all_pairs_distances(cube.graph())
    if (dist < 0).any():
        raise ValueError("distance distribution undefined on a disconnected graph")
    n = dist.shape[0]
    iu = np.triu_indices(n, k=1)
    values, counts = np.unique(dist[iu], return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def wiener_by_cuts(cube_or_spec) -> int:
    """Coordinate-cut Wiener formula :math:`\\sum_i n_i (n - n_i)`.

    Equals :func:`wiener_index` **iff** the cube's internal distances are
    Hamming distances, i.e. iff :math:`Q_d(f) \\hookrightarrow Q_d` (plus
    connectivity) -- a cheap necessary-and-sufficient witness at the
    aggregate level used by the property tests.
    """
    cube = _as_cube(cube_or_spec)
    codes = cube.codes
    n = int(codes.size)
    total = 0
    for i in range(cube.d):
        ones = int(((codes >> np.int64(i)) & np.int64(1)).sum())
        total += ones * (n - ones)
    return total


def hypercube_wiener(d: int) -> int:
    """Closed form :math:`W(Q_d) = d \\cdot 4^{d-1}`."""
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    if d == 0:
        return 0
    return d * 4 ** (d - 1)
