"""Section 6: enumerative and structural invariants of generalized
Fibonacci cubes.

- :mod:`repro.invariants.counts` -- vertex/edge/square counters (brute
  force on the graph, recurrences (1)--(6), closed forms of Propositions
  6.2 and 6.3, and the automaton counters for huge ``d``);
- :mod:`repro.invariants.structure` -- Proposition 6.1 (maximum degree and
  diameter equal ``d`` for embeddable cubes) plus general degree/diameter
  reports;
- :mod:`repro.invariants.medianclosed` -- Proposition 6.4 (median-closed
  iff ``|f| = 2``) with the explicit certificate triples from its proof.
"""

from repro.invariants.counts import (
    brute_counts,
    edges_110_closed,
    edges_110_convolution,
    recurrences_110,
    recurrences_111,
    squares_110_closed,
    vertices_110_closed,
)
from repro.invariants.structure import StructureReport, structure_report
from repro.invariants.cubepoly import (
    cube_coefficients,
    cube_polynomial_eval,
    gamma_cube_coefficient,
)
from repro.invariants.distances import (
    average_distance,
    distance_distribution,
    hypercube_wiener,
    wiener_by_cuts,
    wiener_index,
)
from repro.invariants.medianclosed import (
    is_median_closed,
    median_certificate_triple,
)

__all__ = [
    "brute_counts",
    "edges_110_closed",
    "edges_110_convolution",
    "recurrences_110",
    "recurrences_111",
    "squares_110_closed",
    "vertices_110_closed",
    "StructureReport",
    "cube_coefficients",
    "cube_polynomial_eval",
    "gamma_cube_coefficient",
    "structure_report",
    "average_distance",
    "distance_distribution",
    "hypercube_wiener",
    "wiener_by_cuts",
    "wiener_index",
    "is_median_closed",
    "median_certificate_triple",
]
