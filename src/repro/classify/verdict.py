"""Verdict objects returned by the theorem engine."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Status", "Verdict"]


class Status(Enum):
    """Embeddability status of :math:`Q_d(f)` in :math:`Q_d`."""

    ISOMETRIC = "isometric"
    NOT_ISOMETRIC = "not-isometric"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        raise TypeError(
            "Status is tri-valued; compare against Status.ISOMETRIC explicitly"
        )


@dataclass(frozen=True)
class Verdict:
    """Classification outcome with provenance.

    Attributes
    ----------
    f, d:
        The queried factor and dimension.
    status:
        Tri-valued embeddability answer.
    source:
        The paper statement (or engine) that settled it, e.g.
        ``"Proposition 3.1"`` or ``"brute force (BFS engine)"``.
    via:
        The orbit representative of ``f`` the rule actually matched
        (Lemmas 2.2/2.3 transfer the answer back to ``f``).
    """

    f: str
    d: int
    status: Status
    source: str
    via: str

    def agrees_with(self, other: "Verdict") -> bool:
        """Two verdicts conflict only if both are decided and differ."""
        if self.status is Status.UNKNOWN or other.status is Status.UNKNOWN:
            return True
        return self.status is other.status

    def __str__(self) -> str:
        tag = {
            Status.ISOMETRIC: "Q_d(f) iso in Q_d",
            Status.NOT_ISOMETRIC: "Q_d(f) NOT iso in Q_d",
            Status.UNKNOWN: "undecided by the paper's theorems",
        }[self.status]
        return f"f={self.f} d={self.d}: {tag} [{self.source} via {self.via}]"
