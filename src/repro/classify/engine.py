"""Classification engine combining the paper's rules with brute force.

:func:`classify` is purely deductive: it canvasses every rule over the
complement/reversal orbit of ``f`` (Lemmas 2.2/2.3) and returns the first
decided verdict, raising if two rules were ever to disagree -- i.e. the
engine doubles as a machine-checked consistency test of the paper's
statements.  :func:`classify_with_bruteforce` settles the remaining
UNKNOWN cases by running the isometry engines on the actual graphs, which
reproduces the paper's "checked by computer" footnotes.
"""

from __future__ import annotations

from typing import Optional

from repro.classify.rules import applicable_rules
from repro.classify.verdict import Status, Verdict
from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.vectorized import is_isometric_dp
from repro.words.core import validate_word
from repro.words.counting import count_vertices_automaton

__all__ = ["classify", "classify_with_bruteforce"]


def classify(f: str, d: int) -> Verdict:
    """Deductive verdict for :math:`Q_d(f) \\hookrightarrow Q_d`.

    Applies every matching paper statement over the whole symmetry orbit
    of ``f`` and cross-checks that decided verdicts agree (an
    :class:`AssertionError` here would mean the paper contradicts
    itself -- the test-suite sweeps this over thousands of cases).
    """
    validate_word(f, name="forbidden factor")
    if not f:
        raise ValueError("forbidden factor must be non-empty")
    if d < 1:
        raise ValueError(f"dimension must be at least 1, got {d}")
    verdicts = applicable_rules(f, d)
    decided = [v for v in verdicts if v.status is not Status.UNKNOWN]
    for i in range(1, len(decided)):
        if not decided[0].agrees_with(decided[i]):
            raise AssertionError(
                f"paper statements disagree on f={f!r}, d={d}: "
                f"{decided[0]} vs {decided[i]}"
            )
    if decided:
        return decided[0]
    return Verdict(f, d, Status.UNKNOWN, "no applicable statement", f)


def classify_with_bruteforce(
    f: str,
    d: int,
    max_vertices: int = 300000,
    dp_max_vertices: int = 9000,
) -> Verdict:
    """Verdict with computational fallback for the theorem gaps.

    When :func:`classify` returns UNKNOWN the actual graph is checked:
    the vectorised DP engine for cubes that fit its quadratic memory, the
    per-vertex BFS engine otherwise (up to ``max_vertices``).
    """
    verdict = classify(f, d)
    if verdict.status is not Status.UNKNOWN:
        return verdict
    n = count_vertices_automaton(f, d)
    if n > max_vertices:
        return verdict
    if n <= dp_max_vertices:
        ok = is_isometric_dp((f, d))
        engine = "brute force (DP engine)"
    else:
        ok = is_isometric_bfs((f, d))
        engine = "brute force (BFS engine)"
    status = Status.ISOMETRIC if ok else Status.NOT_ISOMETRIC
    return Verdict(f, d, status, engine, f)


def decide(f: str, d: int) -> Optional[bool]:
    """Convenience: ``True``/``False`` when decided deductively, else ``None``."""
    v = classify(f, d)
    if v.status is Status.ISOMETRIC:
        return True
    if v.status is Status.NOT_ISOMETRIC:
        return False
    return None
