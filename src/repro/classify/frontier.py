"""Classification frontier: pushing Table 1 past the paper.

Table 1 stops at ``|f| = 5``.  :func:`classify_frontier` runs the same
pipeline (theorem engine + brute-force gap filling) for any factor
length, reporting per-orbit summaries and how much of the landscape the
paper's theorems decide on their own -- quantitative context for
Problem 8.2 and Conjecture 8.1.

A frontier row records, for an orbit representative ``f``:

- the embeddability pattern summary over the probed dimensions
  (``always`` within the probe, or an exact threshold);
- whether any probed cell required brute force (i.e. the theorems were
  silent there), and which cells those were;
- the rule provenance that decided the decided cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.classify.engine import classify, classify_with_bruteforce
from repro.classify.table1 import orbit_representatives
from repro.classify.verdict import Status

__all__ = ["FrontierRow", "classify_frontier", "frontier_statistics"]


@dataclass(frozen=True)
class FrontierRow:
    """Classification summary of one factor orbit."""

    f: str
    max_d: int
    threshold: Optional[int]  # None = isometric throughout the probe
    computer_cells: Tuple[int, ...]  # dimensions that needed brute force
    sources: Tuple[str, ...]

    @property
    def decided_by_theorems_alone(self) -> bool:
        return not self.computer_cells

    @property
    def always_within_probe(self) -> bool:
        return self.threshold is None


def classify_frontier(length: int, max_d: int = 9) -> List[FrontierRow]:
    """Classify every orbit of the given factor length up to ``max_d``.

    Raises on a non-monotone embeddability pattern (none is known; one
    would be a discovery worth failing loudly for).
    """
    rows: List[FrontierRow] = []
    for f in orbit_representatives(length):
        pattern: List[bool] = []
        computer: List[int] = []
        sources: List[str] = []
        for d in range(1, max_d + 1):
            v = classify(f, d)
            if v.status is Status.UNKNOWN:
                computer.append(d)
                v = classify_with_bruteforce(f, d)
            if v.status is Status.UNKNOWN:
                raise RuntimeError(f"could not settle f={f!r}, d={d}")
            pattern.append(v.status is Status.ISOMETRIC)
            if v.source not in sources:
                sources.append(v.source)
        if all(pattern):
            threshold: Optional[int] = None
        else:
            first_bad = pattern.index(False)
            if any(pattern[first_bad:]):
                raise RuntimeError(
                    f"non-monotone embeddability for f={f!r}: {pattern}"
                )
            threshold = first_bad  # = last isometric d (1-based d-1 of index)
        rows.append(
            FrontierRow(f, max_d, threshold, tuple(computer), tuple(sources))
        )
    return rows


def frontier_statistics(rows: List[FrontierRow]) -> dict:
    """Aggregate view of a frontier sweep."""
    return {
        "orbits": len(rows),
        "always_within_probe": sum(1 for r in rows if r.always_within_probe),
        "with_threshold": sum(1 for r in rows if not r.always_within_probe),
        "decided_by_theorems_alone": sum(
            1 for r in rows if r.decided_by_theorems_alone
        ),
        "needed_computer": sum(1 for r in rows if r.computer_cells),
        "computer_cells_total": sum(len(r.computer_cells) for r in rows),
    }
