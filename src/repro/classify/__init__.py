"""Theorem engine: machine classification of :math:`Q_d(f) \\hookrightarrow Q_d`.

:func:`classify` applies the paper's results (Lemma 2.1, Propositions 3.1,
3.2, 4.1, 4.2, 5.1, Theorems 3.3, 4.3, 4.4) to a factor/dimension pair and
returns a :class:`Verdict` carrying provenance; gaps the theorems leave are
reported as UNKNOWN and may be settled by brute force
(:func:`classify_with_bruteforce`), which is exactly how the paper's own
"computer check" footnotes in Table 1 arise.  :mod:`repro.classify.table1`
regenerates Table 1.
"""

from repro.classify.verdict import Status, Verdict
from repro.classify.rules import ALL_RULES, applicable_rules
from repro.classify.engine import classify, classify_with_bruteforce
from repro.classify.table1 import Table1Row, classification_table, table1_expected
from repro.classify.frontier import FrontierRow, classify_frontier, frontier_statistics

__all__ = [
    "Status",
    "Verdict",
    "ALL_RULES",
    "applicable_rules",
    "classify",
    "classify_with_bruteforce",
    "Table1Row",
    "FrontierRow",
    "classify_frontier",
    "frontier_statistics",
    "classification_table",
    "table1_expected",
]
