"""Individual classification rules, one per paper statement.

Each rule is a function ``rule(g, d) -> Optional[Verdict]`` that inspects
a *single orbit representative* ``g`` (the engine tries all four members
of the complement/reversal orbit, Lemmas 2.2 and 2.3) and answers only
when its hypothesis matches exactly.  Rules never guess: anything not
literally covered by the statement returns ``None``.

Covered statements::

    Lemma 2.1          d <= |f|                          -> ISOMETRIC
    Proposition 3.1    f = 1^s                           -> ISOMETRIC
    Theorem 3.3 (i)    f = 1^r 0                         -> ISOMETRIC
    Theorem 3.3 (ii)   f = 1^2 0^s, s >= 2               -> iso iff d <= s + 4
    Theorem 3.3 (iii)  f = 1^r 0^s, r,s >= 3             -> iso iff d <= 2r + 2s - 3
    Proposition 3.2    f = 1^r 0^s 1^t                   -> NOT for d >= r+s+t+1
    Theorem 4.3        f = 1^s 0 1^s 0, s >= 2           -> ISOMETRIC
    Theorem 4.4        f = (10)^s                        -> ISOMETRIC
    Proposition 4.1    f = (10)^s 1, s >= 2              -> NOT for d >= 4s
    Proposition 4.2    f = (10)^r 1 (10)^s               -> NOT for d >= 2r+2s+3
    Proposition 5.1    f = 11010                         -> ISOMETRIC
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.classify.verdict import Status, Verdict
from repro.isometry.critical import _split_10r1_10s
from repro.words.core import blocks

__all__ = ["ALL_RULES", "applicable_rules"]

Rule = Callable[[str, int, str], Optional[Verdict]]
# signature: (orbit representative g, dimension d, original factor f)


def _two_block_exponents(g: str) -> Optional[Tuple[int, int]]:
    """``(r, s)`` when ``g = 1^r 0^s`` with ``r, s >= 1``."""
    runs = blocks(g)
    if len(runs) == 2 and runs[0][0] == "1":
        return (runs[0][1], runs[1][1])
    return None


def rule_lemma_2_1(g: str, d: int, f: str) -> Optional[Verdict]:
    """Lemma 2.1: for ``1 <= d <= |f|`` every :math:`Q_d(f)` is isometric."""
    if d <= len(g):
        return Verdict(f, d, Status.ISOMETRIC, "Lemma 2.1", g)
    return None


def rule_prop_3_1(g: str, d: int, f: str) -> Optional[Verdict]:
    """Proposition 3.1: one block, ``f = 1^s`` -> isometric for every d."""
    if set(g) == {"1"}:
        return Verdict(f, d, Status.ISOMETRIC, "Proposition 3.1", g)
    return None


def rule_thm_3_3_i(g: str, d: int, f: str) -> Optional[Verdict]:
    """Theorem 3.3(i): ``f = 1^r 0`` -> isometric for every d."""
    two = _two_block_exponents(g)
    if two is not None and two[1] == 1:
        return Verdict(f, d, Status.ISOMETRIC, "Theorem 3.3(i)", g)
    return None


def rule_thm_3_3_ii(g: str, d: int, f: str) -> Optional[Verdict]:
    """Theorem 3.3(ii): ``f = 1^2 0^s`` (s >= 2) -> iso iff ``d <= s + 4``."""
    two = _two_block_exponents(g)
    if two is not None and two[0] == 2 and two[1] >= 2:
        s = two[1]
        status = Status.ISOMETRIC if d <= s + 4 else Status.NOT_ISOMETRIC
        return Verdict(f, d, status, "Theorem 3.3(ii)", g)
    return None


def rule_thm_3_3_iii(g: str, d: int, f: str) -> Optional[Verdict]:
    """Theorem 3.3(iii): ``f = 1^r 0^s`` (r, s >= 3) -> iso iff ``d <= 2r+2s-3``."""
    two = _two_block_exponents(g)
    if two is not None and two[0] >= 3 and two[1] >= 3:
        r, s = two
        status = Status.ISOMETRIC if d <= 2 * r + 2 * s - 3 else Status.NOT_ISOMETRIC
        return Verdict(f, d, status, "Theorem 3.3(iii)", g)
    return None


def rule_prop_3_2(g: str, d: int, f: str) -> Optional[Verdict]:
    """Proposition 3.2: ``f = 1^r 0^s 1^t`` -> NOT isometric for ``d >= r+s+t+1``.

    Together with Lemma 2.1 this decides every three-block factor for
    every ``d`` (the two ranges meet at ``d = |f|``).
    """
    runs = blocks(g)
    if len(runs) == 3 and runs[0][0] == "1":
        if d >= len(g) + 1:
            return Verdict(f, d, Status.NOT_ISOMETRIC, "Proposition 3.2", g)
    return None


def rule_thm_4_3(g: str, d: int, f: str) -> Optional[Verdict]:
    """Theorem 4.3: ``f = 1^s 0 1^s 0`` (s >= 2) -> isometric for every d."""
    runs = blocks(g)
    if (
        len(runs) == 4
        and runs[0][0] == "1"
        and runs[0][1] >= 2
        and runs[1] == ("0", 1)
        and runs[2] == ("1", runs[0][1])
        and runs[3] == ("0", 1)
    ):
        return Verdict(f, d, Status.ISOMETRIC, "Theorem 4.3", g)
    return None


def rule_thm_4_4(g: str, d: int, f: str) -> Optional[Verdict]:
    """Theorem 4.4: ``f = (10)^s`` -> isometric for every d."""
    if len(g) >= 2 and len(g) % 2 == 0 and g == "10" * (len(g) // 2):
        return Verdict(f, d, Status.ISOMETRIC, "Theorem 4.4", g)
    return None


def rule_prop_4_1(g: str, d: int, f: str) -> Optional[Verdict]:
    """Proposition 4.1: ``f = (10)^s 1`` (s >= 2) -> NOT isometric for ``d >= 4s``.

    (``s = 1`` is the three-block case 101, already settled by
    Proposition 3.2, which this rule leaves alone.)
    """
    if len(g) % 2 == 1 and len(g) >= 5 and g == "10" * (len(g) // 2) + "1":
        s = len(g) // 2
        if d >= 4 * s:
            return Verdict(f, d, Status.NOT_ISOMETRIC, "Proposition 4.1", g)
    return None


def rule_prop_4_2(g: str, d: int, f: str) -> Optional[Verdict]:
    """Proposition 4.2: ``f = (10)^r 1 (10)^s`` -> NOT isometric for
    ``d >= 2r + 2s + 3``."""
    hit = _split_10r1_10s(g)
    if hit is not None:
        r, s = hit
        if d >= 2 * r + 2 * s + 3:
            return Verdict(f, d, Status.NOT_ISOMETRIC, "Proposition 4.2", g)
    return None


def rule_prop_5_1(g: str, d: int, f: str) -> Optional[Verdict]:
    """Proposition 5.1: ``f = 11010`` -> isometric for every d."""
    if g == "11010":
        return Verdict(f, d, Status.ISOMETRIC, "Proposition 5.1", g)
    return None


ALL_RULES: List[Rule] = [
    rule_lemma_2_1,
    rule_prop_3_1,
    rule_thm_3_3_i,
    rule_thm_3_3_ii,
    rule_thm_3_3_iii,
    rule_prop_3_2,
    rule_thm_4_3,
    rule_thm_4_4,
    rule_prop_4_1,
    rule_prop_4_2,
    rule_prop_5_1,
]


def applicable_rules(f: str, d: int) -> List[Verdict]:
    """All verdicts any rule produces on any orbit representative of ``f``.

    Used by the consistency tests: the paper's statements must never
    contradict each other, so all decided verdicts in this list must
    agree.
    """
    from repro.cubes.symmetries import factor_orbit

    verdicts: List[Verdict] = []
    for g in factor_orbit(f):
        for rule in ALL_RULES:
            v = rule(g, d, f)
            if v is not None:
                verdicts.append(v)
    return verdicts
