"""Table 1 of the paper: embeddability of all factors of length <= 5.

The paper's Table 1 lists, for every forbidden factor up to complement and
reversal, whether :math:`Q_d(f) \\hookrightarrow Q_d` -- either for all
``d`` or with an explicit threshold.  :func:`classification_table`
regenerates the table mechanically: the theorem engine supplies verdicts,
brute force fills the two gaps the paper itself settled by computer
(``10110`` at ``d = 6`` and ``10101`` at ``d = 6, 7``), and the result is
summarized per factor as ``always`` / ``iff d <= threshold``.

:func:`table1_expected` hardcodes the table exactly as printed, so the
test-suite can diff the regenerated table against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.classify.engine import classify, classify_with_bruteforce
from repro.classify.verdict import Status
from repro.cubes.symmetries import canonical_factor, factor_orbit
from repro.words.core import all_words

__all__ = ["Table1Row", "classification_table", "table1_expected", "orbit_representatives"]


@dataclass(frozen=True)
class Table1Row:
    """Summary of one factor's embeddability pattern.

    ``threshold is None`` means isometric for every tested ``d``
    (the paper's bold "always" rows); otherwise :math:`Q_d(f)
    \\hookrightarrow Q_d` holds exactly for ``d <= threshold`` within the
    tested range.
    ``sources`` records which statements (or brute force) decided the row.
    """

    f: str
    threshold: Optional[int]
    sources: tuple
    checked_up_to: int

    @property
    def always_isometric(self) -> bool:
        return self.threshold is None


def orbit_representatives(length: int) -> List[str]:
    """Factors of the given length up to complement + reversal.

    Representatives are chosen as in the paper: the member of each orbit
    starting with 1 and listed in the paper's own order is not enforced --
    the lexicographically largest member is used (which for lengths up to
    5 coincides with the paper's choices, e.g. ``11010`` not ``01011``).
    """
    seen: Dict[str, str] = {}
    for w in all_words(length):
        key = canonical_factor(w)
        rep = max(factor_orbit(w))
        seen[key] = rep
    return sorted(set(seen.values()))


def classification_table(
    max_length: int = 5, max_d: int = 9, use_bruteforce: bool = True
) -> List[Table1Row]:
    """Regenerate Table 1 (factors of length <= ``max_length``).

    For each orbit representative, classify :math:`Q_d(f)` for
    ``d = 1 .. max_d`` and summarize the pattern.  A factor whose pattern
    is not of the form "isometric up to a threshold, then never" raises,
    since the paper's table asserts every length-<=5 factor behaves that
    way (this is a real reproduction check, not an assumption).
    """
    rows: List[Table1Row] = []
    for length in range(1, max_length + 1):
        for rep in orbit_representatives(length):
            pattern: List[bool] = []
            sources: List[str] = []
            for d in range(1, max_d + 1):
                v = (
                    classify_with_bruteforce(rep, d)
                    if use_bruteforce
                    else classify(rep, d)
                )
                if v.status is Status.UNKNOWN:
                    raise RuntimeError(
                        f"cannot settle f={rep!r}, d={d} without brute force"
                    )
                pattern.append(v.status is Status.ISOMETRIC)
                if v.source not in sources:
                    sources.append(v.source)
            if all(pattern):
                threshold: Optional[int] = None
            else:
                first_bad = pattern.index(False) + 1  # 1-based d
                if any(pattern[first_bad - 1 :]):
                    raise RuntimeError(
                        f"non-monotone embeddability pattern for f={rep!r}: {pattern}"
                    )
                threshold = first_bad - 1
            rows.append(Table1Row(rep, threshold, tuple(sources), max_d))
    return rows


def table1_expected() -> Dict[str, Optional[int]]:
    """Table 1 exactly as printed in the paper.

    Maps each representative to ``None`` (isometric for all ``d``) or to
    the largest ``d`` for which :math:`Q_d(f) \\hookrightarrow Q_d`.

    Thresholds recorded in the paper:

    - ``101``: isometric iff ``d <= 3``  (Lemma 2.1 + Proposition 3.2)
    - ``1100``: iff ``d <= 6``  (Theorem 3.3(ii))
    - ``1101, 1001``: iff ``d <= 4``  (Proposition 3.2)
    - ``11100``: iff ``d <= 7``  (Theorem 3.3(ii) on the orbit)
    - ``11001, 11101, 11011, 10001``: iff ``d <= 5``  (Proposition 3.2)
    - ``10110``: iff ``d <= 6``  (computer check at 6, Proposition 4.2 beyond)
    - ``10101``: iff ``d <= 7``  (computer checks at 6 and 7, Proposition 4.1 beyond)
    """
    return {
        # length 1
        "1": None,
        # length 2
        "11": None,
        "10": None,
        # length 3
        "111": None,
        "110": None,
        "101": 3,
        # length 4
        "1111": None,
        "1110": None,
        "1100": 6,
        "1010": None,
        "1101": 4,
        "1001": 4,
        # length 5
        "11111": None,
        "11110": None,
        "11100": 7,
        "11001": 5,
        "11101": 5,
        "11011": 5,
        "10001": 5,
        "10110": 6,
        "10101": 7,
        "11010": None,
    }
