"""Fibonacci identities and Fibonacci-cube counting formulas.

These are the closed forms the paper leans on:

- the convolution :math:`\\sum_{i=1}^{d+1} F_i F_{d+2-i}` and its closed
  form :math:`((d+1) F_{d+2} + 2 (d+2) F_{d+1}) / 5` (used right after
  Proposition 6.2, citing [12, Corollary 4]);
- order, size and square counts of the Fibonacci cube
  :math:`\\Gamma_d = Q_d(11)`:

  .. math::
     |V(\\Gamma_d)| = F_{d+2}, \\qquad
     |E(\\Gamma_d)| = \\frac{d F_{d+1} + 2 (d+1) F_d}{5}.

  The square count matches :math:`|S(Q_{d-1}(110))|` (final remark of the
  paper), giving

  .. math::
     |S(\\Gamma_d)| = -\\frac{3d}{25} F_{d+1}
       + \\Big(\\frac{d^2}{10} + \\frac{3d}{50} - \\frac{1}{25}\\Big) F_d .

All functions compute with :class:`fractions.Fraction` internally and
assert integrality, so a convention slip fails loudly instead of rounding.
"""

from __future__ import annotations

from fractions import Fraction

from repro.combinat.sequences import fibonacci

__all__ = [
    "fibonacci_convolution",
    "fibonacci_convolution_closed",
    "gamma_vertex_count",
    "gamma_edge_count",
    "gamma_square_count",
]


def _as_int(x: Fraction, what: str) -> int:
    if x.denominator != 1:
        raise ArithmeticError(f"{what} evaluated to non-integer {x}")
    return x.numerator


def fibonacci_convolution(d: int) -> int:
    """:math:`\\sum_{i=1}^{d+1} F_i F_{d+2-i}` by direct summation."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    return sum(fibonacci(i) * fibonacci(d + 2 - i) for i in range(1, d + 2))


def fibonacci_convolution_closed(d: int) -> int:
    """Closed form :math:`((d+1) F_{d+2} + 2(d+2) F_{d+1}) / 5` of the convolution."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    value = Fraction((d + 1) * fibonacci(d + 2) + 2 * (d + 2) * fibonacci(d + 1), 5)
    return _as_int(value, "Fibonacci convolution closed form")


def gamma_vertex_count(d: int) -> int:
    """:math:`|V(\\Gamma_d)| = F_{d+2}` (order of the Fibonacci cube)."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    return fibonacci(d + 2)


def gamma_edge_count(d: int) -> int:
    """:math:`|E(\\Gamma_d)| = (d F_{d+1} + 2(d+1) F_d)/5` ([12, Corollary 4])."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    value = Fraction(d * fibonacci(d + 1) + 2 * (d + 1) * fibonacci(d), 5)
    return _as_int(value, "Fibonacci cube edge count")


def gamma_square_count(d: int) -> int:
    """Number of squares (4-cycles) of the Fibonacci cube :math:`\\Gamma_d`.

    Obtained from Proposition 6.3 through the paper's final-remark identity
    :math:`|S(\\Gamma_{d+1})| = |S(Q_d(110))|`.
    """
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    if d == 0:
        return 0
    coeff_a = Fraction(-3 * d, 25)
    coeff_b = Fraction(d * d, 10) + Fraction(3 * d, 50) - Fraction(1, 25)
    value = coeff_a * fibonacci(d + 1) + coeff_b * fibonacci(d)
    return _as_int(value, "Fibonacci cube square count")
