"""Combinatorial substrate: Fibonacci-family sequences and linear recurrences.

The enumerative results of Section 6 of the paper are phrased in terms of
Fibonacci numbers (convention :math:`F_1 = F_2 = 1`), convolutions
:math:`\\sum F_i F_{d+2-i}`, and linear recurrences with constant
coefficients (Tribonacci-type for :math:`Q_d(111)`).  This package holds
exact integer implementations of all of them.
"""

from repro.combinat.sequences import (
    fibonacci,
    fibonacci_pair,
    kbonacci,
    lucas_number,
    tribonacci,
)
from repro.combinat.recurrence import LinearRecurrence, AffineRecurrence
from repro.combinat.identities import (
    fibonacci_convolution,
    fibonacci_convolution_closed,
    gamma_edge_count,
    gamma_square_count,
    gamma_vertex_count,
)

__all__ = [
    "fibonacci",
    "fibonacci_pair",
    "kbonacci",
    "lucas_number",
    "tribonacci",
    "LinearRecurrence",
    "AffineRecurrence",
    "fibonacci_convolution",
    "fibonacci_convolution_closed",
    "gamma_edge_count",
    "gamma_square_count",
    "gamma_vertex_count",
]
