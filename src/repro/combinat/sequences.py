"""Fibonacci-family integer sequences (exact, fast-doubling based).

Conventions follow the paper: :math:`F_1 = F_2 = 1` (so :math:`F_0 = 0`).
Lucas numbers use :math:`L_0 = 2, L_1 = 1`.  The k-bonacci numbers
generalize the recurrence to order ``k``; they count binary words avoiding
the factor :math:`1^k`, i.e. the orders of the Hsu--Liu generalized
Fibonacci cubes :math:`Q_d(1^k)`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

__all__ = [
    "fibonacci",
    "fibonacci_pair",
    "lucas_number",
    "tribonacci",
    "kbonacci",
]


def fibonacci_pair(n: int) -> Tuple[int, int]:
    """Return ``(F_n, F_{n+1})`` by fast doubling; ``O(log n)`` multiplies."""
    if n < 0:
        raise ValueError(f"index must be non-negative, got {n}")
    if n == 0:
        return (0, 1)
    a, b = fibonacci_pair(n >> 1)
    c = a * (2 * b - a)          # F_{2k}
    d = a * a + b * b            # F_{2k+1}
    if n & 1:
        return (d, c + d)
    return (c, d)


def fibonacci(n: int) -> int:
    """Fibonacci number :math:`F_n` with :math:`F_0 = 0, F_1 = F_2 = 1`."""
    return fibonacci_pair(n)[0]


def lucas_number(n: int) -> int:
    """Lucas number :math:`L_n` with :math:`L_0 = 2, L_1 = 1`.

    Identity used: :math:`L_n = F_{n-1} + F_{n+1}` for :math:`n \\ge 1`.
    """
    if n < 0:
        raise ValueError(f"index must be non-negative, got {n}")
    if n == 0:
        return 2
    fn_minus, fn = fibonacci_pair(n - 1)
    fn_plus = fn + fn_minus
    return fn_minus + fn_plus


def tribonacci(n: int) -> int:
    """Tribonacci numbers ``T_0 = 0, T_1 = T_2 = 1`` (order-3 Fibonacci)."""
    return kbonacci(3, n)


@lru_cache(maxsize=None)
def _kbonacci_prefix(k: int, upto: int) -> Tuple[int, ...]:
    vals: List[int] = [0] * (k - 1) + [1]
    while len(vals) <= upto:
        vals.append(sum(vals[-k:]))
    return tuple(vals)


def kbonacci(k: int, n: int) -> int:
    """k-bonacci number with initial segment ``0, ..., 0, 1`` (k-1 zeros).

    For ``k = 2`` this is :func:`fibonacci`; for ``k = 3`` it is
    :func:`tribonacci`.  Satisfies ``a(n) = a(n-1) + ... + a(n-k)``.
    """
    if k < 2:
        raise ValueError(f"order must be at least 2, got {k}")
    if n < 0:
        raise ValueError(f"index must be non-negative, got {n}")
    return _kbonacci_prefix(k, n)[n]
