"""Linear and affine recurrences with constant coefficients.

The Section 6 recurrences of the paper are affine: e.g. eq. (4) is
``|V(H_d)| = |V(H_{d-1})| + |V(H_{d-2})| + 1``.  :class:`AffineRecurrence`
evaluates such sequences exactly with memoization;
:class:`LinearRecurrence` is the homogeneous special case and additionally
offers :math:`O(\\log n)` evaluation via companion-matrix powers for
large-index queries (used to validate closed forms at huge ``d``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.words.automaton import matrix_mult, matrix_power

__all__ = ["LinearRecurrence", "AffineRecurrence"]


class AffineRecurrence:
    """Sequence ``a(n) = sum(coeffs[i] * a(n - 1 - i)) + constant``.

    Parameters
    ----------
    coeffs:
        ``coeffs[0]`` multiplies ``a(n-1)``, ``coeffs[1]`` multiplies
        ``a(n-2)``, and so on.
    initial:
        Values ``a(0), ..., a(k-1)`` where ``k = len(coeffs)``.
    constant:
        The inhomogeneous term (0 gives a plain linear recurrence).
    """

    def __init__(self, coeffs: Sequence[int], initial: Sequence[int], constant: int = 0):
        if len(initial) != len(coeffs):
            raise ValueError(
                f"need exactly {len(coeffs)} initial values, got {len(initial)}"
            )
        if not coeffs:
            raise ValueError("recurrence order must be at least 1")
        self.coeffs = [int(c) for c in coeffs]
        self.constant = int(constant)
        self._values: List[int] = [int(v) for v in initial]

    @property
    def order(self) -> int:
        return len(self.coeffs)

    def __call__(self, n: int) -> int:
        if n < 0:
            raise ValueError(f"index must be non-negative, got {n}")
        vals = self._values
        k = self.order
        while len(vals) <= n:
            nxt = self.constant
            for i, c in enumerate(self.coeffs):
                nxt += c * vals[len(vals) - 1 - i]
            vals.append(nxt)
        return vals[n]

    def prefix(self, upto: int) -> List[int]:
        """Values ``a(0), ..., a(upto)`` as a list."""
        self(upto)
        return self._values[: upto + 1]


class LinearRecurrence(AffineRecurrence):
    """Homogeneous linear recurrence with fast big-index evaluation."""

    def __init__(self, coeffs: Sequence[int], initial: Sequence[int]):
        super().__init__(coeffs, initial, constant=0)

    def companion_matrix(self) -> List[List[int]]:
        """Companion matrix ``C`` with ``(a(n+k-1..n)) = C^n (a(k-1..0))``."""
        k = self.order
        mat = [[0] * k for _ in range(k)]
        mat[0] = list(self.coeffs)
        for i in range(1, k):
            mat[i][i - 1] = 1
        return mat

    def at(self, n: int) -> int:
        """Evaluate ``a(n)`` in ``O(k^3 log n)`` without filling the prefix."""
        if n < 0:
            raise ValueError(f"index must be non-negative, got {n}")
        k = self.order
        if n < k:
            return self._values[n]
        power = matrix_power(self.companion_matrix(), n - k + 1)
        col = [[self._values[k - 1 - i]] for i in range(k)]
        top = matrix_mult(power, col)[0][0]
        return top
