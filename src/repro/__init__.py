"""repro: a full reproduction of "Generalized Fibonacci cubes".

The generalized Fibonacci cube :math:`Q_d(f)` is the subgraph of the
hypercube :math:`Q_d` induced by the binary words of length ``d`` avoiding
the factor ``f``; :math:`Q_d(11)` is the Fibonacci cube.  This package
reproduces the paper by Ilic, Klavzar and Rho (Discrete Mathematics 312
(2012) 2-11; the family name goes back to the ICPP'93 line of Hsu and
Liu): the embeddability theory :math:`Q_d(f) \\hookrightarrow Q_d`, the
complete classification for ``|f| <= 5`` (Table 1), the enumerative
invariants of Section 6, the ``f``-dimension of Section 7, the Section 8
conjecture lab, and the interconnection-network experiments of the 1993
lineage.

Quickstart
----------
>>> from repro import generalized_fibonacci_cube, classify, is_isometric_dp
>>> cube = generalized_fibonacci_cube("101", 4)   # Fig. 1 of the paper
>>> cube.num_vertices
12
>>> str(classify("1100", 7))
'f=1100 d=7: Q_d(f) NOT iso in Q_d [Theorem 3.3(ii) via 1100]'
>>> is_isometric_dp(("1100", 6))
True

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.classify import (
    Status,
    Verdict,
    classification_table,
    classify,
    classify_with_bruteforce,
    table1_expected,
)
from repro.combinat import fibonacci, gamma_edge_count, gamma_vertex_count
from repro.cubes import (
    GeneralizedFibonacciCube,
    canonical_factor,
    factor_orbit,
    fibonacci_cube,
    generalized_fibonacci_cube,
    hypercube,
    lucas_cube,
)
from repro.dimension import f_dimension, isometric_dimension
from repro.graphs import Graph
from repro.invariants import brute_counts, recurrences_110, recurrences_111
from repro.isometry import (
    find_critical_pair,
    idim,
    is_isometric_bfs,
    is_isometric_dp,
    is_partial_cube,
    isometry_report,
    paper_critical_pair,
)
from repro.words import (
    FactorAutomaton,
    count_edges_automaton,
    count_squares_automaton,
    count_vertices_automaton,
    list_avoiding,
)

__version__ = "1.0.0"

__all__ = [
    "Status",
    "Verdict",
    "classification_table",
    "classify",
    "classify_with_bruteforce",
    "table1_expected",
    "fibonacci",
    "gamma_edge_count",
    "gamma_vertex_count",
    "GeneralizedFibonacciCube",
    "canonical_factor",
    "factor_orbit",
    "fibonacci_cube",
    "generalized_fibonacci_cube",
    "hypercube",
    "lucas_cube",
    "f_dimension",
    "isometric_dimension",
    "Graph",
    "brute_counts",
    "recurrences_110",
    "recurrences_111",
    "find_critical_pair",
    "idim",
    "is_isometric_bfs",
    "is_isometric_dp",
    "is_partial_cube",
    "isometry_report",
    "paper_critical_pair",
    "FactorAutomaton",
    "count_edges_automaton",
    "count_squares_automaton",
    "count_vertices_automaton",
    "list_avoiding",
    "__version__",
]
