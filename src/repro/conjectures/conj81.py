"""Conjecture 8.1: if :math:`Q_d(f) \\hookrightarrow Q_d` then
:math:`Q_d(ff) \\hookrightarrow Q_d`.

The conjecture would wholesale enlarge the embeddable families (e.g. from
Theorem 4.4's :math:`(10)^s` one would get :math:`(10)^{2s}`, already
known, but also e.g. ``11011011`` from ``1101``... careful: the premise
is *per-d*).  We read it as the paper states it -- for each ``d``
separately -- and sweep all factors up to a given length, recording
support or counterexamples.  This is experimental evidence only: a clean
sweep proves nothing, a single violation would refute the conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.classify.engine import classify_with_bruteforce
from repro.classify.verdict import Status
from repro.words.core import all_words

__all__ = ["Conjecture81Case", "sweep_conjecture_81"]


@dataclass(frozen=True)
class Conjecture81Case:
    """One data point of the sweep.

    ``premise``/``conclusion`` are the embeddability of :math:`Q_d(f)`
    and :math:`Q_d(ff)`; the conjecture is violated exactly when
    ``premise`` holds and ``conclusion`` fails.
    """

    f: str
    d: int
    premise: bool
    conclusion: bool

    @property
    def violates(self) -> bool:
        return self.premise and not self.conclusion

    @property
    def supports(self) -> bool:
        """Non-vacuous support: premise and conclusion both hold."""
        return self.premise and self.conclusion


def sweep_conjecture_81(
    max_factor_length: int = 4, max_d: int = 9
) -> List[Conjecture81Case]:
    """Test Conjecture 8.1 for every ``f`` up to the given length and every
    ``d`` up to ``max_d`` (embeddability settled by theorems + brute force).

    Returns every non-vacuous case (premise true).  The E12 benchmark
    prints the tally; the test-suite asserts no violation in range.
    """
    cases: List[Conjecture81Case] = []
    for f in _factors(max_factor_length):
        for d in range(1, max_d + 1):
            v1 = classify_with_bruteforce(f, d)
            if v1.status is Status.UNKNOWN:
                continue
            premise = v1.status is Status.ISOMETRIC
            if not premise:
                continue
            v2 = classify_with_bruteforce(f + f, d)
            if v2.status is Status.UNKNOWN:
                continue
            cases.append(
                Conjecture81Case(f, d, premise, v2.status is Status.ISOMETRIC)
            )
    return cases


def _factors(max_len: int) -> Iterator[str]:
    for length in range(1, max_len + 1):
        yield from all_words(length)
