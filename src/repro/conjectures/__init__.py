"""Section 8: conjectures, problems, and the worked :math:`Q_d(101)` example.

- :mod:`repro.conjectures.conj81` -- experimental harness for
  Conjecture 8.1 (``Q_d(f)`` isometric implies ``Q_d(ff)`` isometric);
- :mod:`repro.conjectures.q101` -- the paper's :math:`\\Theta^*`-ladder
  argument that :math:`Q_d(101)` (``d >= 4``) is an isometric subgraph of
  **no** hypercube (Problem 8.3 evidence), machine-checked.
"""

from repro.conjectures.conj81 import Conjecture81Case, sweep_conjecture_81
from repro.conjectures.q101 import q101_ladder_certificate, q101_not_partial_cube

__all__ = [
    "Conjecture81Case",
    "sweep_conjecture_81",
    "q101_ladder_certificate",
    "q101_not_partial_cube",
]
