"""The Section 8 worked example: :math:`Q_d(101)` lies in **no** hypercube.

For ``d >= 4`` the paper exhibits edges ``e = uv`` and ``g = xy`` of
:math:`Q_d(101)` with

- ``u = 1^{d-3}000``, ``v = 1^{d-3}001``, ``x = 1^{d-3}110``,
  ``y = 1^{d-3}111``;
- ``e`` **not** in relation :math:`\\Theta` with ``g`` (the shortest
  ``v,y``-path has length 4, through ``u`` and ``x``);
- yet ``e`` :math:`\\Theta^*` ``g`` via an explicit ladder of length
  ``2d - 2`` running down the left side of the cube.

Since :math:`\\Theta \\ne \\Theta^*`, Winkler's theorem says
:math:`Q_d(101)` is not a partial cube, i.e. isometric in no :math:`Q_{d'}`
-- negative evidence for Problem 8.3.  This module rebuilds the ladder
explicitly and machine-checks every rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.traversal import all_pairs_distances
from repro.isometry.theta import is_partial_cube

__all__ = ["q101_ladder_certificate", "q101_not_partial_cube", "Q101Ladder"]


@dataclass(frozen=True)
class Q101Ladder:
    """Verified certificate that :math:`\\Theta \\ne \\Theta^*` on
    :math:`Q_d(101)`.

    ``rungs`` lists the ladder edges (as word pairs) from ``e`` to ``g``;
    consecutive rungs are opposite edges of a square, hence
    :math:`\\Theta`-related, so the chain proves
    ``e`` :math:`\\Theta^*` ``g``; ``theta_direct`` records that ``e`` and
    ``g`` themselves are *not* :math:`\\Theta`-related.
    """

    d: int
    rungs: Tuple[Tuple[str, str], ...]
    theta_direct: bool


def _ladder_words(d: int) -> List[Tuple[str, str]]:
    """The paper's ladder: top row from ``1^d`` to ``1^{d-3}001``, bottom
    row from ``1^{d-1}0`` to ``1^{d-3}000``.

    Top row:    1^d -> 01^{d-1} -> 001^{d-2} -> ... -> 0^{d-1}1
                -> 10^{d-2}1 -> 110^{d-3}1 -> ... -> 1^{d-3}001
    Bottom row: same with the final 1 replaced by 0.
    Each vertical pair (top[i], bottom[i]) is an edge of Q_d(101) (they
    differ exactly in the last bit); consecutive vertical edges span a
    square.  The first rung is ``g``'s mate... the chain starts at the
    edge (1^d, 1^{d-1}0) which is Theta-related to g = (x, y) directly,
    and ends at e = (u, v).
    """
    tops: List[str] = []
    # phase 1: slide a block of 0s in from the left: 0^k 1^{d-k}, k = 0..d-1
    for k in range(d):
        tops.append("0" * k + "1" * (d - k))
    # phase 2: grow 1s back from the left against a middle 0-block:
    # 1^j 0^{d-1-j} 1, j = 1..d-3
    for j in range(1, d - 2):
        tops.append("1" * j + "0" * (d - 1 - j) + "1")
    bottoms = [w[:-1] + "0" for w in tops]
    return list(zip(tops, bottoms))


def q101_ladder_certificate(d: int) -> Q101Ladder:
    """Build and verify the Section 8 ladder for :math:`Q_d(101)`, d >= 4.

    Checks performed:

    1. every ladder word is a vertex (avoids 101);
    2. every rung is an edge (vertical Hamming distance 1);
    3. consecutive rungs bound a square (hence are Theta-related);
    4. the last rung is ``e = (1^{d-3}000, 1^{d-3}001)``, and the edge
       ``g = (1^{d-3}110, 1^{d-3}111)`` is Theta-related to the *first*
       rung (the edge at ``1^d``);
    5. ``e`` and ``g`` are NOT directly Theta-related (distance check
       through the actual graph).
    """
    if d < 4:
        raise ValueError(f"the certificate needs d >= 4, got {d}")
    cube = generalized_fibonacci_cube("101", d)
    g_graph = cube.graph()
    dist = all_pairs_distances(g_graph)

    rungs = _ladder_words(d)
    for top, bottom in rungs:
        if top not in cube or bottom not in cube:
            raise AssertionError(f"ladder word missing from Q_{d}(101): {top}/{bottom}")
        it, ib = cube.index_of_word(top), cube.index_of_word(bottom)
        if not g_graph.has_edge(it, ib):
            raise AssertionError(f"ladder rung not an edge: {top} - {bottom}")
    for (t1, b1), (t2, b2) in zip(rungs, rungs[1:]):
        i1, j1 = cube.index_of_word(t1), cube.index_of_word(b1)
        i2, j2 = cube.index_of_word(t2), cube.index_of_word(b2)
        if not (g_graph.has_edge(i1, i2) and g_graph.has_edge(j1, j2)):
            raise AssertionError(
                f"consecutive rungs do not bound a square: {t1}-{t2} / {b1}-{b2}"
            )

    head = "1" * (d - 3)
    u, v = head + "000", head + "001"
    x, y = head + "110", head + "111"
    e = (cube.index_of_word(u), cube.index_of_word(v))
    gg = (cube.index_of_word(x), cube.index_of_word(y))

    # last rung must be e (top = ...001, bottom = ...000)
    last_top, last_bottom = rungs[-1]
    if {last_top, last_bottom} != {u, v}:
        raise AssertionError(f"ladder does not end at e: {rungs[-1]}")

    # first rung (1^d, 1^{d-1}0) is Theta-related to g: they are opposite
    # edges of the square {1^d, 1^{d-1}0, 1^{d-3}111, 1^{d-3}110}? They are
    # not a square for d > 4 -- instead check Theta directly from distances.
    def theta_related(edge_a, edge_b) -> bool:
        (a1, a2), (b1, b2) = edge_a, edge_b
        return (
            dist[a1, b1] + dist[a2, b2] != dist[a1, b2] + dist[a2, b1]
        )

    first = (cube.index_of_word(rungs[0][0]), cube.index_of_word(rungs[0][1]))
    if not theta_related(first, gg):
        raise AssertionError("first ladder rung is not Theta-related to g")
    for (t1, b1), (t2, b2) in zip(rungs, rungs[1:]):
        ra = (cube.index_of_word(t1), cube.index_of_word(b1))
        rb = (cube.index_of_word(t2), cube.index_of_word(b2))
        if not theta_related(ra, rb):
            raise AssertionError("consecutive rungs not Theta-related")

    direct = theta_related(e, gg)
    if direct:
        raise AssertionError(
            "e and g are Theta-related directly; the certificate is vacuous"
        )
    # the v,y shortest path stated in the paper has length 4:
    if int(dist[cube.index_of_word(v), cube.index_of_word(y)]) != 4:
        raise AssertionError("d(v, y) != 4 in Q_d(101); paper's path claim fails")
    return Q101Ladder(d=d, rungs=tuple(rungs), theta_direct=False)


def q101_not_partial_cube(d: int) -> bool:
    """Full Winkler check: ``True`` when :math:`Q_d(101)` is NOT a partial
    cube (expected for every ``d >= 4``)."""
    graph = generalized_fibonacci_cube("101", d).graph()
    return not is_partial_cube(graph)
