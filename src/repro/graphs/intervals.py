"""Distance intervals :math:`I_G(u, v)` (Section 2 of the paper).

The interval between ``u`` and ``v`` is the set of vertices lying on
shortest ``u,v``-paths: ``w in I(u, v)`` iff
``d(u, w) + d(w, v) == d(u, v)``.  Intervals are the basic object of the
p-critical-word machinery (Lemma 2.4) and of median computations.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.traversal import bfs_distances

__all__ = ["distance_interval", "is_on_shortest_path", "interval_from_distances"]


def interval_from_distances(
    dist_u: np.ndarray, dist_v: np.ndarray, d_uv: Optional[int] = None
) -> List[int]:
    """Interval computed from two precomputed distance vectors."""
    if d_uv is None:
        # distance between u and v equals dist_u at v; the caller passes
        # vectors indexed the same way, so infer it from the arg minimum
        # of the sum (any vertex on a shortest path attains it).
        d_uv = int((dist_u + dist_v).min())
    mask = (dist_u >= 0) & (dist_v >= 0) & (dist_u + dist_v == d_uv)
    return np.flatnonzero(mask).tolist()


def distance_interval(graph: Graph, u: int, v: int) -> List[int]:
    """The interval :math:`I_G(u, v)` as a sorted vertex list.

    Raises :class:`ValueError` when ``v`` is unreachable from ``u``.
    """
    dist_u = bfs_distances(graph, u)
    if dist_u[v] < 0:
        raise ValueError(f"vertices {u} and {v} lie in different components")
    dist_v = bfs_distances(graph, v)
    return interval_from_distances(dist_u, dist_v, int(dist_u[v]))


def is_on_shortest_path(graph: Graph, u: int, w: int, v: int) -> bool:
    """``True`` iff ``w`` lies on some shortest ``u,v``-path."""
    dist_u = bfs_distances(graph, u)
    if dist_u[v] < 0:
        raise ValueError(f"vertices {u} and {v} lie in different components")
    dist_w = bfs_distances(graph, w)
    return int(dist_u[w] + dist_w[v]) == int(dist_u[v])
