"""Medians and median graphs (Section 6, Proposition 6.4).

A connected graph ``G`` is a *median graph* when every vertex triple
``u, v, w`` has a unique vertex in
:math:`I(u,v) \\cap I(u,w) \\cap I(v,w)` -- the *median* of the triple.
Mulder's theorem (cited as [16]): a connected graph is a median graph iff
it is a median closed induced subgraph of a hypercube; inside a hypercube
the median of three words is their bitwise majority.  Both views are
implemented: the generic interval-intersection test on :class:`Graph`, and
the fast bitwise-majority closure test used for subgraphs of ``Q_d``
(:func:`repro.cubes.generalized` wires it up).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances

__all__ = [
    "triple_intervals_intersection",
    "median_of_triple",
    "is_median_graph",
    "majority_word",
]


def triple_intervals_intersection(
    graph: Graph, u: int, v: int, w: int, dist: Optional[np.ndarray] = None
) -> List[int]:
    """Vertices in :math:`I(u,v) \\cap I(u,w) \\cap I(v,w)`.

    ``dist`` may carry a precomputed all-pairs matrix to amortize the BFS
    cost over many triples.
    """
    if dist is None:
        dist = all_pairs_distances(graph)
    du, dv, dw = dist[u], dist[v], dist[w]
    in_uv = du + dv == dist[u][v]
    in_uw = du + dw == dist[u][w]
    in_vw = dv + dw == dist[v][w]
    return np.flatnonzero(in_uv & in_uw & in_vw).tolist()


def median_of_triple(
    graph: Graph, u: int, v: int, w: int, dist: Optional[np.ndarray] = None
) -> Optional[int]:
    """The median vertex of the triple, or ``None`` when not unique/absent."""
    hits = triple_intervals_intersection(graph, u, v, w, dist)
    return hits[0] if len(hits) == 1 else None


def is_median_graph(graph: Graph) -> bool:
    """Exact (cubic-time) median-graph test by checking every triple.

    Intended for the small certificates in tests; the paper-scale checks
    on cube subgraphs go through :func:`majority_word` closure instead.
    """
    n = graph.num_vertices
    if n == 0:
        return False
    dist = all_pairs_distances(graph)
    if (dist < 0).any():
        return False  # median graphs are connected
    for u in range(n):
        for v in range(u, n):
            duv = dist[u] + dist[v] == dist[u][v]
            for w in range(v, n):
                count = int(
                    (
                        duv
                        & (dist[u] + dist[w] == dist[u][w])
                        & (dist[v] + dist[w] == dist[v][w])
                    ).sum()
                )
                if count != 1:
                    return False
    return True


def majority_word(a: int, b: int, c: int) -> int:
    """Bitwise majority of three words given as integer codes.

    Inside the hypercube the majority word is the unique candidate median
    of the triple; a subgraph of :math:`Q_d` is median closed iff it is
    closed under this operation (used by Proposition 6.4's test).
    """
    return (a & b) | (a & c) | (b & c)
