"""Breadth-first traversal kernels and distance-derived graph parameters.

Two BFS engines:

- :func:`bfs_distances` -- classic deque BFS on the adjacency list;
  readable reference implementation.
- :func:`bfs_distances_csr` -- frontier-sweep BFS on the CSR arrays using
  NumPy gathers; the whole frontier expansion is a couple of vectorised
  operations per level, which is markedly faster for the dense levels of
  hypercube-like graphs (this is the "vectorise the inner loop" guidance
  of the HPC notes applied to BFS).

Both return ``-1`` for unreachable vertices and are cross-validated by the
test-suite.  All-pairs helpers and eccentricity/diameter/radius sit on
top.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graphs.core import Graph

__all__ = [
    "bfs_distances",
    "bfs_distances_csr",
    "all_pairs_distances",
    "eccentricities",
    "diameter",
    "radius",
    "is_connected",
    "connected_components",
]

UNREACHABLE = -1


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Distances from ``source`` to every vertex (``-1`` if unreachable)."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range for {n} vertices")
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    queue = deque([source])
    adj = [graph.neighbors(u) for u in range(n)]
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in adj[u]:
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_distances_csr(graph: Graph, source: int) -> np.ndarray:
    """Vectorised frontier BFS over the CSR representation."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range for {n} vertices")
    indptr, indices = graph.csr()
    dist = np.full(n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        # gather all neighbours of the frontier in one shot
        starts = indptr[frontier]
        ends = indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # build the gather index without a Python loop:
        # offsets into `indices` = start_i + (0 .. count_i-1), concatenated
        rep_starts = np.repeat(starts, counts)
        within = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        nbrs = indices[rep_starts + within]
        fresh = nbrs[dist[nbrs] == UNREACHABLE]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def all_pairs_distances(graph: Graph, engine: str = "auto") -> np.ndarray:
    """``n x n`` distance matrix by repeated BFS.

    ``engine`` is ``"deque"``, ``"csr"`` or ``"auto"`` (CSR for graphs
    with at least a few hundred vertices, where the vectorised sweep
    wins).
    """
    n = graph.num_vertices
    if engine not in ("deque", "csr", "auto"):
        raise ValueError(f"unknown engine {engine!r}")
    use_csr = engine == "csr" or (engine == "auto" and n >= 256)
    out = np.empty((n, n), dtype=np.int64)
    run = bfs_distances_csr if use_csr else bfs_distances
    for s in range(n):
        out[s] = run(graph, s)
    return out


def eccentricities(graph: Graph) -> np.ndarray:
    """Eccentricity of every vertex; raises on disconnected graphs."""
    n = graph.num_vertices
    ecc = np.empty(n, dtype=np.int64)
    for s in range(n):
        dist = bfs_distances_csr(graph, s) if n >= 256 else bfs_distances(graph, s)
        if (dist == UNREACHABLE).any():
            raise ValueError("eccentricities are undefined on a disconnected graph")
        ecc[s] = dist.max()
    return ecc


def diameter(graph: Graph) -> int:
    """Greatest distance between any two vertices (graph must be connected)."""
    if graph.num_vertices == 0:
        raise ValueError("diameter of the empty graph is undefined")
    return int(eccentricities(graph).max())


def radius(graph: Graph) -> int:
    """Least eccentricity (graph must be connected)."""
    if graph.num_vertices == 0:
        raise ValueError("radius of the empty graph is undefined")
    return int(eccentricities(graph).min())


def is_connected(graph: Graph) -> bool:
    """``True`` when the graph has at most one connected component."""
    n = graph.num_vertices
    if n <= 1:
        return True
    dist = bfs_distances(graph, 0)
    return not (dist == UNREACHABLE).any()


def connected_components(graph: Graph) -> List[List[int]]:
    """Vertex sets of the connected components, each sorted, in discovery order."""
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        dist = bfs_distances(graph, start)
        members = np.flatnonzero(dist != UNREACHABLE)
        seen[members] = True
        components.append(members.tolist())
    return components
