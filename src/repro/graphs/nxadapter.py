"""networkx interoperability.

Only the adapters live here; no algorithm in the reproduction depends on
networkx.  Tests use the adapters to cross-validate our BFS/diameter/
median machinery against networkx, and the examples use them for drawing.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

import networkx as nx

from repro.graphs.core import Graph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: Graph, use_labels: bool = True) -> "nx.Graph":
    """Convert to ``networkx.Graph``.

    When the graph carries labels and ``use_labels`` is true, the networkx
    nodes are the labels; otherwise they are the integer indices.
    """
    out = nx.Graph()
    if use_labels and graph.labels is not None:
        labels = graph.labels
        out.add_nodes_from(labels)
        out.add_edges_from((labels[u], labels[v]) for u, v in graph.edges())
    else:
        out.add_nodes_from(range(graph.num_vertices))
        out.add_edges_from(graph.edges())
    return out


def from_networkx(nxg: "nx.Graph", node_order: Optional[Sequence[Hashable]] = None) -> Graph:
    """Convert from ``networkx.Graph``; nodes become labels.

    ``node_order`` fixes the vertex numbering (defaults to sorted nodes
    when sortable, insertion order otherwise).
    """
    if node_order is None:
        nodes = list(nxg.nodes())
        try:
            nodes = sorted(nodes)
        except TypeError:
            pass
    else:
        nodes = list(node_order)
        if set(nodes) != set(nxg.nodes()):
            raise ValueError("node_order must be a permutation of the nodes")
    index = {node: i for i, node in enumerate(nodes)}
    g = Graph(len(nodes))
    for u, v in nxg.edges():
        if u == v:
            continue
        g.add_edge(index[u], index[v])
    g.set_labels(nodes)
    return g
