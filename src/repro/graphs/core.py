"""Core graph type.

:class:`Graph` is a simple undirected graph on vertices ``0 .. n-1`` with
optional opaque labels.  Internally it keeps both an adjacency list (for
incremental construction and readable algorithms) and a lazily built CSR
(compressed sparse row) representation as two NumPy arrays, which is what
the vectorised BFS kernels in :mod:`repro.graphs.traversal` consume --
contiguity matters, per the cache-effects guidance of the HPC notes.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph"]


class Graph:
    """Simple undirected graph on ``0 .. n-1`` with optional vertex labels.

    Self-loops and parallel edges are rejected.  Instances are mutable
    while being built (``add_edge``); any structural mutation invalidates
    the cached CSR arrays, which are rebuilt on demand.
    """

    __slots__ = ("_adj", "_labels", "_label_index", "_csr", "_num_edges")

    def __init__(self, num_vertices: int = 0, labels: Optional[Sequence[Hashable]] = None):
        if num_vertices < 0:
            raise ValueError(f"number of vertices must be non-negative, got {num_vertices}")
        self._adj: List[List[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._labels: Optional[List[Hashable]] = None
        self._label_index: Optional[Dict[Hashable, int]] = None
        if labels is not None:
            self.set_labels(labels)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        labels: Optional[Sequence[Hashable]] = None,
    ) -> "Graph":
        """Build a graph from an edge iterable."""
        g = cls(num_vertices, labels=labels)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def add_vertex(self) -> int:
        """Append an isolated vertex; return its index."""
        self._adj.append([])
        self._csr = None
        if self._labels is not None:
            raise RuntimeError("cannot add vertices after labels were assigned")
        return len(self._adj) - 1

    def add_edge(self, u: int, v: int) -> None:
        """Insert undirected edge ``{u, v}``; rejects loops and duplicates."""
        n = len(self._adj)
        if not (0 <= u < n and 0 <= v < n):
            raise IndexError(f"edge ({u}, {v}) out of range for {n} vertices")
        if u == v:
            raise ValueError(f"self-loop at vertex {u} not allowed")
        if v in self._adj[u]:
            raise ValueError(f"duplicate edge ({u}, {v})")
        self._adj[u].append(v)
        self._adj[v].append(u)
        self._num_edges += 1
        self._csr = None

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test for edge ``{u, v}``."""
        adj_u = self._adj[u]
        adj_v = self._adj[v]
        return v in adj_u if len(adj_u) <= len(adj_v) else u in adj_v

    def set_labels(self, labels: Sequence[Hashable]) -> None:
        """Attach one opaque label per vertex (e.g. the binary word)."""
        if len(labels) != len(self._adj):
            raise ValueError(
                f"need {len(self._adj)} labels, got {len(labels)}"
            )
        self._labels = list(labels)
        self._label_index = {lab: i for i, lab in enumerate(self._labels)}
        if len(self._label_index) != len(self._labels):
            raise ValueError("labels must be distinct")

    # -- basic queries -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def degree(self, u: int) -> int:
        return len(self._adj[u])

    def degrees(self) -> List[int]:
        return [len(nbrs) for nbrs in self._adj]

    def max_degree(self) -> int:
        return max((len(nbrs) for nbrs in self._adj), default=0)

    def neighbors(self, u: int) -> List[int]:
        """Neighbour list of ``u`` (do not mutate)."""
        return self._adj[u]

    def vertices(self) -> range:
        return range(len(self._adj))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each edge once as ``(u, v)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    # -- labels ------------------------------------------------------------

    @property
    def labels(self) -> Optional[List[Hashable]]:
        return self._labels

    def label_of(self, u: int) -> Hashable:
        if self._labels is None:
            raise KeyError("graph has no labels")
        return self._labels[u]

    def index_of(self, label: Hashable) -> int:
        if self._label_index is None:
            raise KeyError("graph has no labels")
        return self._label_index[label]

    def has_label(self, label: Hashable) -> bool:
        return self._label_index is not None and label in self._label_index

    # -- CSR ----------------------------------------------------------------

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(indptr, indices)`` CSR arrays (cached until mutation)."""
        if self._csr is None:
            n = len(self._adj)
            indptr = np.zeros(n + 1, dtype=np.int64)
            for u, nbrs in enumerate(self._adj):
                indptr[u + 1] = indptr[u] + len(nbrs)
            indices = np.empty(indptr[-1], dtype=np.int64)
            for u, nbrs in enumerate(self._adj):
                indices[indptr[u] : indptr[u + 1]] = nbrs
            self._csr = (indptr, indices)
        return self._csr

    # -- derived graphs ------------------------------------------------------

    def induced_subgraph(self, keep: Sequence[int]) -> Tuple["Graph", List[int]]:
        """Induced subgraph on ``keep``.

        Returns ``(subgraph, old_of_new)`` where ``old_of_new[i]`` is the
        original index of the subgraph's vertex ``i``.  Labels carry over
        when present.
        """
        keep = list(dict.fromkeys(keep))  # dedupe, preserve order
        new_of_old = {old: new for new, old in enumerate(keep)}
        sub = Graph(len(keep))
        for new, old in enumerate(keep):
            for nbr in self._adj[old]:
                other = new_of_old.get(nbr)
                if other is not None and new < other:
                    sub.add_edge(new, other)
        if self._labels is not None:
            sub.set_labels([self._labels[old] for old in keep])
        return sub, keep

    def copy(self) -> "Graph":
        g = Graph(self.num_vertices)
        for u, v in self.edges():
            g.add_edge(u, v)
        if self._labels is not None:
            g.set_labels(list(self._labels))
        return g

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"
