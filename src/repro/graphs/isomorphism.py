"""Isomorphism testing for small graphs.

Used by the tests of Lemmas 2.2 and 2.3 (``Q_d(f) ≅ Q_d(f̄) ≅ Q_d(f^R)``)
and a few sanity checks.  The algorithm is standard: iterated degree
refinement (1-dimensional Weisfeiler--Leman) to produce a colouring, then
backtracking search restricted to colour classes.  It is exact -- the
refinement only prunes -- and perfectly adequate for the graph sizes the
tests use (hundreds of vertices).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.core import Graph

__all__ = ["are_isomorphic", "find_isomorphism", "refine_colors"]


def refine_colors(graph: Graph, max_rounds: int = 64) -> Tuple[int, ...]:
    """Stable colouring by iterated neighbour-multiset refinement (1-WL).

    Palette IDs are assigned by *sorted* signature, so they are canonical:
    two different graphs produce comparable colour values, which the
    isomorphism search relies on to match colour classes across graphs.
    """
    n = graph.num_vertices
    colors: List[int] = [graph.degree(u) for u in range(n)]
    for _ in range(max_rounds):
        signatures = [
            (colors[u], tuple(sorted(colors[v] for v in graph.neighbors(u))))
            for u in range(n)
        ]
        palette: Dict[Tuple, int] = {
            sig: i for i, sig in enumerate(sorted(set(signatures)))
        }
        new_colors = [palette[sig] for sig in signatures]
        if new_colors == colors:
            break
        colors = new_colors
    return tuple(colors)


def _color_histogram(colors: Tuple[int, ...]) -> Dict[int, int]:
    hist: Dict[int, int] = {}
    for c in colors:
        hist[c] = hist.get(c, 0) + 1
    return hist


def find_isomorphism(g: Graph, h: Graph) -> Optional[List[int]]:
    """A vertex bijection ``phi`` with ``phi: V(g) -> V(h)`` preserving edges,
    or ``None`` when the graphs are not isomorphic.

    Exponential worst case, fine for the small certified graphs in the
    test-suite.  The returned list satisfies
    ``h.has_edge(phi[u], phi[v]) == g.has_edge(u, v)`` for all pairs.
    """
    n = g.num_vertices
    if n != h.num_vertices or g.num_edges != h.num_edges:
        return None
    cg = refine_colors(g)
    ch = refine_colors(h)
    if _color_histogram(cg) != _color_histogram(ch):
        return None
    # order g's vertices: most-constrained (rarest colour, highest degree) first
    hist = _color_histogram(cg)
    order = sorted(range(n), key=lambda u: (hist[cg[u]], -g.degree(u)))
    candidates: List[List[int]] = [
        [v for v in range(n) if ch[v] == cg[u]] for u in order
    ]
    phi: List[int] = [-1] * n
    used = [False] * n

    def backtrack(k: int) -> bool:
        if k == n:
            return True
        u = order[k]
        for v in candidates[k]:
            if used[v]:
                continue
            ok = True
            for w in g.neighbors(u):
                pw = phi[w]
                if pw != -1 and not h.has_edge(v, pw):
                    ok = False
                    break
            if ok:
                # also ensure no extra edges appear: every mapped neighbour of
                # v must be the image of a neighbour of u
                mapped_nbrs = sum(1 for x in h.neighbors(v) if x in _mapped)
                mapped_g_nbrs = sum(1 for w in g.neighbors(u) if phi[w] != -1)
                if mapped_nbrs != mapped_g_nbrs:
                    continue
                phi[u] = v
                used[v] = True
                _mapped.add(v)
                if backtrack(k + 1):
                    return True
                phi[u] = -1
                used[v] = False
                _mapped.discard(v)
        return False

    _mapped: set = set()
    if backtrack(0):
        return phi
    return None


def are_isomorphic(g: Graph, h: Graph) -> bool:
    """Boolean isomorphism test (see :func:`find_isomorphism`)."""
    return find_isomorphism(g, h) is not None
