"""Graph substrate: a small, self-contained graph library.

The reproduction does not lean on networkx for any load-bearing algorithm;
everything needed by the paper (BFS distances, intervals, medians,
partial-cube machinery, isomorphism on small graphs) is implemented here
on a compact adjacency-list/CSR graph type.  networkx interop lives in
:mod:`repro.graphs.nxadapter` and is used only for cross-validation and
drawing in the examples.
"""

from repro.graphs.core import Graph
from repro.graphs.traversal import (
    all_pairs_distances,
    bfs_distances,
    connected_components,
    diameter,
    eccentricities,
    is_connected,
    radius,
)
from repro.graphs.intervals import distance_interval, is_on_shortest_path
from repro.graphs.median import (
    is_median_graph,
    median_of_triple,
    triple_intervals_intersection,
)
from repro.graphs.isomorphism import are_isomorphic
from repro.graphs.nxadapter import from_networkx, to_networkx

__all__ = [
    "Graph",
    "all_pairs_distances",
    "bfs_distances",
    "connected_components",
    "diameter",
    "eccentricities",
    "is_connected",
    "radius",
    "distance_interval",
    "is_on_shortest_path",
    "is_median_graph",
    "median_of_triple",
    "triple_intervals_intersection",
    "are_isomorphic",
    "from_networkx",
    "to_networkx",
]
