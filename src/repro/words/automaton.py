"""KMP factor automaton for a single forbidden factor.

The automaton is the classical Knuth--Morris--Pratt pattern automaton of a
word ``f`` over ``{0, 1}``: states ``0 .. |f|`` where state ``s`` means
"the longest suffix of the input read so far that is a prefix of ``f`` has
length ``s``"; state ``|f|`` is the unique accepting (= *forbidden*) state
meaning ``f`` occurred as a factor.

For factor-avoidance we make the forbidden state absorbing, so a word ``b``
avoids ``f`` exactly when running the automaton on ``b`` never reaches
state ``|f|``.  The transition table of the *non*-forbidden states is the
transfer matrix whose powers count factor-avoiding words -- see
:mod:`repro.words.counting`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.words.core import validate_word

__all__ = ["kmp_failure", "FactorAutomaton"]


def kmp_failure(f: str) -> List[int]:
    """KMP failure (prefix) function of ``f``.

    ``fail[i]`` is the length of the longest proper prefix of ``f[:i+1]``
    that is also a suffix of it.  ``fail[0] == 0`` always.
    """
    validate_word(f, name="pattern")
    fail = [0] * len(f)
    k = 0
    for i in range(1, len(f)):
        while k > 0 and f[i] != f[k]:
            k = fail[k - 1]
        if f[i] == f[k]:
            k += 1
        fail[i] = k
    return fail


class FactorAutomaton:
    """Deterministic automaton recognizing "contains ``f`` as a factor".

    Parameters
    ----------
    f:
        Non-empty forbidden factor over ``{0, 1}``.

    Attributes
    ----------
    pattern:
        The factor ``f``.
    num_states:
        ``len(f) + 1``; states are ``0 .. len(f)``.
    forbidden:
        The absorbing accepting state ``len(f)``.
    table:
        ``table[s][bit]`` is the successor of state ``s`` on input bit
        ``bit`` (0 or 1).  ``table[forbidden][b] == forbidden``.
    """

    __slots__ = ("pattern", "num_states", "forbidden", "table")

    def __init__(self, f: str):
        validate_word(f, name="forbidden factor")
        if not f:
            raise ValueError("forbidden factor must be non-empty")
        self.pattern = f
        m = len(f)
        self.num_states = m + 1
        self.forbidden = m
        fail = kmp_failure(f)
        table: List[Tuple[int, int]] = []
        for s in range(m):
            row = []
            for bit in "01":
                k = s
                while k > 0 and f[k] != bit:
                    k = fail[k - 1]
                if f[k] == bit:
                    k += 1
                row.append(k)
            table.append((row[0], row[1]))
        table.append((m, m))  # absorbing forbidden state
        self.table = table

    # -- running ---------------------------------------------------------

    def step(self, state: int, bit: str) -> int:
        """Single transition on ``bit`` (``'0'`` or ``'1'``)."""
        if bit not in ("0", "1"):
            raise ValueError(f"bit must be '0' or '1', got {bit!r}")
        return self.table[state][bit == "1"]

    def run(self, b: str) -> int:
        """Run on word ``b`` from the start state; return the final state."""
        s = 0
        table = self.table
        for ch in b:
            s = table[s][ch == "1"]
        return s

    def avoids(self, b: str) -> bool:
        """``True`` iff ``b`` does not contain ``self.pattern`` as a factor.

        Linear time; because the forbidden state is absorbing we can bail
        out early.
        """
        s = 0
        forbidden = self.forbidden
        table = self.table
        for ch in b:
            s = table[s][ch == "1"]
            if s == forbidden:
                return False
        return True

    # -- counting support --------------------------------------------------

    def transfer_matrix(self) -> List[List[int]]:
        """Transfer matrix ``M`` over the non-forbidden states.

        ``M[s][t]`` is the number of bits (0, 1 or 2) leading from state
        ``s`` to state ``t`` without hitting the forbidden state.  The
        number of words of length ``d`` avoiding ``f`` equals
        ``sum((M^d)[0])``.
        """
        m = self.forbidden
        mat = [[0] * m for _ in range(m)]
        for s in range(m):
            for bit in (0, 1):
                t = self.table[s][bit]
                if t != m:
                    mat[s][t] += 1
        return mat

    def safe_successors(self, state: int) -> List[Tuple[int, int]]:
        """``(bit, next_state)`` pairs from ``state`` avoiding the forbidden state."""
        out = []
        for bit in (0, 1):
            t = self.table[state][bit]
            if t != self.forbidden:
                out.append((bit, t))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"FactorAutomaton({self.pattern!r}, states={self.num_states})"


def matrix_mult(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]) -> List[List[int]]:
    """Exact integer matrix product (no overflow: Python big ints).

    Degenerate shapes are first-class: ``[] @ [] == []`` (the 0x0 case
    the analytic layer's empty automata produce), and an ``n x 0`` times
    ``0 x anything`` product is the ``n x 0`` zero matrix.  Ragged rows
    or an inner-dimension mismatch raise :class:`ValueError` instead of
    silently mis-multiplying.
    """
    n, k = len(a), len(b)
    m2 = len(b[0]) if b else 0
    inner = len(a[0]) if a else 0
    if any(len(row) != inner for row in a):
        raise ValueError("left matrix has ragged rows")
    if any(len(row) != m2 for row in b):
        raise ValueError("right matrix has ragged rows")
    if a and inner != k:
        raise ValueError(
            f"inner dimensions do not match: {n}x{inner} @ {k}x{m2}"
        )
    out = [[0] * m2 for _ in range(n)]
    for i in range(n):
        ai = a[i]
        oi = out[i]
        for t in range(k):
            v = ai[t]
            if v:
                bt = b[t]
                for j in range(m2):
                    oi[j] += v * bt[j]
    return out


def matrix_power(mat: Sequence[Sequence[int]], e: int) -> List[List[int]]:
    """Exact integer matrix power by binary exponentiation.

    ``e == 0`` returns the ``n x n`` identity (the empty ``0 x 0``
    identity for an empty matrix); non-square input raises
    :class:`ValueError` up front rather than deep inside the squaring
    loop.
    """
    if e < 0:
        raise ValueError("exponent must be non-negative")
    n = len(mat)
    if any(len(row) != n for row in mat):
        raise ValueError(f"matrix must be square, got rows {[len(r) for r in mat]}")
    result = [[int(i == j) for j in range(n)] for i in range(n)]
    base = [list(row) for row in mat]
    while e:
        if e & 1:
            result = matrix_mult(result, base)
        base = matrix_mult(base, base)
        e >>= 1
    return result
