"""Enumeration of factor-avoiding words (vertex sets of :math:`Q_d(f)`).

Two enumeration engines are provided:

- :func:`iter_avoiding` walks the KMP automaton depth-first, so only the
  surviving prefixes are extended -- output is lexicographic and the cost
  is proportional to the number of nodes of the surviving prefix tree (in
  particular it never touches the :math:`2^d` rejected words that a naive
  filter would).
- :func:`avoiding_int_array` produces the same set as a sorted NumPy
  ``int64`` array of integer codes, via a vectorised level-by-level sweep
  of automaton state vectors -- this is the bulk builder used by the graph
  constructors.

Both agree with the naive filter; the test-suite cross-validates them.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.words.automaton import FactorAutomaton
from repro.words.core import validate_word

__all__ = [
    "iter_avoiding",
    "list_avoiding",
    "avoiding_int_array",
    "count_avoiding_bruteforce",
]


def iter_avoiding(f: str, d: int) -> Iterator[str]:
    """Yield all length-``d`` words avoiding factor ``f``, lexicographically.

    These are exactly the vertices of the generalized Fibonacci cube
    :math:`Q_d(f)`.  ``d == 0`` yields the empty word (which avoids every
    non-empty ``f``).
    """
    validate_word(f, name="forbidden factor")
    if not f:
        raise ValueError("forbidden factor must be non-empty")
    if d < 0:
        raise ValueError(f"length must be non-negative, got {d}")
    auto = FactorAutomaton(f)
    # Iterative DFS with an explicit stack of (prefix_bits, state, depth).
    # Bits pushed in reverse order so '0' is explored before '1'.
    chars = "01"
    stack: List[tuple] = [("", 0, 0)]
    while stack:
        prefix, state, depth = stack.pop()
        if depth == d:
            yield prefix
            continue
        for bit in (1, 0):
            nxt = auto.table[state][bit]
            if nxt != auto.forbidden:
                stack.append((prefix + chars[bit], nxt, depth + 1))


def list_avoiding(f: str, d: int) -> List[str]:
    """Materialized :func:`iter_avoiding` (lexicographic list of words)."""
    return list(iter_avoiding(f, d))


def avoiding_int_array(f: str, d: int) -> np.ndarray:
    """Sorted ``int64`` codes of all length-``d`` words avoiding ``f``.

    The code of a word puts its first letter in the most significant bit
    (see :func:`repro.words.core.word_to_int`), so the returned array is
    sorted both numerically and lexicographically.

    Implementation: one vectorised pass per position.  We carry the array
    of surviving prefix codes together with the array of their automaton
    states; appending a bit is a concatenation of the two surviving
    branches, re-sorted by construction order.
    """
    validate_word(f, name="forbidden factor")
    if not f:
        raise ValueError("forbidden factor must be non-empty")
    if d < 0:
        raise ValueError(f"length must be non-negative, got {d}")
    if d > 62:
        raise ValueError(f"int64 codes support d <= 62, got {d}")
    auto = FactorAutomaton(f)
    table = np.array(auto.table, dtype=np.int64)  # shape (m+1, 2)
    codes = np.zeros(1, dtype=np.int64)
    states = np.zeros(1, dtype=np.int64)
    forbidden = auto.forbidden
    for _ in range(d):
        # branch on appended bit: code' = code*2 + bit
        next0 = table[states, 0]
        next1 = table[states, 1]
        keep0 = next0 != forbidden
        keep1 = next1 != forbidden
        codes2 = codes << 1
        codes = np.concatenate([codes2[keep0], (codes2 | 1)[keep1]])
        states = np.concatenate([next0[keep0], next1[keep1]])
        order = np.argsort(codes, kind="stable")
        codes = codes[order]
        states = states[order]
    return codes


def count_avoiding_bruteforce(f: str, d: int) -> int:
    """Count avoiding words by enumeration (reference for the automaton count)."""
    return int(avoiding_int_array(f, d).size)
