"""Primitive operations on binary words.

Conventions (matching Section 2 of the paper):

- A *binary word* is a Python ``str`` over the alphabet ``{'0', '1'}``;
  positions are 1-based in the paper (``b = b_1 b_2 ... b_d``) but 0-based
  in this code unless a function says otherwise.
- The *complement* of ``b``, written :math:`\\bar b`, flips every bit.
- The *reverse* ``b^R`` is ``b_d b_{d-1} ... b_1``.
- ``e_i`` is the word with a single 1 in (0-based) position ``i``.
- ``b + c`` is the bitwise sum modulo 2 (XOR); in particular ``b + e_i``
  flips the ``i``-th bit of ``b``.
- A *block* is a maximal run of equal digits.
- ``v`` is a *factor* of ``b`` if ``b = u v w`` for (possibly empty)
  words ``u, w`` -- i.e. a contiguous substring.

Integer encoding: :func:`word_to_int` maps ``b_1 ... b_d`` to the integer
whose most significant bit is ``b_1``.  This keeps lexicographic order of
words equal to numeric order of their codes, which the graph builders rely
on.  All hot loops in the package work on these integer codes with
bit-parallel operations; the string layer is the readable reference.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "is_binary_word",
    "validate_word",
    "complement",
    "reverse",
    "word_add",
    "e_i",
    "flip",
    "hamming",
    "contains_factor",
    "blocks",
    "block_string",
    "concat_blocks",
    "word_to_int",
    "int_to_word",
    "all_words",
]

_ALPHABET = frozenset("01")

_COMPLEMENT_TABLE = str.maketrans("01", "10")


def is_binary_word(b: str) -> bool:
    """Return ``True`` when ``b`` is a (possibly empty) word over ``{0,1}``."""
    return isinstance(b, str) and set(b) <= _ALPHABET


def validate_word(b: str, *, name: str = "word") -> str:
    """Return ``b`` unchanged, raising :class:`ValueError` if it is not binary."""
    if not is_binary_word(b):
        raise ValueError(f"{name} must be a string over {{'0','1'}}, got {b!r}")
    return b


def complement(b: str) -> str:
    """Bitwise complement :math:`\\bar b` of ``b`` (Lemma 2.2 symmetry)."""
    return b.translate(_COMPLEMENT_TABLE)


def reverse(b: str) -> str:
    """Reversal :math:`b^R` of ``b`` (Lemma 2.3 symmetry)."""
    return b[::-1]


def word_add(b: str, c: str) -> str:
    """Bitwise sum of ``b`` and ``c`` modulo 2 (XOR of equal-length words)."""
    if len(b) != len(c):
        raise ValueError(f"words must have equal length: {len(b)} != {len(c)}")
    return "".join("1" if x != y else "0" for x, y in zip(b, c))


def e_i(d: int, i: int) -> str:
    """The length-``d`` word with a single ``1`` in 0-based position ``i``."""
    if not 0 <= i < d:
        raise IndexError(f"position {i} out of range for length {d}")
    return "0" * i + "1" + "0" * (d - i - 1)


def flip(b: str, i: int) -> str:
    """Return ``b + e_i``: the word ``b`` with 0-based bit ``i`` flipped."""
    if not 0 <= i < len(b):
        raise IndexError(f"position {i} out of range for length {len(b)}")
    bit = "0" if b[i] == "1" else "1"
    return b[:i] + bit + b[i + 1 :]


def hamming(b: str, c: str) -> int:
    """Hamming distance = hypercube distance :math:`d_{Q_d}(b, c)`."""
    if len(b) != len(c):
        raise ValueError(f"words must have equal length: {len(b)} != {len(c)}")
    return sum(x != y for x, y in zip(b, c))


def contains_factor(b: str, f: str) -> bool:
    """Return ``True`` when ``f`` is a factor (contiguous substring) of ``b``.

    The empty word is a factor of everything, matching the convention that
    ``b = u v w`` with ``u = b``, ``v = w = ''``.
    """
    return f in b


def blocks(b: str) -> List[Tuple[str, int]]:
    """Block decomposition of ``b``.

    A block is a non-extendable run of contiguous equal digits.  Returns a
    list of ``(digit, run_length)`` pairs, e.g. ``blocks("110100") ==
    [("1", 2), ("0", 1), ("1", 1), ("0", 2)]``.  The empty word has no
    blocks.
    """
    out: List[Tuple[str, int]] = []
    for ch in b:
        if out and out[-1][0] == ch:
            out[-1] = (ch, out[-1][1] + 1)
        else:
            out.append((ch, 1))
    return out


def block_string(parts: Sequence[Tuple[str, int]]) -> str:
    """Inverse of :func:`blocks`: assemble a word from ``(digit, run)`` pairs."""
    for digit, run in parts:
        if digit not in _ALPHABET:
            raise ValueError(f"block digit must be '0' or '1', got {digit!r}")
        if run < 0:
            raise ValueError(f"block length must be non-negative, got {run}")
    return "".join(digit * run for digit, run in parts)


def concat_blocks(*parts: Tuple[str, int]) -> str:
    """Convenience alias: ``concat_blocks(("1", r), ("0", s))`` = ``1^r 0^s``."""
    return block_string(parts)


def word_to_int(b: str) -> int:
    """Encode ``b_1 ... b_d`` as an integer with ``b_1`` the most significant bit.

    The empty word encodes to 0.  Lexicographic order on words of a fixed
    length equals numeric order on codes.
    """
    validate_word(b)
    return int(b, 2) if b else 0


def int_to_word(code: int, d: int) -> str:
    """Decode an integer back to a length-``d`` word (inverse of :func:`word_to_int`)."""
    if d < 0:
        raise ValueError(f"length must be non-negative, got {d}")
    if code < 0 or code >= (1 << d):
        raise ValueError(f"code {code} out of range for length {d}")
    return format(code, f"0{d}b") if d > 0 else ""


def all_words(d: int) -> Iterator[str]:
    """Yield every binary word of length ``d`` in lexicographic order."""
    if d < 0:
        raise ValueError(f"length must be non-negative, got {d}")
    for code in range(1 << d):
        yield format(code, f"0{d}b") if d > 0 else ""
