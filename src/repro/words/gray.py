"""Reflected Gray codes and Gray-type orderings of cube vertex sets.

The binary reflected Gray code lists all of :math:`Q_d`'s vertices so
consecutive words differ in one bit -- i.e. it is a Hamiltonian path of
the hypercube (a cycle, in fact, since the last word differs from the
first in one bit).  Restricting a Gray order to a generalized Fibonacci
cube does *not* generally remain a Gray order; whether a family admits
one is exactly the Hamiltonian-path question the Liu--Hsu--Chung line
studied.  :func:`gray_rank_order` provides the restriction (useful as a
processor numbering), and :func:`is_gray_order` tests the property.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

from repro.words.core import hamming, int_to_word

__all__ = [
    "gray_code",
    "gray_words",
    "gray_rank",
    "gray_unrank",
    "is_gray_order",
    "gray_rank_order",
]


def gray_code(d: int) -> Iterator[int]:
    """Codes of the binary reflected Gray sequence of length :math:`2^d`."""
    if d < 0:
        raise ValueError(f"dimension must be non-negative, got {d}")
    for i in range(1 << d):
        yield i ^ (i >> 1)


def gray_words(d: int) -> List[str]:
    """The reflected Gray sequence as words."""
    return [int_to_word(c, d) for c in gray_code(d)]


def gray_rank(code: int) -> int:
    """Position of ``code`` in the reflected Gray sequence (inverse map)."""
    if code < 0:
        raise ValueError("code must be non-negative")
    rank = 0
    while code:
        rank ^= code
        code >>= 1
    return rank


def gray_unrank(rank: int) -> int:
    """The ``rank``-th Gray code (inverse of :func:`gray_rank`)."""
    if rank < 0:
        raise ValueError("rank must be non-negative")
    return rank ^ (rank >> 1)


def is_gray_order(words: Sequence[str], cyclic: bool = False) -> bool:
    """Do consecutive words differ in exactly one bit?

    With ``cyclic=True`` the wrap-around pair must too (a Gray *cycle* =
    Hamiltonian cycle of the induced cube subgraph).
    """
    if len(words) <= 1:
        return not cyclic or len(words) <= 1
    for a, b in zip(words, words[1:]):
        if hamming(a, b) != 1:
            return False
    if cyclic and hamming(words[-1], words[0]) != 1:
        return False
    return True


def gray_rank_order(cube) -> List[str]:
    """The cube's vertex words sorted by reflected-Gray rank.

    A natural processor numbering; it is a true Gray order exactly when
    the cube's vertices happen to be Gray-consecutive (rare), so callers
    interested in single-bit-change orderings should search with
    :func:`repro.network.hamilton.find_hamiltonian_path` instead.
    """
    return sorted(cube.words(), key=lambda w: gray_rank(int(w, 2) if w else 0))
