"""Exact counting of vertices, edges and squares of :math:`Q_d(f)`.

All three counters run in time polynomial in ``|f|`` and (poly-)logarithmic
or linear in ``d`` with exact big-integer arithmetic, so they remain exact
for ``d`` in the thousands where enumeration is hopeless.  They power the
large-``d`` series of experiments E1--E4 and validate the recurrences
(1)--(6) of Section 6 far beyond the enumerable range.

Vertices
    Words of length ``d`` avoiding ``f``: a transfer-matrix power of the
    KMP automaton (:math:`O(|f|^3 \\log d)`).

Edges
    Unordered pairs of avoiding words differing in exactly one bit.  We
    count ordered pairs where the flipped bit goes ``0 -> 1`` (counting
    each edge once) with a two-phase scan over the flip position: before
    the flip both words coincide (one automaton state), after it we track
    the *pair* of states of the two words.

Squares
    4-cycles of :math:`Q_d(f)`.  Every square of a hypercube subgraph is
    determined by a base word ``w`` with zeros in two positions
    ``i < j`` such that all four of ``w, w+e_i, w+e_j, w+e_i+e_j`` avoid
    ``f``.  A three-phase scan tracks 1, 2, then 4 automaton states.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.words.automaton import FactorAutomaton, matrix_power
from repro.words.core import validate_word

__all__ = [
    "count_vertices_automaton",
    "count_edges_automaton",
    "count_squares_automaton",
]


def _require(f: str, d: int) -> FactorAutomaton:
    validate_word(f, name="forbidden factor")
    if not f:
        raise ValueError("forbidden factor must be non-empty")
    if d < 0:
        raise ValueError(f"length must be non-negative, got {d}")
    return FactorAutomaton(f)


def count_vertices_automaton(f: str, d: int) -> int:
    """``|V(Q_d(f))|``: number of length-``d`` words avoiding ``f``.

    Uses the transfer-matrix power, so ``d`` may be arbitrarily large.
    """
    auto = _require(f, d)
    mat = auto.transfer_matrix()
    power = matrix_power(mat, d)
    return sum(power[0])


def count_edges_automaton(f: str, d: int) -> int:
    """``|E(Q_d(f))|``: edges of the generalized Fibonacci cube.

    Linear in ``d`` (one dict-DP sweep per position), quadratic in the
    number of automaton states.  Each edge ``{w, w + e_i}`` is counted at
    its unique flip position ``i`` with the orientation ``w_i = 0``.

    The sweep is a *streaming* forward DP in ``O(states^2)`` memory:
    ``prefix[s]`` counts the avoiding prefixes ending in state ``s``
    (words that have not flipped yet), ``pairs[(s, t)]`` counts the
    (prefix, flip-position) choices whose two runs -- ``w`` through
    state ``s``, ``w + e_i`` through state ``t`` -- are both still
    alive.  Each position either extends every pending pair by one
    shared bit or turns a prefix into a new pair via the flip, so no
    per-position suffix table is ever materialized (the old
    implementation kept ``d + 1`` dicts of up to ``states^2`` entries,
    which is exactly the memory that blows up at large ``d``).
    """
    auto = _require(f, d)
    return _count_edges_streaming(auto.table, auto.forbidden, d)


def _count_edges_streaming(table, forbidden: int, d: int) -> int:
    """The shared streaming pair DP over any absorbing-forbidden-state
    transition table (used by both the KMP and the Aho--Corasick
    counters)."""
    total_pairs: Dict[Tuple[int, int], int] = {}
    prefix: Dict[int, int] = {0: 1}
    for _ in range(d):
        nxt_pairs: Dict[Tuple[int, int], int] = {}
        # pending pairs consume one bit shared by both words (outside the
        # flip position the words agree)
        for (s, t), v in total_pairs.items():
            for bit in (0, 1):
                s2 = table[s][bit]
                t2 = table[t][bit]
                if s2 != forbidden and t2 != forbidden:
                    key = (s2, t2)
                    nxt_pairs[key] = nxt_pairs.get(key, 0) + v
        # or this position is the flip: w takes bit 0, w + e_i takes bit 1
        for s, v in prefix.items():
            s0 = table[s][0]
            s1 = table[s][1]
            if s0 != forbidden and s1 != forbidden:
                key = (s0, s1)
                nxt_pairs[key] = nxt_pairs.get(key, 0) + v
        total_pairs = nxt_pairs
        nxt_prefix: Dict[int, int] = {}
        for s, v in prefix.items():
            for bit in (0, 1):
                s2 = table[s][bit]
                if s2 != forbidden:
                    nxt_prefix[s2] = nxt_prefix.get(s2, 0) + v
        prefix = nxt_prefix
    # a pair that survives to the end is one edge per (prefix, flip) choice
    return sum(total_pairs.values())


def count_squares_automaton(f: str, d: int) -> int:
    """``|S(Q_d(f))|``: number of 4-cycles (squares) of :math:`Q_d(f)`.

    A square is an unordered 4-cycle ``{w, w+e_i, w+e_j, w+e_i+e_j}`` with
    ``i < j`` and ``w_i = w_j = 0``; that normal form picks each square
    exactly once.  The scan keeps:

    - phase A (before ``i``): one shared state;
    - phase B (between ``i`` and ``j``): the state pair of the bit-0
      branch (covering ``w`` and ``w+e_j``) and the bit-1 branch
      (covering ``w+e_i`` and ``w+e_i+e_j``);
    - phase C (after ``j``): all four states.

    Cost ``O(d * states^4)`` with small constants (|f| <= 8 in practice).
    """
    auto = _require(f, d)
    table = auto.table
    forbidden = auto.forbidden
    m = forbidden

    def step_alive(s: int, bit: int) -> int:
        t = table[s][bit]
        return -1 if t == forbidden else t

    # suffix_quad[L][(a,b,c,e)] = number of length-L words keeping all four
    # runs alive, built incrementally from L = 0 upward.
    quad: Dict[Tuple[int, int, int, int], int] = {}
    # we lazily enumerate only reachable quads; start from "all suffixes of
    # length 0" = weight 1 for every state combination actually queried.
    # For clarity (states are few) we materialize the full table.
    states4 = [
        (a, b, c, e) for a in range(m) for b in range(m) for c in range(m) for e in range(m)
    ]
    quad = {k: 1 for k in states4}
    suffix_quad = [dict(quad)]
    for _ in range(d):
        nxt: Dict[Tuple[int, int, int, int], int] = {}
        prev = suffix_quad[-1]
        for key in states4:
            a, b, c, e = key
            acc = 0
            for bit in (0, 1):
                a2 = step_alive(a, bit)
                if a2 < 0:
                    continue
                b2 = step_alive(b, bit)
                if b2 < 0:
                    continue
                c2 = step_alive(c, bit)
                if c2 < 0:
                    continue
                e2 = step_alive(e, bit)
                if e2 < 0:
                    continue
                acc += prev.get((a2, b2, c2, e2), 0)
            if acc:
                nxt[key] = acc
        suffix_quad.append(nxt)

    # pair sweep for phase B, also from the right: suffix_pair_at[L] maps a
    # state pair to the number of (length-L, flip-at-end) continuations...
    # Instead of nesting sweeps we do a single left-to-right pass carrying:
    #   prefixA[s]           -- weights before the first flip
    #   prefixB[(s0, s1)]    -- weights between the flips (bit0/bit1 branch)
    total = 0
    prefixA: Dict[int, int] = {0: 1}
    prefixB: Dict[Tuple[int, int], int] = {}
    for pos in range(d):
        remaining = d - pos - 1
        # Option 1: position `pos` is the second flip j for a pending pair.
        for (s0, s1), v in prefixB.items():
            # w has bit 0 at j; w+e_j has bit 1; same for the bit-1 branch.
            a = step_alive(s0, 0)   # w
            b = step_alive(s0, 1)   # w + e_j
            c = step_alive(s1, 0)   # w + e_i
            e = step_alive(s1, 1)   # w + e_i + e_j
            if a >= 0 and b >= 0 and c >= 0 and e >= 0:
                total += v * suffix_quad[remaining].get((a, b, c, e), 0)
        # Option 2: position `pos` is the first flip i (w_i = 0).
        newB: Dict[Tuple[int, int], int] = {}
        for s, v in prefixA.items():
            s0 = step_alive(s, 0)  # branch of w and w+e_j
            s1 = step_alive(s, 1)  # branch of w+e_i and w+e_i+e_j
            if s0 >= 0 and s1 >= 0:
                key = (s0, s1)
                newB[key] = newB.get(key, 0) + v
        # Advance pending B pairs over a non-flip position (both words share
        # the same bit of w at this position -- but careful: the two words in
        # a branch share the bit, and the two branches ALSO share it, since
        # between i and j all four words agree with w outside {i, j}).
        nxtB: Dict[Tuple[int, int], int] = {}
        for (s0, s1), v in prefixB.items():
            for bit in (0, 1):
                a = step_alive(s0, bit)
                b = step_alive(s1, bit)
                if a >= 0 and b >= 0:
                    key = (a, b)
                    nxtB[key] = nxtB.get(key, 0) + v
        for key, v in newB.items():
            nxtB[key] = nxtB.get(key, 0) + v
        prefixB = nxtB
        # Advance A over a non-flip position.
        nxtA: Dict[int, int] = {}
        for s, v in prefixA.items():
            for bit in (0, 1):
                s2 = step_alive(s, bit)
                if s2 >= 0:
                    nxtA[s2] = nxtA.get(s2, 0) + v
        prefixA = nxtA
    return total
