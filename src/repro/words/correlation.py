"""Autocorrelation polynomial and Guibas--Odlyzko counting.

A third, fully independent way to count the vertices of :math:`Q_d(f)`
(after enumeration and the transfer matrix): the Guibas--Odlyzko /
Goulden--Jackson theory expresses the generating function of words
avoiding a single factor ``f`` over a ``q``-letter alphabet through the
*autocorrelation polynomial*

.. math:: c_f(x) = \\sum_{p \\in P(f)} x^{p},

where ``P(f)`` is the set of periods of ``f`` (including 0): shifts ``p``
with ``f[p:] == f[:m-p]``.  Then

.. math::
   \\sum_{d \\ge 0} a_d x^d = \\frac{c_f(x)}{x^m + (1 - q\\,x)\\, c_f(x)},

with ``a_d`` = number of length-``d`` words avoiding ``f`` and ``m = |f|``.
Here ``q = 2``.  The series is extracted with exact integer arithmetic,
so this counter cross-validates the automaton counter coefficient by
coefficient -- the strongest kind of internal consistency test available
for the Section 6 numbers.
"""

from __future__ import annotations

from typing import List

from repro.words.core import validate_word

__all__ = ["autocorrelation", "correlation_polynomial", "count_avoiding_gf"]


def autocorrelation(f: str) -> List[int]:
    """The period set ``P(f)``: all shifts ``p`` (0 <= p < |f|) with
    ``f[p:] == f[:|f|-p]``.  Always contains 0."""
    validate_word(f, name="factor")
    if not f:
        raise ValueError("factor must be non-empty")
    m = len(f)
    return [p for p in range(m) if f[p:] == f[: m - p]]


def correlation_polynomial(f: str) -> List[int]:
    """Coefficient list of :math:`c_f(x)` (index = exponent)."""
    m = len(f)
    coeffs = [0] * m
    for p in autocorrelation(f):
        coeffs[p] = 1
    return coeffs


def count_avoiding_gf(f: str, d: int) -> int:
    """Number of length-``d`` binary words avoiding ``f``, via the
    Guibas--Odlyzko generating function (exact integer series division).

    The rational function ``N(x) / D(x)`` with ``N = c_f`` and
    ``D = x^m + (1 - 2x) c_f`` is expanded to order ``d`` by long
    division: ``a_k = (N_k - sum_{j=1}^{k} D_j a_{k-j}) / D_0``.
    ``D_0 = c_{f,0} = 1``, so the division is integral throughout.
    """
    validate_word(f, name="factor")
    if not f:
        raise ValueError("factor must be non-empty")
    if d < 0:
        raise ValueError(f"length must be non-negative, got {d}")
    m = len(f)
    c = correlation_polynomial(f)
    # D = x^m + (1 - 2x) * c
    deg = max(m, len(c))  # c has degree <= m-1; (1-2x)c has degree <= m
    D = [0] * (deg + 1)
    for i, ci in enumerate(c):
        D[i] += ci
        D[i + 1] -= 2 * ci
    D[m] += 1
    N = list(c) + [0] * (len(D) - len(c))
    assert D[0] == 1, "autocorrelation always contains period 0"
    series: List[int] = []
    for k in range(d + 1):
        nk = N[k] if k < len(N) else 0
        acc = nk
        for j in range(1, min(k, len(D) - 1) + 1):
            acc -= D[j] * series[k - j]
        series.append(acc)
    return series[d]
