"""Binary-word substrate.

Everything in the paper happens on binary strings: vertices of the
hypercube :math:`Q_d` are words of length ``d`` over ``{0, 1}``, and the
generalized Fibonacci cube :math:`Q_d(f)` keeps exactly the words that do
*not* contain the forbidden factor ``f`` as a contiguous substring.

This package provides:

- :mod:`repro.words.core` -- primitive operations (complement, reverse,
  blocks, factor tests, bit flips, Hamming distance, int conversions);
- :mod:`repro.words.automaton` -- the KMP factor automaton used both for
  linear-time factor avoidance tests and for transfer-matrix counting;
- :mod:`repro.words.enumerate` -- enumeration of all factor-avoiding words
  of a given length (the vertex sets of generalized Fibonacci cubes);
- :mod:`repro.words.counting` -- exact big-integer counting of vertices,
  edges and squares of :math:`Q_d(f)` for *huge* ``d`` via product
  automata, without enumerating anything.
"""

from repro.words.core import (
    all_words,
    blocks,
    block_string,
    complement,
    concat_blocks,
    contains_factor,
    e_i,
    flip,
    hamming,
    int_to_word,
    is_binary_word,
    reverse,
    word_add,
    word_to_int,
)
from repro.words.automaton import FactorAutomaton, kmp_failure
from repro.words.aho import MultiFactorAutomaton
from repro.words.gray import (
    gray_code,
    gray_rank,
    gray_rank_order,
    gray_unrank,
    gray_words,
    is_gray_order,
)
from repro.words.correlation import (
    autocorrelation,
    correlation_polynomial,
    count_avoiding_gf,
)
from repro.words.enumerate import (
    avoiding_int_array,
    count_avoiding_bruteforce,
    iter_avoiding,
    list_avoiding,
)
from repro.words.counting import (
    count_edges_automaton,
    count_squares_automaton,
    count_vertices_automaton,
)

__all__ = [
    "all_words",
    "blocks",
    "block_string",
    "complement",
    "concat_blocks",
    "contains_factor",
    "e_i",
    "flip",
    "hamming",
    "int_to_word",
    "is_binary_word",
    "reverse",
    "word_add",
    "word_to_int",
    "FactorAutomaton",
    "MultiFactorAutomaton",
    "gray_code",
    "gray_rank",
    "gray_rank_order",
    "gray_unrank",
    "gray_words",
    "is_gray_order",
    "autocorrelation",
    "correlation_polynomial",
    "count_avoiding_gf",
    "kmp_failure",
    "avoiding_int_array",
    "count_avoiding_bruteforce",
    "iter_avoiding",
    "list_avoiding",
    "count_edges_automaton",
    "count_squares_automaton",
    "count_vertices_automaton",
]
