"""Aho--Corasick automaton: avoiding a *set* of factors at once.

The paper generalizes the Fibonacci cube by forbidding one factor.  The
natural next step -- explicitly invited by the definition -- is a set
``F`` of forbidden factors: :math:`Q_d(F)` keeps the words avoiding every
member of ``F``.  Classical instances:

- ``F = {f}`` recovers :math:`Q_d(f)` (the automaton degenerates to KMP);
- Lucas-like cubes arise from positional constraints, and several
  "daisy-cube" style families are intersections of factor conditions.

:class:`MultiFactorAutomaton` is the standard Aho--Corasick construction
(goto trie + failure links, output propagated through failures) with all
pattern-accepting states merged into one absorbing *forbidden* state, so
the surviving automaton plays exactly the same role the KMP automaton
plays in :mod:`repro.words.automaton`: linear-time avoidance tests, DFS
enumeration, and transfer-matrix counting.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.words.automaton import matrix_power
from repro.words.core import validate_word

__all__ = ["MultiFactorAutomaton"]


class MultiFactorAutomaton:
    """DFA over ``{0, 1}`` recognizing "contains some ``f`` in ``F``".

    States ``0 .. n-1`` are live trie states (0 = root); state ``n`` is the
    absorbing forbidden state.  ``table[s][bit]`` gives transitions.

    Parameters
    ----------
    factors:
        Non-empty collection of non-empty binary words.  Subsumed factors
        (superstrings of other factors, e.g. ``110`` next to ``11``) are
        *dropped at construction*: a word containing the superstring
        already contains the substring, so they define the same language
        but would inflate the trie -- and therefore every transfer-matrix
        count -- for nothing.  ``factors`` holds the surviving minimal
        set.
    """

    __slots__ = ("factors", "num_states", "forbidden", "table")

    def __init__(self, factors: Iterable[str]):
        factors = sorted(set(factors))
        if not factors:
            raise ValueError("need at least one forbidden factor")
        for f in factors:
            validate_word(f, name="forbidden factor")
            if not f:
                raise ValueError("forbidden factors must be non-empty")
        # drop subsumed factors: if g is a factor of f, avoiding g already
        # implies avoiding f, so f only bloats the automaton (sorted order
        # means any subsuming factor of f is shorter or equal, but scan
        # all pairs -- lexicographic order is not length order)
        factors = [
            f for f in factors
            if not any(g != f and g in f for g in factors)
        ]
        self.factors = tuple(factors)

        # --- trie ---------------------------------------------------------
        children: List[List[int]] = [[-1, -1]]  # per state: child on 0/1
        accepting: List[bool] = [False]
        for f in factors:
            s = 0
            for ch in f:
                bit = ch == "1"
                if children[s][bit] == -1:
                    children.append([-1, -1])
                    accepting.append(False)
                    children[s][bit] = len(children) - 1
                s = children[s][bit]
            accepting[s] = True

        # --- failure links (BFS), propagate acceptance --------------------
        n = len(children)
        fail = [0] * n
        queue: deque = deque()
        for bit in (0, 1):
            c = children[0][bit]
            if c != -1:
                queue.append(c)
        while queue:
            s = queue.popleft()
            for bit in (0, 1):
                c = children[s][bit]
                if c == -1:
                    continue
                # walk failures of s to find the longest proper suffix state
                t = fail[s]
                while t and children[t][bit] == -1:
                    t = fail[t]
                cand = children[t][bit]
                fail[c] = cand if cand != -1 and cand != c else 0
                if accepting[fail[c]]:
                    accepting[c] = True
                queue.append(c)

        # --- collapse to a total DFA with one absorbing forbidden state ----
        # goto with failure resolution
        goto: List[List[int]] = [[0, 0] for _ in range(n)]
        for s in range(n):
            for bit in (0, 1):
                t = s
                while t and children[t][bit] == -1:
                    t = fail[t]
                c = children[t][bit]
                goto[s][bit] = c if c != -1 else 0

        live = [s for s in range(n) if not accepting[s]]
        remap: Dict[int, int] = {s: i for i, s in enumerate(live)}
        m = len(live)
        self.num_states = m + 1
        self.forbidden = m
        table: List[Tuple[int, int]] = []
        for s in live:
            row = []
            for bit in (0, 1):
                t = goto[s][bit]
                row.append(m if accepting[t] else remap[t])
            table.append((row[0], row[1]))
        table.append((m, m))
        self.table = table

    # -- running -------------------------------------------------------------

    def avoids(self, word: str) -> bool:
        """``True`` iff ``word`` contains none of the forbidden factors."""
        s = 0
        forbidden = self.forbidden
        table = self.table
        for ch in word:
            s = table[s][ch == "1"]
            if s == forbidden:
                return False
        return True

    # -- enumeration -----------------------------------------------------------

    def iter_avoiding(self, d: int) -> Iterator[str]:
        """All length-``d`` words avoiding every factor, lexicographically."""
        if d < 0:
            raise ValueError(f"length must be non-negative, got {d}")
        chars = "01"
        stack: List[Tuple[str, int, int]] = [("", 0, 0)]
        while stack:
            prefix, state, depth = stack.pop()
            if depth == d:
                yield prefix
                continue
            for bit in (1, 0):
                nxt = self.table[state][bit]
                if nxt != self.forbidden:
                    stack.append((prefix + chars[bit], nxt, depth + 1))

    def avoiding_int_array(self, d: int) -> np.ndarray:
        """Sorted ``int64`` codes of all avoiding words (cf. the KMP twin)."""
        if d < 0:
            raise ValueError(f"length must be non-negative, got {d}")
        if d > 62:
            raise ValueError(f"int64 codes support d <= 62, got {d}")
        table = np.array(self.table, dtype=np.int64)
        codes = np.zeros(1, dtype=np.int64)
        states = np.zeros(1, dtype=np.int64)
        forbidden = self.forbidden
        for _ in range(d):
            next0 = table[states, 0]
            next1 = table[states, 1]
            keep0 = next0 != forbidden
            keep1 = next1 != forbidden
            doubled = codes << 1
            codes = np.concatenate([doubled[keep0], (doubled | 1)[keep1]])
            states = np.concatenate([next0[keep0], next1[keep1]])
            order = np.argsort(codes, kind="stable")
            codes, states = codes[order], states[order]
        return codes

    # -- counting ------------------------------------------------------------

    def transfer_matrix(self) -> List[List[int]]:
        """Transfer matrix over the live states (cf. the KMP twin)."""
        m = self.forbidden
        mat = [[0] * m for _ in range(m)]
        for s in range(m):
            for bit in (0, 1):
                t = self.table[s][bit]
                if t != m:
                    mat[s][t] += 1
        return mat

    def count_vertices(self, d: int) -> int:
        """``|V(Q_d(F))|`` by matrix power -- exact for huge ``d``."""
        if d < 0:
            raise ValueError(f"length must be non-negative, got {d}")
        power = matrix_power(self.transfer_matrix(), d)
        return sum(power[0])

    def count_edges(self, d: int) -> int:
        """``|E(Q_d(F))|`` by the streaming pair DP (cf. the KMP twin).

        ``O(states^2)`` memory whatever ``d`` is: the forward sweep
        carries prefix weights and live word-pair weights instead of
        materializing a suffix table per position.
        """
        if d < 0:
            raise ValueError(f"length must be non-negative, got {d}")
        from repro.words.counting import _count_edges_streaming

        return _count_edges_streaming(self.table, self.forbidden, d)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MultiFactorAutomaton({list(self.factors)!r}, states={self.num_states})"
