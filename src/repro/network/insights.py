"""Rule-driven insight engine over sweep output.

A sweep grid answers the paper's question -- *where does each topology
saturate, and who wins?* -- but the answer is spread across hundreds of
:class:`~repro.network.sweep.SweepRecord` rows, and reading it off a CSV
is a manual job.  This module automates the reading: a small registry of
**rules**, each a pure function over the sweep's saturation curves and
raw records, each emitting zero or more typed :class:`Insight` findings:

- ``saturation-knee`` -- per curve, the knee load (first offered load
  whose mean latency exceeds :data:`KNEE_FACTOR` x the low-load
  baseline) and the peak sustained throughput; the curve's one-line
  summary;
- ``deadlock`` -- an **alert** for every curve cell where any seed's run
  deadlocked (wormhole/VCT configurations that wedge are a verdict, not
  a statistic to average away);
- ``cycle-cap`` -- a **warning** for cells with stalled packets but no
  deadlock: the run hit its cycle cap, so latency columns are
  truncation-biased and the cap should rise;
- ``fault-degradation`` -- pairs each faulted curve with its unfaulted
  baseline (same topology/router/pattern/flow) and warns when delivery
  degrades by more than :data:`DEGRADATION_DELTA` at any common load;
- ``tenant-starvation`` -- parses the per-tenant ``tenants`` column of
  workload records and warns when QoS arbitration starves a tenant (its
  delivery rate trails the best tenant's by :data:`STARVATION_DELTA`);
- ``verdict`` -- the paper's comparison, automated: within each
  (router, pattern, faults, flow) scenario containing both a hypercube
  (``Q_<d>``) and at least one (generalized) Fibonacci cube, compare
  knee loads and peak throughput and declare which family saturates
  later;
- ``analytic-divergence`` -- a **warning** when a uniform, unfaulted,
  store-and-forward curve's simulated knee lands *above*
  :data:`ANALYTIC_KNEE_RATIO` x the topology's analytic saturation
  bound ``theta*`` (:mod:`repro.analytic.bounds`): the simulator claims
  more cross-bisection bandwidth than the wiring has, so the model and
  the machine disagree.

:func:`analyze` runs every rule and returns a **stable, versioned JSON
report**: no timestamps, insights sorted deterministically, canonical
float reprs -- byte-identical for byte-identical input records, which
the golden-fixture test enforces.  The ``repro insights <sweep.json>``
CLI loads records from a sweep's JSON or CSV dump and renders the report
as text or JSON.

The architecture deliberately mirrors a production observability stack:
rules are data (name, severity, detector), the report is a wire format,
and thresholds are module constants a future config layer can override.
"""

from __future__ import annotations

import csv
import json
import re
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analytic.bounds import analytic_saturation_bound
from repro.network.sweep import CurvePoint, SweepRecord, saturation_curves

__all__ = [
    "ANALYTIC_KNEE_RATIO",
    "DEGRADATION_DELTA",
    "Insight",
    "KNEE_FACTOR",
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "RULES",
    "STARVATION_DELTA",
    "analyze",
    "load_records",
    "render_text",
    "report_to_json",
    "rule",
]

REPORT_FORMAT = "repro-insights"
REPORT_VERSION = 1

# Latency multiple over the lowest-load baseline that marks saturation:
# the knee is the first load whose mean latency exceeds this factor.
KNEE_FACTOR = 3.0
# Delivery-rate drop (vs the unfaulted baseline, at any common load)
# that counts as fault degradation worth flagging.
DEGRADATION_DELTA = 0.05
# Delivery-rate gap between the best and worst tenant of one workload
# record that counts as QoS starvation.
STARVATION_DELTA = 0.15
# Simulated knee loads above this multiple of the analytic saturation
# bound theta* are flagged as model/simulator divergence (knees are
# quantized up to the next grid load, hence a band above 1, matching
# the crosscheck driver's KNEE_TOLERANCE).
ANALYTIC_KNEE_RATIO = 1.25

SEVERITIES = ("info", "warning", "alert")


@dataclass(frozen=True)
class Insight:
    """One finding: which rule fired, how loud, where, and the numbers.

    ``scope`` pins the finding to its slice of the grid (curve key
    elements, loads, tenant names -- string keys, JSON-able values);
    ``data`` carries the evidence (numbers a dashboard would plot).
    Both are plain dicts so the report serialises canonically.
    """

    rule: str
    severity: str
    scope: Dict[str, Any]
    message: str
    data: Dict[str, Any]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "scope": self.scope,
            "message": self.message,
            "data": self.data,
        }


# rule name -> detector(curves, records) -> insights
RULES: Dict[str, Callable[..., List[Insight]]] = {}

CurveKey = Tuple[str, str, str, str, str, str]
Curves = Dict[CurveKey, List[CurvePoint]]


def rule(name: str) -> Callable:
    """Register an insight rule.  Detectors take ``(curves, records)``
    and return a list of :class:`Insight`; registration order is the
    tie-break-free report order (insights also sort by scope)."""

    def deco(fn: Callable[..., List[Insight]]) -> Callable[..., List[Insight]]:
        if name in RULES:
            raise ValueError(f"duplicate insight rule {name!r}")
        RULES[name] = fn
        return fn

    return deco


def _scope_of(key: CurveKey) -> Dict[str, Any]:
    return {
        "topology": key[0],
        "router": key[1],
        "pattern": key[2],
        "faults": key[3],
        "flow": key[4],
        "collective": key[5],
    }


def knee_of(curve: Sequence[CurvePoint]) -> Optional[float]:
    """The curve's saturation knee: the first load whose mean latency
    exceeds :data:`KNEE_FACTOR` x the lowest-load latency.  ``None``
    when the curve never saturates (or is too short / flat to tell)."""
    if len(curve) < 2:
        return None
    base = curve[0].avg_latency
    if base <= 0:
        return None
    for pt in curve[1:]:
        if pt.avg_latency > KNEE_FACTOR * base:
            return pt.load
    return None


@rule("saturation-knee")
def _saturation_knee(curves: Curves, records: Sequence[SweepRecord]) -> List[Insight]:
    out: List[Insight] = []
    for key in curves:
        curve = curves[key]
        if len(curve) < 2:
            continue
        knee = knee_of(curve)
        peak = max(pt.throughput for pt in curve)
        base = curve[0].avg_latency
        if knee is None:
            msg = (
                f"{key[0]} under {key[2]} traffic shows no saturation knee "
                f"up to load {curve[-1].load!r} "
                f"(peak throughput {peak:.3f} pkt/cycle)"
            )
        else:
            msg = (
                f"{key[0]} under {key[2]} traffic saturates at load "
                f"{knee!r}: mean latency exceeds {KNEE_FACTOR}x the "
                f"low-load baseline ({base:.2f} cycles); peak throughput "
                f"{peak:.3f} pkt/cycle"
            )
        out.append(Insight(
            rule="saturation-knee",
            severity="info",
            scope=_scope_of(key),
            message=msg,
            data={
                "knee_load": knee,
                "base_latency": base,
                "peak_throughput": peak,
                "loads": [pt.load for pt in curve],
            },
        ))
    return out


@rule("deadlock")
def _deadlock(curves: Curves, records: Sequence[SweepRecord]) -> List[Insight]:
    out: List[Insight] = []
    for key in curves:
        hit = [pt for pt in curves[key] if pt.deadlock_rate > 0]
        if not hit:
            continue
        loads = [pt.load for pt in hit]
        worst = max(pt.deadlock_rate for pt in hit)
        out.append(Insight(
            rule="deadlock",
            severity="alert",
            scope=_scope_of(key),
            message=(
                f"{key[0]} deadlocks under {key[2]} traffic with flow "
                f"config {key[4] or 'sf'!r} at load(s) {loads!r} "
                f"(up to {worst:.0%} of seeds); this configuration "
                "wedges, not saturates"
            ),
            data={"loads": loads, "max_deadlock_rate": worst},
        ))
    return out


@rule("cycle-cap")
def _cycle_cap(curves: Curves, records: Sequence[SweepRecord]) -> List[Insight]:
    out: List[Insight] = []
    for key in curves:
        hit = [
            pt for pt in curves[key]
            if pt.stalled > 0 and pt.deadlock_rate == 0
        ]
        if not hit:
            continue
        loads = [pt.load for pt in hit]
        worst = max(pt.stalled for pt in hit)
        out.append(Insight(
            rule="cycle-cap",
            severity="warning",
            scope=_scope_of(key),
            message=(
                f"{key[0]} under {key[2]} traffic left packets stalled "
                f"(up to {worst:.1f} per run) at load(s) {loads!r} without "
                "deadlocking: the run hit its cycle cap, so latency "
                "columns are truncation-biased -- raise max_cycles"
            ),
            data={"loads": loads, "max_stalled": worst},
        ))
    return out


@rule("fault-degradation")
def _fault_degradation(
    curves: Curves, records: Sequence[SweepRecord]
) -> List[Insight]:
    out: List[Insight] = []
    baselines = {
        (k[0], k[1], k[2], k[4], k[5]): v
        for k, v in curves.items() if not k[3]
    }
    for key in curves:
        if not key[3]:
            continue
        base = baselines.get((key[0], key[1], key[2], key[4], key[5]))
        if base is None:
            continue
        base_by_load = {pt.load: pt for pt in base}
        drops = [
            (pt.load,
             base_by_load[pt.load].delivery_rate - pt.delivery_rate)
            for pt in curves[key] if pt.load in base_by_load
        ]
        bad = [(ld, d) for ld, d in drops if d > DEGRADATION_DELTA]
        if not bad:
            continue
        worst_load, worst = max(bad, key=lambda t: t[1])
        out.append(Insight(
            rule="fault-degradation",
            severity="warning",
            scope=_scope_of(key),
            message=(
                f"{key[0]} under fault plan {key[3]!r} delivers "
                f"{worst:.1%} fewer packets than the unfaulted baseline "
                f"at load {worst_load!r} ({len(bad)} load(s) degraded "
                f"beyond {DEGRADATION_DELTA:.0%})"
            ),
            data={
                "degraded_loads": [ld for ld, _ in bad],
                "worst_load": worst_load,
                "worst_delivery_drop": worst,
            },
        ))
    return out


@rule("tenant-starvation")
def _tenant_starvation(
    curves: Curves, records: Sequence[SweepRecord]
) -> List[Insight]:
    out: List[Insight] = []
    for rec in records:
        if not rec.tenants:
            continue
        try:
            rows = json.loads(rec.tenants)
        except json.JSONDecodeError:
            continue
        rates = {
            r["tenant"]: (r["delivered"] / r["injected"] if r["injected"] else 1.0)
            for r in rows
        }
        if len(rates) < 2:
            continue
        best = max(rates.values())
        starved = sorted(
            t for t, rate in rates.items()
            if best - rate > STARVATION_DELTA
        )
        if not starved:
            continue
        worst = min(rates[t] for t in starved)
        out.append(Insight(
            rule="tenant-starvation",
            severity="warning",
            scope={
                "topology": rec.topology,
                "workload": rec.workload,
                "load": rec.load,
                "seed": rec.seed,
            },
            message=(
                f"workload {rec.workload!r} on {rec.topology} at load "
                f"{rec.load!r} (seed {rec.seed}) starves tenant(s) "
                f"{starved}: delivery {worst:.1%} vs the best tenant's "
                f"{best:.1%} -- QoS arbitration is squeezing them out"
            ),
            data={
                "starved": starved,
                "delivery_rates": {t: rates[t] for t in sorted(rates)},
            },
        ))
    return out


def _is_hypercube(topology: str) -> bool:
    # plain "Q_<d>" is the hypercube; "Q_<d>(f)" names the generalized
    # Fibonacci cube avoiding factor f
    return bool(re.fullmatch(r"Q_\d+", topology))


@rule("verdict")
def _verdict(curves: Curves, records: Sequence[SweepRecord]) -> List[Insight]:
    """The paper's comparison: hypercube vs (generalized) Fibonacci cube
    per scenario, judged on knee load first (saturating later wins),
    peak throughput as the tie-break."""
    scenarios: Dict[Tuple[str, str, str, str, str], Dict[str, List[CurvePoint]]] = {}
    for key, curve in curves.items():
        scenarios.setdefault(
            (key[1], key[2], key[3], key[4], key[5]), {}
        )[key[0]] = curve
    out: List[Insight] = []
    for scen in sorted(scenarios):
        by_topo = scenarios[scen]
        cubes = sorted(t for t in by_topo if _is_hypercube(t))
        fibs = sorted(t for t in by_topo if not _is_hypercube(t))
        if not cubes or not fibs:
            continue
        stats: Dict[str, Dict[str, Any]] = {}
        for t, curve in by_topo.items():
            stats[t] = {
                "knee_load": knee_of(curve),
                "peak_throughput": max(pt.throughput for pt in curve),
            }

        def rank(t: str) -> Tuple[float, float]:
            knee = stats[t]["knee_load"]
            # no knee observed = survived the whole load axis
            return (knee if knee is not None else float("inf"),
                    stats[t]["peak_throughput"])

        best_cube = max(cubes, key=rank)
        best_fib = max(fibs, key=rank)
        if rank(best_fib) > rank(best_cube):
            winner, loser, family = best_fib, best_cube, "Fibonacci-cube"
        elif rank(best_cube) > rank(best_fib):
            winner, loser, family = best_cube, best_fib, "hypercube"
        else:
            winner = loser = ""
            family = "tied"
        scope = {
            "router": scen[0], "pattern": scen[1], "faults": scen[2],
            "flow": scen[3], "collective": scen[4],
            "hypercubes": cubes, "fibonacci": fibs,
        }
        if family == "tied":
            msg = (
                f"verdict under {scen[1]} traffic: {cubes} and {fibs} are "
                "tied on knee load and peak throughput"
            )
        else:
            wk, lk = stats[winner]["knee_load"], stats[loser]["knee_load"]
            msg = (
                f"verdict under {scen[1]} traffic: {winner} "
                f"({family} family) saturates later than {loser} "
                f"(knee {wk!r} vs {lk!r}; peak throughput "
                f"{stats[winner]['peak_throughput']:.3f} vs "
                f"{stats[loser]['peak_throughput']:.3f} pkt/cycle)"
            )
        out.append(Insight(
            rule="verdict",
            severity="info",
            scope=scope,
            message=msg,
            data={"winner": winner, "family": family, "stats": stats},
        ))
    return out


@rule("analytic-divergence")
def _analytic_divergence(
    curves: Curves, records: Sequence[SweepRecord]
) -> List[Insight]:
    """Predict-then-verify: a uniform-traffic curve whose simulated knee
    exceeds :data:`ANALYTIC_KNEE_RATIO` x the topology's analytic
    saturation bound claims bandwidth the bisection does not have."""
    out: List[Insight] = []
    for key in curves:
        topology, _router, pattern, faults, flow, collective = key
        # the channel-load model assumes uniform open-loop traffic on
        # the intact store-and-forward network
        if pattern != "uniform" or faults or flow or collective:
            continue
        bound = analytic_saturation_bound(topology)
        if bound <= 0:
            continue
        knee = knee_of(curves[key])
        if knee is None or knee <= ANALYTIC_KNEE_RATIO * bound:
            continue
        out.append(Insight(
            rule="analytic-divergence",
            severity="warning",
            scope=_scope_of(key),
            message=(
                f"{topology} under uniform traffic shows a simulated "
                f"saturation knee at load {knee!r}, "
                f"{knee / bound:.2f}x the analytic bound "
                f"theta*={bound:.3f} (tolerance "
                f"{ANALYTIC_KNEE_RATIO}x): the simulator claims more "
                "cross-bisection bandwidth than the topology has -- "
                "model or simulator is wrong"
            ),
            data={
                "analytic_bound": bound,
                "knee_load": knee,
                "knee_ratio": knee / bound,
            },
        ))
    return out


def analyze(records: Sequence[SweepRecord]) -> Dict[str, Any]:
    """Run every registered rule and assemble the stable report.

    Deterministic by construction: no timestamps, insights ordered by
    (rule registration order, canonical scope encoding), every value a
    plain JSON type -- the same records always produce the same bytes
    when the report is dumped with sorted keys.
    """
    records = list(records)
    curves = saturation_curves(records)
    insights: List[Insight] = []
    rule_order = {name: i for i, name in enumerate(RULES)}
    for name, detector in RULES.items():
        insights.extend(detector(curves, records))
    insights.sort(key=lambda ins: (
        rule_order[ins.rule],
        json.dumps(ins.scope, sort_keys=True),
        ins.message,
    ))
    counts = {sev: 0 for sev in SEVERITIES}
    for ins in insights:
        counts[ins.severity] += 1
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "records": len(records),
        "curves": len(curves),
        "rules": list(RULES),
        "severity_counts": counts,
        "insights": [ins.to_payload() for ins in insights],
    }


def report_to_json(report: Mapping[str, Any]) -> str:
    """The report's one canonical serialisation (sorted keys, two-space
    indent, trailing newline): what ``repro insights --json`` prints and
    what the golden-fixture test byte-compares."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_text(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of an :func:`analyze` report: alerts
    first, then warnings, then info, each prefixed with its rule tag."""
    lines = [
        f"{report['records']} records, {report['curves']} curves, "
        f"{len(report['insights'])} insights "
        f"({report['severity_counts']['alert']} alerts, "
        f"{report['severity_counts']['warning']} warnings)"
    ]
    marker = {"alert": "!!", "warning": " !", "info": "  "}
    by_sev = sorted(
        report["insights"],
        key=lambda i: (SEVERITIES[::-1].index(i["severity"]),),
    )
    for ins in by_sev:
        lines.append(f"{marker[ins['severity']]} [{ins['rule']}] {ins['message']}")
    return "\n".join(lines)


# -- record loading ---------------------------------------------------------

_BOOL = {"True": True, "False": False, "true": True, "false": False}
_COERCE = {"str": str, "int": int, "float": float}
_FIELD_TYPES = {f.name: f.type for f in fields(SweepRecord)}


def _coerce_record(row: Mapping[str, Any]) -> SweepRecord:
    """One record from a parsed row, coercing CSV's all-string values
    (and JSON's int-for-float) onto the SweepRecord schema; unknown or
    missing columns raise, matching the cache's strictness."""
    if set(row) != set(_FIELD_TYPES):
        missing = sorted(set(_FIELD_TYPES) - set(row))
        unknown = sorted(set(row) - set(_FIELD_TYPES))
        raise ValueError(
            f"row does not match the SweepRecord schema "
            f"(missing {missing}, unknown {unknown})"
        )
    kwargs: Dict[str, Any] = {}
    for name, typ in _FIELD_TYPES.items():
        val = row[name]
        if typ == "bool":
            if isinstance(val, bool):
                kwargs[name] = val
            elif isinstance(val, str) and val in _BOOL:
                kwargs[name] = _BOOL[val]
            else:
                raise ValueError(f"field {name!r}: not a bool: {val!r}")
        else:
            try:
                kwargs[name] = _COERCE[typ](val)
            except (ValueError, TypeError):
                raise ValueError(
                    f"field {name!r}: cannot read {val!r} as {typ}"
                ) from None
    return SweepRecord(**kwargs)


def load_records(path: str) -> List[SweepRecord]:
    """Load sweep records from a ``repro sweep`` dump: a ``.json`` array
    of record objects or a ``.csv`` with the record header (the format
    is sniffed from the first byte, so extensions are advisory)."""
    with open(path, newline="") as fh:
        text = fh.read()
    head = text.lstrip()[:1]
    if head == "[":
        rows = json.loads(text)
        if not isinstance(rows, list):
            raise ValueError(f"{path!r}: expected a JSON array of records")
        return [_coerce_record(r) for r in rows]
    if head == "{":
        # a lone JSON object would otherwise fall through to the CSV
        # reader and silently parse as an empty record list
        raise ValueError(f"{path!r}: expected a JSON array of records")
    reader = csv.DictReader(text.splitlines())
    if reader.fieldnames is None or set(reader.fieldnames) != set(_FIELD_TYPES):
        raise ValueError(
            f"{path!r}: CSV header does not match the SweepRecord schema"
        )
    return [_coerce_record(row) for row in reader]
