"""The fused advance kernel: every cycle loop in one lock-step engine.

Before this module existed the repository carried three overlapping
per-cycle loops: the store-and-forward array loop in
:mod:`repro.network.simulator`, the wormhole/virtual-cut-through loop in
:mod:`repro.network.flowcontrol`, and the K-run lock-step batching loop
in :mod:`repro.network.batch` (which only knew how to batch
store-and-forward).  This module fuses them: **one** parameterised
kernel advances K independent replications -- any mix of switching
modes -- in a single cycle loop, and every vectorized entry point
(``VectorizedSimulator.run``, ``vectorized_flow_run``,
``BatchedSimulator.run_batch``) is now a thin wrapper over it with
``K = 1`` or ``K = many``.

Layout (the PR 5 batching discipline, extended to flow control):

- every replication owns a **disjoint id space** -- run ``k``'s directed
  links live in ``[link_base[k], link_base[k+1])`` and, in the pipelined
  modes, its extended channels (link x virtual channel) live in
  ``[ext_base[k], ext_base[k+1])`` -- so shared FIFO / buffer arrays can
  never leak packets, credits or VC allocations between runs;
- packets are renumbered globally by ``(inject_cycle, run, local pid)``,
  a stable sort that preserves each run's internal packet order, so
  every FIFO tie-break, link arbitration ("oldest packet wins the
  link") and VC claim ("smallest pid wins the free buffer") resolves
  exactly as it does in a solo run: those comparisons only ever happen
  between packets of one run, whose relative order the sort preserves;
- per-run accounting (arrivals, deliveries, in-flight drops, buffer
  occupancy high-water marks, last-busy cycles, credit-stall /
  deadlock state) lives in length-K arrays updated with grouped
  scatter-adds;
- per-run flow-control configuration is materialised as per-channel
  arrays (``cap_ext`` carries each run's ``buffer_depth``, the extended
  channel layout carries its ``num_vcs``), so wormhole and vct runs of
  different shapes co-batch freely;
- **deadlock** is detected per run, with the solo engine's exact
  predicate (no move, live packets, no pending injection, no future
  fault event): a deadlocked run is frozen, its buffers recycled, and
  the survivors keep advancing;
- the shared clock only jumps an idle gap when *every* run is
  quiescent, which changes nothing: an idle run's state is untouched by
  cycles it sits through, injections are processed at exactly their
  injection cycle in either regime, and all per-run accounting advances
  only on the run's own activity.

Every outcome is **bit-identical** to a sequential
``VectorizedSimulator.run`` of the same replication -- fault plans,
in-flight drops, deadlock detection and cycle-cap truncation included --
which ``tests/network/test_batch_equivalence.py`` and the
differential-fuzz batch pass enforce across all switching modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.faults import _NEVER
from repro.network.flowcontrol import (
    FlowControl,
    FlowOutcome,
    _validate_vct,
    link_dimension,
)
from repro.network.topology import Topology

__all__ = [
    "KernelRun",
    "run_fused",
]


@dataclass
class KernelRun:
    """One prepared replication, in the kernel's native array form.

    ``inject`` is stable-sorted ascending; ``first_link_at[p]`` is
    packet ``p``'s route-row offset into ``link_seq``; ``nf`` carries
    per-packet flit counts aligned with the sorted packets (all ones
    under store-and-forward).  Runs that share a route table should pass
    the *same* ``link_seq``/``link_offsets``/``link_codes`` objects so
    the kernel shares the derived channel arrays too.
    """

    flow: FlowControl
    inject: np.ndarray
    nhops: np.ndarray
    first_link_at: np.ndarray
    link_seq: np.ndarray
    link_offsets: np.ndarray
    link_codes: np.ndarray
    nf: np.ndarray
    link_dead: Dict[Tuple[int, int], int] = field(default_factory=dict)


def _fifo_append(
    succ: np.ndarray,
    qhead: np.ndarray,
    qtail: np.ndarray,
    qlen: np.ndarray,
    pids: np.ndarray,
    links: np.ndarray,
) -> None:
    """Append packets to per-link FIFOs stored as intrusive linked lists
    (``qhead``/``qtail``/``qlen`` per link, a ``succ`` pointer per
    packet); arrival order within one call is ``(link, pid)``.

    This *is* the store-and-forward queue discipline every caller of the
    kernel relies on -- one implementation, so the tie-break can never
    drift between solo and batched runs.
    """
    order = np.lexsort((pids, links))
    p, ln = pids[order], links[order]
    boundary = np.ones(p.size, dtype=bool)
    boundary[1:] = ln[1:] != ln[:-1]
    succ[p] = -1
    inner = ~boundary[1:]
    succ[p[:-1][inner]] = p[1:][inner]
    glinks = ln[boundary]
    gheads = p[boundary]
    gtails = p[np.concatenate((boundary[1:], [True]))]
    starts = np.flatnonzero(boundary)
    gsizes = np.diff(np.concatenate((starts, [p.size])))
    was_empty = qhead[glinks] == -1
    qhead[glinks[was_empty]] = gheads[was_empty]
    succ[qtail[glinks[~was_empty]]] = gheads[~was_empty]
    qtail[glinks] = gtails
    qlen[glinks] += gsizes


def _link_arrays(num_nodes, table) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row directed-link-id sequences and the link code book:
    ``(link_seq, link_offsets, link_codes)``.

    Link ids are ranks of the ``u * n + v`` codes of the directed edges
    actually used, so the per-cycle ``bincount`` stays dense;
    ``link_codes`` is the sorted code array those ranks index (used to
    resolve fault plans onto link ids).
    """
    data, offsets = table.route_data, table.route_offsets
    if data.size == 0:
        return (np.empty(0, dtype=np.int64),
                np.zeros(len(offsets), dtype=np.int64),
                np.empty(0, dtype=np.int64))
    last = np.zeros(data.size, dtype=bool)
    last[offsets[1:] - 1] = True
    valid = ~last[:-1]
    codes = data[:-1][valid] * num_nodes + data[1:][valid]
    uniq = np.unique(codes)
    link_seq = np.searchsorted(uniq, codes)
    lengths = offsets[1:] - offsets[:-1]
    link_offsets = np.zeros(len(offsets), dtype=np.int64)
    np.cumsum(lengths - 1, out=link_offsets[1:])
    return link_seq, link_offsets, uniq


def _ext_channels(
    topo: Topology,
    link_seq: np.ndarray,
    link_offsets: np.ndarray,
    link_codes: np.ndarray,
    num_vcs: int,
) -> np.ndarray:
    """Per-route-step extended-channel ids (``link * V + vc``).

    The VC of a hop follows the router's dimension order on
    word-addressed topologies (the flipped bit position modulo ``V``)
    and the hop index elsewhere -- exactly
    :func:`repro.network.flowcontrol.vc_of_hop`, in array form.
    """
    if link_seq.size == 0:
        return np.empty(0, dtype=np.int64)
    if num_vcs == 1:
        return link_seq
    n = topo.num_nodes
    if topo.word_length is not None:
        num_links = int(link_seq.max()) + 1
        dim_of_link = np.empty(num_links, dtype=np.int64)
        for li, code in enumerate(link_codes):
            u, v = int(code) // n, int(code) % n
            dim_of_link[li] = link_dimension(topo, u, v)
        return link_seq * num_vcs + dim_of_link[link_seq] % num_vcs
    seg_lengths = np.diff(link_offsets)
    pos_within = np.arange(link_seq.size, dtype=np.int64) - np.repeat(
        link_offsets[:-1], seg_lengths
    )
    return link_seq * num_vcs + pos_within % num_vcs


def run_fused(
    topo: Topology,
    runs: Sequence[KernelRun],
    max_cycles: int = 100000,
    backend=None,
) -> List[FlowOutcome]:
    """Advance every run in one shared cycle loop; one outcome per run.

    Runs partition by discipline into at most two mode engines (the
    store-and-forward FIFO stepper and the finite-buffer flow-control
    stepper), both supplied by the selected *backend*
    (:mod:`repro.network.backends`: a name, a backend instance, or
    ``None`` for ``$REPRO_BACKEND`` / ``auto``); the kernel drives both
    against one clock.  The clock advances by one cycle whenever any run
    moved, jumps to the earliest pending event (an injection anywhere,
    or a scheduled fault of a run with flits in flight) when every run
    is quiescent, and stops when no run has work left or the cap is hit.
    An engine that is alone in the batch and advertises
    ``supports_run_alone`` takes over the whole clock loop (the native
    backend's fast path).  Idle cycles a run sits through are no-ops for
    it by construction, so each outcome is bit-identical to the run
    advancing alone -- on every backend.
    """
    from repro.network.backends import resolve_backend

    be = resolve_backend(backend)
    results: List[Optional[FlowOutcome]] = [None] * len(runs)
    sf_idx: List[int] = []
    fl_idx: List[int] = []
    for i, run in enumerate(runs):
        if run.flow.pipelined:
            _validate_vct(run.flow, run.nf)
        if run.inject.size == 0:
            results[i] = FlowOutcome(
                cycles=1, delivered_at=np.empty(0, dtype=np.int64),
                max_queue=0, dropped_in_flight=0, stalled=0, deadlocked=False,
            )
        elif run.flow.pipelined:
            fl_idx.append(i)
        else:
            sf_idx.append(i)
    engines: List[object] = []
    groups: List[List[int]] = []
    if sf_idx:
        engines.append(be.sf_engine(topo, [runs[i] for i in sf_idx]))
        groups.append(sf_idx)
    if fl_idx:
        engines.append(be.flow_engine(topo, [runs[i] for i in fl_idx]))
        groups.append(fl_idx)
    if engines:
        if len(engines) == 1 and getattr(
            engines[0], "supports_run_alone", False
        ):
            engines[0].run_alone(max_cycles)
        else:
            cycle = 0
            while cycle < max_cycles:
                moved = False
                for eng in engines:
                    if eng.step(cycle):
                        moved = True
                if moved:
                    cycle += 1
                    continue
                events = [
                    e for eng in engines for e in eng.next_events(cycle)
                ]
                if not events:
                    break
                cycle = min(min(events), max_cycles)
        for eng, idxs in zip(engines, groups):
            for i, out in zip(idxs, eng.finalize(max_cycles)):
                results[i] = out
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Store-and-forward mode engine: intrusive per-link FIFOs, K runs
# ---------------------------------------------------------------------------


class _SfEngine:
    """K store-and-forward runs over shared flat FIFO arrays.

    This is PR 5's lock-step loop recast as a clock-driven stepper: the
    state construction (disjoint link-id spaces, global pid order,
    per-run accounting arrays) is unchanged, only the time-advance
    decisions moved up into :func:`run_fused`'s shared driver.
    """

    def __init__(self, topo: Topology, runs: Sequence[KernelRun]):
        n = topo.num_nodes
        K = len(runs)
        self.K = K
        seq_parts: List[np.ndarray] = []
        link_counts: List[int] = []
        firsts: List[np.ndarray] = []
        nhops_parts: List[np.ndarray] = []
        inject_parts: List[np.ndarray] = []
        seq_base = 0
        link_base = [0]
        any_dead = False
        for r in runs:
            num_links = int(r.link_seq.max()) + 1 if r.link_seq.size else 1
            seq_parts.append(r.link_seq + link_base[-1])
            firsts.append(r.first_link_at + seq_base)
            nhops_parts.append(r.nhops)
            inject_parts.append(r.inject)
            seq_base += r.link_seq.size
            link_base.append(link_base[-1] + num_links)
            link_counts.append(num_links)
            any_dead = any_dead or bool(r.link_dead)
        self.gl_seq = np.concatenate(seq_parts)
        num_links_total = link_base[-1]
        self.run_of_link = np.repeat(
            np.arange(K, dtype=np.int64),
            np.asarray(link_counts, dtype=np.int64),
        )
        self.dead_at = None
        if any_dead:
            self.dead_at = np.full(num_links_total, _NEVER, dtype=np.int64)
            for j, r in enumerate(runs):
                if not r.link_dead:
                    continue
                for (u, v), c in r.link_dead.items():
                    code = u * n + v
                    i = int(np.searchsorted(r.link_codes, code))
                    if i < r.link_codes.size and r.link_codes[i] == code:
                        self.dead_at[link_base[j] + i] = c

        # global packet order: stable sort by injection cycle over the
        # run-major concatenation = (inject, run, local pid), so each
        # run's internal order -- and every FIFO tie-break -- survives
        sizes = np.asarray([a.size for a in inject_parts], dtype=np.int64)
        order = np.argsort(np.concatenate(inject_parts), kind="stable")
        self.inject = np.concatenate(inject_parts)[order]
        self.nhops = np.concatenate(nhops_parts)[order]
        self.first_link_at = np.concatenate(firsts)[order]
        self.run_of = np.repeat(np.arange(K, dtype=np.int64), sizes)[order]
        self.num = int(self.inject.size)

        self.delivered_at = np.full(self.num, -1, dtype=np.int64)
        self.pos = np.zeros(self.num, dtype=np.int64)
        self.succ = np.full(self.num, -1, dtype=np.int64)
        self.qhead = np.full(num_links_total, -1, dtype=np.int64)
        self.qtail = np.full(num_links_total, -1, dtype=np.int64)
        self.qlen = np.zeros(num_links_total, dtype=np.int64)

        # per-run accounting (the scalars of the solo loop, as arrays)
        self.in_flight_r = np.zeros(K, dtype=np.int64)
        self.last_busy_r = np.full(K, -1, dtype=np.int64)
        self.maxq_r = np.zeros(K, dtype=np.int64)
        self.drop_r = np.zeros(K, dtype=np.int64)
        self.in_flight = 0
        self.next_pid = 0

    def step(self, cycle: int) -> bool:
        moved = False
        # inject every packet whose cycle has come
        if self.next_pid < self.num and self.inject[self.next_pid] <= cycle:
            hi = int(np.searchsorted(self.inject, cycle, side="right"))
            fresh = np.arange(self.next_pid, hi, dtype=np.int64)
            self.next_pid = hi
            zero_hop = fresh[self.nhops[fresh] == 0]
            self.delivered_at[zero_hop] = self.inject[zero_hop]
            moving_fresh = fresh[self.nhops[fresh] > 0]
            if moving_fresh.size:
                _fifo_append(self.succ, self.qhead, self.qtail, self.qlen,
                             moving_fresh,
                             self.gl_seq[self.first_link_at[moving_fresh]])
                self.in_flight_r += np.bincount(
                    self.run_of[moving_fresh], minlength=self.K
                )
                self.in_flight += int(moving_fresh.size)
            # injecting marks the run busy this cycle, zero-hop included
            self.last_busy_r[np.unique(self.run_of[fresh])] = cycle
            moved = True
        if self.in_flight:
            # a run with packets in flight is busy this cycle even if a
            # fault empties it below (matches the solo engine)
            self.last_busy_r[self.in_flight_r > 0] = cycle
            busy = np.flatnonzero(self.qlen)
            # queue depth per run, measured before any fault drop
            np.maximum.at(self.maxq_r, self.run_of_link[busy], self.qlen[busy])
            if self.dead_at is not None:
                alive = self.dead_at[busy] > cycle
                if not alive.all():
                    slain = busy[~alive]
                    lost = self.qlen[slain]
                    np.add.at(self.drop_r, self.run_of_link[slain], lost)
                    np.subtract.at(
                        self.in_flight_r, self.run_of_link[slain], lost
                    )
                    self.in_flight -= int(lost.sum())
                    self.qhead[slain] = -1
                    self.qtail[slain] = -1
                    self.qlen[slain] = 0
                    busy = busy[alive]
            served = self.qhead[busy]
            self.qhead[busy] = self.succ[served]
            self.qlen[busy] -= 1
            self.pos[served] += 1
            finished = self.pos[served] == self.nhops[served]
            done = served[finished]
            moving = served[~finished]
            self.delivered_at[done] = cycle + 1
            if done.size:
                self.in_flight_r -= np.bincount(
                    self.run_of[done], minlength=self.K
                )
                self.in_flight -= int(done.size)
            if moving.size:
                _fifo_append(
                    self.succ, self.qhead, self.qtail, self.qlen, moving,
                    self.gl_seq[self.first_link_at[moving] + self.pos[moving]],
                )
            moved = True
        return moved

    def next_events(self, cycle: int) -> List[int]:
        # store-and-forward always progresses while anything is queued,
        # so the only thing worth waking for is the next injection
        if self.next_pid < self.num:
            return [int(self.inject[self.next_pid])]
        return []

    def finalize(self, max_cycles: int) -> List[FlowOutcome]:
        outs = []
        for j in range(self.K):
            # a run's packets in ascending global pid order are exactly
            # its packets in injection order
            pids = np.flatnonzero(self.run_of == j)
            d = self.delivered_at[pids]
            delivered = int((d >= 0).sum())
            stalled = int(pids.size) - delivered - int(self.drop_r[j])
            # a run with nothing left pending ended at its own last busy
            # cycle; anything still stuck means the shared cap cut it off
            cycles = (
                max(int(self.last_busy_r[j]) + 1, 1) if stalled == 0
                else max(max_cycles, 1)
            )
            outs.append(FlowOutcome(
                cycles=cycles,
                delivered_at=d,
                max_queue=int(self.maxq_r[j]),
                dropped_in_flight=int(self.drop_r[j]),
                stalled=stalled,
                deadlocked=False,
            ))
        return outs


# ---------------------------------------------------------------------------
# Flow-control mode engine: finite (link x VC) buffers, K runs
# ---------------------------------------------------------------------------


class _FlowEngine:
    """K wormhole / virtual-cut-through runs over shared buffer arrays.

    The per-cycle body is ``vectorized_flow_run``'s loop with run-indexed
    accounting bolted on: per-run buffer capacities live in ``cap_ext``,
    physical-link arbitration resolves through ``phys_of_ext`` (VC
    counts differ per run, so ids cannot simply divide by V), and the
    solo loop's scalar bookkeeping (arrivals, deliveries, drops, the
    deadlock verdict) becomes length-K arrays.  A run that deadlocks is
    frozen exactly where the solo engine would have stopped it -- same
    predicate, same cycle -- and its buffers are recycled so the
    surviving runs pay nothing for it.
    """

    def __init__(self, topo: Topology, runs: Sequence[KernelRun]):
        n = topo.num_nodes
        K = len(runs)
        self.K = K
        ext_cache: Dict[Tuple[int, int], np.ndarray] = {}
        gext_parts: List[np.ndarray] = []
        firsts: List[np.ndarray] = []
        phys_parts: List[np.ndarray] = []
        cap_parts: List[np.ndarray] = []
        runext_parts: List[np.ndarray] = []
        inject_parts: List[np.ndarray] = []
        nhops_parts: List[np.ndarray] = []
        nf_parts: List[np.ndarray] = []
        ext_base = [0]
        seq_base = 0
        link_base = 0
        any_dead = False
        death_cycles: List[np.ndarray] = []
        for j, r in enumerate(runs):
            V = r.flow.num_vcs
            key = (id(r.link_seq), V)
            if key not in ext_cache:
                ext_cache[key] = _ext_channels(
                    topo, r.link_seq, r.link_offsets, r.link_codes, V
                )
            num_links = int(r.link_seq.max()) + 1 if r.link_seq.size else 1
            num_ext = num_links * V
            gext_parts.append(ext_cache[key] + ext_base[-1])
            firsts.append(r.first_link_at + seq_base)
            phys_parts.append(
                link_base + np.arange(num_ext, dtype=np.int64) // V
            )
            cap_parts.append(
                np.full(num_ext, r.flow.buffer_depth, dtype=np.int64)
            )
            runext_parts.append(np.full(num_ext, j, dtype=np.int64))
            inject_parts.append(r.inject)
            nhops_parts.append(r.nhops)
            nf_parts.append(r.nf)
            seq_base += r.link_seq.size
            link_base += num_links
            ext_base.append(ext_base[-1] + num_ext)
            dc = np.asarray(sorted(set(r.link_dead.values())), dtype=np.int64)
            death_cycles.append(dc)
            any_dead = any_dead or bool(r.link_dead)
        self.ext_base = ext_base
        num_ext_total = ext_base[-1]
        self.gext_seq = np.concatenate(gext_parts)
        self.phys_of_ext = np.concatenate(phys_parts)
        self.cap_ext = np.concatenate(cap_parts)
        self.run_of_ext = np.concatenate(runext_parts)
        self.death_cycles = death_cycles
        self.max_death = np.asarray(
            [int(dc[-1]) if dc.size else -1 for dc in death_cycles],
            dtype=np.int64,
        )
        self.dead_at_ext = None
        if any_dead:
            # every (link, VC) buffer of a dying link dies with it; a
            # plan may name links no route uses -- they still schedule
            # wake-up events (max_death) but resolve to no buffer here
            self.dead_at_ext = np.full(num_ext_total, _NEVER, dtype=np.int64)
            for j, r in enumerate(runs):
                if not r.link_dead:
                    continue
                V = r.flow.num_vcs
                for (u, v), c in r.link_dead.items():
                    code = u * n + v
                    li = int(np.searchsorted(r.link_codes, code))
                    if li < r.link_codes.size and r.link_codes[li] == code:
                        lo = ext_base[j] + li * V
                        self.dead_at_ext[lo:lo + V] = np.minimum(
                            self.dead_at_ext[lo:lo + V], c
                        )

        # global packet order: (inject, run, local pid), as in sf
        sizes = np.asarray([a.size for a in inject_parts], dtype=np.int64)
        order = np.argsort(np.concatenate(inject_parts), kind="stable")
        self.inject = np.concatenate(inject_parts)[order]
        self.nhops = np.concatenate(nhops_parts)[order]
        self.gfirst = np.concatenate(firsts)[order]
        self.run_of = np.repeat(np.arange(K, dtype=np.int64), sizes)[order]
        self.num = int(self.inject.size)
        self.totals = np.bincount(self.run_of, minlength=K)

        self.holder = np.full(num_ext_total, -1, dtype=np.int64)
        self.occ = np.zeros(num_ext_total, dtype=np.int64)
        self.hopb = np.zeros(num_ext_total, dtype=np.int64)
        self.head = np.zeros(self.num, dtype=np.int64)
        self.srcf = np.concatenate(nf_parts)[order].astype(np.int64)
        self.tailb = np.zeros(self.num, dtype=np.int64)
        self.delivered_at = np.full(self.num, -1, dtype=np.int64)

        self.injecting = np.empty(0, dtype=np.int64)
        self.next_pid = 0
        # per-run accounting (the solo loop's scalars, as arrays)
        self.arrived = np.zeros(K, dtype=np.int64)
        self.delivered_r = np.zeros(K, dtype=np.int64)
        self.dropped_r = np.zeros(K, dtype=np.int64)
        self.maxq_r = np.zeros(K, dtype=np.int64)
        self.last_busy_r = np.full(K, -1, dtype=np.int64)
        self.deadlocked_r = np.zeros(K, dtype=bool)
        self.active = np.ones(K, dtype=bool)

    def step(self, cycle: int) -> bool:
        if not self.active.any():
            return False
        K = self.K
        moved_r = np.zeros(K, dtype=bool)
        # 1. dying links take down every packet holding one of their
        #    buffers -- the whole packet, wherever its other flits sit
        if self.dead_at_ext is not None:
            held = self.holder >= 0
            slain = held & (self.dead_at_ext <= cycle)
            if slain.any():
                victims = np.unique(self.holder[slain])
                victim_bufs = held & np.isin(self.holder, victims)
                self.holder[victim_bufs] = -1
                self.occ[victim_bufs] = 0
                self.srcf[victims] = 0
                vruns = self.run_of[victims]
                self.dropped_r += np.bincount(vruns, minlength=K)
                moved_r[vruns] = True
        # 2. arrivals whose injection cycle has come
        if self.next_pid < self.num and self.inject[self.next_pid] <= cycle:
            hi = int(np.searchsorted(self.inject, cycle, side="right"))
            fresh = np.arange(self.next_pid, hi, dtype=np.int64)
            self.next_pid = hi
            self.arrived += np.bincount(self.run_of[fresh], minlength=K)
            zero_hop = fresh[self.nhops[fresh] == 0]
            if zero_hop.size:
                self.delivered_at[zero_hop] = self.inject[zero_hop]
                self.delivered_r += np.bincount(
                    self.run_of[zero_hop], minlength=K
                )
                moved_r[self.run_of[zero_hop]] = True
            self.injecting = np.concatenate(
                (self.injecting, fresh[self.nhops[fresh] > 0])
            )
        if self.injecting.size:
            self.injecting = self.injecting[self.srcf[self.injecting] > 0]
        # 3. network candidates: per physical link, the movable front
        #    flit of the occupied VC whose holder is oldest (smallest
        #    pid); all reads against start-of-cycle state
        e_idx = np.flatnonzero(self.occ > 0)
        me = mp = mi = mhead = mlast = mtail = mto = None
        if e_idx.size:
            p = self.holder[e_idx]
            i = self.hopb[e_idx]
            is_last = i == self.nhops[p]
            is_head = self.head[p] == i
            to = np.full(e_idx.size, -1, dtype=np.int64)
            nl = ~is_last
            to[nl] = self.gext_seq[self.gfirst[p[nl]] + i[nl]]
            down_ok = np.zeros(e_idx.size, dtype=bool)
            down_ok[nl] = np.where(
                is_head[nl],
                self.holder[to[nl]] == -1,
                self.occ[to[nl]] < self.cap_ext[to[nl]],
            )
            movable = is_last | down_ok
            cand = np.flatnonzero(movable)
            if cand.size:
                # one flit per physical link: oldest holder wins; VC
                # counts differ per run, so resolve through phys_of_ext
                phys = self.phys_of_ext[e_idx[cand]]
                order = np.lexsort((p[cand], phys))
                cand = cand[order]
                first = np.ones(cand.size, dtype=bool)
                first[1:] = phys[order][1:] != phys[order][:-1]
                sel = cand[first]
                me = e_idx[sel]
                mp = p[sel]
                mi = i[sel]
                mhead = is_head[sel]
                mlast = is_last[sel]
                mto = to[sel]
                mtail = (
                    (self.srcf[mp] == 0)
                    & (self.tailb[mp] == mi)
                    & (self.occ[me] == 1)
                )
        # 4. injection candidates: one flit per waiting packet
        ip = ie = ih = None
        if self.injecting.size:
            e1 = self.gext_seq[self.gfirst[self.injecting]]
            is_head_inj = self.head[self.injecting] == 0
            ok = np.where(
                is_head_inj,
                self.holder[e1] == -1,
                self.occ[e1] < self.cap_ext[e1],
            )
            ip = self.injecting[ok]
            ie = e1[ok]
            ih = is_head_inj[ok]
        # 5. head flits claiming the same free buffer: smallest pid wins
        net_claim = me is not None and bool((mhead & ~mlast).any())
        inj_claim = ip is not None and bool(ih.any())
        if net_claim or inj_claim:
            parts_t, parts_p = [], []
            if net_claim:
                nc = mhead & ~mlast
                parts_t.append(mto[nc])
                parts_p.append(mp[nc])
            if inj_claim:
                parts_t.append(ie[ih])
                parts_p.append(ip[ih])
            ct = np.concatenate(parts_t)
            cp = np.concatenate(parts_p)
            order = np.lexsort((cp, ct))
            first = np.ones(ct.size, dtype=bool)
            first[1:] = ct[order][1:] != ct[order][:-1]
            win_t = ct[order][first]  # sorted unique claim targets ...
            win_p = cp[order][first]  # ... and their smallest-pid winners

            def won(targets: np.ndarray, pids: np.ndarray) -> np.ndarray:
                at = np.minimum(
                    np.searchsorted(win_t, targets), win_t.size - 1
                )
                return (win_t[at] == targets) & (win_p[at] == pids)

            if net_claim:
                # non-claim moves (body flits, exits) target held buffers
                # or -1, never a claimed free buffer: they always survive
                keep = ~(mhead & ~mlast) | won(mto, mp)
                me, mp, mi = me[keep], mp[keep], mi[keep]
                mhead, mlast, mtail, mto = (
                    mhead[keep], mlast[keep], mtail[keep], mto[keep]
                )
            if inj_claim:
                keep = ~ih | won(ie, ip)
                ip, ie, ih = ip[keep], ie[keep], ih[keep]
        # 6. apply every surviving move simultaneously
        recv_parts = []
        if me is not None and me.size:
            self.occ[me] -= 1
            rel = me[mtail]
            self.holder[rel] = -1
            adv_tail = mtail & ~mlast
            self.tailb[mp[adv_tail]] = mi[adv_tail] + 1
            adv = mhead & ~mlast
            self.holder[mto[adv]] = mp[adv]
            self.hopb[mto[adv]] = mi[adv] + 1
            self.head[mp[adv]] = mi[adv] + 1
            exit_head = mhead & mlast
            self.head[mp[exit_head]] = self.nhops[mp[exit_head]] + 1
            fwd = mto[~mlast]
            self.occ[fwd] += 1
            done = mp[mlast & mtail]
            self.delivered_at[done] = cycle + 1
            if done.size:
                self.delivered_r += np.bincount(
                    self.run_of[done], minlength=K
                )
            recv_parts.append(fwd)
            moved_r[self.run_of[mp]] = True
        if ip is not None and ip.size:
            self.srcf[ip] -= 1
            self.occ[ie] += 1
            self.holder[ie[ih]] = ip[ih]
            self.hopb[ie[ih]] = 1
            self.head[ip[ih]] = 1
            tail_in = ip[self.srcf[ip] == 0]
            self.tailb[tail_in] = 1
            recv_parts.append(ie)
            moved_r[self.run_of[ip]] = True
        if recv_parts:
            recv = np.concatenate(recv_parts)
            if recv.size:
                np.maximum.at(
                    self.maxq_r, self.run_of_ext[recv], self.occ[recv]
                )
        # 7. per-run verdicts: retire finished runs, convict deadlocks
        any_moved = bool(moved_r.any())
        if any_moved:
            self.last_busy_r[moved_r] = cycle
        live = self.arrived - self.delivered_r - self.dropped_r
        pending = self.arrived < self.totals
        finished = self.active & (live == 0) & ~pending
        if finished.any():
            self.active[finished] = False
        # the solo engine's deadlock predicate, per run: nothing moved,
        # live packets, and no event (injection or fault) can unblock it
        dead = (
            self.active & ~moved_r & (live > 0) & ~pending
            & (self.max_death <= cycle)
        )
        if dead.any():
            self.deadlocked_r |= dead
            self.active[dead] = False
            doomed = np.isin(self.run_of, np.flatnonzero(dead))
            self.srcf[doomed] = 0
            for j in np.flatnonzero(dead):
                lo, hi = self.ext_base[j], self.ext_base[j + 1]
                self.occ[lo:hi] = 0
                self.holder[lo:hi] = -1
        return any_moved

    def next_events(self, cycle: int) -> List[int]:
        events: List[int] = []
        if self.next_pid < self.num:
            events.append(int(self.inject[self.next_pid]))
        live = self.arrived - self.delivered_r - self.dropped_r
        for j in np.flatnonzero(self.active & (live > 0)):
            dc = self.death_cycles[j]
            if dc.size:
                k = int(np.searchsorted(dc, cycle, side="right"))
                if k < dc.size:
                    events.append(int(dc[k]))
        return events

    def finalize(self, max_cycles: int) -> List[FlowOutcome]:
        outs = []
        for j in range(self.K):
            pids = np.flatnonzero(self.run_of == j)
            stalled = (
                int(self.totals[j])
                - int(self.delivered_r[j])
                - int(self.dropped_r[j])
            )
            if self.deadlocked_r[j] or stalled == 0:
                cycles = max(int(self.last_busy_r[j]) + 1, 1)
            else:
                cycles = max(max_cycles, 1)
            outs.append(FlowOutcome(
                cycles=cycles,
                delivered_at=self.delivered_at[pids],
                max_queue=int(self.maxq_r[j]),
                dropped_in_flight=int(self.dropped_r[j]),
                stalled=stalled,
                deadlocked=bool(self.deadlocked_r[j]),
            ))
        return outs
