"""Blocking client for the sweep service (what ``repro submit`` runs).

One TCP connection per request, newline-delimited JSON both ways (see
:mod:`repro.network.service.protocol`).  :meth:`SweepClient.submit`
streams: an ``on_event`` callback sees every server event as it
arrives (progress bars, incremental plotting), and the return value is
the reassembled, grid-ordered :class:`~repro.network.sweep.SweepRecord`
list -- exactly what :func:`~repro.network.sweep.run_sweep` would have
returned for the same grid, so ``write_csv``/``write_json`` over it
reproduce the one-shot CLI output byte for byte.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Optional

from repro.network.service.protocol import (
    decode_line,
    encode_message,
    record_from_wire,
)
from repro.network.service.server import DEFAULT_PORT
from repro.network.sweep import SweepRecord

__all__ = ["ServiceError", "SweepClient"]


class ServiceError(RuntimeError):
    """The server rejected a request or the stream ended incomplete."""


class SweepClient:
    """Thin blocking wrapper over the wire protocol.

    ``timeout`` bounds the connect and each pre-acceptance socket read
    (``None`` = wait forever).  Once a submitted job is *accepted* the
    per-read timeout is lifted: records land whenever their grid cells
    finish simulating, and a single slow cell must not abort an
    otherwise healthy stream.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 300.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, msg: Dict[str, Any], untimed_after: Optional[str] = None):
        """Send one request, yield response events until EOF; after an
        ``untimed_after`` event the socket reads stop timing out."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            with sock.makefile("rwb") as wire:
                wire.write(encode_message(msg))
                wire.flush()
                for line in wire:
                    reply = decode_line(line)
                    if untimed_after is not None and (
                        reply.get("event") == untimed_after
                    ):
                        sock.settimeout(None)
                        untimed_after = None
                    yield reply

    def _one(self, msg: Dict[str, Any], event: str) -> Dict[str, Any]:
        for reply in self._request(msg):
            if reply.get("event") == "error":
                raise ServiceError(reply.get("message", "server error"))
            if reply.get("event") == event:
                return reply
        raise ServiceError(f"connection closed before a {event!r} reply")

    def submit(
        self,
        grid: Dict[str, Any],
        batch: Optional[int] = None,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[SweepRecord]:
        """Run a grid on the server; returns grid-ordered records.

        ``grid`` holds :func:`~repro.network.sweep.expand_grid` keyword
        arguments (``topologies`` required).  ``batch`` overrides the
        server's co-batch size for this job.  ``on_event`` observes the
        raw event stream -- ``accepted``, each ``record`` as it lands
        (with its grid ``index`` and ``cached`` flag), then ``done``.
        """
        msg: Dict[str, Any] = {"op": "submit", "grid": grid}
        if batch is not None:
            msg["batch"] = batch
        records: Dict[int, SweepRecord] = {}
        done: Optional[Dict[str, Any]] = None
        for reply in self._request(msg, untimed_after="accepted"):
            if on_event is not None:
                on_event(reply)
            kind = reply.get("event")
            if kind == "error":
                raise ServiceError(reply.get("message", "server error"))
            if kind == "record":
                records[reply["index"]] = record_from_wire(reply["record"])
            elif kind == "done":
                done = reply
        if done is None:
            raise ServiceError("stream ended before the job finished")
        if len(records) != done["points"] or set(records) != set(
            range(done["points"])
        ):
            raise ServiceError(
                f"incomplete stream: {len(records)} of {done['points']} records"
            )
        return [records[i] for i in range(done["points"])]

    def jobs(self) -> List[Dict[str, Any]]:
        """Snapshot of every job the server has seen."""
        return self._one({"op": "jobs"}, "jobs")["jobs"]

    def ping(self) -> Dict[str, Any]:
        """Liveness + protocol handshake."""
        return self._one({"op": "ping"}, "pong")

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        self._one({"op": "shutdown"}, "bye")
