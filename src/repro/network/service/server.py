"""The sweep job server: asyncio front door, worker pool, shared cache.

``repro serve`` keeps one of these alive so sweep grids stop being
one-shot CLI invocations: clients submit grids over the local socket
(:mod:`repro.network.service.protocol`), the server expands each grid
with the exact :func:`~repro.network.sweep.expand_grid` semantics of
``repro sweep``, answers every cell it has already simulated straight
from the content-addressed :class:`~repro.network.service.ResultCache`,
packs the missing cells into :func:`~repro.network.sweep.run_batch_points`
tasks, fans those out to a thread or process pool, and streams each
record back the moment it lands.  Because the cache is consulted per
cell, grids are resumable for free: re-submitting an interrupted or
grown grid simulates only the cells the store has never seen.

The asyncio loop only ever shuffles messages and futures; every
simulation runs in the pool, so a long grid never blocks ``ping`` /
``jobs`` introspection or other clients' submissions.  One server
process, many concurrent clients, one shared cache and one shared pool.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.service.cache import ResultCache
from repro.network.service.protocol import (
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
    record_to_wire,
    validate_grid,
)
from repro.network.sweep import (
    PointSpec,
    SweepRecord,
    _spec_batchable,
    expand_grid,
    run_batch_points,
)

__all__ = ["DEFAULT_PORT", "Job", "SweepServer"]

DEFAULT_PORT = 8642

# submit requests may stream for a while; reads of the single request
# line are bounded so a rogue client cannot buffer unbounded garbage
_MAX_REQUEST_BYTES = 16 * 1024 * 1024


@dataclass
class Job:
    """Bookkeeping for one submitted grid (what ``repro jobs`` shows)."""

    id: int
    topologies: Tuple[str, ...]
    points: int
    state: str = "running"  # running | done | failed
    cached: int = 0
    simulated: int = 0
    streamed: int = 0
    error: str = ""

    def snapshot(self) -> dict:
        return {
            "job": self.id,
            "topologies": list(self.topologies),
            "points": self.points,
            "state": self.state,
            "cached": self.cached,
            "simulated": self.simulated,
            "streamed": self.streamed,
            "error": self.error,
        }


@dataclass
class _PoolConfig:
    workers: Optional[int] = None
    use_processes: bool = False
    executor: Optional[Executor] = None
    # grid expansion and cache I/O always run here: threads, because the
    # work is I/O-bound/cheap, the callables are closures and bound
    # methods a process pool could not pickle, and cache.put must mutate
    # the server-side hit/store counters.  Same object as ``executor``
    # when that is already a thread pool.
    io_executor: Optional[Executor] = None
    active: set = field(default_factory=set)


class SweepServer:
    """Async job server over the sweep engine.

    ``port=0`` binds an ephemeral port (``start`` returns the real
    address).  ``cache=None`` disables result caching -- every submit
    then simulates every cell (the ``--no-cache`` bypass).  ``batch``
    is the co-batch size missing cells are packed with (1 = every cell
    alone, records bit-identical to the unbatched CLI); ``workers`` the
    pool width (``None`` = the executor default), simulated in threads
    unless ``use_processes`` (NumPy releases the GIL for the heavy array
    work, so threads are the cheap default; processes sidestep it
    entirely for pure-python-bound grids).  ``backend`` selects the
    kernel implementation every worker simulates with
    (:mod:`repro.network.backends`) -- a backend *name* string, because
    it must cross the pickle boundary into process-pool workers; records
    and cache entries are bit-identical whatever the choice.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache: Optional[ResultCache] = None,
        workers: Optional[int] = None,
        use_processes: bool = False,
        batch: int = 1,
        backend: Optional[str] = None,
    ):
        if batch < 1:
            raise ValueError(f"batch must be at least 1, got {batch}")
        self.host = host
        self.port = port
        self.cache = cache
        self.batch = batch
        self.backend = backend
        self.jobs: Dict[int, Job] = {}
        self._job_ids = itertools.count(1)
        self._pool = _PoolConfig(workers=workers, use_processes=use_processes)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the (host, port) actually
        bound (meaningful with ``port=0``)."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if self._pool.executor is None:
            if self._pool.use_processes:
                # the server always holds live threads (the event loop,
                # the io executor) when workers launch, so a fork-start
                # pool inherits locks mid-state and can deadlock before
                # the first task is ever delivered; spawn gives every
                # worker a clean interpreter
                self._pool.executor = ProcessPoolExecutor(
                    max_workers=self._pool.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                )
            else:
                self._pool.executor = ThreadPoolExecutor(
                    max_workers=self._pool.workers
                )
        if self._pool.io_executor is None:
            self._pool.io_executor = (
                self._pool.executor
                if isinstance(self._pool.executor, ThreadPoolExecutor)
                else ThreadPoolExecutor(thread_name_prefix="service-io")
            )
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_REQUEST_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Accept connections until a ``shutdown`` request (or
        :meth:`request_shutdown`); drains in-flight jobs before
        returning."""
        assert self._server is not None, "call start() first"
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        if self._pool.active:
            await asyncio.gather(*self._pool.active, return_exceptions=True)
        self._pool.executor.shutdown(wait=True)
        if self._pool.io_executor is not self._pool.executor:
            self._pool.io_executor.shutdown(wait=True)

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (what ``repro serve`` wires to
        SIGINT and tests use to stop a background server)."""
        if self._loop is not None and self._shutdown is not None:
            self._loop.call_soon_threadsafe(self._shutdown.set)

    # -- connection handling ------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._pool.active.add(task)
        try:
            try:
                line = await reader.readline()
            except ValueError:
                # the request line overran _MAX_REQUEST_BYTES: reply
                # instead of dropping the connection with a traceback
                await self._send(writer, {
                    "event": "error",
                    "message": "request line exceeds the "
                               f"{_MAX_REQUEST_BYTES} byte frame limit",
                })
                return
            if not line:
                return
            try:
                msg = decode_line(line)
            except ValueError as exc:
                await self._send(writer, {"event": "error", "message": str(exc)})
                return
            op = msg.get("op")
            if op == "submit":
                await self._handle_submit(writer, msg)
            elif op == "jobs":
                await self._send(writer, {
                    "event": "jobs",
                    "jobs": [self.jobs[j].snapshot() for j in sorted(self.jobs)],
                })
            elif op == "ping":
                await self._send(writer, {
                    "event": "pong",
                    "protocol": PROTOCOL_VERSION,
                    "jobs": len(self.jobs),
                    "cache": str(self.cache.root) if self.cache is not None else "",
                })
            elif op == "shutdown":
                await self._send(writer, {"event": "bye"})
                self._shutdown.set()
            else:
                await self._send(
                    writer, {"event": "error", "message": f"unknown op {op!r}"}
                )
        finally:
            self._pool.active.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _send(self, writer, msg: dict) -> None:
        writer.write(encode_message(msg))
        await writer.drain()

    # -- the submit pipeline ------------------------------------------------

    async def _handle_submit(self, writer, msg: dict) -> None:
        try:
            grid = validate_grid(msg.get("grid"))
            batch = int(msg.get("batch", self.batch))
            if batch < 1:
                raise ValueError(f"batch must be at least 1, got {batch}")
            # grid expansion builds topologies to validate fault plans;
            # run it off-loop so a huge grid cannot stall the server
            specs = await self._run_io(lambda: expand_grid(**grid))
        except (TypeError, ValueError) as exc:
            await self._send(writer, {"event": "error", "message": str(exc)})
            return
        except Exception as exc:  # executor breakage: report, keep serving
            await self._send(writer, {
                "event": "error", "message": f"{type(exc).__name__}: {exc}",
            })
            return
        job = Job(
            id=next(self._job_ids),
            topologies=tuple(dict.fromkeys(s.topology for s in specs)),
            points=len(specs),
        )
        self.jobs[job.id] = job
        await self._send(
            writer, {"event": "accepted", "job": job.id, "points": len(specs)}
        )
        try:
            await self._stream_grid(writer, job, specs, batch)
        except (ConnectionError, OSError):
            # client went away mid-stream; the job keeps its state for
            # `repro jobs`, and everything already simulated is cached
            job.state = "failed"
            job.error = "client disconnected"
            return
        except Exception as exc:  # simulation bug: report, don't kill the server
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            await self._send(writer, {"event": "error", "message": job.error})
            return
        job.state = "done"
        await self._send(writer, {
            "event": "done", "job": job.id, "points": job.points,
            "cached": job.cached, "simulated": job.simulated,
        })

    async def _stream_grid(
        self, writer, job: Job, specs: List[PointSpec], batch: int
    ) -> None:
        hits: List[Optional[SweepRecord]] = [None] * len(specs)
        if self.cache is not None:
            cache = self.cache
            hits = await self._run_io(
                lambda: [cache.get(s) for s in specs]
            )
        for i, rec in enumerate(hits):
            if rec is not None:
                job.cached += 1
                await self._emit(writer, job, i, rec, cached=True)
        missing = [i for i, rec in enumerate(hits) if rec is None]

        async def run_chunk(chunk: List[int]):
            records = await self._run_sim(
                partial(run_batch_points, backend=self.backend),
                [specs[i] for i in chunk],
            )
            return chunk, records

        tasks = [
            asyncio.ensure_future(run_chunk(chunk))
            for chunk in _pack(specs, missing, batch)
        ]
        try:
            for fut in asyncio.as_completed(tasks):
                chunk, records = await fut
                for i, rec in zip(chunk, records):
                    if self.cache is not None:
                        await self._run_io(self.cache.put, specs[i], rec)
                    job.simulated += 1
                    await self._emit(writer, job, i, rec, cached=False)
        finally:
            for t in tasks:
                if not t.done():
                    t.cancel()
            # reap the cancellations: otherwise the tasks surface
            # "exception was never retrieved" warnings after a client
            # disconnect mid-stream
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)

    async def _emit(self, writer, job: Job, index: int, rec, cached: bool) -> None:
        job.streamed += 1
        await self._send(writer, {
            "event": "record", "job": job.id, "index": index,
            "cached": cached, "record": record_to_wire(rec),
        })

    def _run_sim(self, fn, *args):
        """Simulation work on the worker pool.  ``functools.partial``
        over a module-level function, never a closure: the callable must
        pickle when the pool is a :class:`ProcessPoolExecutor`."""
        return self._loop.run_in_executor(
            self._pool.executor, partial(fn, *args)
        )

    def _run_io(self, fn, *args):
        """Everything else (grid expansion, cache reads/writes) on the
        thread-side executor, where closures and bound methods are fine
        and cache counters mutate in-process."""
        return self._loop.run_in_executor(
            self._pool.io_executor, partial(fn, *args)
        )


def _pack(
    specs: Sequence[PointSpec], missing: Sequence[int], batch: int
) -> List[List[int]]:
    """Chunk the missing cell indices into worker tasks with
    :func:`run_sweep`'s grouping: batchable cells sharing a (topology,
    cycle cap) pack together up to ``batch`` wide, everything else runs
    alone-in-order, so records match the one-shot harness exactly."""
    groups: Dict[object, List[int]] = {}
    for i in missing:
        s = specs[i]
        key = (s.topology, s.max_cycles) if _spec_batchable(s) else None
        groups.setdefault(key, []).append(i)
    return [
        members[j:j + batch]
        for members in groups.values()
        for j in range(0, len(members), batch)
    ]
