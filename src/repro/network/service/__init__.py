"""Sweep-as-a-service: job server, client, and the content-addressed
result cache.

The sweep harness's production face.  ``repro serve`` keeps a
long-lived :class:`SweepServer` next to a :class:`ResultCache`;
``repro submit`` (or any :class:`SweepClient`) sends sweep grids over
the local socket and streams records back as they land.  Every grid
cell is content-addressed by :func:`point_key` -- a SHA-256 over the
canonical, version-stamped encoding of its normalised
:class:`~repro.network.sweep.PointSpec` -- so no cell is ever simulated
twice, re-submitting a grid runs only its missing cells, and the
one-shot ``run_sweep(cache=...)`` path shares the same store.  The
newline-delimited-JSON wire format (:mod:`~repro.network.service.protocol`)
round-trips :class:`~repro.network.sweep.SweepRecord` bit-exactly: CSV
or JSON written from streamed records is byte-identical to the one-shot
CLI output, and CI's ``service-contract`` job holds it to the golden
fixtures.
"""

from repro.network.service.cache import (
    CACHE_VERSION,
    ResultCache,
    canonical_encoding,
    default_cache_dir,
    point_key,
)
from repro.network.service.client import ServiceError, SweepClient
from repro.network.service.protocol import (
    PROTOCOL_VERSION,
    record_from_wire,
    record_to_wire,
)
from repro.network.service.server import DEFAULT_PORT, Job, SweepServer

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_PORT",
    "Job",
    "PROTOCOL_VERSION",
    "ResultCache",
    "ServiceError",
    "SweepClient",
    "SweepServer",
    "canonical_encoding",
    "default_cache_dir",
    "point_key",
    "record_from_wire",
    "record_to_wire",
]
