"""Wire format of the sweep service: newline-delimited JSON messages.

One request per connection, a stream of response events back.  The
format is deliberately dumb -- UTF-8 JSON objects separated by ``\\n``
over a local TCP socket -- so any language (or ``nc`` plus eyeballs) can
talk to the server.  The *payload* schema is the real contract: a
``record`` event carries a :class:`~repro.network.sweep.SweepRecord` as
a JSON object whose keys are exactly the record's fields, and the CSV /
JSON files the client writes from streamed records are byte-identical to
the one-shot ``repro sweep`` output.  CI's ``service-contract`` job
enforces that against the golden fixtures under
``tests/network/golden/``.

Requests (the ``op`` key dispatches):

- ``{"op": "submit", "grid": {...}, "batch": K}`` -- run a sweep grid.
  ``grid`` holds :func:`~repro.network.sweep.expand_grid` keyword
  arguments (``topologies`` is required; unknown keys are rejected).
- ``{"op": "jobs"}`` -- snapshot of every job this server has seen.
- ``{"op": "ping"}`` -- liveness + protocol/version handshake.
- ``{"op": "shutdown"}`` -- stop the server once in-flight jobs finish.

Response events (the ``event`` key):

- ``{"event": "accepted", "job": id, "points": N}`` -- grid expanded,
  job registered.
- ``{"event": "record", "job": id, "index": i, "cached": bool,
  "record": {...}}`` -- one grid cell's result, streamed *as it lands*
  (cache hits first, then simulated batches in completion order).
  ``index`` is the cell's position in grid order, so clients reassemble
  the exact ``run_sweep`` record list.
- ``{"event": "done", "job": id, "points": N, "cached": C,
  "simulated": S}`` -- job complete; ``C + S == N``.
- ``{"event": "jobs", "jobs": [...]}`` / ``{"event": "pong", ...}`` --
  replies to the introspection ops.
- ``{"event": "error", "message": ...}`` -- the request was rejected
  (bad grid, unknown op, malformed JSON); the connection then closes.
"""

from __future__ import annotations

import json
from dataclasses import fields
from typing import Any, Dict

from repro.network.sweep import SweepRecord

__all__ = [
    "PROTOCOL_VERSION",
    "decode_line",
    "encode_message",
    "record_from_wire",
    "record_to_wire",
    "validate_grid",
]

PROTOCOL_VERSION = 1

# expand_grid's keyword surface; anything else in a submit grid is a
# client bug and is rejected rather than silently dropped
GRID_KEYS = frozenset({
    "topologies", "patterns", "loads", "routers", "seeds", "faults",
    "switching", "vcs", "buffers", "flits", "collectives", "workloads",
    "inject_window", "max_cycles",
})

_RECORD_FIELDS = tuple(f.name for f in fields(SweepRecord))


def encode_message(msg: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the newline delimiter."""
    return json.dumps(msg, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; anything but a JSON object is a protocol error."""
    msg = json.loads(line.decode())
    if not isinstance(msg, dict):
        raise ValueError("wire messages must be JSON objects")
    return msg


def record_to_wire(record: SweepRecord) -> Dict[str, Any]:
    """A record's wire payload: field name -> value, declaration order
    (JSON round-trips ints, floats, bools and strings exactly, so the
    streamed record is bit-identical to the in-process one)."""
    return {name: getattr(record, name) for name in _RECORD_FIELDS}


def record_from_wire(payload: Dict[str, Any]) -> SweepRecord:
    """Rebuild a streamed record, strictly: the key set must match the
    SweepRecord schema exactly, so a server/client schema skew surfaces
    as an error instead of silently misaligned columns."""
    if not isinstance(payload, dict) or set(payload) != set(_RECORD_FIELDS):
        raise ValueError("record payload does not match the SweepRecord schema")
    return SweepRecord(**payload)


def validate_grid(grid: Any) -> Dict[str, Any]:
    """Check a submit request's grid: a dict, only expand_grid keywords,
    ``topologies`` present.  Axis *values* are validated by
    :func:`~repro.network.sweep.expand_grid` itself server-side, so the
    client gets the same error text the CLI would print."""
    if not isinstance(grid, dict):
        raise ValueError("grid must be a JSON object of expand_grid arguments")
    unknown = set(grid) - GRID_KEYS
    if unknown:
        raise ValueError(
            f"unknown grid keys {sorted(unknown)}; allowed: {sorted(GRID_KEYS)}"
        )
    if not grid.get("topologies"):
        raise ValueError("grid must name at least one topology")
    for w in grid.get("workloads") or ():
        # trace references resolve against files the *client* holds; the
        # wire carries no trace payloads, so reject them loudly instead
        # of failing later inside a worker
        if isinstance(w, str) and w.startswith("trace:"):
            raise ValueError(
                "trace-replay workloads cannot be submitted over the wire "
                "(the server has no trace files); replay traces with "
                "'repro sweep --trace' locally"
            )
    return grid
