"""Content-addressed result cache for sweep points.

Every sweep point is fully described by its :class:`~repro.network.sweep.PointSpec`
-- topology, router, pattern, load, seed, switching, VCs, buffer depth,
flit spec, faults, collective, injection window and cycle cap -- and the
engines are deterministic, so a point's :class:`~repro.network.sweep.SweepRecord`
is a pure function of its spec.  That makes the grid cacheable by
content address:

- :func:`point_key` hashes a *canonical* encoding of the normalised spec
  (:func:`~repro.network.sweep.normalize_spec` collapses the axes that
  do not matter, JSON with sorted keys and compact separators pins the
  byte layout, and shortest-roundtrip float ``repr`` is stable across
  CPython 3.10-3.12).  The encoding is version-stamped
  (:data:`CACHE_VERSION`): any change to the spec schema or the engine
  semantics bumps the version and retires every old entry at once
  instead of silently serving stale results.  A golden file of keys is
  asserted across the CI python matrix, so canonicalisation drift
  (dict ordering, float repr) fails the build instead of splitting the
  cache;
- :class:`ResultCache` is the on-disk store: one JSON file per point
  under ``<cache_dir>/v<CACHE_VERSION>/<key[:2]>/<key>.json``
  (``~/.cache/repro`` by default, override with ``cache_dir`` or
  ``$REPRO_CACHE_DIR``).  Writes are atomic (temp file + ``os.replace``)
  so a killed worker can never leave a half-written entry behind, and
  reads treat *anything* unexpected -- truncated JSON, a schema
  mismatch, a key that does not match its file name -- as a miss that
  deletes the bad entry and re-simulates.  A cache can only ever cost a
  re-run, never a wrong result.

``run_sweep(cache=ResultCache(...))`` and the sweep service both consult
the same store, so a grid started from the CLI resumes under the server
and vice versa.  Cache hits report ``batch=1`` in the bookkeeping
column (records are stored batch-normalised); every payload column is
bit-identical to an uncached run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, fields
from pathlib import Path
from typing import Optional

from repro.network.sweep import PointSpec, SweepRecord, normalize_spec

__all__ = [
    "CACHE_VERSION",
    "ResultCache",
    "canonical_encoding",
    "default_cache_dir",
    "point_key",
    "record_from_payload",
    "record_to_payload",
]

# Bump when the PointSpec schema, the canonical encoding, or the engine
# semantics change: old entries then simply stop being addressed.
# v2: PointSpec grew the workload axis and SweepRecord the workload /
# tenants columns (multi-tenant trace-driven workloads).
# v3: SweepRecord grew the analytic_bound column, so cached payloads
# from v2 no longer match the record schema
CACHE_VERSION = 3

_SPEC_FIELDS = tuple(f.name for f in fields(PointSpec))
_RECORD_FIELDS = tuple(f.name for f in fields(SweepRecord))
# field -> declared type, for validating deserialised entries (sweep.py
# uses postponed annotations, so f.type is the type's *name*)
_PAYLOAD_TYPES = {"str": str, "int": int, "float": float, "bool": bool}
_RECORD_TYPES = {
    f.name: _PAYLOAD_TYPES[f.type] if isinstance(f.type, str) else f.type
    for f in fields(SweepRecord)
}


def canonical_encoding(spec: PointSpec) -> bytes:
    """The byte string :func:`point_key` hashes: version stamp plus the
    normalised spec, JSON-encoded with sorted keys and compact
    separators so the layout cannot drift with dict ordering, and floats
    in shortest-roundtrip ``repr`` (identical across CPython 3.10-3.12).
    """
    spec = normalize_spec(spec)
    payload = {"version": CACHE_VERSION}
    payload.update((name, getattr(spec, name)) for name in _SPEC_FIELDS)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def point_key(spec: PointSpec) -> str:
    """SHA-256 content address of a sweep point: equivalent specs (same
    canonical form under :func:`~repro.network.sweep.normalize_spec`)
    collide, distinct simulations never share a key."""
    return hashlib.sha256(canonical_encoding(spec)).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def record_to_payload(record: SweepRecord) -> dict:
    """JSON-serialisable dict form of a record, batch-normalised (the
    ``batch`` column describes the run that produced the record, not the
    run that will read it back)."""
    payload = asdict(record)
    payload["batch"] = 1
    return payload


def record_from_payload(payload: dict) -> SweepRecord:
    """Rebuild a record, strictly: the key set *and every value's type*
    must match the schema exactly, so an entry written under a different
    SweepRecord layout -- or bit-rotted into the right shape with wrong
    values (a string where a float belongs) -- reads as corrupt instead
    of being served as a hit."""
    if not isinstance(payload, dict) or set(payload) != set(_RECORD_FIELDS):
        raise ValueError("record payload does not match the SweepRecord schema")
    for name, want in _RECORD_TYPES.items():
        # exact type, not isinstance: bool must not pass for int, nor
        # int for float (an int-valued latency would break the CSV
        # bit-identity contract)
        if type(payload[name]) is not want:
            raise ValueError(
                f"record field {name!r} is not a {want.__name__}"
            )
    return SweepRecord(**payload)


class ResultCache:
    """On-disk content-addressed store of sweep-point results.

    ``get``/``put`` take the *spec* (hashing is internal), so callers
    never handle keys; the ``hits``/``misses``/``stores`` counters make
    resume behaviour assertable ("a warm repeat simulates zero points").
    Corrupt or schema-mismatched entries are deleted on read and
    reported as misses -- the cache can cost a re-simulation, never a
    wrong record.
    """

    def __init__(self, cache_dir: "str | os.PathLike | None" = None):
        self.root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    @property
    def dir(self) -> Path:
        """The version-scoped entry directory."""
        return self.root / f"v{CACHE_VERSION}"

    def path_for(self, spec: PointSpec) -> Path:
        key = point_key(spec)
        return self.dir / key[:2] / f"{key}.json"

    def get(self, spec: PointSpec) -> Optional[SweepRecord]:
        path = self.path_for(spec)
        try:
            doc = json.loads(path.read_text())
            if doc.get("key") != path.stem:
                raise ValueError("entry key does not match its address")
            record = record_from_payload(doc["record"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # truncated write, foreign schema, renamed file: drop the
            # entry and let the caller re-simulate
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, spec: PointSpec, record: SweepRecord) -> None:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "key": path.stem,
            "spec": json.loads(canonical_encoding(spec)),
            "record": record_to_payload(record),
        }
        # atomic publish: readers see the old entry or the new one,
        # never a partial write
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        if not self.dir.is_dir():
            return 0
        return sum(1 for _ in self.dir.glob("*/*.json"))

    def clear(self) -> int:
        """Evict every entry of the current cache version; returns the
        number removed (other versions' entries are left alone)."""
        removed = 0
        if self.dir.is_dir():
            for entry in self.dir.glob("*/*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
