"""Sweep harness: saturation studies over (topology x router x pattern x load).

The 1993-lineage comparisons (and every interconnection paper since) are
latency/throughput *curves*, not single points: offered load rises until
the network saturates, and the shape of the knee is the verdict on the
topology.  This module runs those grids at scale:

- a sweep point is a fully picklable :class:`PointSpec` (topology,
  router and fault plan are *names/specs*, rebuilt inside the worker),
  so grids parallelise with :mod:`multiprocessing` across cores;
- each point generates seeded traffic from :mod:`repro.network.traffic`,
  runs the vectorized simulator -- under the point's
  :class:`~repro.network.faults.FaultPlan` when one is given -- and
  condenses the run into a flat :class:`SweepRecord` of floats, ready
  for CSV/JSON dumping or for :func:`saturation_curves` to regroup into
  per-scenario load curves;
- :func:`saturation_curves` aggregates the seed axis: every
  (topology, router, pattern, faults, load) cell becomes one
  :class:`CurvePoint` with mean/std over its seeds, so multi-seed grids
  plot as one curve with error bars instead of interleaved replicas.

Offered load is normalised: ``load`` is packets per node per cycle over
the injection window, so ``num_packets = round(load * nodes * window)``
and curves are comparable across topologies of different size.  Under a
fault plan, failed sources stop injecting and the record's ``dropped`` /
``misroutes`` columns carry the degradation story (delivery vs. fault
count is the paper's graceful-degradation curve).

The ``repro sweep`` CLI subcommand is a thin wrapper over
:func:`run_sweep` / :func:`write_csv` / :func:`write_json`.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
from dataclasses import asdict, dataclass, fields
from functools import lru_cache
from statistics import fmean, pstdev
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.faults import FaultPlan
from repro.network.routing import (
    AdaptiveRouter,
    BfsRouter,
    CanonicalRouter,
    DimensionOrderRouter,
    GreedyRouter,
)
from repro.network.simulator import VectorizedSimulator
from repro.network.topology import Topology, topology_of
from repro.network.traffic import PATTERNS, make_traffic

__all__ = [
    "CurvePoint",
    "PointSpec",
    "ROUTERS",
    "SweepRecord",
    "nearest_rank_p95",
    "parse_topology",
    "run_point",
    "run_sweep",
    "saturation_curves",
    "write_csv",
    "write_json",
]

ROUTERS: Dict[str, Callable[[], object]] = {
    "bfs": BfsRouter,
    "canonical": CanonicalRouter,
    "adaptive": AdaptiveRouter,
    "ecube": DimensionOrderRouter,
    "greedy": GreedyRouter,
}


@lru_cache(maxsize=None)
def parse_topology(spec: str) -> Topology:
    """Build a topology from a compact spec string.

    ``"Q:7"`` (or ``"hypercube:7"``) is the hypercube :math:`Q_7`;
    ``"11:7"`` is the generalized Fibonacci cube :math:`Q_7(11)` --
    any avoided factor works, e.g. ``"101:8"``.  Cached per process, so
    sweep workers amortise construction across their points.
    """
    name, sep, dim = spec.partition(":")
    if not sep:
        raise ValueError(
            f"bad topology spec {spec!r}: expected 'Q:<d>' or '<factor>:<d>'"
        )
    try:
        d = int(dim)
    except ValueError:
        raise ValueError(f"bad dimension in topology spec {spec!r}") from None
    if name in ("Q", "hypercube"):
        from repro.cubes.hypercube import hypercube

        return topology_of(hypercube(d), name=f"Q_{d}")
    if not name or set(name) - set("01"):
        raise ValueError(
            f"bad topology spec {spec!r}: factor must be a binary word"
        )
    return topology_of((name, d))


def nearest_rank_p95(latencies: Sequence[int]) -> float:
    """Nearest-rank 95th percentile: the ``ceil(0.95 n)``-th smallest value.

    Integer arithmetic, so no float-ceiling artefacts: 20 samples give
    the 19th value, not the maximum (the old ``(95 * n) // 100`` index
    over-shot to the max for every ``n`` not divisible by 20).
    """
    if not latencies:
        return 0.0
    lat = sorted(latencies)
    return float(lat[(95 * len(lat) + 99) // 100 - 1])


@dataclass(frozen=True)
class PointSpec:
    """One picklable grid point (names and spec strings, not objects)."""

    topology: str
    router: str = "bfs"
    pattern: str = "uniform"
    load: float = 0.2
    seed: int = 0
    inject_window: int = 64
    max_cycles: int = 100000
    faults: str = ""


@dataclass(frozen=True)
class SweepRecord:
    """Flattened outcome of one sweep point."""

    topology: str
    router: str
    pattern: str
    load: float
    seed: int
    faults: str
    num_faults: int
    nodes: int
    injected: int
    delivered: int
    dropped: int
    misroutes: int
    cycles: int
    max_queue: int
    avg_latency: float
    p95_latency: float
    max_latency: int
    throughput: float
    delivery_rate: float


def run_point(spec: PointSpec) -> SweepRecord:
    """Run one grid point: build, generate, simulate, condense."""
    topo = parse_topology(spec.topology)
    try:
        router = ROUTERS[spec.router]()
    except KeyError:
        raise ValueError(
            f"unknown router {spec.router!r}; choose from {sorted(ROUTERS)}"
        ) from None
    if spec.load <= 0:
        raise ValueError(f"load must be positive, got {spec.load}")
    plan: Optional[FaultPlan] = None
    if spec.faults:
        plan = FaultPlan.parse(spec.faults, num_nodes=topo.num_nodes).validate(topo)
    num_packets = max(1, round(spec.load * topo.num_nodes * spec.inject_window))
    traffic = make_traffic(
        spec.pattern, topo, num_packets, spec.inject_window, seed=spec.seed,
        faults=plan,
    )
    result = VectorizedSimulator(topo, router).run(
        traffic, max_cycles=spec.max_cycles, faults=plan
    )
    return SweepRecord(
        topology=topo.name,
        router=spec.router,
        pattern=spec.pattern,
        load=spec.load,
        seed=spec.seed,
        faults=spec.faults,
        num_faults=plan.num_events if plan is not None else 0,
        nodes=topo.num_nodes,
        injected=result.injected,
        delivered=result.delivered,
        dropped=result.dropped,
        misroutes=result.misroutes,
        cycles=result.cycles,
        max_queue=result.max_queue,
        avg_latency=result.avg_latency,
        p95_latency=nearest_rank_p95(result.latencies),
        max_latency=result.max_latency,
        throughput=result.throughput,
        delivery_rate=result.delivery_rate,
    )


def run_sweep(
    topologies: Sequence[str],
    patterns: Sequence[str] = ("uniform",),
    loads: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8),
    routers: Sequence[str] = ("bfs",),
    seeds: Sequence[int] = (0,),
    faults: Sequence[str] = ("",),
    inject_window: int = 64,
    max_cycles: int = 100000,
    processes: int = 1,
) -> List[SweepRecord]:
    """Run the full (topology x router x pattern x faults x load x seed) grid.

    ``faults`` is a sequence of fault-plan spec strings (``""`` = the
    unfaulted baseline), so one call produces degradation curves.
    ``processes > 1`` distributes points over a multiprocessing pool;
    specs are validated eagerly (unknown names and impossible fault
    plans raise before any worker starts).
    """
    for p in patterns:
        if p not in PATTERNS:
            raise ValueError(f"unknown traffic pattern {p!r}; choose from {sorted(PATTERNS)}")
    for r in routers:
        if r not in ROUTERS:
            raise ValueError(f"unknown router {r!r}; choose from {sorted(ROUTERS)}")
    for t in topologies:
        topo = parse_topology(t)  # raises on a bad spec before any point runs
        for f in faults:
            if f:
                FaultPlan.parse(f, num_nodes=topo.num_nodes).validate(topo)
    specs = [
        PointSpec(
            topology=t, router=r, pattern=p, load=ld, seed=s, faults=f,
            inject_window=inject_window, max_cycles=max_cycles,
        )
        for t in topologies
        for r in routers
        for p in patterns
        for f in faults
        for ld in loads
        for s in seeds
    ]
    if processes > 1 and len(specs) > 1:
        with multiprocessing.Pool(processes) as pool:
            return pool.map(run_point, specs)
    return [run_point(s) for s in specs]


@dataclass(frozen=True)
class CurvePoint:
    """One aggregated saturation-curve point: every seed of one
    (topology, router, pattern, faults, load) cell condensed to mean/std
    (population std; zero for single-seed cells)."""

    topology: str
    router: str
    pattern: str
    faults: str
    load: float
    seeds: int
    avg_latency: float
    std_avg_latency: float
    p95_latency: float
    max_latency: int
    throughput: float
    std_throughput: float
    delivery_rate: float
    max_queue: int
    dropped: float
    misroutes: float


def saturation_curves(
    records: Sequence[SweepRecord],
) -> Dict[Tuple[str, str, str, str], List[CurvePoint]]:
    """Regroup records into per-(topology, router, pattern, faults) load
    curves, sorted by offered load (the saturation-curve x axis).

    Multi-seed cells aggregate into one :class:`CurvePoint` per load
    instead of interleaving seed replicas along the curve.
    """
    cells: Dict[Tuple[str, str, str, str], Dict[float, List[SweepRecord]]] = {}
    for rec in records:
        key = (rec.topology, rec.router, rec.pattern, rec.faults)
        cells.setdefault(key, {}).setdefault(rec.load, []).append(rec)
    curves: Dict[Tuple[str, str, str, str], List[CurvePoint]] = {}
    for key, by_load in cells.items():
        curve = []
        for load in sorted(by_load):
            rs = by_load[load]
            lats = [r.avg_latency for r in rs]
            thrus = [r.throughput for r in rs]
            curve.append(CurvePoint(
                topology=key[0],
                router=key[1],
                pattern=key[2],
                faults=key[3],
                load=load,
                seeds=len(rs),
                avg_latency=fmean(lats),
                std_avg_latency=pstdev(lats) if len(lats) > 1 else 0.0,
                p95_latency=fmean(r.p95_latency for r in rs),
                max_latency=max(r.max_latency for r in rs),
                throughput=fmean(thrus),
                std_throughput=pstdev(thrus) if len(thrus) > 1 else 0.0,
                delivery_rate=fmean(r.delivery_rate for r in rs),
                max_queue=max(r.max_queue for r in rs),
                dropped=fmean(r.dropped for r in rs),
                misroutes=fmean(r.misroutes for r in rs),
            ))
        curves[key] = curve
    return curves


_FIELDS = [f.name for f in fields(SweepRecord)]


def write_csv(records: Sequence[SweepRecord], path: str) -> None:
    """Dump records as CSV (one header row, one row per sweep point)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for rec in records:
            writer.writerow(asdict(rec))


def write_json(records: Sequence[SweepRecord], path: str) -> None:
    """Dump records as a JSON array of objects."""
    with open(path, "w") as fh:
        json.dump([asdict(rec) for rec in records], fh, indent=2)
        fh.write("\n")
