"""Sweep harness: saturation studies over (topology x router x pattern x load).

The 1993-lineage comparisons (and every interconnection paper since) are
latency/throughput *curves*, not single points: offered load rises until
the network saturates, and the shape of the knee is the verdict on the
topology.  This module runs those grids at scale:

- a sweep point is a fully picklable :class:`PointSpec` (topology,
  router and fault plan are *names/specs*, rebuilt inside the worker),
  so grids parallelise with :mod:`multiprocessing` across cores;
- ``batch > 1`` packs compatible points -- open-loop pattern points
  sharing a topology and cycle cap, every switching mode included --
  into lock-step batches for
  :class:`~repro.network.batch.BatchedSimulator`, so K replications
  advance in *one* fused-kernel cycle loop and share one route-table
  build; multiprocessing then distributes whole batches, not points.
  Results are bit-identical to the unbatched sweep (the ``batch``
  column records each record's co-batch size); collective points are
  closed-loop and run point-by-point;
- each point generates seeded traffic from :mod:`repro.network.traffic`,
  runs the vectorized simulator -- under the point's
  :class:`~repro.network.faults.FaultPlan` when one is given -- and
  condenses the run into a flat :class:`SweepRecord` of floats, ready
  for CSV/JSON dumping or for :func:`saturation_curves` to regroup into
  per-scenario load curves;
- :func:`saturation_curves` aggregates the seed axis: every
  (topology, router, pattern, faults, flow, load) cell becomes one
  :class:`CurvePoint` with mean/std over its seeds, so multi-seed grids
  plot as one curve with error bars instead of interleaved replicas;
- the flow-control axes (``switching`` / ``vcs`` / ``buffers`` /
  ``flits``) sweep the wormhole / virtual-cut-through configurations of
  :mod:`repro.network.flowcontrol`, with per-point ``stalled`` /
  ``deadlocked`` columns carrying the deadlock story;
- the ``collectives`` axis runs the *closed-loop* collective workloads
  of :mod:`repro.network.collectives`: a collective point compiles its
  schedule with true per-round barriers (:func:`run_collective`, root
  selected by the seed) instead of generating open-loop pattern
  traffic, and carries ``rounds`` / ``round_bound`` columns; its
  ``pattern`` and ``load`` are normalised (``"-"`` / ``1.0``) so the
  grid never duplicates collective points across those axes.

Offered load is normalised: ``load`` is packets per node per cycle over
the injection window, so ``num_packets = round(load * nodes * window)``
and curves are comparable across topologies of different size.  Under a
fault plan, failed sources stop injecting and the record's ``dropped`` /
``misroutes`` columns carry the degradation story (delivery vs. fault
count is the paper's graceful-degradation curve).

The ``repro sweep`` CLI subcommand is a thin wrapper over
:func:`run_sweep` / :func:`write_csv` / :func:`write_json`.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
from dataclasses import asdict, dataclass, fields, replace
from functools import lru_cache, partial
from statistics import fmean, pstdev
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analytic.bounds import analytic_saturation_bound
from repro.network.batch import BatchedSimulator, BatchItem
from repro.network.collectives import COLLECTIVES, run_collective
from repro.network.faults import FaultPlan
from repro.network.flowcontrol import SWITCHING_MODES, FlowControl
from repro.network.routing import (
    AdaptiveRouter,
    BfsRouter,
    CanonicalRouter,
    DimensionOrderRouter,
    GreedyRouter,
)
from repro.network.simulator import VectorizedSimulator
from repro.network.topology import Topology, topology_of
from repro.network.traffic import PATTERNS, flit_sizes, make_traffic
from repro.network.workloads import (
    Trace,
    canonical_workload,
    compile_trace,
    compile_workload,
    encode_tenant_column,
)

__all__ = [
    "CurvePoint",
    "PointSpec",
    "ROUTERS",
    "SweepRecord",
    "expand_grid",
    "flow_tag",
    "nearest_rank_p95",
    "normalize_spec",
    "parse_topology",
    "run_batch_points",
    "run_point",
    "run_sweep",
    "saturation_curves",
    "write_csv",
    "write_json",
]

ROUTERS: Dict[str, Callable[[], object]] = {
    "bfs": BfsRouter,
    "canonical": CanonicalRouter,
    "adaptive": AdaptiveRouter,
    "ecube": DimensionOrderRouter,
    "greedy": GreedyRouter,
}


@lru_cache(maxsize=64)
def parse_topology(spec: str) -> Topology:
    """Build a topology from a compact spec string.

    ``"Q:7"`` (or ``"hypercube:7"``) is the hypercube :math:`Q_7`;
    ``"11:7"`` is the generalized Fibonacci cube :math:`Q_7(11)` --
    any avoided factor works, e.g. ``"101:8"``.  Cached per process
    (LRU, bounded -- a long-running sweep service touching many specs
    must not retain every topology it has ever built), so workers still
    amortise construction across their points.
    """
    name, sep, dim = spec.partition(":")
    if not sep:
        raise ValueError(
            f"bad topology spec {spec!r}: expected 'Q:<d>' or '<factor>:<d>'"
        )
    try:
        d = int(dim)
    except ValueError:
        raise ValueError(f"bad dimension in topology spec {spec!r}") from None
    if name in ("Q", "hypercube"):
        from repro.cubes.hypercube import hypercube

        return topology_of(hypercube(d), name=f"Q_{d}")
    if not name or set(name) - set("01"):
        raise ValueError(
            f"bad topology spec {spec!r}: factor must be a binary word"
        )
    return topology_of((name, d))


def nearest_rank_p95(latencies: Sequence[int]) -> float:
    """Nearest-rank 95th percentile: the ``ceil(0.95 n)``-th smallest value.

    Integer arithmetic, so no float-ceiling artefacts: 20 samples give
    the 19th value, not the maximum (the old ``(95 * n) // 100`` index
    over-shot to the max for every ``n`` not divisible by 20).

    An empty sample is *defined* as ``0.0``: a sweep point that
    delivered nothing (all packets dropped by faults, or an all-dead
    traffic source set) reports zero latency percentiles rather than
    raising mid-grid -- its ``delivered`` / ``delivery_rate`` columns
    carry the real story.
    """
    if not latencies:
        return 0.0
    lat = sorted(latencies)
    return float(lat[(95 * len(lat) + 99) // 100 - 1])


@dataclass(frozen=True)
class PointSpec:
    """One picklable grid point (names and spec strings, not objects).

    ``switching``/``num_vcs``/``buffer_depth``/``flits`` select the
    flow-control configuration; store-and-forward points are normalised
    to ``num_vcs=1, buffer_depth=0, flits="1"`` (unbounded FIFOs,
    single-flit packets) so duplicate grid points collapse.

    A non-empty ``collective`` turns the point into a closed-loop
    collective run (:func:`run_collective`, the seed picking the root);
    ``pattern``/``load``/``inject_window`` are then ignored (and
    normalised to ``"-"``/``1.0`` by :func:`run_sweep` so the grid does
    not replicate the point along those axes).

    A non-empty ``workload`` turns the point into a multi-tenant run
    (:mod:`repro.network.workloads`): an inline tenant spec
    (``"bg:uniform:0.2;fg:broadcast:0.4:2"``) compiles arbitrated
    overlay traffic with ``load`` acting as a load-scale multiplier on
    every tenant (so workload saturation curves sweep exactly like
    pattern curves), while a ``"trace:<key>"`` reference replays a
    recorded trace (resolved through the ``traces`` mapping handed to
    the runners; ``pattern`` and ``load`` are normalised to
    ``"-"``/``1.0``).  ``workload`` and ``collective`` are mutually
    exclusive.
    """

    topology: str
    router: str = "bfs"
    pattern: str = "uniform"
    load: float = 0.2
    seed: int = 0
    inject_window: int = 64
    max_cycles: int = 100000
    faults: str = ""
    switching: str = "sf"
    num_vcs: int = 1
    buffer_depth: int = 0
    flits: str = "1"
    collective: str = ""
    workload: str = ""


@dataclass(frozen=True)
class SweepRecord:
    """Flattened outcome of one sweep point.

    ``collective`` is empty for pattern points; for collective points it
    names the operation and ``rounds``/``round_bound`` hold the schedule
    round count against the single-port ``ceil(log2 n)`` bound (both
    zero for pattern points).  Zero-delivered points (every packet
    dropped, or nothing injected at all) report ``0.0`` latency columns
    by definition -- see :func:`nearest_rank_p95`.  ``batch`` is the
    number of replications advanced in the same lock-step simulator
    batch as this point (1 = the point ran alone); every other column
    is bit-identical whatever the batching.

    ``workload`` echoes the point's workload spec (canonicalised inline
    spec or ``trace:<key>``, empty for single-tenant points) and
    ``tenants`` carries the per-tenant accounting as one canonical
    compact-JSON array -- per tenant: injected / delivered / undelivered
    counts, mean and nearest-rank p95 latency -- so the multi-tenant
    story survives flat CSV/JSON dumps and the service wire format
    byte-for-byte.

    ``analytic_bound`` is the topology's uniform-traffic saturation
    bound ``theta*`` from the analytic channel-load model
    (:func:`repro.analytic.bounds.analytic_saturation_bound`), ``0.0``
    when no model applies; it is a property of the topology alone,
    repeated per record so every dump is self-contained for the
    predict-then-verify cross-check.
    """

    topology: str
    router: str
    pattern: str
    collective: str
    workload: str
    load: float
    seed: int
    faults: str
    num_faults: int
    switching: str
    num_vcs: int
    buffer_depth: int
    flits: str
    rounds: int
    round_bound: int
    nodes: int
    injected: int
    delivered: int
    dropped: int
    misroutes: int
    stalled: int
    deadlocked: bool
    cycles: int
    max_queue: int
    avg_latency: float
    p95_latency: float
    max_latency: int
    throughput: float
    delivery_rate: float
    analytic_bound: float = 0.0
    tenants: str = ""
    batch: int = 1


def _resolve_router(name: str) -> Callable[[], object]:
    try:
        return ROUTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown router {name!r}; choose from {sorted(ROUTERS)}"
        ) from None


def _point_plan(spec: PointSpec, topo: Topology) -> Optional[FaultPlan]:
    if spec.load <= 0:
        raise ValueError(f"load must be positive, got {spec.load}")
    if not spec.faults:
        return None
    return FaultPlan.parse(spec.faults, num_nodes=topo.num_nodes).validate(topo)


def _point_flow(spec: PointSpec) -> "str | FlowControl":
    if spec.switching != "sf":
        # FlowControl itself rejects unknown modes and bad depths/VCs
        return FlowControl(
            switching=spec.switching,
            buffer_depth=spec.buffer_depth,
            num_vcs=spec.num_vcs,
        )
    return "sf"


def _point_traffic(
    spec: PointSpec, topo: Topology, plan: Optional[FaultPlan]
) -> List[Tuple[int, int, int]]:
    num_packets = max(1, round(spec.load * topo.num_nodes * spec.inject_window))
    return make_traffic(
        spec.pattern, topo, num_packets, spec.inject_window, seed=spec.seed,
        faults=plan,
    )


def _point_workload(
    spec: PointSpec,
    topo: Topology,
    plan: Optional[FaultPlan],
    traces: Optional[Mapping[str, Trace]],
):
    """Resolve a workload point's traffic: compile the inline tenant
    spec (``spec.load`` scaling every tenant), or replay the referenced
    trace -- validated against the point's topology -- with the fault
    plan applied at replay time.  Returns a
    :class:`~repro.network.workloads.CompiledWorkload`."""
    if spec.workload.startswith("trace:"):
        key = spec.workload[len("trace:"):]
        trace = (traces or {}).get(key)
        if trace is None:
            raise ValueError(
                f"workload {spec.workload!r} references a trace this runner "
                "was not given; pass it via the traces= mapping "
                "(CLI: repro sweep --trace <file>)"
            )
        if trace.topology and parse_topology(trace.topology).name != topo.name:
            raise ValueError(
                f"trace {key!r} was recorded on {trace.topology!r}, not "
                f"{spec.topology!r}; replay traces on their own topology"
            )
        return compile_trace(trace, topo, faults=plan)
    return compile_workload(
        spec.workload, topo, spec.inject_window, seed=spec.seed,
        load_scale=spec.load, faults=plan,
    )


def _condense(
    spec: PointSpec,
    topo: Topology,
    plan: Optional[FaultPlan],
    result,
    rounds: int = 0,
    round_bound: int = 0,
    batch: int = 1,
    tenant_names: Sequence[str] = (),
) -> SweepRecord:
    """Flatten one simulation outcome into a :class:`SweepRecord` (the
    single condensation path, shared by every runner so batched and
    unbatched records cannot diverge).  ``tenant_names`` labels a
    workload point's tenant ids; the per-tenant stats then land in the
    ``tenants`` column, with p95s computed here by the sweep's own
    :func:`nearest_rank_p95` (one percentile definition for the whole
    harness)."""
    pipelined = spec.switching != "sf"
    tenants_col = ""
    if result.tenant_stats:
        tenants_col = encode_tenant_column(
            tenant_names,
            result.tenant_stats,
            p95={
                ts.tenant: nearest_rank_p95(ts.latencies)
                for ts in result.tenant_stats
            },
        )
    return SweepRecord(
        topology=topo.name,
        router=spec.router,
        pattern=spec.pattern if not (spec.collective or spec.workload) else "-",
        collective=spec.collective,
        # the column is always the canonical spelling, even when the
        # caller hands run_point a raw spec directly
        workload=(
            spec.workload
            if not spec.workload or spec.workload.startswith("trace:")
            else canonical_workload(spec.workload)
        ),
        load=spec.load,
        seed=spec.seed,
        faults=spec.faults,
        num_faults=plan.num_events if plan is not None else 0,
        switching=spec.switching,
        num_vcs=spec.num_vcs if pipelined else 1,
        buffer_depth=spec.buffer_depth if pipelined else 0,
        flits=spec.flits if pipelined else "1",
        rounds=rounds,
        round_bound=round_bound,
        nodes=topo.num_nodes,
        injected=result.injected,
        delivered=result.delivered,
        dropped=result.dropped,
        misroutes=result.misroutes,
        stalled=result.stalled,
        deadlocked=result.deadlocked,
        cycles=result.cycles,
        max_queue=result.max_queue,
        avg_latency=result.avg_latency,
        p95_latency=nearest_rank_p95(result.latencies),
        max_latency=result.max_latency,
        throughput=result.throughput,
        delivery_rate=result.delivery_rate,
        analytic_bound=analytic_saturation_bound(topo.name),
        tenants=tenants_col,
        batch=batch,
    )


def run_point(
    spec: PointSpec,
    backend=None,
    traces: Optional[Mapping[str, Trace]] = None,
) -> SweepRecord:
    """Run one grid point: build, generate, simulate, condense.

    Pattern points generate ``load``-normalised open-loop traffic;
    collective points (``spec.collective`` non-empty) compile and run
    the closed-loop barriered collective instead, the seed choosing the
    root; workload points (``spec.workload`` non-empty) compile the
    multi-tenant overlay -- or replay the trace resolved through
    ``traces`` -- and carry per-tenant stats in the record.  ``backend``
    selects the kernel implementation
    (:mod:`repro.network.backends`); it is deliberately *not* part of
    the spec -- records are bit-identical across backends, so the point
    and its cache key describe the simulation, not the machinery.
    """
    topo = parse_topology(spec.topology)
    router = _resolve_router(spec.router)()
    plan = _point_plan(spec, topo)
    pipelined = spec.switching != "sf"
    flow = _point_flow(spec)
    engine = (
        VectorizedSimulator if backend is None
        else partial(VectorizedSimulator, backend=backend)
    )
    rounds = round_bound = 0
    tenant_names: Sequence[str] = ()
    if spec.collective:
        if spec.collective not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {spec.collective!r}; "
                f"choose from {sorted(COLLECTIVES)}"
            )
        coll = run_collective(
            topo, spec.collective, root=spec.seed % topo.num_nodes,
            router=router, engine=engine, switching=flow,
            flits=spec.flits if pipelined else 1, flit_seed=spec.seed,
            faults=plan, max_cycles=spec.max_cycles,
        )
        result = coll.result
        rounds, round_bound = coll.rounds, coll.round_bound
    else:
        tenants = None
        if spec.workload:
            compiled = _point_workload(spec, topo, plan, traces)
            traffic: List[Tuple[int, int, int]] = list(compiled.traffic)
            tenants = compiled.tenants
            tenant_names = compiled.names
        else:
            traffic = _point_traffic(spec, topo, plan)
        if pipelined:
            sizes: "int | list" = flit_sizes(len(traffic), spec.flits, seed=spec.seed)
        else:
            sizes = 1
        result = engine(topo, router).run(
            traffic, max_cycles=spec.max_cycles, faults=plan,
            switching=flow, flits=sizes, tenants=tenants,
        )
    return _condense(
        spec, topo, plan, result, rounds, round_bound,
        tenant_names=tenant_names,
    )


def normalize_spec(spec: PointSpec) -> PointSpec:
    """Collapse a spec onto its canonical form: the one whose axes all
    matter.

    Store-and-forward points ignore the flow-control axes
    (``num_vcs``/``buffer_depth``/``flits`` are pinned to ``1``/``0``/
    ``"1"``); collective points ignore the open-loop ``pattern``/``load``
    axes (pinned to ``"-"``/``1.0``).  Workload points pin ``pattern``
    to ``"-"`` (tenants bring their own patterns) and canonicalise the
    inline workload spelling; trace-replay workloads additionally pin
    ``load`` to ``1.0`` (a recorded schedule does not scale).  Two specs
    with the same canonical form produce bit-identical records, so this
    is both how :func:`expand_grid` dedupes the grid and how the service
    cache's ``point_key`` decides two points are the same simulation.
    """
    if spec.collective and spec.workload:
        raise ValueError(
            "a grid point cannot be both a collective and a workload "
            f"(got collective={spec.collective!r}, "
            f"workload={spec.workload!r})"
        )
    if spec.collective and (spec.pattern != "-" or spec.load != 1.0):
        spec = replace(spec, pattern="-", load=1.0)
    if spec.workload:
        if spec.workload.startswith("trace:"):
            if spec.pattern != "-" or spec.load != 1.0:
                spec = replace(spec, pattern="-", load=1.0)
        else:
            canon = canonical_workload(spec.workload)
            if spec.pattern != "-" or spec.workload != canon:
                spec = replace(spec, pattern="-", workload=canon)
    if spec.switching == "sf" and (
        spec.num_vcs != 1 or spec.buffer_depth != 0 or spec.flits != "1"
    ):
        spec = replace(spec, num_vcs=1, buffer_depth=0, flits="1")
    return spec


def _spec_batchable(spec: PointSpec) -> bool:
    """Points the lock-step batch engine advances natively: every
    open-loop pattern point, switching mode regardless (the fused kernel
    batches sf and wormhole/vct alike).  Collectives are closed-loop --
    their barriers re-plan traffic between phases -- so they run
    point-by-point."""
    return not spec.collective


def run_batch_points(
    specs: Sequence[PointSpec],
    backend=None,
    traces: Optional[Mapping[str, Trace]] = None,
) -> List[SweepRecord]:
    """Run a group of grid points, co-batching the compatible ones.

    Batchable points (see :func:`_spec_batchable`) sharing a topology
    and cycle cap are packed into one
    :class:`~repro.network.batch.BatchedSimulator` lock-step run -- one
    router instance per router name, so replications also share route
    tables; switching modes mix freely within a pack, and workload
    points batch natively (their per-packet tenant ids ride on the
    :class:`~repro.network.batch.BatchItem`).  Only closed-loop
    collective points run through :func:`run_point`.  Records
    come back in ``specs`` order and are bit-identical to the unbatched
    ones, except that ``batch`` records each point's co-batch size.

    This is the unit :func:`run_sweep` distributes over its
    multiprocessing pool when ``batch > 1`` (whole batches, not
    points).
    """
    specs = list(specs)
    records: List[Optional[SweepRecord]] = [None] * len(specs)
    groups: Dict[Tuple[str, int], List[int]] = {}
    for i, spec in enumerate(specs):
        if _spec_batchable(spec):
            groups.setdefault((spec.topology, spec.max_cycles), []).append(i)
        else:
            records[i] = run_point(spec, backend=backend, traces=traces)
    for (tspec, max_cycles), members in groups.items():
        topo = parse_topology(tspec)
        routers: Dict[str, object] = {}
        items: List[BatchItem] = []
        plans: List[Optional[FaultPlan]] = []
        names_of: List[Sequence[str]] = []
        for i in members:
            spec = specs[i]
            router = routers.setdefault(
                spec.router, _resolve_router(spec.router)()
            )
            plan = _point_plan(spec, topo)
            tenants = None
            tenant_names: Sequence[str] = ()
            if spec.workload:
                compiled = _point_workload(spec, topo, plan, traces)
                traffic: List[Tuple[int, int, int]] = list(compiled.traffic)
                tenants = compiled.tenants
                tenant_names = compiled.names
            else:
                traffic = _point_traffic(spec, topo, plan)
            # the exact switching/flits resolution of run_point, so a
            # batched record can never diverge from the solo one
            if spec.switching != "sf":
                sizes: "int | list" = flit_sizes(
                    len(traffic), spec.flits, seed=spec.seed
                )
            else:
                sizes = 1
            items.append(BatchItem(
                traffic=traffic, router=router, faults=plan,
                switching=_point_flow(spec), flits=sizes, tenants=tenants,
            ))
            plans.append(plan)
            names_of.append(tenant_names)
        outcomes = BatchedSimulator(topo, backend=backend).run_batch(
            items, max_cycles=max_cycles
        )
        for i, plan, result, tenant_names in zip(
            members, plans, outcomes, names_of
        ):
            records[i] = _condense(
                specs[i], topo, plan, result, batch=len(members),
                tenant_names=tenant_names,
            )
    return records  # type: ignore[return-value]


def expand_grid(
    topologies: Sequence[str],
    patterns: Sequence[str] = ("uniform",),
    loads: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8),
    routers: Sequence[str] = ("bfs",),
    seeds: Sequence[int] = (0,),
    faults: Sequence[str] = ("",),
    switching: Sequence[str] = ("sf",),
    vcs: Sequence[int] = (1,),
    buffers: Sequence[int] = (4,),
    flits: Sequence[str] = ("1",),
    collectives: Sequence[str] = ("",),
    workloads: Sequence[str] = ("",),
    inject_window: int = 64,
    max_cycles: int = 100000,
) -> List[PointSpec]:
    """Expand and validate a sweep grid into its ordered, deduped
    :class:`PointSpec` list.

    This is the single grid semantics shared by :func:`run_sweep` and
    the sweep service: every axis value is validated eagerly (unknown
    names, impossible fault plans and bad flit specs raise before any
    point runs), each grid cell is normalised via :func:`normalize_spec`
    and duplicates collapse while preserving first-seen grid order.
    ``workloads`` adds multi-tenant points (``""`` = the single-tenant
    grid): inline tenant specs are parsed eagerly, ``trace:<key>``
    references resolve at run time.  A grid cannot cross non-empty
    workloads with non-empty collectives -- a cell cannot be both.
    """
    for p in patterns:
        if p not in PATTERNS:
            raise ValueError(f"unknown traffic pattern {p!r}; choose from {sorted(PATTERNS)}")
    for c in collectives:
        if c and c not in COLLECTIVES:
            raise ValueError(
                f"unknown collective {c!r}; choose from {sorted(COLLECTIVES)}"
            )
    for w in workloads:
        if w and not w.startswith("trace:"):
            canonical_workload(w)  # raises on a bad inline spec
    if any(workloads) and any(collectives):
        raise ValueError(
            "workloads and collectives cannot cross in one grid: a cell "
            "cannot be both a multi-tenant workload and a closed-loop "
            "collective -- run them as two sweeps"
        )
    for r in routers:
        if r not in ROUTERS:
            raise ValueError(f"unknown router {r!r}; choose from {sorted(ROUTERS)}")
    for sw in switching:
        if sw not in SWITCHING_MODES:
            raise ValueError(
                f"unknown switching mode {sw!r}; choose from {SWITCHING_MODES}"
            )
        if sw != "sf":
            for v in vcs:
                for b in buffers:
                    FlowControl(switching=sw, buffer_depth=b, num_vcs=v)
    for fl in flits:
        flit_sizes(0, fl)  # raises on a bad spec
    for t in topologies:
        topo = parse_topology(t)  # raises on a bad spec before any point runs
        for f in faults:
            if f:
                FaultPlan.parse(f, num_nodes=topo.num_nodes).validate(topo)
    return list(dict.fromkeys(
        normalize_spec(PointSpec(
            topology=t, router=r, pattern=p, load=ld, seed=s, faults=f,
            switching=sw, num_vcs=v, buffer_depth=b, flits=fl,
            collective=c, workload=w,
            inject_window=inject_window, max_cycles=max_cycles,
        ))
        for t in topologies
        for r in routers
        for p in patterns
        for f in faults
        for sw in switching
        for v in vcs
        for b in buffers
        for fl in flits
        for c in collectives
        for w in workloads
        for ld in loads
        for s in seeds
    ))


def _execute(
    specs: Sequence[PointSpec],
    processes: int = 1,
    batch: int = 1,
    backend=None,
    traces: Optional[Mapping[str, Trace]] = None,
) -> List[SweepRecord]:
    """Run already-validated specs, preserving order: the execution half
    of :func:`run_sweep` (also what the sweep service's workers use).

    ``backend`` crosses process boundaries, so with ``processes > 1`` it
    must be a backend *name* (or ``None``) -- backend objects hold
    unpicklable state (a loaded shared library).  ``traces`` resolves
    ``trace:<key>`` workload references; :class:`Trace` is plain tuples,
    so the mapping pickles to pool workers.
    """
    specs = list(specs)
    if batch <= 1:
        if processes > 1 and len(specs) > 1:
            with multiprocessing.Pool(processes) as pool:
                return pool.map(
                    partial(run_point, backend=backend, traces=traces), specs
                )
        return [run_point(s, backend=backend, traces=traces) for s in specs]
    # pack compatible specs into batch tasks; the pool (when used)
    # distributes whole batches, and records reassemble in grid order
    groups: Dict[object, List[PointSpec]] = {}
    for s in specs:
        key = (s.topology, s.max_cycles) if _spec_batchable(s) else None
        groups.setdefault(key, []).append(s)
    tasks = [
        members[i:i + batch]
        for members in groups.values()
        for i in range(0, len(members), batch)
    ]
    if processes > 1 and len(tasks) > 1:
        with multiprocessing.Pool(processes) as pool:
            outs = pool.map(
                partial(run_batch_points, backend=backend, traces=traces),
                tasks,
            )
    else:
        outs = [
            run_batch_points(task, backend=backend, traces=traces)
            for task in tasks
        ]
    by_spec = {
        spec: rec for task, recs in zip(tasks, outs)
        for spec, rec in zip(task, recs)
    }
    return [by_spec[s] for s in specs]


def run_sweep(
    topologies: Sequence[str],
    patterns: Sequence[str] = ("uniform",),
    loads: Sequence[float] = (0.1, 0.2, 0.4, 0.6, 0.8),
    routers: Sequence[str] = ("bfs",),
    seeds: Sequence[int] = (0,),
    faults: Sequence[str] = ("",),
    switching: Sequence[str] = ("sf",),
    vcs: Sequence[int] = (1,),
    buffers: Sequence[int] = (4,),
    flits: Sequence[str] = ("1",),
    collectives: Sequence[str] = ("",),
    workloads: Sequence[str] = ("",),
    inject_window: int = 64,
    max_cycles: int = 100000,
    processes: int = 1,
    batch: int = 1,
    cache=None,
    backend=None,
    traces: Optional[Mapping[str, Trace]] = None,
) -> List[SweepRecord]:
    """Run the (topology x router x pattern x faults x switching x vcs x
    buffers x flits x collective x load x seed) grid.

    ``faults`` is a sequence of fault-plan spec strings (``""`` = the
    unfaulted baseline), so one call produces degradation curves.
    ``switching``/``vcs``/``buffers``/``flits`` sweep the flow-control
    configuration; ``"sf"`` points ignore the latter three axes (their
    specs are normalised, so a mixed grid never re-runs the same
    store-and-forward point).  ``collectives`` adds closed-loop
    collective points (``""`` = the plain pattern grid); a collective
    point's pattern/load axes are normalised away, so one collective
    entry contributes exactly one point per (topology, router, faults,
    flow, seed) cell.  ``batch > 1`` packs up to that many compatible
    points (open-loop pattern points sharing topology and cycle cap,
    any mix of switching modes)
    into each lock-step :class:`~repro.network.batch.BatchedSimulator`
    run -- records stay bit-identical, only the ``batch`` column and the
    wall-clock change.  ``processes > 1`` distributes the work over a
    multiprocessing pool (whole batches when batching); specs are
    validated eagerly via :func:`expand_grid` (unknown names, impossible
    fault plans and bad flit specs raise before any worker starts).

    ``cache`` is an optional content-addressed result cache (anything
    with the ``get(spec) -> SweepRecord | None`` / ``put(spec, record)``
    protocol of :class:`repro.network.service.ResultCache`): cached grid
    cells are never re-simulated, only the missing cells run, and fresh
    records are stored on the way out -- so re-running a grid is
    incremental and a fully warm grid costs no simulation at all.
    Cached records report ``batch=1`` (the bookkeeping column describes
    the run that produced them, not this one); every payload column is
    bit-identical to the uncached run.

    ``backend`` picks the kernel implementation
    (:mod:`repro.network.backends`; a name string when ``processes >
    1``).  Backends are bit-identical, so it never enters the grid, the
    records, or the cache keys: a cache warmed under one backend is
    fully warm under every other.

    ``workloads`` adds multi-tenant points (see :func:`expand_grid`);
    ``traces`` maps trace keys to loaded
    :class:`~repro.network.workloads.Trace` objects for ``trace:<key>``
    workload values (the CLI builds it from ``--trace`` files).  Trace
    points cache by the trace's *content* key, so a warm cache follows
    the trace wherever its file moves.
    """
    if batch < 1:
        raise ValueError(f"batch must be at least 1, got {batch}")
    specs = expand_grid(
        topologies, patterns=patterns, loads=loads, routers=routers,
        seeds=seeds, faults=faults, switching=switching, vcs=vcs,
        buffers=buffers, flits=flits, collectives=collectives,
        workloads=workloads,
        inject_window=inject_window, max_cycles=max_cycles,
    )
    if cache is None:
        return _execute(
            specs, processes=processes, batch=batch, backend=backend,
            traces=traces,
        )
    found = {s: r for s in specs if (r := cache.get(s)) is not None}
    missing = [s for s in specs if s not in found]
    if missing:
        runs = _execute(missing, processes, batch, backend=backend,
                        traces=traces)
        for spec, rec in zip(missing, runs):
            cache.put(spec, rec)
            found[spec] = rec
    return [found[s] for s in specs]


def flow_tag(rec: SweepRecord) -> str:
    """The flow-control axis of a curve key: ``""`` for store-and-forward,
    ``"wormhole:v2:b4:f1-8"``-style (:meth:`FlowControl.label` plus the
    flit spec) for the pipelined modes."""
    if rec.switching == "sf":
        return ""
    flow = FlowControl(
        switching=rec.switching,
        buffer_depth=rec.buffer_depth,
        num_vcs=rec.num_vcs,
    )
    return f"{flow.label()}:f{rec.flits}"


@dataclass(frozen=True)
class CurvePoint:
    """One aggregated saturation-curve point: every seed of one
    (topology, router, pattern, faults, flow, collective) cell condensed
    to mean/std (population std; zero for single-seed cells).
    ``deadlock_rate`` is the fraction of seeds whose run deadlocked;
    ``stalled`` the mean stuck-packet count.  For collective cells
    ``rounds`` is the mean schedule round count over the seeds (roots
    vary by seed, so BFS-tree round counts may too) against the shared
    ``round_bound``; both are zero on pattern cells.

    Seed-axis aggregation is deliberately mixed and the choice per
    column is part of the contract: ``p95_latency`` is the **mean of
    the per-seed p95s** (each seed's :func:`nearest_rank_p95` averaged
    across seeds -- an unbiased per-replication tail estimate, *not*
    the p95 of the pooled latency sample, which would let one bad seed's
    tail dominate the cell), while ``max_queue`` and ``max_latency``
    take the **max** over seeds (high-water marks: "the worst any
    replication saw" is the number a buffer-sizing decision needs).
    The pooled-sample p95 lies within the per-seed min/max envelope, a
    bound the cross-check test pins down so these semantics cannot
    silently drift."""

    topology: str
    router: str
    pattern: str
    collective: str
    faults: str
    switching: str
    num_vcs: int
    buffer_depth: int
    flits: str
    rounds: float
    round_bound: int
    load: float
    seeds: int
    avg_latency: float
    std_avg_latency: float
    p95_latency: float
    max_latency: int
    throughput: float
    std_throughput: float
    delivery_rate: float
    max_queue: int
    dropped: float
    misroutes: float
    stalled: float
    deadlock_rate: float


def saturation_curves(
    records: Sequence[SweepRecord],
) -> Dict[Tuple[str, str, str, str, str, str], List[CurvePoint]]:
    """Regroup records into per-(topology, router, pattern, faults, flow,
    collective) load curves, sorted by offered load (the saturation-curve
    x axis).

    Multi-seed cells aggregate into one :class:`CurvePoint` per load
    instead of interleaving seed replicas along the curve; the fifth key
    element is :func:`flow_tag`'s switching-configuration string (``""``
    for plain store-and-forward) and the sixth the collective name
    (``""`` for pattern records, whose curves are unchanged).  Workload
    records put their workload spec in the pattern slot (their
    ``pattern`` column is the uninformative ``"-"``), so distinct
    workloads on one topology get distinct curves.
    """
    cells: Dict[
        Tuple[str, str, str, str, str, str], Dict[float, List[SweepRecord]]
    ] = {}
    for rec in records:
        key = (rec.topology, rec.router, rec.workload or rec.pattern,
               rec.faults, flow_tag(rec), rec.collective)
        cells.setdefault(key, {}).setdefault(rec.load, []).append(rec)
    curves: Dict[Tuple[str, str, str, str, str, str], List[CurvePoint]] = {}
    for key, by_load in cells.items():
        curve = []
        for load in sorted(by_load):
            rs = by_load[load]
            lats = [r.avg_latency for r in rs]
            thrus = [r.throughput for r in rs]
            curve.append(CurvePoint(
                topology=key[0],
                router=key[1],
                pattern=key[2],
                collective=key[5],
                faults=key[3],
                switching=rs[0].switching,
                num_vcs=rs[0].num_vcs,
                buffer_depth=rs[0].buffer_depth,
                flits=rs[0].flits,
                rounds=fmean(r.rounds for r in rs),
                round_bound=rs[0].round_bound,
                load=load,
                seeds=len(rs),
                avg_latency=fmean(lats),
                std_avg_latency=pstdev(lats) if len(lats) > 1 else 0.0,
                p95_latency=fmean(r.p95_latency for r in rs),
                max_latency=max(r.max_latency for r in rs),
                throughput=fmean(thrus),
                std_throughput=pstdev(thrus) if len(thrus) > 1 else 0.0,
                delivery_rate=fmean(r.delivery_rate for r in rs),
                max_queue=max(r.max_queue for r in rs),
                dropped=fmean(r.dropped for r in rs),
                misroutes=fmean(r.misroutes for r in rs),
                stalled=fmean(r.stalled for r in rs),
                deadlock_rate=fmean(float(r.deadlocked) for r in rs),
            ))
        curves[key] = curve
    return curves


_FIELDS = [f.name for f in fields(SweepRecord)]


def write_csv(records: Sequence[SweepRecord], path: str) -> None:
    """Dump records as CSV (one header row, one row per sweep point)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for rec in records:
            writer.writerow(asdict(rec))


def write_json(records: Sequence[SweepRecord], path: str) -> None:
    """Dump records as a JSON array of objects."""
    with open(path, "w") as fh:
        json.dump([asdict(rec) for rec in records], fh, indent=2)
        fh.write("\n")
