"""Batched multi-point simulation: K replications, one lock-step loop.

The sweep harness is the paper's experimental instrument, and its grids
are embarrassingly replicated: the same topology simulated over and over
with different seeds, loads, patterns, routers or fault plans.  Run
sequentially, every replication pays the full per-cycle Python/NumPy
dispatch overhead of :class:`~repro.network.simulator.VectorizedSimulator`
on arrays far too small to amortise it.  This module adds the missing
axis: *runs* are batched the same way PR 1 batched *packets*.

:class:`BatchedSimulator` stacks K independent replications on one
topology into flat arrays and advances all of them in a single
store-and-forward cycle loop:

- every replication keeps its own **disjoint directed-link-id space**
  (run ``k``'s links live in ``[link_base[k], link_base[k+1])``), so the
  shared per-link FIFO arrays can never leak packets between runs;
- packets are renumbered globally by ``(inject_cycle, run, local_pid)``
  -- a stable sort that preserves every run's internal packet order, so
  each link's ``(link, pid)`` FIFO discipline is untouched;
- per-run accounting (``in_flight``, ``last_busy``, ``max_queue``,
  in-flight drops) lives in length-K arrays updated with grouped
  scatter-adds, so each :class:`SimResult` comes out **bit-identical**
  to the result of a sequential ``VectorizedSimulator.run`` of the same
  replication -- fault plans included (a run's dying links drop exactly
  its own queues);
- the idle-cycle jump fires only when *every* run is quiescent, which
  changes nothing: an idle run's state is untouched by cycles it sits
  through, and its ``cycles``/``max_queue`` accounting only advances on
  its own activity.

Preparation is shared where the semantics allow, which is where most of
a sweep point's cost actually goes: replications without faults that use
the same router *instance* share one route-table build over the union of
their traffic pairs (routes are deterministic per pair, so the union
table contains exactly the paths the per-run builds would), and all
replications share one healthy-topology BFS-distance cache for misroute
accounting.

Switching modes: store-and-forward batches natively
(:data:`BATCHED_MODES`).  Wormhole / virtual-cut-through items are
accepted but fall back to a sequential ``VectorizedSimulator.run`` per
item -- results are identical either way; :func:`batches_natively`
reports the capability so callers (the sweep packer, the CLI) can plan
around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.faults import _NEVER, FaultPlan
from repro.network.flowcontrol import FlowControl, _validate_vct, resolve_flits
from repro.network.routing import BfsRouter
from repro.network.simulator import (
    SimResult,
    VectorizedSimulator,
    _as_flow,
    _build_table,
    _fifo_append,
    _link_arrays,
    _misroute_hops,
    _prepare,
    _Prepared,
)
from repro.network.topology import Topology

__all__ = [
    "BATCHED_MODES",
    "BatchItem",
    "BatchedSimulator",
    "batches_natively",
    "run_batch",
]

#: Switching modes the batch engine advances natively in one lock-step
#: loop.  Anything else is accepted by :meth:`BatchedSimulator.run_batch`
#: but falls back to a sequential per-item run.
BATCHED_MODES = frozenset({"sf"})


def batches_natively(switching: Union[str, FlowControl, None]) -> bool:
    """True when ``switching`` advances in the lock-step batched loop
    (today: store-and-forward); False for the sequential-fallback modes
    (wormhole / virtual cut-through)."""
    return _as_flow(switching).switching in BATCHED_MODES


@dataclass(frozen=True)
class BatchItem:
    """One replication of a batch: traffic plus its run configuration.

    ``router=None`` uses the owning :class:`BatchedSimulator`'s default.
    Replications without faults that share one router *instance* also
    share a single route-table build, so a sweep packer should construct
    one router object per router kind and reuse it across its items.
    """

    traffic: Sequence[Tuple[int, int, int]]
    router: object = None
    faults: Optional[FaultPlan] = None
    switching: Union[str, FlowControl] = "sf"
    flits: Union[int, Sequence[int]] = 1


class BatchedSimulator:
    """Run K independent replications on one topology in lock step.

    Construction mirrors :class:`VectorizedSimulator`; ``router`` is the
    default for items that do not carry their own.  The only entry point
    is :meth:`run_batch`; per-run semantics (and results) are exactly
    those of ``VectorizedSimulator.run``, which the batch-equivalence
    suite enforces bit for bit.
    """

    def __init__(self, topo: Topology, router=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()

    def run_batch(
        self,
        items: Sequence[BatchItem],
        max_cycles: int = 100000,
    ) -> List[SimResult]:
        """Simulate every item and return one :class:`SimResult` each,
        in item order, bit-identical to K sequential
        ``VectorizedSimulator(topo, item.router).run(...)`` calls with
        the same ``max_cycles``.

        Validation (negative injection cycles, multi-flit traffic under
        store-and-forward, bad flit specs, packets too big for a vct
        buffer) raises eagerly for the whole batch -- every item is
        checked, with the sequential engine's own errors, before any
        item simulates.
        """
        items = list(items)
        results: List[Optional[SimResult]] = [None] * len(items)
        native: List[int] = []
        fallback: List[int] = []
        for idx, item in enumerate(items):
            flow = _as_flow(item.switching)
            traffic = list(item.traffic)
            flit_arr = resolve_flits(item.flits, len(traffic))
            if not flow.pipelined and flit_arr.size and int(flit_arr.max()) > 1:
                raise ValueError(
                    "store-and-forward is a single-flit model; use "
                    "switching='wormhole' or 'vct' for multi-flit packets"
                )
            if traffic and min(t[0] for t in traffic) < 0:
                raise ValueError(
                    "injection cycles must be non-negative "
                    f"(got {min(t[0] for t in traffic)}); "
                    "both engines count time from 0"
                )
            if flow.pipelined:
                _validate_vct(flow, flit_arr)
                fallback.append(idx)
            else:
                native.append(idx)
        for idx in fallback:
            # sequential fallback: wormhole / vct do not batch yet
            item = items[idx]
            results[idx] = VectorizedSimulator(
                self.topo, self._router_of(item)
            ).run(
                item.traffic, max_cycles=max_cycles, faults=item.faults,
                switching=_as_flow(item.switching), flits=item.flits,
            )
        if native:
            preps = self._prepare_native(items, native)
            for idx, result in zip(
                native, _run_lockstep(self.topo, preps, max_cycles)
            ):
                results[idx] = result
        return results  # type: ignore[return-value]

    # -- preparation ------------------------------------------------------

    def _router_of(self, item: BatchItem):
        return item.router if item.router is not None else self.router

    def _prepare_native(
        self, items: Sequence[BatchItem], native: Sequence[int]
    ) -> List[_Prepared]:
        """One :class:`_Prepared` per native (store-and-forward) item.

        Faulted items prepare individually (epoch-split tables cannot be
        shared), but reuse one healthy-distance BFS cache; unfaulted
        items group by router instance and share one union route table
        and one misroute array per group.  Items arrive pre-validated
        by :meth:`run_batch`.
        """
        dist_cache: Dict[int, np.ndarray] = {}
        preps: Dict[int, _Prepared] = {}
        groups: Dict[int, List[int]] = {}
        for idx in native:
            item = items[idx]
            if item.faults is not None and item.faults.num_events:
                preps[idx] = _prepare(
                    self.topo, self._router_of(item), list(item.traffic),
                    None, item.faults, dist_cache=dist_cache,
                )
            else:
                groups.setdefault(id(self._router_of(item)), []).append(idx)
        for members in groups.values():
            shared = self._prepare_shared(items, members, dist_cache)
            preps.update(shared)
        return [preps[idx] for idx in native]

    def _prepare_shared(
        self,
        items: Sequence[BatchItem],
        members: Sequence[int],
        dist_cache: Dict[int, np.ndarray],
    ) -> Dict[int, _Prepared]:
        """Prepare unfaulted items sharing one router instance: build the
        route table once over the union of their traffic pairs, compute
        the per-row misroute array once, then resolve each item against
        the shared table exactly as ``_prepare`` would."""
        n = self.topo.num_nodes
        router = self._router_of(items[members[0]])
        arrs: Dict[int, np.ndarray] = {}
        perms: Dict[int, np.ndarray] = {}
        code_parts: List[np.ndarray] = []
        for idx in members:
            arr = np.asarray(items[idx].traffic, dtype=np.int64).reshape(-1, 3)
            if arr.size and int(arr[:, 0].min()) < 0:
                raise ValueError(
                    "injection cycles must be non-negative "
                    f"(got {int(arr[:, 0].min())}); "
                    "both engines count time from 0"
                )
            perm = np.argsort(arr[:, 0], kind="stable")
            arrs[idx] = arr[perm]
            perms[idx] = perm
            code_parts.append(arr[:, 1] * n + arr[:, 2])
        union = np.unique(np.concatenate(code_parts)) if code_parts else (
            np.empty(0, dtype=np.int64)
        )
        pairs = [(int(c) // n, int(c) % n) for c in union]
        table = _build_table(self.topo, router, pairs)
        lengths = table.lengths()
        mis = np.zeros(table.num_routes, dtype=np.int64)
        for pair, r in table.pair_row.items():
            if r >= 0:
                mis[r] = _misroute_hops(
                    self.topo, dist_cache, pair[0], pair[1], int(lengths[r]) - 1
                )
        out: Dict[int, _Prepared] = {}
        for idx in members:
            arr = arrs[idx]
            codes, inverse = np.unique(
                arr[:, 1] * n + arr[:, 2], return_inverse=True
            )
            rowmap = np.asarray(
                [table.pair_row[(int(c) // n, int(c) % n)] for c in codes],
                dtype=np.int64,
            )
            rows = (
                rowmap[inverse] if codes.size else np.empty(0, dtype=np.int64)
            )
            routed = rows >= 0
            out[idx] = _Prepared(
                table=table,
                inject=arr[routed, 0],
                row=rows[routed],
                num_dropped=int((~routed).sum()),
                misroutes=mis,
                link_dead={},
                order=perms[idx][routed],
            )
        return out


def run_batch(
    topo: Topology,
    items: Sequence[BatchItem],
    max_cycles: int = 100000,
    router=None,
) -> List[SimResult]:
    """Module-level convenience: ``BatchedSimulator(topo, router)
    .run_batch(items, max_cycles)``."""
    return BatchedSimulator(topo, router).run_batch(items, max_cycles)


# ---------------------------------------------------------------------------
# The lock-step store-and-forward loop
# ---------------------------------------------------------------------------


def _run_lockstep(
    topo: Topology, preps: Sequence[_Prepared], max_cycles: int
) -> List[SimResult]:
    """Advance every prepared replication in one cycle loop.

    The body is :class:`VectorizedSimulator`'s store-and-forward loop
    with run-indexed accounting bolted on; the inline comments call out
    each point where per-run bookkeeping replaces the scalar original.
    """
    K = len(preps)
    empty = [len(p.row) == 0 for p in preps]
    results: List[Optional[SimResult]] = [
        SimResult(
            cycles=1, injected=p.num_dropped, delivered=0,
            latencies=(), max_queue=0, dropped=p.num_dropped,
        ) if empty[k] else None
        for k, p in enumerate(preps)
    ]
    live = [k for k in range(K) if not empty[k]]
    if not live:
        return results  # type: ignore[return-value]

    n = topo.num_nodes
    # per-run link arrays; items sharing a route table share the
    # (link_seq, link_offsets, link_codes) computation but still get
    # disjoint global link-id ranges below
    cache: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    seq_parts: List[np.ndarray] = []
    link_counts: List[int] = []
    firsts: List[np.ndarray] = []
    nhops_parts: List[np.ndarray] = []
    mis_parts: List[np.ndarray] = []
    inject_parts: List[np.ndarray] = []
    seq_base = 0
    link_base = [0]
    any_dead = False
    for k in live:
        p = preps[k]
        key = id(p.table)
        if key not in cache:
            cache[key] = _link_arrays(n, p.table)
        link_seq, link_offsets, link_codes = cache[key]
        num_links = int(link_seq.max()) + 1 if link_seq.size else 1
        seq_parts.append(link_seq + link_base[-1])
        firsts.append(link_offsets[p.row] + seq_base)
        nhops_parts.append(p.table.lengths()[p.row] - 1)
        mis_parts.append(p.misroutes[p.row])
        inject_parts.append(p.inject)
        seq_base += link_seq.size
        link_base.append(link_base[-1] + num_links)
        link_counts.append(num_links)
        any_dead = any_dead or bool(p.link_dead)
    gl_seq = np.concatenate(seq_parts)
    num_links_total = link_base[-1]
    run_of_link = np.repeat(
        np.arange(len(live), dtype=np.int64),
        np.asarray(link_counts, dtype=np.int64),
    )
    dead_at = None
    if any_dead:
        dead_at = np.full(num_links_total, _NEVER, dtype=np.int64)
        for j, k in enumerate(live):
            p = preps[k]
            if not p.link_dead:
                continue
            link_codes = cache[id(p.table)][2]
            for (u, v), c in p.link_dead.items():
                code = u * n + v
                i = int(np.searchsorted(link_codes, code))
                if i < link_codes.size and link_codes[i] == code:
                    dead_at[link_base[j] + i] = c

    # global packet order: stable sort by injection cycle over the
    # run-major concatenation = (inject, run, local pid), so each run's
    # internal order -- and with it every FIFO tie-break -- is preserved
    sizes = np.asarray([a.size for a in inject_parts], dtype=np.int64)
    order = np.argsort(np.concatenate(inject_parts), kind="stable")
    inject = np.concatenate(inject_parts)[order]
    nhops = np.concatenate(nhops_parts)[order]
    mis_of = np.concatenate(mis_parts)[order]
    first_link_at = np.concatenate(firsts)[order]
    run_of = np.repeat(np.arange(len(live), dtype=np.int64), sizes)[order]
    num = int(inject.size)
    Ka = len(live)

    delivered_at = np.full(num, -1, dtype=np.int64)
    pos = np.zeros(num, dtype=np.int64)
    succ = np.full(num, -1, dtype=np.int64)
    qhead = np.full(num_links_total, -1, dtype=np.int64)
    qtail = np.full(num_links_total, -1, dtype=np.int64)
    qlen = np.zeros(num_links_total, dtype=np.int64)

    # per-run accounting (the scalars of the sequential loop, as arrays)
    in_flight_r = np.zeros(Ka, dtype=np.int64)
    last_busy_r = np.full(Ka, -1, dtype=np.int64)
    maxq_r = np.zeros(Ka, dtype=np.int64)
    drop_r = np.zeros(Ka, dtype=np.int64)
    in_flight = 0
    next_pid = 0
    cycle = int(inject[0]) if inject[0] < max_cycles else max_cycles
    while cycle < max_cycles:
        # inject every packet whose cycle has come
        if next_pid < num and inject[next_pid] <= cycle:
            hi = int(np.searchsorted(inject, cycle, side="right"))
            fresh = np.arange(next_pid, hi, dtype=np.int64)
            next_pid = hi
            zero_hop = fresh[nhops[fresh] == 0]
            delivered_at[zero_hop] = inject[zero_hop]
            moving_fresh = fresh[nhops[fresh] > 0]
            if moving_fresh.size:
                _fifo_append(succ, qhead, qtail, qlen, moving_fresh,
                             gl_seq[first_link_at[moving_fresh]])
                in_flight_r += np.bincount(
                    run_of[moving_fresh], minlength=Ka
                )
                in_flight += int(moving_fresh.size)
            # injecting marks the run busy this cycle, zero-hop included
            last_busy_r[np.unique(run_of[fresh])] = cycle
        if in_flight:
            # a run with packets in flight is busy this cycle even if a
            # fault empties it below (matches the sequential engine)
            last_busy_r[in_flight_r > 0] = cycle
            busy = np.flatnonzero(qlen)
            # queue depth per run, measured before any fault drop
            np.maximum.at(maxq_r, run_of_link[busy], qlen[busy])
            if dead_at is not None:
                alive = dead_at[busy] > cycle
                if not alive.all():
                    slain = busy[~alive]
                    lost = qlen[slain]
                    np.add.at(drop_r, run_of_link[slain], lost)
                    np.subtract.at(in_flight_r, run_of_link[slain], lost)
                    in_flight -= int(lost.sum())
                    qhead[slain] = -1
                    qtail[slain] = -1
                    qlen[slain] = 0
                    busy = busy[alive]
            served = qhead[busy]
            qhead[busy] = succ[served]
            qlen[busy] -= 1
            pos[served] += 1
            finished = pos[served] == nhops[served]
            done = served[finished]
            moving = served[~finished]
            delivered_at[done] = cycle + 1
            if done.size:
                in_flight_r -= np.bincount(run_of[done], minlength=Ka)
                in_flight -= int(done.size)
            if moving.size:
                _fifo_append(succ, qhead, qtail, qlen, moving,
                             gl_seq[first_link_at[moving] + pos[moving]])
            cycle += 1
        elif next_pid < num:
            # every run is quiescent: jump to the earliest pending
            # injection anywhere in the batch (never skips any run's)
            cycle = min(int(inject[next_pid]), max_cycles)
        else:
            break

    # per-run condensation: a run's packets in ascending global pid
    # order are exactly its packets in injection order
    for j, k in enumerate(live):
        p = preps[k]
        pids = np.flatnonzero(run_of == j)
        d = delivered_at[pids]
        mask = d >= 0
        delivered = int(mask.sum())
        num_k = int(pids.size)
        stalled = num_k - delivered - int(drop_r[j])
        # a run with nothing left pending ended at its own last busy
        # cycle; anything still stuck means the shared cap truncated it
        cycles = (
            max(int(last_busy_r[j]) + 1, 1) if stalled == 0
            else max(max_cycles, 1)
        )
        inj = inject[pids]
        results[k] = SimResult(
            cycles=cycles,
            injected=num_k + p.num_dropped,
            delivered=delivered,
            latencies=tuple((d[mask] - inj[mask]).tolist()),
            max_queue=int(maxq_r[j]),
            dropped=p.num_dropped + int(drop_r[j]),
            misroutes=int(mis_of[pids][mask].sum()),
            hops=tuple(nhops[pids][mask].tolist()),
            stalled=stalled,
        )
    return results  # type: ignore[return-value]
