"""Batched multi-point simulation: K replications, one lock-step loop.

The sweep harness is the paper's experimental instrument, and its grids
are embarrassingly replicated: the same topology simulated over and over
with different seeds, loads, patterns, routers, fault plans or switching
configurations.  Run sequentially, every replication pays the full
per-cycle Python/NumPy dispatch overhead of
:class:`~repro.network.simulator.VectorizedSimulator` on arrays far too
small to amortise it.  This module adds the missing axis: *runs* are
batched the same way PR 1 batched *packets*.

:class:`BatchedSimulator` stacks K independent replications on one
topology into flat arrays and advances all of them through the fused
advance kernel (:mod:`repro.network.kernel`) in a single cycle loop --
**every switching mode batches natively**: store-and-forward items share
flat FIFO arrays, wormhole/virtual-cut-through items share flat
per-(link, VC) buffer state, and the two groups advance against one
clock.  The batching discipline (see the kernel's docstring for the full
argument):

- every replication keeps its own **disjoint id space** for links and,
  in the pipelined modes, extended channels, so shared state arrays can
  never leak packets, credits or VC allocations between runs;
- packets are renumbered globally by ``(inject_cycle, run, local_pid)``
  -- a stable sort that preserves every run's internal packet order, so
  FIFO discipline, link arbitration and VC claims are untouched;
- per-run accounting (in-flight counts, credit stalls, deadlock
  verdicts, occupancy high-water marks, in-flight drops) lives in
  length-K arrays updated with grouped scatter-adds, so each
  :class:`SimResult` comes out **bit-identical** to the result of a
  sequential ``VectorizedSimulator.run`` of the same replication --
  fault plans, deadlock detection and cycle-cap truncation included;
- the idle-cycle jump fires only when *every* run is quiescent, which
  changes nothing: an idle run's state is untouched by cycles it sits
  through, and its accounting only advances on its own activity.

Preparation is shared where the semantics allow, which is where most of
a sweep point's cost actually goes: replications without faults that use
the same router *instance* share one route-table build over the union of
their traffic pairs (routes are deterministic per pair, so the union
table contains exactly the paths the per-run builds would), and all
replications share one healthy-topology BFS-distance cache for misroute
accounting.  Route tables do not depend on the switching mode, so sf and
flow-control items mix freely within one shared build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.faults import FaultPlan
from repro.network.flowcontrol import FlowControl, _validate_vct, resolve_flits
from repro.network.kernel import KernelRun, _link_arrays, run_fused
from repro.network.routing import BfsRouter
from repro.network.simulator import (
    SimResult,
    _as_flow,
    _build_table,
    _flow_result,
    _misroute_hops,
    _prepare,
    _Prepared,
)
from repro.network.topology import Topology

__all__ = [
    "BatchItem",
    "BatchedSimulator",
    "run_batch",
]


@dataclass(frozen=True)
class BatchItem:
    """One replication of a batch: traffic plus its run configuration.

    ``router=None`` uses the owning :class:`BatchedSimulator`'s default.
    Replications without faults that share one router *instance* also
    share a single route-table build, so a sweep packer should construct
    one router object per router kind and reuse it across its items.
    ``switching``, ``flits`` and ``tenants`` mirror
    ``VectorizedSimulator.run``'s parameters; any mix of modes is
    batched natively, and items carrying per-packet tenant ids get
    :attr:`~repro.network.simulator.SimResult.tenant_stats` exactly as
    the sequential engine computes them.
    """

    traffic: Sequence[Tuple[int, int, int]]
    router: object = None
    faults: Optional[FaultPlan] = None
    switching: Union[str, FlowControl] = "sf"
    flits: Union[int, Sequence[int]] = 1
    tenants: Optional[Sequence[int]] = None


class BatchedSimulator:
    """Run K independent replications on one topology in lock step.

    Construction mirrors :class:`VectorizedSimulator`; ``router`` is the
    default for items that do not carry their own.  The only entry point
    is :meth:`run_batch`; per-run semantics (and results) are exactly
    those of ``VectorizedSimulator.run``, which the batch-equivalence
    suite enforces bit for bit across every switching mode.
    """

    def __init__(self, topo: Topology, router=None, backend=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()
        self.backend = backend

    def run_batch(
        self,
        items: Sequence[BatchItem],
        max_cycles: int = 100000,
    ) -> List[SimResult]:
        """Simulate every item and return one :class:`SimResult` each,
        in item order, bit-identical to K sequential
        ``VectorizedSimulator(topo, item.router).run(...)`` calls with
        the same ``max_cycles``.

        Validation (negative injection cycles, multi-flit traffic under
        store-and-forward, bad flit specs, packets too big for a vct
        buffer) raises eagerly for the whole batch -- every item is
        checked, with the sequential engine's own errors, before any
        item simulates.
        """
        items = list(items)
        flows: List[FlowControl] = []
        flit_arrs: List[np.ndarray] = []
        for item in items:
            flow = _as_flow(item.switching)
            traffic = list(item.traffic)
            flit_arr = resolve_flits(item.flits, len(traffic))
            if not flow.pipelined and flit_arr.size and int(flit_arr.max()) > 1:
                raise ValueError(
                    "store-and-forward is a single-flit model; use "
                    "switching='wormhole' or 'vct' for multi-flit packets"
                )
            if traffic and min(t[0] for t in traffic) < 0:
                raise ValueError(
                    "injection cycles must be non-negative "
                    f"(got {min(t[0] for t in traffic)}); "
                    "both engines count time from 0"
                )
            if item.tenants is not None and len(item.tenants) != len(traffic):
                raise ValueError(
                    f"tenants must align with traffic: {len(item.tenants)} "
                    f"ids for {len(traffic)} packets"
                )
            if flow.pipelined:
                _validate_vct(flow, flit_arr)
            flows.append(flow)
            flit_arrs.append(flit_arr)
        if not items:
            return []
        preps = self._prepare_items(items)
        # per-item link arrays; items sharing a route table share the
        # (link_seq, link_offsets, link_codes) computation, and the
        # kernel assigns disjoint global id ranges per run
        cache: Dict[int, tuple] = {}
        n = self.topo.num_nodes
        runs: List[KernelRun] = []
        nhops_list: List[np.ndarray] = []
        for prep, flow, flit_arr in zip(preps, flows, flit_arrs):
            key = id(prep.table)
            if key not in cache:
                cache[key] = (
                    _link_arrays(n, prep.table), prep.table.lengths()
                )
            (link_seq, link_offsets, link_codes), lengths = cache[key]
            nhops = lengths[prep.row] - 1
            nhops_list.append(nhops)
            runs.append(KernelRun(
                flow=flow,
                inject=prep.inject,
                nhops=nhops,
                first_link_at=link_offsets[prep.row],
                link_seq=link_seq,
                link_offsets=link_offsets,
                link_codes=link_codes,
                nf=flit_arr[prep.order],
                link_dead=prep.link_dead,
            ))
        outcomes = run_fused(self.topo, runs, max_cycles, backend=self.backend)
        return [
            _flow_result(
                out, prep.inject, nhops, prep.misroutes[prep.row],
                prep.num_dropped,
                all_tenants=item.tenants,
                pid_tenants=(
                    [int(item.tenants[j]) for j in prep.order]
                    if item.tenants is not None else None
                ),
            )
            for out, prep, nhops, item in zip(
                outcomes, preps, nhops_list, items
            )
        ]

    # -- preparation ------------------------------------------------------

    def _router_of(self, item: BatchItem):
        return item.router if item.router is not None else self.router

    def _prepare_items(self, items: Sequence[BatchItem]) -> List[_Prepared]:
        """One :class:`_Prepared` per item, switching mode regardless.

        Faulted items prepare individually (epoch-split tables cannot be
        shared), but reuse one healthy-distance BFS cache; unfaulted
        items group by router instance and share one union route table
        and one misroute array per group.  Items arrive pre-validated
        by :meth:`run_batch`.
        """
        dist_cache: Dict[int, np.ndarray] = {}
        preps: Dict[int, _Prepared] = {}
        groups: Dict[int, List[int]] = {}
        for idx, item in enumerate(items):
            if item.faults is not None and item.faults.num_events:
                preps[idx] = _prepare(
                    self.topo, self._router_of(item), list(item.traffic),
                    None, item.faults, dist_cache=dist_cache,
                )
            else:
                groups.setdefault(id(self._router_of(item)), []).append(idx)
        for members in groups.values():
            shared = self._prepare_shared(items, members, dist_cache)
            preps.update(shared)
        return [preps[idx] for idx in range(len(items))]

    def _prepare_shared(
        self,
        items: Sequence[BatchItem],
        members: Sequence[int],
        dist_cache: Dict[int, np.ndarray],
    ) -> Dict[int, _Prepared]:
        """Prepare unfaulted items sharing one router instance: build the
        route table once over the union of their traffic pairs, compute
        the per-row misroute array once, then resolve each item against
        the shared table exactly as ``_prepare`` would."""
        n = self.topo.num_nodes
        router = self._router_of(items[members[0]])
        arrs: Dict[int, np.ndarray] = {}
        perms: Dict[int, np.ndarray] = {}
        code_parts: List[np.ndarray] = []
        for idx in members:
            arr = np.asarray(items[idx].traffic, dtype=np.int64).reshape(-1, 3)
            if arr.size and int(arr[:, 0].min()) < 0:
                raise ValueError(
                    "injection cycles must be non-negative "
                    f"(got {int(arr[:, 0].min())}); "
                    "both engines count time from 0"
                )
            perm = np.argsort(arr[:, 0], kind="stable")
            arrs[idx] = arr[perm]
            perms[idx] = perm
            code_parts.append(arr[:, 1] * n + arr[:, 2])
        union = np.unique(np.concatenate(code_parts)) if code_parts else (
            np.empty(0, dtype=np.int64)
        )
        pairs = [(int(c) // n, int(c) % n) for c in union]
        table = _build_table(self.topo, router, pairs)
        lengths = table.lengths()
        mis = np.zeros(table.num_routes, dtype=np.int64)
        for pair, r in table.pair_row.items():
            if r >= 0:
                mis[r] = _misroute_hops(
                    self.topo, dist_cache, pair[0], pair[1], int(lengths[r]) - 1
                )
        out: Dict[int, _Prepared] = {}
        for idx in members:
            arr = arrs[idx]
            codes, inverse = np.unique(
                arr[:, 1] * n + arr[:, 2], return_inverse=True
            )
            rowmap = np.asarray(
                [table.pair_row[(int(c) // n, int(c) % n)] for c in codes],
                dtype=np.int64,
            )
            rows = (
                rowmap[inverse] if codes.size else np.empty(0, dtype=np.int64)
            )
            routed = rows >= 0
            out[idx] = _Prepared(
                table=table,
                inject=arr[routed, 0],
                row=rows[routed],
                num_dropped=int((~routed).sum()),
                misroutes=mis,
                link_dead={},
                order=perms[idx][routed],
            )
        return out


def run_batch(
    topo: Topology,
    items: Sequence[BatchItem],
    max_cycles: int = 100000,
    router=None,
    backend=None,
) -> List[SimResult]:
    """Module-level convenience: ``BatchedSimulator(topo, router,
    backend).run_batch(items, max_cycles)``."""
    return BatchedSimulator(topo, router, backend=backend).run_batch(
        items, max_cycles
    )
