"""Synchronous message-passing network simulator.

This is the hardware substitute declared in DESIGN.md: a cycle-accurate
(at link granularity) model of an interconnection network under three
switching disciplines -- store-and-forward (the default), wormhole and
virtual cut-through.

Model
-----
- Time advances in discrete cycles.
- Each directed link ``(u, v)`` carries at most one packet (``sf``) or
  one flit (wormhole/vct) per cycle and has a FIFO queue/buffer at its
  tail.
- A packet follows a precomputed route (any router from
  :mod:`repro.network.routing`); on each cycle every link forwards the
  head of its queue to the next queue on its route.
- Packets are injected by a traffic pattern: ``(cycle, src, dst)``
  triples (see :mod:`repro.network.traffic`), non-negative cycles only.

Switching modes (``run(..., switching=...)``)
---------------------------------------------
``"sf"`` is the classic store-and-forward model: single-flit packets,
unbounded FIFO queues, one whole packet per link per cycle -- exactly
the original engines, bit for bit.  ``"wormhole"`` and ``"vct"``
(a :class:`~repro.network.flowcontrol.FlowControl` value selects buffer
depth and virtual-channel count) switch to the finite-buffer pipelined
model of :mod:`repro.network.flowcontrol`: multi-flit packets
(``flits=``), per-(link, VC) buffers of bounded depth, credit
backpressure, dimension-ordered VC assignment -- and *detected* deadlock
(``SimResult.deadlocked`` / ``stalled``) when a channel-dependency
cycle actually bites, instead of a simulation that never terminates.

Two engines implement the *same* deterministic semantics:

- :class:`ReferenceSimulator` -- the readable per-packet/deque loop, the
  executable specification;
- :class:`VectorizedSimulator` -- the production engine: routes are
  batched into a flat CSR :class:`~repro.network.routing.RouteTable`,
  per-packet state lives in NumPy arrays, and the cycle loop itself is
  the fused advance kernel of :mod:`repro.network.kernel` -- the same
  lock-step engine that batches K replications at once -- invoked here
  with K = 1.  Per-link FIFOs are intrusive linked lists over flat
  arrays, each cycle advances every contended link with a handful of
  array gathers instead of a Python loop over packets, and idle gaps
  between injections are skipped outright.  The kernel's inner loop is
  supplied by a selectable backend (:mod:`repro.network.backends`:
  ``numpy``, the compiled ``native`` kernel, or ``auto``).  Both
  engines -- and every backend -- produce bit-identical
  :class:`SimResult` values, which the equivalence tests enforce.

Faults
------
Both engines accept a :class:`~repro.network.faults.FaultPlan`.  Fault
cycles split time into *routing epochs*: packets injected in an epoch
are routed on the topology masked by every fault already active
(:meth:`Topology.with_faults`), one route-table rebuild per epoch.  The
plan also resolves to per-directed-link death cycles; during the forward
step, a link that is dead drops its *entire* queue that cycle (packets
in flight when a fault strikes are lost, not rerouted -- rerouting is
the router's job at the next epoch).  Drop and misroute totals land in
:class:`SimResult` and are bit-identical across engines, same as every
other field.

Determinism contract (both engines): packets are numbered in injection
order (stable sort of the traffic by cycle); a link's FIFO serves packets
in arrival order, ties broken by packet id; packets that arrive at a
queue while a cycle is being forwarded join *behind* everything already
queued that cycle.

``NetworkSimulator`` is the vectorized engine (kept as the public name
for backward compatibility).

Outputs: per-packet latency and hop counts, average/percentile latency,
throughput (delivered packets per cycle), drop and misroute counters,
and maximum queue occupancy -- enough to compare topologies under
identical load and damage, which is what the 1993-lineage evaluations
did on real machines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.graphs.traversal import bfs_distances
from repro.network.faults import _NEVER, FaultPlan
from repro.network.flowcontrol import (
    FlowControl,
    FlowOutcome,
    reference_flow_run,
    resolve_flits,
)
from repro.network.kernel import KernelRun, _link_arrays, run_fused
from repro.network.routing import BfsRouter, RouteTable
from repro.network.topology import Topology
from repro.network.traffic import uniform_traffic
from repro.network.workloads import TenantStats, tenant_stats_of

__all__ = [
    "FlowControl",
    "NetworkSimulator",
    "ReferenceSimulator",
    "SimResult",
    "TenantStats",
    "VectorizedSimulator",
    "uniform_traffic",
]


@dataclass(frozen=True)
class SimResult:
    """Aggregate outcome of one simulation run.

    ``latencies`` and ``hops`` hold one entry per *delivered* packet,
    ordered by packet id (= injection order), so results from different
    engines over the same traffic compare exactly.  ``dropped`` counts
    packets lost for any reason: unroutable at injection (router failure
    or dead endpoint) plus packets killed in flight by a link/node fault.
    ``misroutes`` totals the detour steps of delivered packets: hops
    beyond the *healthy* topology's graph distance, halved (each detour
    costs two extra hops) -- zero for shortest-path routing on an
    undamaged network, positive when faults (or a suboptimal router)
    force longer paths.  ``stalled`` counts routed packets that were
    neither delivered nor dropped when the run ended (always zero for a
    run that completed); ``deadlocked`` is set when a flow-controlled
    run (wormhole/vct) reached a state where no flit could ever move
    again -- detected and reported, never an unterminating simulation.
    ``tenant_stats`` is the per-tenant accounting of a multi-tenant
    workload run (one :class:`~repro.network.workloads.TenantStats` per
    tenant id, ascending) -- empty for single-tenant traffic, so every
    pre-workload result compares unchanged.
    """

    cycles: int
    injected: int
    delivered: int
    latencies: Tuple[int, ...]
    max_queue: int
    dropped: int = 0
    misroutes: int = 0
    hops: Tuple[int, ...] = ()
    stalled: int = 0
    deadlocked: bool = False
    tenant_stats: Tuple[TenantStats, ...] = ()

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    @property
    def throughput(self) -> float:
        return self.delivered / self.cycles if self.cycles else 0.0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.injected if self.injected else 0.0

    @property
    def avg_hops(self) -> float:
        return sum(self.hops) / len(self.hops) if self.hops else 0.0


def _misroute_hops(
    topo: Topology, dist_cache: Dict[int, np.ndarray], src: int, dst: int, hops: int
) -> int:
    """Detour steps of a route: hops beyond the *healthy* topology's
    graph distance, halved (on bipartite cube graphs the excess is always
    even; elsewhere the odd remainder is floored away).

    Measuring against the undamaged topology -- not the Hamming distance
    -- means shortest-path routing reports zero on every cube, including
    the non-isometric ones where graph distance legitimately exceeds
    Hamming distance; what remains is exactly the stretch the router (or
    the fault damage) added.  One BFS per destination, cached per run.
    """
    dist = dist_cache.get(dst)
    if dist is None:
        dist = dist_cache[dst] = bfs_distances(topo.graph, dst)
    d = int(dist[src])
    if d < 0:
        return 0
    return max(0, (hops - d) // 2)


class _Prepared:
    """Traffic resolved against a route table, in array form.

    Packets are stable-sorted by injection cycle and numbered 0..P-1 in
    that order; pairs the router cannot serve are dropped up front and
    only counted in ``injected``.  ``misroutes`` holds one detour count
    per table row; ``link_dead`` maps directed links to the first cycle
    they stop forwarding (empty without faults); ``order`` gives each
    surviving packet's index into the traffic sequence as passed, so
    per-packet attributes (flit counts) follow the stable sort.
    """

    __slots__ = ("table", "inject", "row", "num_dropped", "misroutes",
                 "link_dead", "order")

    def __init__(self, table: RouteTable, inject: np.ndarray, row: np.ndarray,
                 num_dropped: int, misroutes: np.ndarray,
                 link_dead: Dict[Tuple[int, int], int], order: np.ndarray):
        self.table = table
        self.inject = inject
        self.row = row
        self.num_dropped = num_dropped
        self.misroutes = misroutes
        self.link_dead = link_dead
        self.order = order


def _as_flow(switching: Union[str, FlowControl, None]) -> FlowControl:
    if switching is None:
        return FlowControl()
    if isinstance(switching, FlowControl):
        return switching
    return FlowControl(switching=switching)


def _flow_result(
    outcome: FlowOutcome,
    inject: np.ndarray,
    nhops: np.ndarray,
    mis_of: np.ndarray,
    num_dropped: int,
    all_tenants: Optional[Sequence[int]] = None,
    pid_tenants: Optional[Sequence[int]] = None,
) -> SimResult:
    """Assemble a :class:`SimResult` from a flow-engine outcome (shared
    by both engines so the aggregation itself cannot diverge).

    ``all_tenants`` tags every offered packet and ``pid_tenants`` the
    routed packets in pid order; when supplied, the per-tenant stats ride
    along (see :func:`~repro.network.workloads.tenant_stats_of`).
    """
    mask = outcome.delivered_at >= 0
    latencies = tuple((outcome.delivered_at[mask] - inject[mask]).tolist())
    tstats: Tuple[TenantStats, ...] = ()
    if all_tenants is not None:
        tstats = tenant_stats_of(
            all_tenants, pid_tenants or (), mask.tolist(), latencies
        )
    return SimResult(
        cycles=outcome.cycles,
        injected=int(nhops.size) + num_dropped,
        delivered=int(mask.sum()),
        latencies=latencies,
        max_queue=outcome.max_queue,
        dropped=num_dropped + outcome.dropped_in_flight,
        misroutes=int(mis_of[mask].sum()),
        hops=tuple(nhops[mask].tolist()),
        stalled=outcome.stalled,
        deadlocked=outcome.deadlocked,
        tenant_stats=tstats,
    )


def _build_table(topo: Topology, router, pairs) -> RouteTable:
    if hasattr(router, "build_table"):
        return router.build_table(topo, pairs)
    return RouteTable.build(topo, router, pairs)


def _prepare(
    topo: Topology,
    router,
    traffic: Sequence[Tuple[int, int, int]],
    route_table: Optional[RouteTable],
    faults: Optional[FaultPlan] = None,
    dist_cache: Optional[Dict[int, np.ndarray]] = None,
) -> _Prepared:
    arr = np.asarray(traffic, dtype=np.int64).reshape(-1, 3)
    if arr.size and int(arr[:, 0].min()) < 0:
        raise ValueError(
            "injection cycles must be non-negative "
            f"(got {int(arr[:, 0].min())}); both engines count time from 0"
        )
    perm = np.argsort(arr[:, 0], kind="stable")
    arr = arr[perm]
    if dist_cache is None:
        # healthy-topology BFS distances; callers running many runs over
        # one topology (the batch engine) pass a shared cache instead
        dist_cache = {}
    if faults is not None and faults.num_events:
        if route_table is not None:
            raise ValueError("pass either route_table or faults, not both")
        return _prepare_faulted(topo, router, arr, faults, perm, dist_cache)
    n = topo.num_nodes
    codes, inverse = np.unique(arr[:, 1] * n + arr[:, 2], return_inverse=True)
    pairs = [(int(c) // n, int(c) % n) for c in codes]
    table = route_table
    if table is None:
        table = _build_table(topo, router, pairs)
    try:
        rowmap = np.asarray([table.pair_row[p] for p in pairs], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(
            f"route_table has no entry for traffic pair {exc.args[0]}; "
            "build the table over every (src, dst) pair in the traffic"
        ) from None
    rows = rowmap[inverse] if len(pairs) else np.empty(0, dtype=np.int64)
    routed = rows >= 0
    lengths = table.lengths()
    mis = np.zeros(table.num_routes, dtype=np.int64)
    for pair, r in table.pair_row.items():
        if r >= 0:
            mis[r] = _misroute_hops(
                topo, dist_cache, pair[0], pair[1], int(lengths[r]) - 1
            )
    return _Prepared(
        table=table,
        inject=arr[routed, 0],
        row=rows[routed],
        num_dropped=int((~routed).sum()),
        misroutes=mis,
        link_dead={},
        order=perm[routed],
    )


def _prepare_faulted(
    topo: Topology, router, arr: np.ndarray, faults: FaultPlan,
    perm: np.ndarray, dist_cache: Dict[int, np.ndarray],
) -> _Prepared:
    """Epoch-split preparation: every fault cycle starts a routing epoch.

    Packets injected in an epoch are routed on the topology masked by
    every fault already active (pairs with a dead endpoint drop at
    injection), then the per-epoch tables merge into one flat table --
    rows are unique per (epoch, pair), so the same pair can legitimately
    route differently before and after a failure.  ``dist_cache`` holds
    *healthy*-topology distances (epoch-independent), so it is safe to
    share across runs and fault plans on one topology.
    """
    faults.validate(topo)
    n = topo.num_nodes
    boundaries = np.asarray(faults.cycles(), dtype=np.int64)
    epoch = np.searchsorted(boundaries, arr[:, 0], side="right")
    rows = np.full(arr.shape[0], -1, dtype=np.int64)
    chunks: List[np.ndarray] = []
    offsets = [0]
    mis: List[int] = []
    for e in np.unique(epoch):
        at = int(boundaries[e - 1]) if e > 0 else -1
        view = topo.with_faults(faults, at_cycle=at) if e > 0 else topo
        dead = faults.dead_nodes_at(at) if e > 0 else frozenset()
        sel = np.flatnonzero(epoch == e)
        codes, inverse = np.unique(arr[sel, 1] * n + arr[sel, 2], return_inverse=True)
        pairs = [(int(c) // n, int(c) % n) for c in codes]
        live = [p for p in pairs if p[0] not in dead and p[1] not in dead]
        sub = _build_table(view, router, live)
        rowmap = np.empty(len(pairs), dtype=np.int64)
        for i, pair in enumerate(pairs):
            r = -1 if (pair[0] in dead or pair[1] in dead) else sub.pair_row[pair]
            if r < 0:
                rowmap[i] = -1
                continue
            nodes_seq = sub.route_nodes(r)
            rowmap[i] = len(offsets) - 1
            chunks.append(np.asarray(nodes_seq, dtype=np.int64))
            offsets.append(offsets[-1] + nodes_seq.size)
            mis.append(
                _misroute_hops(
                    topo, dist_cache, pair[0], pair[1], int(nodes_seq.size) - 1
                )
            )
        rows[sel] = rowmap[inverse]
    table = RouteTable(
        route_data=(np.concatenate(chunks) if chunks
                    else np.empty(0, dtype=np.int64)),
        route_offsets=np.asarray(offsets, dtype=np.int64),
        pair_row={},
    )
    routed = rows >= 0
    return _Prepared(
        table=table,
        inject=arr[routed, 0],
        row=rows[routed],
        num_dropped=int((~routed).sum()),
        misroutes=np.asarray(mis, dtype=np.int64),
        link_dead=faults.link_death_map(topo),
        order=perm[routed],
    )


class ReferenceSimulator:
    """Store-and-forward simulator: the per-packet executable spec.

    Parameters
    ----------
    topo:
        The network.
    router:
        Any object with ``route(topo, src, dst) -> Optional[List[int]]``;
        defaults to exact shortest-path routing.
    """

    def __init__(self, topo: Topology, router=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()

    def run(
        self,
        traffic: Sequence[Tuple[int, int, int]],
        max_cycles: int = 100000,
        route_table: Optional[RouteTable] = None,
        faults: Optional[FaultPlan] = None,
        switching: Union[str, FlowControl] = "sf",
        flits: Union[int, Sequence[int]] = 1,
        tenants: Optional[Sequence[int]] = None,
    ) -> SimResult:
        """Simulate until all deliverable packets arrive (or ``max_cycles``).

        Packets whose router returns ``None`` count as injected but are
        dropped immediately (visible through ``delivery_rate``).

        Routes are resolved one packet at a time through ``router.route``
        (the original engine's behaviour); pass ``route_table`` to reuse a
        prebuilt table instead, e.g. to time the two cycle engines alone.
        A ``faults`` plan (mutually exclusive with ``route_table``)
        switches to per-epoch fault-masked routing with in-flight drops;
        see the module docstring.

        ``switching`` selects the flow-control discipline -- a mode name
        or a full :class:`FlowControl` -- and ``flits`` the per-packet
        flit counts (one int for all, or a sequence aligned with
        ``traffic``); both only meaningful for wormhole/vct.  ``tenants``
        is an optional per-packet tenant id aligned with ``traffic``
        (see :mod:`repro.network.workloads`); when given, the result
        carries :attr:`SimResult.tenant_stats`.
        """
        flow = _as_flow(switching)
        traffic = list(traffic)
        flit_arr = resolve_flits(flits, len(traffic))
        if tenants is not None and len(tenants) != len(traffic):
            raise ValueError(
                f"tenants must align with traffic: {len(tenants)} ids "
                f"for {len(traffic)} packets"
            )
        if not flow.pipelined and flit_arr.size and int(flit_arr.max()) > 1:
            raise ValueError(
                "store-and-forward is a single-flit model; use "
                "switching='wormhole' or 'vct' for multi-flit packets"
            )
        faulted = faults is not None and faults.num_events > 0
        if route_table is None and not faulted:
            if traffic and min(t[0] for t in traffic) < 0:
                raise ValueError(
                    "injection cycles must be non-negative "
                    f"(got {min(t[0] for t in traffic)}); "
                    "both engines count time from 0"
                )
            inject: List[int] = []
            routes: List[List[int]] = []
            mis_of: List[int] = []
            nf: List[int] = []
            pid_tenants: List[int] = []
            dropped = 0
            dist_cache: Dict[int, np.ndarray] = {}
            order = sorted(range(len(traffic)), key=lambda j: traffic[j][0])
            for j in order:
                cycle, src, dst = traffic[j]
                path = self.router.route(self.topo, src, dst)
                if path is None:
                    dropped += 1
                else:
                    inject.append(cycle)
                    routes.append(path)
                    nf.append(int(flit_arr[j]))
                    if tenants is not None:
                        pid_tenants.append(int(tenants[j]))
                    mis_of.append(
                        _misroute_hops(self.topo, dist_cache, src, dst, len(path) - 1)
                    )
            link_dead: Dict[Tuple[int, int], int] = {}
        else:
            prep = _prepare(self.topo, self.router, traffic, route_table, faults)
            routes = [prep.table.route_nodes(r).tolist() for r in prep.row]
            inject = prep.inject.tolist()
            dropped = prep.num_dropped
            mis_of = [int(prep.misroutes[r]) for r in prep.row]
            nf = flit_arr[prep.order].tolist()
            pid_tenants = (
                [int(tenants[j]) for j in prep.order]
                if tenants is not None else []
            )
            link_dead = prep.link_dead
        if flow.pipelined:
            outcome = reference_flow_run(
                self.topo, flow, routes, inject, nf, link_dead, max_cycles
            )
            return _flow_result(
                outcome,
                np.asarray(inject, dtype=np.int64),
                np.asarray([len(r) - 1 for r in routes], dtype=np.int64),
                np.asarray(mis_of, dtype=np.int64),
                dropped,
                all_tenants=tenants,
                pid_tenants=pid_tenants if tenants is not None else None,
            )
        num = len(routes)
        delivered_at = [-1] * num
        hop = [0] * num
        queues: Dict[Tuple[int, int], deque] = {}
        next_pid = 0
        in_flight = 0
        max_queue = 0
        cycle = 0
        remaining = num
        dropped_in_flight = 0
        while (next_pid < num or in_flight > 0) and cycle < max_cycles:
            # inject (pids are already in injection-cycle order)
            while next_pid < num and inject[next_pid] <= cycle:
                pid = next_pid
                next_pid += 1
                route = routes[pid]
                if len(route) == 1:
                    delivered_at[pid] = cycle
                    remaining -= 1
                    continue
                queues.setdefault((route[0], route[1]), deque()).append(pid)
                in_flight += 1
            # forward: each live link serves its head-of-queue packet; a
            # dead link loses its whole queue this cycle
            arrivals: List[int] = []
            for link, q in queues.items():
                if not q:
                    continue
                max_queue = max(max_queue, len(q))
                if link_dead.get(link, _NEVER) <= cycle:
                    dropped_in_flight += len(q)
                    in_flight -= len(q)
                    q.clear()
                else:
                    arrivals.append(q.popleft())
            # late arrivals join behind this cycle's injections, pid order
            for pid in sorted(arrivals):
                hop[pid] += 1
                route = routes[pid]
                at = hop[pid]
                if at == len(route) - 1:
                    delivered_at[pid] = cycle + 1
                    remaining -= 1
                    in_flight -= 1
                else:
                    queues.setdefault((route[at], route[at + 1]), deque()).append(pid)
            cycle += 1
        latencies: List[int] = []
        hops: List[int] = []
        misroutes = 0
        for pid in range(num):
            if delivered_at[pid] >= 0:
                latencies.append(delivered_at[pid] - inject[pid])
                hops.append(hop[pid])
                misroutes += mis_of[pid]
        tstats: Tuple[TenantStats, ...] = ()
        if tenants is not None:
            tstats = tenant_stats_of(
                tenants, pid_tenants,
                [delivered_at[pid] >= 0 for pid in range(num)], latencies,
            )
        return SimResult(
            cycles=max(cycle, 1),
            injected=num + dropped,
            delivered=num - remaining,
            latencies=tuple(latencies),
            max_queue=max_queue,
            dropped=dropped + dropped_in_flight,
            misroutes=misroutes,
            hops=tuple(hops),
            stalled=remaining - dropped_in_flight,
            tenant_stats=tstats,
        )


class VectorizedSimulator:
    """Array-based engine (same semantics, NumPy speed), for every mode.

    All routes are flattened into a CSR route table and converted to
    directed-link-id sequences once; the prepared run is then handed to
    the fused advance kernel (:func:`repro.network.kernel.run_fused`) as
    a one-run batch.  The kernel keeps per-link FIFOs as intrusive
    linked lists over flat pid arrays (store-and-forward) or per
    (link, VC) finite-buffer state (wormhole / vct), advances every
    contended link per cycle with a handful of array gathers, skips idle
    gaps between injections in O(1), and reproduces
    :class:`ReferenceSimulator`'s queue discipline -- injections first,
    then forwards, pid-sorted within each group -- exactly.

    ``backend`` selects the kernel implementation for this simulator's
    runs (a name or :class:`~repro.network.backends.Backend` instance;
    ``None`` defers to ``$REPRO_BACKEND`` / ``auto``).
    """

    def __init__(self, topo: Topology, router=None, backend=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()
        self.backend = backend

    # -- route-table flattening -------------------------------------------

    def _link_arrays(
        self, table: RouteTable
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """See the module-level :func:`_link_arrays` (kept as a method
        for backward compatibility)."""
        return _link_arrays(self.topo.num_nodes, table)

    def run(
        self,
        traffic: Sequence[Tuple[int, int, int]],
        max_cycles: int = 100000,
        route_table: Optional[RouteTable] = None,
        faults: Optional[FaultPlan] = None,
        switching: Union[str, FlowControl] = "sf",
        flits: Union[int, Sequence[int]] = 1,
        tenants: Optional[Sequence[int]] = None,
    ) -> SimResult:
        """Simulate until all deliverable packets arrive (or ``max_cycles``).

        Semantics (and results) are identical to
        :meth:`ReferenceSimulator.run`, fault plans, switching modes and
        per-packet ``tenants`` included.
        """
        flow = _as_flow(switching)
        traffic = list(traffic)
        flit_arr = resolve_flits(flits, len(traffic))
        if tenants is not None and len(tenants) != len(traffic):
            raise ValueError(
                f"tenants must align with traffic: {len(tenants)} ids "
                f"for {len(traffic)} packets"
            )
        if not flow.pipelined and flit_arr.size and int(flit_arr.max()) > 1:
            raise ValueError(
                "store-and-forward is a single-flit model; use "
                "switching='wormhole' or 'vct' for multi-flit packets"
            )
        prep = _prepare(self.topo, self.router, traffic, route_table, faults)
        num = len(prep.row)
        if num == 0:
            tstats: Tuple[TenantStats, ...] = ()
            if tenants is not None:
                tstats = tenant_stats_of(tenants, (), (), ())
            return SimResult(
                cycles=1, injected=prep.num_dropped, delivered=0,
                latencies=(), max_queue=0, dropped=prep.num_dropped,
                tenant_stats=tstats,
            )
        link_seq, link_offsets, link_codes = self._link_arrays(prep.table)
        nhops = prep.table.lengths()[prep.row] - 1
        run = KernelRun(
            flow=flow,
            inject=prep.inject,
            nhops=nhops,
            first_link_at=link_offsets[prep.row],
            link_seq=link_seq,
            link_offsets=link_offsets,
            link_codes=link_codes,
            nf=flit_arr[prep.order],
            link_dead=prep.link_dead,
        )
        outcome = run_fused(self.topo, [run], max_cycles, backend=self.backend)[0]
        return _flow_result(
            outcome, prep.inject, nhops, prep.misroutes[prep.row],
            prep.num_dropped,
            all_tenants=tenants,
            pid_tenants=(
                [int(tenants[j]) for j in prep.order]
                if tenants is not None else None
            ),
        )


class NetworkSimulator(VectorizedSimulator):
    """The default simulator: the vectorized engine under its public name."""
