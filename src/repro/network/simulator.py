"""Synchronous message-passing network simulator.

This is the hardware substitute declared in DESIGN.md: a cycle-accurate
(at link granularity) model of a store-and-forward network.

Model
-----
- Time advances in discrete cycles.
- Each directed link ``(u, v)`` carries at most one packet per cycle and
  has a FIFO queue at its tail.
- A packet follows a precomputed route (any router from
  :mod:`repro.network.routing`); on each cycle every link forwards the
  head-of-queue packet to the next queue on its route.
- Packets are injected by a traffic pattern: ``(cycle, src, dst)``
  triples (see :mod:`repro.network.traffic`).

Two engines implement the *same* deterministic semantics:

- :class:`ReferenceSimulator` -- the readable per-packet/deque loop, the
  executable specification;
- :class:`VectorizedSimulator` -- the production engine: routes are
  batched into a flat CSR :class:`~repro.network.routing.RouteTable`,
  per-packet state lives in NumPy arrays, per-link FIFOs are intrusive
  linked lists over those arrays, and each cycle advances every
  contended link with a handful of array gathers instead of a Python
  loop over packets.  Idle gaps between injections are skipped
  outright.  Both engines produce bit-identical :class:`SimResult`
  values, which the equivalence tests enforce.

Determinism contract (both engines): packets are numbered in injection
order (stable sort of the traffic by cycle); a link's FIFO serves packets
in arrival order, ties broken by packet id; packets that arrive at a
queue while a cycle is being forwarded join *behind* everything already
queued that cycle.

``NetworkSimulator`` is the vectorized engine (kept as the public name
for backward compatibility).

Outputs: per-packet latency, average/percentile latency, throughput
(delivered packets per cycle), and maximum queue occupancy -- enough to
compare topologies under identical load, which is what the 1993-lineage
evaluations did on real machines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.routing import BfsRouter, RouteTable
from repro.network.topology import Topology
from repro.network.traffic import uniform_traffic

__all__ = [
    "NetworkSimulator",
    "ReferenceSimulator",
    "SimResult",
    "VectorizedSimulator",
    "uniform_traffic",
]


@dataclass(frozen=True)
class SimResult:
    """Aggregate outcome of one simulation run.

    ``latencies`` holds one entry per *delivered* packet, ordered by
    packet id (= injection order), so results from different engines over
    the same traffic compare exactly.
    """

    cycles: int
    injected: int
    delivered: int
    latencies: Tuple[int, ...]
    max_queue: int

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    @property
    def throughput(self) -> float:
        return self.delivered / self.cycles if self.cycles else 0.0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0


class _Prepared:
    """Traffic resolved against a route table, in array form.

    Packets are stable-sorted by injection cycle and numbered 0..P-1 in
    that order; pairs the router cannot serve are dropped up front and
    only counted in ``injected``.
    """

    __slots__ = ("table", "inject", "row", "num_dropped")

    def __init__(self, table: RouteTable, inject: np.ndarray, row: np.ndarray,
                 num_dropped: int):
        self.table = table
        self.inject = inject
        self.row = row
        self.num_dropped = num_dropped


def _prepare(
    topo: Topology,
    router,
    traffic: Sequence[Tuple[int, int, int]],
    route_table: Optional[RouteTable],
) -> _Prepared:
    arr = np.asarray(traffic, dtype=np.int64).reshape(-1, 3)
    arr = arr[np.argsort(arr[:, 0], kind="stable")]
    n = topo.num_nodes
    codes, inverse = np.unique(arr[:, 1] * n + arr[:, 2], return_inverse=True)
    pairs = [(int(c) // n, int(c) % n) for c in codes]
    table = route_table
    if table is None:
        if hasattr(router, "build_table"):
            table = router.build_table(topo, pairs)
        else:
            table = RouteTable.build(topo, router, pairs)
    try:
        rowmap = np.asarray([table.pair_row[p] for p in pairs], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(
            f"route_table has no entry for traffic pair {exc.args[0]}; "
            "build the table over every (src, dst) pair in the traffic"
        ) from None
    rows = rowmap[inverse] if len(pairs) else np.empty(0, dtype=np.int64)
    routed = rows >= 0
    return _Prepared(
        table=table,
        inject=arr[routed, 0],
        row=rows[routed],
        num_dropped=int((~routed).sum()),
    )


class ReferenceSimulator:
    """Store-and-forward simulator: the per-packet executable spec.

    Parameters
    ----------
    topo:
        The network.
    router:
        Any object with ``route(topo, src, dst) -> Optional[List[int]]``;
        defaults to exact shortest-path routing.
    """

    def __init__(self, topo: Topology, router=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()

    def run(
        self,
        traffic: Sequence[Tuple[int, int, int]],
        max_cycles: int = 100000,
        route_table: Optional[RouteTable] = None,
    ) -> SimResult:
        """Simulate until all deliverable packets arrive (or ``max_cycles``).

        Packets whose router returns ``None`` count as injected but are
        dropped immediately (visible through ``delivery_rate``).

        Routes are resolved one packet at a time through ``router.route``
        (the original engine's behaviour); pass ``route_table`` to reuse a
        prebuilt table instead, e.g. to time the two cycle engines alone.
        """
        if route_table is None:
            inject: List[int] = []
            routes: List[List[int]] = []
            dropped = 0
            for cycle, src, dst in sorted(traffic, key=lambda t: t[0]):
                path = self.router.route(self.topo, src, dst)
                if path is None:
                    dropped += 1
                else:
                    inject.append(cycle)
                    routes.append(path)
        else:
            prep = _prepare(self.topo, self.router, traffic, route_table)
            routes = [prep.table.route_nodes(r).tolist() for r in prep.row]
            inject = prep.inject.tolist()
            dropped = prep.num_dropped
        num = len(routes)
        delivered_at = [-1] * num
        hop = [0] * num
        queues: Dict[Tuple[int, int], deque] = {}
        next_pid = 0
        in_flight = 0
        max_queue = 0
        cycle = 0
        remaining = num
        while (next_pid < num or in_flight > 0) and cycle < max_cycles:
            # inject (pids are already in injection-cycle order)
            while next_pid < num and inject[next_pid] <= cycle:
                pid = next_pid
                next_pid += 1
                route = routes[pid]
                if len(route) == 1:
                    delivered_at[pid] = cycle
                    remaining -= 1
                    continue
                queues.setdefault((route[0], route[1]), deque()).append(pid)
                in_flight += 1
            # forward: each link serves its head-of-queue packet
            arrivals: List[int] = []
            for q in queues.values():
                if q:
                    max_queue = max(max_queue, len(q))
                    arrivals.append(q.popleft())
            # late arrivals join behind this cycle's injections, pid order
            for pid in sorted(arrivals):
                hop[pid] += 1
                route = routes[pid]
                at = hop[pid]
                if at == len(route) - 1:
                    delivered_at[pid] = cycle + 1
                    remaining -= 1
                    in_flight -= 1
                else:
                    queues.setdefault((route[at], route[at + 1]), deque()).append(pid)
            cycle += 1
        latencies = tuple(
            delivered_at[pid] - inject[pid]
            for pid in range(num)
            if delivered_at[pid] >= 0
        )
        return SimResult(
            cycles=max(cycle, 1),
            injected=num + dropped,
            delivered=num - remaining,
            latencies=latencies,
            max_queue=max_queue,
        )


class VectorizedSimulator:
    """Array-based store-and-forward engine (same semantics, NumPy speed).

    All routes are flattened into a CSR route table and converted to
    directed-link-id sequences once; per-link FIFOs are intrusive linked
    lists over flat pid arrays (``qhead``/``qtail``/``qlen`` per link, a
    ``succ`` pointer per packet).  Every cycle is then a constant number
    of array operations, each proportional to the *served* set (one
    packet per busy link), never to the whole waiting population:

    1. inject the packets whose cycle has come (one slice + one grouped
       append),
    2. serve every busy link's head with two gathers
       (``qhead[busy]`` / ``succ[served]``),
    3. advance the served packets: a gather against the flat link
       sequences moves survivors to their next queue (grouped append,
       sorted by ``(link, pid)``), finished packets record their
       delivery cycle.

    The append order -- this cycle's injections first, then this cycle's
    forwards, pid-sorted within each group -- reproduces
    :class:`ReferenceSimulator`'s queue discipline exactly.  Cycles in
    which every queue is empty are skipped in O(1).
    """

    def __init__(self, topo: Topology, router=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()

    # -- route-table flattening -------------------------------------------

    def _link_arrays(self, table: RouteTable) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row directed-link-id sequences ``(link_seq, link_offsets)``.

        Link ids are ranks of the ``u * n + v`` codes of the directed
        edges actually used, so the per-cycle ``bincount`` stays dense.
        """
        data, offsets = table.route_data, table.route_offsets
        if data.size == 0:
            return (np.empty(0, dtype=np.int64),
                    np.zeros(len(offsets), dtype=np.int64))
        n = self.topo.num_nodes
        last = np.zeros(data.size, dtype=bool)
        last[offsets[1:] - 1] = True
        valid = ~last[:-1]
        codes = data[:-1][valid] * n + data[1:][valid]
        uniq = np.unique(codes)
        link_seq = np.searchsorted(uniq, codes)
        lengths = offsets[1:] - offsets[:-1]
        link_offsets = np.zeros(len(offsets), dtype=np.int64)
        np.cumsum(lengths - 1, out=link_offsets[1:])
        return link_seq, link_offsets

    def run(
        self,
        traffic: Sequence[Tuple[int, int, int]],
        max_cycles: int = 100000,
        route_table: Optional[RouteTable] = None,
    ) -> SimResult:
        """Simulate until all deliverable packets arrive (or ``max_cycles``).

        Semantics (and results) are identical to
        :meth:`ReferenceSimulator.run`.
        """
        prep = _prepare(self.topo, self.router, traffic, route_table)
        num = len(prep.row)
        if num == 0:
            return SimResult(
                cycles=1, injected=prep.num_dropped, delivered=0,
                latencies=(), max_queue=0,
            )
        link_seq, link_offsets = self._link_arrays(prep.table)
        num_links = int(link_seq.max()) + 1 if link_seq.size else 1
        inject = prep.inject
        nhops = prep.table.lengths()[prep.row] - 1
        first_link_at = link_offsets[prep.row]

        delivered_at = np.full(num, -1, dtype=np.int64)
        pos = np.zeros(num, dtype=np.int64)
        # per-link FIFOs as intrusive linked lists over pid arrays: a queue
        # is (qhead, qtail, qlen) per link plus a succ pointer per packet,
        # so append and head-pop are O(1) gathers with no queue objects
        succ = np.full(num, -1, dtype=np.int64)
        qhead = np.full(num_links, -1, dtype=np.int64)
        qtail = np.full(num_links, -1, dtype=np.int64)
        qlen = np.zeros(num_links, dtype=np.int64)

        def append(pids: np.ndarray, links: np.ndarray) -> None:
            """Append packets to link queues; FIFO order is (link, pid)."""
            order = np.lexsort((pids, links))
            p, ln = pids[order], links[order]
            boundary = np.ones(p.size, dtype=bool)
            boundary[1:] = ln[1:] != ln[:-1]
            succ[p] = -1
            inner = ~boundary[1:]
            succ[p[:-1][inner]] = p[1:][inner]
            glinks = ln[boundary]
            gheads = p[boundary]
            gtails = p[np.concatenate((boundary[1:], [True]))]
            starts = np.flatnonzero(boundary)
            gsizes = np.diff(np.concatenate((starts, [p.size])))
            was_empty = qhead[glinks] == -1
            qhead[glinks[was_empty]] = gheads[was_empty]
            succ[qtail[glinks[~was_empty]]] = gheads[~was_empty]
            qtail[glinks] = gtails
            qlen[glinks] += gsizes

        in_flight = 0
        next_pid = 0
        max_queue = 0
        last_busy = -1  # last cycle that injected or forwarded anything
        cycle = int(inject[0]) if inject[0] < max_cycles else max_cycles
        work_left = True
        while cycle < max_cycles:
            # inject every packet whose cycle has come
            if next_pid < num and inject[next_pid] <= cycle:
                hi = int(np.searchsorted(inject, cycle, side="right"))
                fresh = np.arange(next_pid, hi, dtype=np.int64)
                next_pid = hi
                zero_hop = fresh[nhops[fresh] == 0]
                delivered_at[zero_hop] = inject[zero_hop]
                fresh = fresh[nhops[fresh] > 0]
                if fresh.size:
                    append(fresh, link_seq[first_link_at[fresh]])
                    in_flight += fresh.size
                last_busy = cycle
            if in_flight:
                # serve the head of every non-empty queue
                busy = np.flatnonzero(qlen)
                max_queue = max(max_queue, int(qlen[busy].max()))
                served = qhead[busy]
                qhead[busy] = succ[served]
                qlen[busy] -= 1
                pos[served] += 1
                finished = pos[served] == nhops[served]
                done = served[finished]
                moving = served[~finished]
                delivered_at[done] = cycle + 1
                in_flight -= done.size
                if moving.size:
                    append(moving, link_seq[first_link_at[moving] + pos[moving]])
                last_busy = cycle
                cycle += 1
            elif next_pid < num:
                cycle = min(int(inject[next_pid]), max_cycles)
            else:
                work_left = False
                break
        if work_left and (next_pid < num or in_flight):
            cycles = max(max_cycles, 1)
        else:
            cycles = max(last_busy + 1, 1)
        mask = delivered_at >= 0
        latencies = tuple((delivered_at[mask] - inject[mask]).tolist())
        return SimResult(
            cycles=cycles,
            injected=num + prep.num_dropped,
            delivered=int(mask.sum()),
            latencies=latencies,
            max_queue=max_queue,
        )


class NetworkSimulator(VectorizedSimulator):
    """The default simulator: the vectorized engine under its public name."""
