"""Synchronous message-passing network simulator.

This is the hardware substitute declared in DESIGN.md: a cycle-accurate
(at link granularity) model of a store-and-forward network.

Model
-----
- Time advances in discrete cycles.
- Each directed link ``(u, v)`` carries at most one packet per cycle and
  has a FIFO queue at its tail.
- A packet follows a precomputed route (any router from
  :mod:`repro.network.routing`); on each cycle every link forwards the
  head-of-queue packet to the next queue on its route.
- Packets are injected by a traffic pattern: ``(cycle, src, dst)``
  triples.

Outputs: per-packet latency, average/percentile latency, throughput
(delivered packets per cycle), and maximum queue occupancy -- enough to
compare topologies under identical load, which is what the 1993-lineage
evaluations did on real machines.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.routing import BfsRouter
from repro.network.topology import Topology

__all__ = ["NetworkSimulator", "SimResult", "uniform_traffic"]


@dataclass
class _Packet:
    pid: int
    route: List[int]
    hop: int  # index of the node the packet currently sits at
    injected_at: int
    delivered_at: Optional[int] = None


@dataclass(frozen=True)
class SimResult:
    """Aggregate outcome of one simulation run."""

    cycles: int
    injected: int
    delivered: int
    latencies: Tuple[int, ...]
    max_queue: int

    @property
    def avg_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def max_latency(self) -> int:
        return max(self.latencies) if self.latencies else 0

    @property
    def throughput(self) -> float:
        return self.delivered / self.cycles if self.cycles else 0.0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0


def uniform_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> List[Tuple[int, int, int]]:
    """Uniform random traffic: ``num_packets`` triples ``(cycle, src, dst)``
    with distinct ``src != dst`` drawn uniformly, injection cycles uniform
    over ``[0, inject_window)``.  Deterministic given ``seed``."""
    rng = random.Random(seed)
    n = topo.num_nodes
    if n < 2:
        raise ValueError("uniform traffic needs at least two nodes")
    out = []
    for _ in range(num_packets):
        s = rng.randrange(n)
        t = rng.randrange(n - 1)
        if t >= s:
            t += 1
        out.append((rng.randrange(max(1, inject_window)), s, t))
    out.sort()
    return out


class NetworkSimulator:
    """Store-and-forward simulator over a :class:`Topology`.

    Parameters
    ----------
    topo:
        The network.
    router:
        Any object with ``route(topo, src, dst) -> Optional[List[int]]``;
        defaults to exact shortest-path routing.
    """

    def __init__(self, topo: Topology, router=None):
        self.topo = topo
        self.router = router if router is not None else BfsRouter()

    def run(
        self,
        traffic: Sequence[Tuple[int, int, int]],
        max_cycles: int = 100000,
    ) -> SimResult:
        """Simulate until all deliverable packets arrive (or ``max_cycles``).

        Packets whose router returns ``None`` count as injected but are
        dropped immediately (visible through ``delivery_rate``).
        """
        queues: Dict[Tuple[int, int], deque] = {}
        packets: List[_Packet] = []
        pending: List[Tuple[int, _Packet]] = []
        dropped = 0
        for cycle, src, dst in traffic:
            route = self.router.route(self.topo, src, dst)
            if route is None:
                dropped += 1
                continue
            p = _Packet(pid=len(packets), route=route, hop=0, injected_at=cycle)
            packets.append(p)
            pending.append((cycle, p))
        pending.sort(key=lambda cp: cp[0])
        pending_idx = 0
        in_flight = 0
        max_queue = 0
        cycle = 0
        delivered: List[_Packet] = []
        while (pending_idx < len(pending) or in_flight > 0) and cycle < max_cycles:
            # inject
            while pending_idx < len(pending) and pending[pending_idx][0] <= cycle:
                p = pending[pending_idx][1]
                pending_idx += 1
                if len(p.route) == 1:
                    p.delivered_at = cycle
                    delivered.append(p)
                    continue
                link = (p.route[0], p.route[1])
                queues.setdefault(link, deque()).append(p)
                in_flight += 1
            # forward: one packet per link per cycle
            arrivals: List[Tuple[_Packet, Tuple[int, int]]] = []
            for link, q in queues.items():
                if q:
                    arrivals.append((q.popleft(), link))
                    max_queue = max(max_queue, len(q) + 1)
            for p, link in arrivals:
                p.hop += 1
                at = p.route[p.hop]
                if p.hop == len(p.route) - 1:
                    p.delivered_at = cycle + 1
                    delivered.append(p)
                    in_flight -= 1
                else:
                    nxt = (at, p.route[p.hop + 1])
                    queues.setdefault(nxt, deque()).append(p)
            cycle += 1
        latencies = tuple(
            p.delivered_at - p.injected_at for p in delivered if p.delivered_at is not None
        )
        return SimResult(
            cycles=max(cycle, 1),
            injected=len(packets) + dropped,
            delivered=len(delivered),
            latencies=latencies,
            max_queue=max_queue,
        )
