"""Multi-tenant composable workloads: overlays, QoS arbitration, traces.

Every traffic generator in :mod:`repro.network.traffic` is single-tenant:
one pattern, one load, one anonymous source population.  Real machines
are shared -- a background wash of uniform traffic under a foreground
application's collective phases, several jobs with different priorities
contending for the same injection ports -- and the verdict on a topology
under *contention* is what the saturation studies are ultimately for.
This module makes those scenarios first-class:

- a :class:`TenantSpec` names one tenant (pattern, offered load,
  priority); a :class:`Workload` is an ordered set of tenants plus the
  per-node injection ``rate`` they contend for.  The compact string
  grammar (:func:`parse_workload`) makes workloads sweep-axis values:
  ``"bg:uniform:0.2;fg:broadcast:0.4:2"`` is background uniform traffic
  superimposed with a higher-priority collective phase;
- :func:`compile_workload` superimposes every tenant's seeded pattern
  traffic and then runs **QoS arbitration at injection**: each source
  node is a single injection port serving at most ``rate`` packets per
  cycle, and when tenants contend for a slot the higher-priority packet
  wins while the loser is deferred to the next cycle (ties break by
  tenant order, then by each tenant's own packet order).  The output is
  the simulator's native ``(cycle, src, dst)`` triples plus an aligned
  per-packet tenant id -- deterministic given the seed, so every engine
  and backend replays it bit-identically;
- a recorded schedule is a versioned NDJSON **trace**
  (:class:`Trace`, :func:`write_trace` / :func:`read_trace`): one header
  line with the format version, topology, tenants and packet count,
  then one compact object per packet.  ``repro trace record`` writes
  them and ``repro sweep --trace`` replays them --
  :func:`trace_key` content-addresses a trace so replayed sweep points
  cache correctly no matter where the file lives;
- :class:`TenantStats` is the per-tenant accounting unit the engines
  attach to :class:`~repro.network.simulator.SimResult` when traffic
  carries tenant ids: injected / delivered / undelivered counts and the
  delivered-packet latency sample, per tenant, computed identically by
  the reference and vectorized engines (shared helper, so the
  aggregation itself cannot diverge).

Arbitrated injection cycles may legitimately spill past the nominal
window (a congested port drains its backlog after the window closes);
the ``[0, inject_window)`` window contract applies to the *registered
single-tenant patterns*, not to arbitrated workload schedules.  Under a
:class:`~repro.network.faults.FaultPlan`, dead sources are silenced
*after* arbitration: a packet whose source has failed at or before its
arbitrated injection cycle is removed, matching
:func:`~repro.network.traffic.make_traffic`'s offered-load semantics.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.network.faults import _NEVER, FaultPlan
from repro.network.topology import Topology
from repro.network.traffic import PATTERNS, Traffic

__all__ = [
    "CompiledWorkload",
    "TENANT_SEED_STRIDE",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "TenantSpec",
    "TenantStats",
    "Trace",
    "Workload",
    "canonical_workload",
    "compile_trace",
    "compile_workload",
    "parse_workload",
    "read_trace",
    "record_trace",
    "tenant_stats_of",
    "trace_key",
    "write_trace",
]

# per-tenant traffic seeds are spread by a fixed prime stride so tenant
# streams never collide even for adjacent base seeds
TENANT_SEED_STRIDE = 7919

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a workload: a named, prioritised traffic stream.

    ``load`` is offered load in packets per node per cycle over the
    injection window (the sweep harness's normalisation); ``priority``
    orders injection arbitration -- higher wins a contended slot, ties
    break in tenant declaration order.
    """

    name: str
    pattern: str
    load: float
    priority: int = 0


@dataclass(frozen=True)
class Workload:
    """An ordered tenant set contending for per-node injection ports.

    ``rate`` is the per-source injection budget in packets per cycle;
    ``rate=0`` disables arbitration entirely (pure superposition, every
    tenant's requested cycle honoured as generated).
    """

    tenants: Tuple[TenantSpec, ...]
    rate: int = 1

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(t.name for t in self.tenants)


def parse_workload(spec: str) -> Workload:
    """Parse the compact workload grammar.

    ``;``-separated tokens: each tenant is ``name:pattern:load[:prio]``
    (priority defaults to 0), and one optional ``rate=N`` token sets the
    per-node injection budget (default 1 packet/node/cycle; 0 disables
    arbitration).  Tenant names must be unique, patterns must be
    registered, loads positive.
    """
    if not spec or not spec.strip():
        raise ValueError("empty workload spec")
    tenants: List[TenantSpec] = []
    rate = 1
    saw_rate = False
    for token in spec.split(";"):
        token = token.strip()
        if not token:
            continue
        if token.startswith("rate="):
            if saw_rate:
                raise ValueError(f"duplicate rate= token in workload {spec!r}")
            saw_rate = True
            try:
                rate = int(token[5:])
            except ValueError:
                raise ValueError(
                    f"bad rate in workload {spec!r}: {token!r}"
                ) from None
            if rate < 0:
                raise ValueError(f"workload rate must be >= 0, got {rate}")
            continue
        parts = token.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad tenant token {token!r} in workload {spec!r}: expected "
                "'name:pattern:load[:priority]'"
            )
        name, pattern = parts[0], parts[1]
        if not name or "=" in name:
            raise ValueError(f"bad tenant name {name!r} in workload {spec!r}")
        if pattern not in PATTERNS:
            raise ValueError(
                f"unknown traffic pattern {pattern!r} for tenant {name!r}; "
                f"choose from {sorted(PATTERNS)}"
            )
        try:
            load = float(parts[2])
        except ValueError:
            raise ValueError(
                f"bad load {parts[2]!r} for tenant {name!r} in {spec!r}"
            ) from None
        if load <= 0:
            raise ValueError(
                f"tenant {name!r} load must be positive, got {load}"
            )
        priority = 0
        if len(parts) == 4:
            try:
                priority = int(parts[3])
            except ValueError:
                raise ValueError(
                    f"bad priority {parts[3]!r} for tenant {name!r} in {spec!r}"
                ) from None
        tenants.append(TenantSpec(name, pattern, load, priority))
    if not tenants:
        raise ValueError(f"workload {spec!r} declares no tenants")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in workload {spec!r}")
    return Workload(tenants=tuple(tenants), rate=rate)


def canonical_workload(spec: str) -> str:
    """The canonical spelling of an inline workload spec: parsed and
    re-serialised so equivalent spellings (whitespace, float formatting,
    an explicit default ``rate=1``) collapse to one cache key."""
    wl = parse_workload(spec)
    parts = [
        f"{t.name}:{t.pattern}:{t.load!r}:{t.priority}" for t in wl.tenants
    ]
    if wl.rate != 1:
        parts.append(f"rate={wl.rate}")
    return ";".join(parts)


@dataclass(frozen=True)
class CompiledWorkload:
    """Arbitrated workload traffic with aligned per-packet tenant ids.

    ``tenants[i]`` indexes ``names`` and tags ``traffic[i]``; the two
    sequences stay aligned through every downstream stable sort (the
    engines carry the tenant ids through their own packet ordering).
    """

    traffic: Tuple[Tuple[int, int, int], ...]
    tenants: Tuple[int, ...]
    names: Tuple[str, ...]


def _arbitrate(
    entries: List[Tuple[int, int, int, int, int, int]],
    rate: int,
) -> List[Tuple[int, int, int, int, int, int]]:
    """Per-source injection arbitration.

    ``entries`` are ``(cycle, src, dst, tenant, neg_priority, seq)``;
    each source node serves at most ``rate`` packets per cycle, winners
    chosen by ``(neg_priority, tenant, seq)`` -- i.e. highest priority
    first, ties by tenant declaration order, then by the tenant's own
    packet order -- and losers deferred to the source's next cycle.
    Sources are independent ports, so each arbitrates alone.
    """
    if rate <= 0:
        return entries
    by_src: Dict[int, List[Tuple[int, int, int, int, int, int]]] = {}
    for e in entries:
        by_src.setdefault(e[1], []).append(e)
    out: List[Tuple[int, int, int, int, int, int]] = []
    for src in by_src:
        port = sorted(by_src[src])  # by requested cycle (then tie fields)
        heap: List[Tuple[int, int, int, Tuple[int, int, int, int, int, int]]] = []
        i = 0
        cycle = 0
        while i < len(port) or heap:
            if not heap and port[i][0] > cycle:
                cycle = port[i][0]  # idle port jumps to the next request
            while i < len(port) and port[i][0] <= cycle:
                e = port[i]
                heapq.heappush(heap, (e[4], e[3], e[5], e))
                i += 1
            for _ in range(min(rate, len(heap))):
                _, _, _, e = heapq.heappop(heap)
                out.append((cycle, e[1], e[2], e[3], e[4], e[5]))
            cycle += 1
    return out


def compile_workload(
    workload: "Workload | str",
    topo: Topology,
    inject_window: int,
    seed: int = 0,
    load_scale: float = 1.0,
    faults: Optional[FaultPlan] = None,
) -> CompiledWorkload:
    """Superimpose every tenant's traffic, arbitrate injection, silence
    dead sources.

    Each tenant generates its registered pattern at
    ``load_scale * tenant.load`` packets/node/cycle with its own derived
    seed (``seed + TENANT_SEED_STRIDE * (index + 1)``), so the composite
    is deterministic given ``seed`` and scales as one unit along a sweep's
    load axis.  Arbitration (see :func:`_arbitrate`) then resolves
    injection-port contention by priority; finally, packets whose source
    is dead at their *arbitrated* cycle are removed
    (:class:`~repro.network.faults.FaultPlan` semantics).  The result is
    sorted by ``(cycle, src, dst, tenant)`` with tenant ids aligned.
    """
    if isinstance(workload, str):
        workload = parse_workload(workload)
    if load_scale <= 0:
        raise ValueError(f"load_scale must be positive, got {load_scale}")
    if inject_window < 1:
        raise ValueError(f"inject_window must be at least 1, got {inject_window}")
    n = topo.num_nodes
    entries: List[Tuple[int, int, int, int, int, int]] = []
    for ti, tenant in enumerate(workload.tenants):
        num = max(1, round(load_scale * tenant.load * n * inject_window))
        stream = PATTERNS[tenant.pattern](
            topo, num, inject_window, seed=seed + TENANT_SEED_STRIDE * (ti + 1)
        )
        entries.extend(
            (cycle, src, dst, ti, -tenant.priority, k)
            for k, (cycle, src, dst) in enumerate(stream)
        )
    entries = _arbitrate(entries, workload.rate)
    if faults is not None and faults.node_faults:
        death = faults.node_death_cycles()
        entries = [e for e in entries if death.get(e[1], _NEVER) > e[0]]
    entries.sort(key=lambda e: (e[0], e[1], e[2], e[3], e[5]))
    return CompiledWorkload(
        traffic=tuple((c, s, d) for c, s, d, _, _, _ in entries),
        tenants=tuple(e[3] for e in entries),
        names=workload.names,
    )


# ---------------------------------------------------------------------------
# Trace format: versioned NDJSON record/replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Trace:
    """A recorded workload schedule, ready for bit-identical replay.

    ``topology`` is the spec string the trace was recorded on (replay
    validates the target resolves to the same topology);
    ``tenants``/``priorities`` name the tenant ids appearing in
    ``tenant_ids``; ``workload`` keeps the canonical source spec for
    provenance (informational -- replay uses the recorded packets, not
    the generator).  Plain tuples throughout, so traces pickle cleanly
    across multiprocessing workers.
    """

    topology: str
    inject_window: int
    tenants: Tuple[str, ...]
    priorities: Tuple[int, ...]
    traffic: Tuple[Tuple[int, int, int], ...]
    tenant_ids: Tuple[int, ...]
    workload: str = ""
    seed: int = 0


def record_trace(
    workload: "Workload | str",
    topology_spec: str,
    topo: Topology,
    inject_window: int,
    seed: int = 0,
    load_scale: float = 1.0,
) -> Trace:
    """Compile a workload (unfaulted -- faults belong to replay time)
    and freeze the arbitrated schedule as a :class:`Trace`."""
    wl = parse_workload(workload) if isinstance(workload, str) else workload
    compiled = compile_workload(
        wl, topo, inject_window, seed=seed, load_scale=load_scale
    )
    return Trace(
        topology=topology_spec,
        inject_window=inject_window,
        tenants=compiled.names,
        priorities=tuple(t.priority for t in wl.tenants),
        traffic=compiled.traffic,
        tenant_ids=compiled.tenants,
        workload=canonical_workload(workload)
        if isinstance(workload, str) else "",
        seed=seed,
    )


def _trace_header(trace: Trace) -> dict:
    return {
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "topology": trace.topology,
        "inject_window": trace.inject_window,
        "tenants": list(trace.tenants),
        "priorities": list(trace.priorities),
        "packets": len(trace.traffic),
        "workload": trace.workload,
        "seed": trace.seed,
    }


def write_trace(trace: Trace, path: str) -> None:
    """Write the versioned NDJSON trace: one header object, then one
    compact ``{"c": cycle, "s": src, "d": dst, "t": tenant}`` object per
    packet, in schedule order."""
    with open(path, "w") as fh:
        fh.write(json.dumps(_trace_header(trace), sort_keys=True,
                            separators=(",", ":")) + "\n")
        for (c, s, d), t in zip(trace.traffic, trace.tenant_ids):
            fh.write(json.dumps({"c": c, "s": s, "d": d, "t": t},
                                separators=(",", ":")) + "\n")


def read_trace(path: str) -> Trace:
    """Parse and validate an NDJSON trace file.

    Unknown formats and future versions are rejected loudly (a trace is
    a contract, not a best-effort guess); every packet line must carry
    in-range integer fields.
    """
    with open(path) as fh:
        lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    if not lines:
        raise ValueError(f"trace {path!r} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValueError(f"trace {path!r}: bad header line: {exc}") from None
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise ValueError(
            f"trace {path!r}: not a {TRACE_FORMAT} file (bad header)"
        )
    if header.get("version") != TRACE_VERSION:
        raise ValueError(
            f"trace {path!r}: unsupported trace version "
            f"{header.get('version')!r} (this build reads v{TRACE_VERSION})"
        )
    tenants = tuple(header.get("tenants") or ())
    if not tenants or not all(isinstance(t, str) for t in tenants):
        raise ValueError(f"trace {path!r}: header names no tenants")
    priorities = tuple(header.get("priorities") or (0,) * len(tenants))
    if len(priorities) != len(tenants):
        raise ValueError(
            f"trace {path!r}: priorities do not align with tenants"
        )
    window = header.get("inject_window")
    if not isinstance(window, int) or window < 1:
        raise ValueError(f"trace {path!r}: bad inject_window {window!r}")
    traffic: List[Tuple[int, int, int]] = []
    tenant_ids: List[int] = []
    for lineno, ln in enumerate(lines[1:], start=2):
        try:
            obj = json.loads(ln)
            c, s, d, t = obj["c"], obj["s"], obj["d"], obj["t"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise ValueError(
                f"trace {path!r}: bad packet line {lineno}: {exc}"
            ) from None
        if not all(isinstance(x, int) for x in (c, s, d, t)):
            raise ValueError(
                f"trace {path!r}: non-integer packet fields on line {lineno}"
            )
        if c < 0 or not 0 <= t < len(tenants):
            raise ValueError(
                f"trace {path!r}: out-of-range packet on line {lineno}"
            )
        traffic.append((c, s, d))
        tenant_ids.append(t)
    declared = header.get("packets")
    if isinstance(declared, int) and declared != len(traffic):
        raise ValueError(
            f"trace {path!r}: header declares {declared} packets, "
            f"file carries {len(traffic)} (truncated?)"
        )
    return Trace(
        topology=str(header.get("topology", "")),
        inject_window=window,
        tenants=tenants,
        priorities=priorities,
        traffic=tuple(traffic),
        tenant_ids=tuple(tenant_ids),
        workload=str(header.get("workload", "")),
        seed=int(header.get("seed", 0)),
    )


def trace_key(trace: Trace) -> str:
    """Content address of a trace (16 hex chars): the header plus every
    packet, canonically encoded -- so a replayed sweep point's cache key
    follows the trace's *content*, never its file name."""
    body = json.dumps(
        [_trace_header(trace),
         [list(t) + [i] for t, i in zip(trace.traffic, trace.tenant_ids)]],
        sort_keys=True, separators=(",", ":"),
    ).encode()
    return hashlib.sha256(body).hexdigest()[:16]


def compile_trace(
    trace: Trace,
    topo: Topology,
    faults: Optional[FaultPlan] = None,
) -> CompiledWorkload:
    """Resolve a trace for replay on ``topo``: validate every endpoint is
    a real node, then silence dead sources exactly as
    :func:`compile_workload` does (faults are a replay-time axis -- the
    same trace replays against many fault plans)."""
    n = topo.num_nodes
    for c, s, d in trace.traffic:
        if not (0 <= s < n and 0 <= d < n):
            raise ValueError(
                f"trace packet ({c}, {s}, {d}) is out of range for "
                f"{topo.name} ({n} nodes); replay the trace on the "
                "topology it was recorded on"
            )
    traffic = trace.traffic
    tenant_ids = trace.tenant_ids
    if faults is not None and faults.node_faults:
        death = faults.node_death_cycles()
        kept = [
            k for k, (c, s, _) in enumerate(traffic)
            if death.get(s, _NEVER) > c
        ]
        traffic = tuple(traffic[k] for k in kept)
        tenant_ids = tuple(tenant_ids[k] for k in kept)
    return CompiledWorkload(
        traffic=traffic, tenants=tenant_ids, names=trace.tenants
    )


# ---------------------------------------------------------------------------
# Per-tenant accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TenantStats:
    """Per-tenant slice of one simulation run.

    ``injected`` counts the tenant's packets offered to the engine
    (post fault-silencing); ``delivered`` those that arrived;
    ``undelivered`` is simply ``injected - delivered`` -- injection-time
    drops, in-flight fault losses, and (in cycle-capped or deadlocked
    runs) packets still stalled in the network, which per-packet
    accounting cannot tell apart without per-tenant drop attribution in
    the kernel.  ``latencies`` is the tenant's delivered-packet latency
    sample in packet-id order, ready for percentile aggregation.
    """

    tenant: int
    injected: int
    delivered: int
    undelivered: int
    latencies: Tuple[int, ...]

    @property
    def avg_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.injected if self.injected else 1.0


def tenant_stats_of(
    all_tenants: Sequence[int],
    pid_tenants: Sequence[int],
    delivered: Sequence[bool],
    latencies: Sequence[int],
) -> Tuple[TenantStats, ...]:
    """Aggregate per-packet outcomes into per-tenant stats.

    ``all_tenants`` tags every offered packet (injected counts);
    ``pid_tenants`` tags the routed packets in packet-id order;
    ``delivered`` masks them; ``latencies`` aligns with the delivered
    subset.  One stats entry per distinct tenant id, ascending -- both
    engines call this with identically-derived inputs, so the tuples
    (and thus :class:`~repro.network.simulator.SimResult` equality)
    cannot diverge.
    """
    injected: Dict[int, int] = {}
    for t in all_tenants:
        injected[t] = injected.get(t, 0) + 1
    got: Dict[int, int] = {t: 0 for t in injected}
    lat: Dict[int, List[int]] = {t: [] for t in injected}
    li = 0
    for t, ok in zip(pid_tenants, delivered):
        if ok:
            got[t] = got.get(t, 0) + 1
            lat.setdefault(t, []).append(latencies[li])
            li += 1
    return tuple(
        TenantStats(
            tenant=t,
            injected=injected[t],
            delivered=got.get(t, 0),
            undelivered=injected[t] - got.get(t, 0),
            latencies=tuple(lat.get(t, ())),
        )
        for t in sorted(injected)
    )


def encode_tenant_column(
    names: Sequence[str],
    stats: Sequence[TenantStats],
    p95: "Mapping[int, float] | None" = None,
) -> str:
    """The ``tenants`` column of a :class:`~repro.network.sweep.SweepRecord`:
    a canonical compact JSON array, one object per tenant in id order,
    with ``p95_latency`` values supplied by the caller (the sweep layer
    owns the percentile definition).  Deterministic byte-for-byte, so
    CSV goldens and the service wire format stay byte-comparable."""
    rows = []
    for ts in stats:
        name = (
            names[ts.tenant] if 0 <= ts.tenant < len(names)
            else str(ts.tenant)
        )
        rows.append({
            "tenant": name,
            "injected": ts.injected,
            "delivered": ts.delivered,
            "undelivered": ts.undelivered,
            "avg_latency": ts.avg_latency,
            "p95_latency": float(p95[ts.tenant]) if p95 else 0.0,
        })
    return json.dumps(rows, sort_keys=True, separators=(",", ":"))
