"""Interconnection-network substrate (the ICPP/Hsu 1993 lineage).

Fibonacci cubes were introduced as interconnection topologies; the
``Q_d(1^s)`` family ("generalized Fibonacci cubes" in the 1993 usage) was
studied for shortest-path routing, broadcasting and Hamiltonicity.  This
package provides the substrate to exercise those properties on *any*
generalized Fibonacci cube:

- :mod:`repro.network.topology` -- topology wrapper with cost metrics
  (order, degree, diameter, average distance, links);
- :mod:`repro.network.routing` -- routers: exact BFS, the canonical
  bit-fix route (optimal on :math:`Q_d(1^s)` by Proposition 3.1), and a
  greedy distributed rule with local fallback;
- :mod:`repro.network.broadcast` -- single-port broadcast scheduling
  (binomial on the hypercube, BFS-tree based generally);
- :mod:`repro.network.collectives` -- collective operations (broadcast,
  reduce, allgather, all-to-all, Hamiltonian-ring emulation) compiled
  into barriered traffic and simulated through both engines;
- :mod:`repro.network.simulator` -- synchronous message-passing simulator
  with FIFO link queues (the "hardware" substitute: per DESIGN.md, graph
  metrics need no silicon, but the simulator lets us measure latency
  under contention); the vectorized engine advances whole cycles with
  NumPy array operations, the reference engine is the per-packet spec;
- :mod:`repro.network.flowcontrol` -- finite-buffer flow control for
  both engines: multi-flit packets, wormhole / virtual cut-through
  switching, virtual channels with dimension-ordered assignment, credit
  backpressure and *detected* (never hung) deadlock;
- :mod:`repro.network.traffic` -- seeded, topology-aware traffic pattern
  library (uniform, permutation, transpose, bit-reversal, tornado,
  hotspot, bursty);
- :mod:`repro.network.batch` -- the batch axis over *runs*: K
  independent replications, any mix of switching modes, advance in one
  lock-step vectorized loop (disjoint link-id spaces, shared route
  tables), bit-identical to K sequential runs;
- :mod:`repro.network.kernel` -- the fused advance kernel underneath
  every vectorized entry point: one parameterised cycle loop covering
  store-and-forward and wormhole/vct, solo runs and K-run batches;
- :mod:`repro.network.sweep` -- multiprocessing sweep harness producing
  saturation curves over (topology x router x pattern x faults x load)
  grids, with ``batch > 1`` packing compatible points into lock-step
  batches;
- :mod:`repro.network.workloads` -- multi-tenant overlay workloads:
  N named tenants (own pattern / load / priority) superimposed with
  per-source QoS injection arbitration, compiled to plain traffic plus
  tenant ids, recorded/replayed as versioned NDJSON traces;
- :mod:`repro.network.insights` -- rule-driven insight engine over
  sweep records: saturation knees, deadlock / cycle-cap / fault /
  starvation alerts, and the hypercube-vs-Fibonacci verdict as a
  stable JSON report;
- :mod:`repro.network.faults` -- fault model: static surgery reports and
  dynamic :class:`FaultPlan` schedules the simulator engines replay
  (masked routing epochs, in-flight drops, adaptive detours);
- :mod:`repro.network.hamilton` -- Hamiltonian path/cycle search
  ("generalized Fibonacci cubes are mostly Hamiltonian", Liu--Hsu--Chung).
"""

from repro.network.topology import Topology, faulted_topology, topology_of
from repro.network.routing import (
    AdaptiveRouter,
    BfsRouter,
    CanonicalRouter,
    DimensionOrderRouter,
    GreedyRouter,
    RouteStats,
    RouteTable,
    route_stats,
)
from repro.network.broadcast import (
    binomial_broadcast_schedule,
    broadcast_rounds,
    verify_schedule,
)
from repro.network.collectives import (
    COLLECTIVES,
    CollectiveResult,
    collective_schedule,
    round_lower_bound,
    run_collective,
    schedule_link_loads,
    verify_collective_schedule,
)
from repro.network.flowcontrol import (
    SWITCHING_MODES,
    FlowControl,
    link_dimension,
    vc_of_hop,
)
from repro.network.simulator import (
    NetworkSimulator,
    ReferenceSimulator,
    SimResult,
    VectorizedSimulator,
    uniform_traffic,
)
from repro.network.batch import (
    BatchItem,
    BatchedSimulator,
    run_batch,
)
from repro.network.traffic import (
    PATTERNS,
    bit_reversal_traffic,
    bursty_traffic,
    collective_traffic,
    flit_sizes,
    hotspot_traffic,
    make_traffic,
    permutation_traffic,
    tornado_traffic,
    transpose_traffic,
)
from repro.network.sweep import (
    CurvePoint,
    PointSpec,
    ROUTERS,
    SweepRecord,
    flow_tag,
    nearest_rank_p95,
    parse_topology,
    run_batch_points,
    run_point,
    run_sweep,
    saturation_curves,
    write_csv,
    write_json,
)
from repro.network.workloads import (
    TenantSpec,
    TenantStats,
    Trace,
    Workload,
    canonical_workload,
    compile_trace,
    compile_workload,
    parse_workload,
    read_trace,
    record_trace,
    trace_key,
    write_trace,
)
from repro.network.insights import (
    Insight,
    RULES,
    analyze,
    knee_of,
    load_records,
    render_text,
    report_to_json,
)
from repro.network.faults import FaultPlan, FaultReport, fault_tolerance_trial
from repro.network.hamilton import find_hamiltonian_cycle, find_hamiltonian_path
from repro.network.deadlock import (
    channel_dependency_graph,
    find_dependency_cycle,
    is_deadlock_free,
)
from repro.network.cycles import (
    cycle_spectrum,
    find_cycle_of_length,
    has_even_cycles_everywhere,
)

__all__ = [
    "Topology",
    "topology_of",
    "faulted_topology",
    "FlowControl",
    "SWITCHING_MODES",
    "flit_sizes",
    "flow_tag",
    "link_dimension",
    "vc_of_hop",
    "AdaptiveRouter",
    "BfsRouter",
    "CanonicalRouter",
    "DimensionOrderRouter",
    "GreedyRouter",
    "RouteStats",
    "RouteTable",
    "route_stats",
    "ReferenceSimulator",
    "VectorizedSimulator",
    "BatchItem",
    "BatchedSimulator",
    "run_batch",
    "PATTERNS",
    "bit_reversal_traffic",
    "bursty_traffic",
    "hotspot_traffic",
    "make_traffic",
    "permutation_traffic",
    "tornado_traffic",
    "transpose_traffic",
    "CurvePoint",
    "PointSpec",
    "ROUTERS",
    "SweepRecord",
    "nearest_rank_p95",
    "parse_topology",
    "run_batch_points",
    "run_point",
    "run_sweep",
    "saturation_curves",
    "write_csv",
    "write_json",
    "TenantSpec",
    "TenantStats",
    "Trace",
    "Workload",
    "canonical_workload",
    "compile_trace",
    "compile_workload",
    "parse_workload",
    "read_trace",
    "record_trace",
    "trace_key",
    "write_trace",
    "Insight",
    "RULES",
    "analyze",
    "knee_of",
    "load_records",
    "render_text",
    "report_to_json",
    "binomial_broadcast_schedule",
    "broadcast_rounds",
    "verify_schedule",
    "COLLECTIVES",
    "CollectiveResult",
    "collective_schedule",
    "collective_traffic",
    "round_lower_bound",
    "run_collective",
    "schedule_link_loads",
    "verify_collective_schedule",
    "NetworkSimulator",
    "SimResult",
    "uniform_traffic",
    "FaultPlan",
    "FaultReport",
    "fault_tolerance_trial",
    "find_hamiltonian_cycle",
    "channel_dependency_graph",
    "find_dependency_cycle",
    "is_deadlock_free",
    "cycle_spectrum",
    "find_cycle_of_length",
    "has_even_cycles_everywhere",
    "find_hamiltonian_path",
]
