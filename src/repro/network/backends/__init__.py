"""Backend registry for the fused advance kernel.

:func:`repro.network.kernel.run_fused` funnels every vectorized entry
point -- ``VectorizedSimulator.run``, ``vectorized_flow_run``,
``BatchedSimulator.run_batch``, the sweep harness and the sweep service
-- through one inner loop.  This package makes that loop's
*implementation* a runtime choice: a backend supplies the two mode
engines (the store-and-forward FIFO stepper and the finite-buffer
flow-control stepper) for a prepared batch, and the registry picks
which backend serves a given call.

Selection order, strongest claim first:

1. an explicit ``backend=`` argument anywhere in the stack (a name or a
   :class:`Backend` instance), threaded down to ``run_fused``;
2. the ``REPRO_BACKEND`` environment variable (``native`` / ``numpy`` /
   ``auto``), read at resolve time so tests and CI legs can flip it;
3. ``auto`` (the default): the native backend when its compiled kernel
   is usable, else the NumPy backend with a one-line logged reason.

Naming a backend explicitly is a hard claim: asking for ``native``
where no compiler exists raises :class:`BackendUnavailableError`
instead of silently degrading -- which is exactly what lets CI assert
the compiled kernel really loaded.  Only ``auto`` is allowed to fall
back, and it says why (once; :func:`reset` re-arms it).

Every backend is bit-identical by contract: the equivalence and
differential-fuzz suites run the same cases through
``ReferenceSimulator``, the NumPy engines and the native kernel and
byte-compare the outcomes, so switching backends can never change a
result, only how fast it arrives.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.network import kernel as _kernel
from repro.network.kernel import KernelRun
from repro.network.topology import Topology

__all__ = [
    "AUTO",
    "Backend",
    "BackendUnavailableError",
    "NumpyBackend",
    "available_backends",
    "backend_infos",
    "register",
    "reset",
    "resolve_backend",
]

logger = logging.getLogger(__name__)

AUTO = "auto"
_ENV_VAR = "REPRO_BACKEND"


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run here (no silent
    fallback: only ``auto`` may degrade, and it logs why)."""


class Backend:
    """One implementation of the fused kernel's per-cycle advance.

    A backend's job is to hand :func:`run_fused` its two mode engines
    for a prepared batch; the driver loop, the batch preparation and
    the outcome finalization are shared.  Engines must honour the
    stepper protocol (``step(cycle) -> bool``, ``next_events(cycle)``,
    ``finalize(max_cycles)``); an engine may additionally expose
    ``run_alone(max_cycles)`` (advertised via ``supports_run_alone``)
    to claim the whole clock loop when it is the only engine in the
    batch.
    """

    name: str = "abstract"

    def availability(self) -> Tuple[bool, str]:
        """``(usable, reason)`` -- the reason names the evidence either
        way (compiler found, cached .so, or what went wrong)."""
        raise NotImplementedError

    def sf_engine(self, topo: Topology, runs: Sequence[KernelRun]) -> object:
        raise NotImplementedError

    def flow_engine(self, topo: Topology, runs: Sequence[KernelRun]) -> object:
        raise NotImplementedError


class NumpyBackend(Backend):
    """The pure-NumPy engines: always available, the fallback of last
    resort and the equivalence oracle for every other backend."""

    name = "numpy"

    def availability(self) -> Tuple[bool, str]:
        return True, "pure NumPy, always available"

    def sf_engine(self, topo: Topology, runs: Sequence[KernelRun]) -> object:
        return _kernel._SfEngine(topo, runs)

    def flow_engine(self, topo: Topology, runs: Sequence[KernelRun]) -> object:
        return _kernel._FlowEngine(topo, runs)


_REGISTRY: Dict[str, Backend] = {}
_AUTO_LOCK = threading.Lock()
_auto_choice: Optional[Backend] = None


def register(backend: Backend) -> Backend:
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> List[str]:
    """Registered backend names, registration order."""
    return list(_REGISTRY)


def backend_infos() -> List[dict]:
    """One dict per registered backend -- name, availability, reason --
    plus what ``auto`` currently resolves to (the ``repro backends``
    CLI view)."""
    infos = []
    for name, be in _REGISTRY.items():
        ok, reason = be.availability()
        infos.append({"name": name, "available": ok, "reason": reason})
    return infos


def _resolve_auto() -> Backend:
    global _auto_choice
    with _AUTO_LOCK:
        if _auto_choice is None:
            native = _REGISTRY.get("native")
            if native is not None:
                ok, reason = native.availability()
                if ok:
                    _auto_choice = native
                else:
                    logger.info(
                        "backend auto -> numpy (native unavailable: %s)",
                        reason,
                    )
                    _auto_choice = _REGISTRY["numpy"]
            else:
                _auto_choice = _REGISTRY["numpy"]
        return _auto_choice


def resolve_backend(choice: Union[Backend, str, None] = None) -> Backend:
    """Map a ``backend=`` argument (or its absence) to a backend.

    ``None`` defers to ``$REPRO_BACKEND``, then ``auto``.  A
    :class:`Backend` instance passes through untouched.  An explicit
    name is strict: unknown names raise :class:`ValueError`, an
    unavailable backend raises :class:`BackendUnavailableError`.
    """
    if isinstance(choice, Backend):
        return choice
    name = choice if choice is not None else os.environ.get(_ENV_VAR) or AUTO
    name = name.strip().lower()
    if name == AUTO:
        return _resolve_auto()
    try:
        backend = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from "
            f"{[AUTO, *_REGISTRY]}"
        ) from None
    ok, reason = backend.availability()
    if not ok:
        raise BackendUnavailableError(
            f"backend {name!r} requested explicitly but unavailable: {reason}"
        )
    return backend


def reset() -> None:
    """Forget every cached selection decision (tests flip compilers,
    cache dirs and env vars under our feet)."""
    global _auto_choice
    with _AUTO_LOCK:
        _auto_choice = None
    from repro.network.backends import native as _native

    _native.reset()


register(NumpyBackend())

from repro.network.backends.native import NativeBackend  # noqa: E402

register(NativeBackend())
