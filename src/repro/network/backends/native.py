"""The native backend: the sf inner loop compiled from ``csrc/advance.c``.

The hot path of every sweep is the store-and-forward cycle loop --
millions of tiny FIFO operations whose per-element cost in NumPy is
dominated by array-op dispatch, not arithmetic.  This backend compiles
``csrc/advance.c`` on demand with the system C compiler into a shared
object cached under ``<cache>/native/advance-<hash>.so`` (``<cache>``
is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``, the same root the result
cache uses), binds it via :mod:`ctypes`, and swaps the C stepper in for
:class:`repro.network.kernel._SfEngine.step` -- nothing else changes:
batch preparation, the flow-control engine (wormhole / vct stay on
NumPy), finalization and every outcome array are the NumPy code paths,
so bit-identity is structural, not aspirational.

The ``.so`` name is a hash of the C source, the compiler and the flags,
so editing any of them compiles a fresh object instead of trusting a
stale one; a cached file that fails to load or exports the wrong ABI is
deleted and rebuilt once before the backend declares itself
unavailable.  Availability is a cached verdict with a reason string
(surfaced by ``repro backends`` and the ``auto`` fallback log line);
:func:`reset` clears it so tests can simulate missing compilers, broken
flags (``$REPRO_NATIVE_CFLAGS``) and corrupt cache entries.

No new dependencies: compiler discovery is ``$CC`` then ``cc`` /
``gcc`` / ``clang`` on ``PATH``, and a machine without any of them
simply runs on the NumPy backend forever.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shlex
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.network.backends import Backend
from repro.network.kernel import KernelRun, _FlowEngine, _SfEngine
from repro.network.topology import Topology

__all__ = [
    "NativeBackend",
    "cached_object_path",
    "load_library",
    "reset",
    "source_path",
]

logger = logging.getLogger(__name__)

ABI_VERSION = 2
_BASE_CFLAGS = ["-O2", "-shared", "-fPIC"]

_LOCK = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_lib_detail: Optional[str] = None

_I64P = ctypes.POINTER(ctypes.c_int64)
# cycle/max_cycles, 4 scalars, 7 const arrays, 10 mutable arrays, 3 scratch
_ARGTYPES = [ctypes.c_int64] * 5 + [_I64P] * 20


def source_path() -> Optional[Path]:
    """``csrc/advance.c``, found by walking up from this module (the
    source tree keeps it at the repository root); ``None`` when this
    package runs from somewhere the C source did not travel to."""
    for parent in Path(__file__).resolve().parents:
        cand = parent / "csrc" / "advance.c"
        if cand.is_file():
            return cand
    return None


def _compiler() -> Optional[str]:
    env = os.environ.get("CC")
    if env:
        return env
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


def _cflags() -> List[str]:
    extra = os.environ.get("REPRO_NATIVE_CFLAGS", "")
    return _BASE_CFLAGS + shlex.split(extra)


def _cache_dir() -> Path:
    from repro.network.service.cache import default_cache_dir

    return default_cache_dir() / "native"


def cached_object_path(source: Path, compiler: str, flags: List[str]) -> Path:
    """The content-addressed ``.so`` path for this exact (source,
    compiler, flags) triple -- any change lands on a new file, so the
    cache can never serve a stale build."""
    h = hashlib.sha256()
    h.update(source.read_bytes())
    h.update(compiler.encode())
    h.update(" ".join(flags).encode())
    h.update(f"abi{ABI_VERSION}".encode())
    return _cache_dir() / f"advance-{h.hexdigest()[:16]}.so"


def _compile(source: Path, compiler: str, flags: List[str], out: Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=out.parent, prefix=out.stem + ".", suffix=".tmp.so"
    )
    os.close(fd)
    try:
        proc = subprocess.run(
            [compiler, str(source), "-o", tmp, *flags],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            err = (proc.stderr or proc.stdout).strip().splitlines()
            detail = err[0] if err else f"exit status {proc.returncode}"
            raise RuntimeError(f"{compiler} failed: {detail}")
        os.replace(tmp, out)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _bind(so_path: Path) -> ctypes.CDLL:
    """Load and type-check the shared object; raises on anything off
    (unloadable file, missing symbol, foreign ABI)."""
    lib = ctypes.CDLL(str(so_path))
    try:
        abi_fn = lib.repro_abi_version
        step_fn = lib.repro_sf_step
        run_fn = lib.repro_sf_run
    except AttributeError as exc:
        raise OSError(f"missing symbol in {so_path.name}: {exc}") from exc
    abi_fn.restype = ctypes.c_int64
    abi_fn.argtypes = []
    abi = int(abi_fn())
    if abi != ABI_VERSION:
        raise OSError(
            f"{so_path.name} speaks ABI {abi}, expected {ABI_VERSION}"
        )
    for fn in (step_fn, run_fn):
        fn.restype = ctypes.c_int64
        fn.argtypes = _ARGTYPES
    return lib


def _load_library_uncached() -> Tuple[Optional[ctypes.CDLL], str]:
    source = source_path()
    if source is None:
        return None, "C source csrc/advance.c not found near the package"
    compiler = _compiler()
    if compiler is None:
        return None, "no C compiler on PATH ($CC, cc, gcc, clang)"
    flags = _cflags()
    so_path = cached_object_path(source, compiler, flags)
    compiled = False
    if not so_path.is_file():
        try:
            _compile(source, compiler, flags, so_path)
        except (RuntimeError, OSError) as exc:
            return None, str(exc)
        compiled = True
    try:
        return _bind(so_path), f"compiled kernel at {so_path}"
    except OSError as exc:
        # a corrupt or foreign cache entry gets one rebuild, not a crash
        if compiled:
            return None, f"freshly built object unusable: {exc}"
        logger.info("native: rebuilding unusable cache entry (%s)", exc)
        try:
            so_path.unlink(missing_ok=True)
            _compile(source, compiler, flags, so_path)
            return _bind(so_path), f"recompiled kernel at {so_path}"
        except (RuntimeError, OSError) as exc2:
            return None, f"rebuild failed: {exc2}"


def load_library() -> Tuple[Optional[ctypes.CDLL], str]:
    """The bound kernel library and how we got it, or ``(None, why
    not)``; the verdict is cached until :func:`reset`."""
    global _lib, _lib_detail
    with _LOCK:
        if _lib_detail is None:
            _lib, _lib_detail = _load_library_uncached()
        return _lib, _lib_detail


def reset() -> None:
    """Forget the cached load verdict (tests monkeypatch compilers,
    flags and cache dirs, then need a clean retry)."""
    global _lib, _lib_detail
    with _LOCK:
        _lib = None
        _lib_detail = None


def _as_i64p(arr: np.ndarray) -> "ctypes._Pointer":
    return arr.ctypes.data_as(_I64P)


class _NativeSfEngine(_SfEngine):
    """The NumPy sf engine with its per-cycle body swapped for the C
    kernel.

    State construction, ``next_events`` and ``finalize`` are inherited
    unchanged -- the C code mutates the very arrays the parent built,
    and the two scalars the parent keeps as Python ints travel in a
    two-slot state array.  When the engine is alone in the batch it
    also takes over the clock loop (``run_alone``), which is where the
    speedup lives: one C call per run instead of one per cycle.
    """

    supports_run_alone = True

    def __init__(
        self, topo: Topology, runs: Sequence[KernelRun], lib: ctypes.CDLL
    ):
        super().__init__(topo, runs)
        self._lib = lib
        # the C side reads raw int64 pointers; the parent's arrays are
        # already int64 and contiguous, but never trust that silently
        for attr in (
            "inject", "nhops", "first_link_at", "run_of",
            "gl_seq", "run_of_link", "dead_at",
        ):
            arr = getattr(self, attr)
            if arr is not None and (
                arr.dtype != np.int64 or not arr.flags.c_contiguous
            ):
                setattr(self, attr, np.ascontiguousarray(arr, dtype=np.int64))
        self._state = np.zeros(2, dtype=np.int64)
        num_links = int(self.qlen.size)
        # per-call scratch: touched-target list plus the pending-list
        # heads (all -1 between calls; the kernel restores that state)
        self._touched = np.empty(max(self.num, 1), dtype=np.int64)
        self._pend = np.full(max(num_links, 1), -1, dtype=np.int64)
        if self.dead_at is not None:
            has_dead, dead_arr = 1, self.dead_at
        else:
            has_dead, dead_arr = 0, np.zeros(1, dtype=np.int64)
        self._dead_arr = dead_arr  # keep the dummy alive for ctypes
        self._args = (
            ctypes.c_int64(self.num),
            ctypes.c_int64(self.K),
            ctypes.c_int64(num_links),
            ctypes.c_int64(has_dead),
            _as_i64p(self.inject),
            _as_i64p(self.nhops),
            _as_i64p(self.first_link_at),
            _as_i64p(self.run_of),
            _as_i64p(self.gl_seq),
            _as_i64p(self.run_of_link),
            _as_i64p(dead_arr),
            _as_i64p(self.delivered_at),
            _as_i64p(self.pos),
            _as_i64p(self.succ),
            _as_i64p(self.qhead),
            _as_i64p(self.qtail),
            _as_i64p(self.qlen),
            _as_i64p(self.in_flight_r),
            _as_i64p(self.last_busy_r),
            _as_i64p(self.maxq_r),
            _as_i64p(self.drop_r),
            _as_i64p(self._touched),
            _as_i64p(self._pend),
            _as_i64p(self._state),
        )

    def step(self, cycle: int) -> bool:
        self._state[0] = self.next_pid
        self._state[1] = self.in_flight
        moved = self._lib.repro_sf_step(ctypes.c_int64(cycle), *self._args)
        self.next_pid = int(self._state[0])
        self.in_flight = int(self._state[1])
        return bool(moved)

    def run_alone(self, max_cycles: int) -> None:
        self._state[0] = self.next_pid
        self._state[1] = self.in_flight
        self._lib.repro_sf_run(ctypes.c_int64(max_cycles), *self._args)
        self.next_pid = int(self._state[0])
        self.in_flight = int(self._state[1])


class NativeBackend(Backend):
    """C sf hot loop, NumPy everything else.

    The pipelined modes (wormhole / vct) run the NumPy flow engine --
    their per-cycle body is already wide vector work and was never the
    sweep bottleneck -- so this backend accelerates exactly the
    store-and-forward discipline the ROADMAP's ≥5x target names.
    """

    name = "native"

    def availability(self) -> Tuple[bool, str]:
        lib, reason = load_library()
        return lib is not None, reason

    def sf_engine(self, topo: Topology, runs: Sequence[KernelRun]) -> object:
        lib, reason = load_library()
        if lib is None:
            raise RuntimeError(f"native backend unavailable: {reason}")
        return _NativeSfEngine(topo, runs, lib)

    def flow_engine(self, topo: Topology, runs: Sequence[KernelRun]) -> object:
        return _FlowEngine(topo, runs)
