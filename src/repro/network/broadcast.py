"""Single-port broadcasting.

In the single-port model a node can forward the message to one neighbour
per round, so broadcasting to ``n`` nodes needs at least
:math:`\\lceil \\log_2 n \\rceil` rounds.  On the hypercube the classical
binomial-tree schedule meets the bound; on a general topology we compute
a near-optimal schedule greedily over the BFS tree (informed senders pick
the child with the largest remaining subtree first).  The N1 experiment
compares rounds across topologies against the :math:`\\log_2` bound.
"""

from __future__ import annotations

from math import ceil, log2
from typing import Dict, List, Tuple

from repro.graphs.traversal import bfs_distances
from repro.network.topology import Topology

__all__ = ["binomial_broadcast_schedule", "broadcast_rounds", "verify_schedule"]


def binomial_broadcast_schedule(topo: Topology, root: int) -> List[List[Tuple[int, int]]]:
    """Greedy single-port broadcast schedule: list of rounds, each a list of
    ``(sender, receiver)`` link activations.

    Strategy: build the BFS tree from ``root``; each informed node, once
    per round, forwards to its uninformed tree child whose subtree is
    largest (the "heaviest subtree first" rule, which on the hypercube
    recovers the binomial tree and its optimal round count).
    """
    g = topo.graph
    n = g.num_vertices
    dist = bfs_distances(g, root)
    if (dist < 0).any():
        raise ValueError("broadcast root does not reach every node")
    # BFS tree children (parent = any neighbour one level up, fixed choice)
    parent = [-1] * n
    order = sorted(range(n), key=lambda v: int(dist[v]))
    for v in order:
        if v == root:
            continue
        for u in g.neighbors(v):
            if dist[u] == dist[v] - 1:
                parent[v] = u
                break
    children: Dict[int, List[int]] = {v: [] for v in range(n)}
    for v in range(n):
        if parent[v] >= 0:
            children[parent[v]].append(v)
    # subtree sizes
    size = [1] * n
    for v in sorted(range(n), key=lambda v: -int(dist[v])):
        if parent[v] >= 0:
            size[parent[v]] += size[v]
    for v in range(n):
        children[v].sort(key=lambda c: -size[c])

    informed = {root}
    pending: Dict[int, List[int]] = {root: list(children[root])}
    schedule: List[List[Tuple[int, int]]] = []
    while len(informed) < n:
        sends: List[Tuple[int, int]] = []
        for u in list(pending):
            queue = pending[u]
            while queue and queue[0] in informed:
                queue.pop(0)
            if queue:
                sends.append((u, queue.pop(0)))
            if not queue:
                del pending[u]
        if not sends:
            raise RuntimeError("broadcast schedule stalled (bug)")
        for u, v in sends:
            informed.add(v)
            pending.setdefault(v, list(children[v]))
        schedule.append(sends)
    return schedule


def broadcast_rounds(topo: Topology, root: int) -> Tuple[int, int]:
    """(rounds used, lower bound ``ceil(log2 n)``) for a broadcast from
    ``root``."""
    schedule = binomial_broadcast_schedule(topo, root)
    n = topo.num_nodes
    bound = ceil(log2(n)) if n > 1 else 0
    return (len(schedule), bound)


def verify_schedule(
    topo: Topology, root: int, schedule: List[List[Tuple[int, int]]]
) -> bool:
    """Validate single-port feasibility and full coverage of a schedule."""
    g = topo.graph
    informed = {root}
    for rnd in schedule:
        senders = set()
        newly: List[int] = []
        for u, v in rnd:
            if u not in informed or u in senders or v in informed:
                return False
            if not g.has_edge(u, v):
                return False
            senders.add(u)
            newly.append(v)
        informed.update(newly)
    return len(informed) == g.num_vertices
