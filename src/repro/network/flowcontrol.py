"""Flow control: multi-flit packets, finite buffers, wormhole and VCT.

The ICPP'93 lineage judged Fibonacci cubes as *interconnection networks*,
and the decisive phenomena there are finite buffers, backpressure and
deadlock -- none of which an infinite-FIFO store-and-forward model can
express.  This module adds the missing layer:

- :class:`FlowControl` -- the switching configuration both simulator
  engines accept: ``"sf"`` (the legacy infinite-FIFO store-and-forward
  loop, bit-identical to the pre-flow-control engines), ``"wormhole"``
  and ``"vct"`` (virtual cut-through);
- packets become **multi-flit**: each traffic triple carries a flit
  count (see :func:`repro.network.traffic.flit_sizes`), a packet's flits
  pipeline over consecutive links, and a blocked wormhole packet keeps
  holding every buffer its flits sit in -- the hold-and-wait that makes
  Dally--Seitz channel-dependency cycles *operational*;
- per-(channel, virtual-channel) buffers are **finite**
  (``buffer_depth`` flits); a flit advances only into buffer space, so
  congestion propagates backwards as credit stalls;
- ``num_vcs`` **virtual channels** per physical link; VC assignment
  follows the router's dimension order (the VC of a hop is the flipped
  bit position modulo ``num_vcs`` on word-addressed topologies), so
  dimension-ordered routing keeps an acyclic extended channel-dependency
  graph while an arbitrary shortest-path router can genuinely deadlock;
- **deadlock detection**: a cycle in which no flit can move and no
  future event (injection or scheduled fault) can unblock the network
  ends the run with ``SimResult.deadlocked = True`` and the stuck
  packets counted in ``SimResult.stalled`` -- reported, never hung.

Model (shared by both engines, bit-identically)
-----------------------------------------------
A packet with flits ``f_1 .. f_F`` and route channels ``c_1 .. c_k``
(channel = directed link, buffer at the upstream node) moves under these
rules, all decided from start-of-cycle state and applied simultaneously:

- **atomic VC allocation**: a ``(channel, vc)`` buffer is held by at
  most one packet at a time, from the cycle its head flit enters until
  its tail flit leaves;
- each *physical* link transfers at most one flit per cycle; among its
  occupied VCs the one whose holder has the smallest packet id (oldest
  injection) and a movable front flit wins the link;
- a **head** flit advances iff the next hop's buffer is free (for
  ``vct`` the buffer must fit the whole packet, checked up front); a
  **body** flit advances iff the next hop's buffer -- already held by
  its packet -- has space; flits exit freely at the destination;
- competing head flits (including injections) claiming the same free
  buffer are arbitrated by smallest packet id; losers stall in place;
- injection moves one flit per packet per cycle from the source into
  the first channel's buffer, under the same allocation/space rules;
- a link that dies (:class:`~repro.network.faults.FaultPlan`) drops
  *every flit of every packet holding one of its buffers*: the whole
  packet is removed from the network and counted in ``dropped``.

Latency convention: entering the injection buffer costs one cycle, so an
uncontended ``k``-hop, ``F``-flit packet delivers with latency
``k + F`` (store-and-forward: ``k`` with its single-flit packets).

Both engines -- :func:`reference_flow_run`, the readable per-packet
spec, and :func:`vectorized_flow_run`, the array engine -- implement
exactly these rules and must produce bit-identical outcomes; the
equivalence suite enforces it across topologies, switching modes,
routers and fault plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.faults import _NEVER
from repro.network.topology import Topology

__all__ = [
    "FlowControl",
    "FlowOutcome",
    "SWITCHING_MODES",
    "link_dimension",
    "reference_flow_run",
    "vc_of_hop",
    "vectorized_flow_run",
]

SWITCHING_MODES = ("sf", "wormhole", "vct")


@dataclass(frozen=True)
class FlowControl:
    """Switching configuration for a simulation run.

    ``switching="sf"`` selects the legacy store-and-forward loop
    (infinite FIFOs, single-flit packets, bit-identical to the engines
    before flow control existed); ``buffer_depth`` and ``num_vcs`` are
    ignored there.  ``"wormhole"`` and ``"vct"`` enable the finite-buffer
    pipelined model described in the module docstring.
    """

    switching: str = "sf"
    buffer_depth: int = 4
    num_vcs: int = 1

    def __post_init__(self):
        if self.switching not in SWITCHING_MODES:
            raise ValueError(
                f"unknown switching mode {self.switching!r}; "
                f"choose from {SWITCHING_MODES}"
            )
        if self.buffer_depth < 1:
            raise ValueError(
                f"buffer_depth must be at least 1 flit, got {self.buffer_depth}"
            )
        if self.num_vcs < 1:
            raise ValueError(f"num_vcs must be at least 1, got {self.num_vcs}")

    @property
    def pipelined(self) -> bool:
        """True for the finite-buffer modes (wormhole / vct)."""
        return self.switching != "sf"

    def label(self) -> str:
        """Compact tag for sweep records and curve keys (``""`` for sf)."""
        if not self.pipelined:
            return ""
        return f"{self.switching}:v{self.num_vcs}:b{self.buffer_depth}"


def link_dimension(topo: Topology, u: int, v: int) -> Optional[int]:
    """The cube dimension of link ``(u, v)``: the first position where the
    two word addresses differ, or ``None`` off word-addressed topologies."""
    if topo.word_length is None:
        return None
    wu, wv = topo.node_word(u), topo.node_word(v)
    for i, (a, b) in enumerate(zip(wu, wv)):
        if a != b:
            return i
    return None


def vc_of_hop(topo: Topology, u: int, v: int, hop: int, num_vcs: int) -> int:
    """Deterministic VC assignment for hop ``hop`` (0-based) over ``(u, v)``.

    On word-addressed topologies the VC follows the router's dimension
    order -- the flipped bit position modulo ``num_vcs`` -- so
    dimension-ordered routing visits VCs in a fixed total order and its
    extended channel-dependency graph stays acyclic.  Elsewhere the hop
    index stands in for the dimension.
    """
    if num_vcs == 1:
        return 0
    dim = link_dimension(topo, u, v)
    return (hop if dim is None else dim) % num_vcs


def resolve_flits(
    flits: Union[int, Sequence[int]], num_packets: int
) -> np.ndarray:
    """Per-packet flit counts aligned with the traffic list as given."""
    if isinstance(flits, (int, np.integer)):
        arr = np.full(num_packets, int(flits), dtype=np.int64)
    else:
        arr = np.asarray(list(flits), dtype=np.int64)
        if arr.shape != (num_packets,):
            raise ValueError(
                f"flits sequence has {arr.size} entries for "
                f"{num_packets} traffic triples"
            )
    if arr.size and int(arr.min()) < 1:
        raise ValueError("every packet needs at least 1 flit")
    return arr


class FlowOutcome(NamedTuple):
    """Raw outcome of a flow-controlled cycle loop (one per engine run);
    the simulator layer turns it into a :class:`SimResult`."""

    cycles: int
    delivered_at: np.ndarray  # per routed packet, -1 when undelivered
    max_queue: int
    dropped_in_flight: int
    stalled: int
    deadlocked: bool


def _validate_vct(flow: FlowControl, nf: np.ndarray) -> None:
    if flow.switching == "vct" and nf.size:
        biggest = int(nf.max())
        if biggest > flow.buffer_depth:
            raise ValueError(
                "virtual cut-through needs buffers that fit whole packets: "
                f"largest packet is {biggest} flits, buffer_depth is "
                f"{flow.buffer_depth}"
            )


# ---------------------------------------------------------------------------
# Reference engine: the per-packet executable specification
# ---------------------------------------------------------------------------


def reference_flow_run(
    topo: Topology,
    flow: FlowControl,
    routes: List[List[int]],
    inject: List[int],
    nf_list: List[int],
    link_dead: Dict[Tuple[int, int], int],
    max_cycles: int,
) -> FlowOutcome:
    """Run the wormhole/VCT cycle loop over resolved routes (the spec).

    ``routes[p]`` is the node sequence of packet ``p`` (packets are in
    injection order), ``nf_list[p]`` its flit count.  Plain dicts and
    lists throughout -- this function *is* the semantics; the array
    engine must reproduce it bit for bit.
    """
    num = len(routes)
    nf = np.asarray(nf_list, dtype=np.int64)
    _validate_vct(flow, nf)
    V, B = flow.num_vcs, flow.buffer_depth
    k = [len(r) - 1 for r in routes]
    # ext channel of hop i (1-based): (u, v, vc)
    exts: List[List[Tuple[int, int, int]]] = []
    for p, route in enumerate(routes):
        exts.append(
            [
                (u, v, vc_of_hop(topo, u, v, h, V))
                for h, (u, v) in enumerate(zip(route, route[1:]))
            ]
        )

    head = [0] * num          # 0 = at source, i = in channel i, k+1 = exited
    srcf = [int(f) for f in nf]   # flits still at the source
    tailb = [0] * num         # hop of the rearmost in-network flit
    delivered_at = np.full(num, -1, dtype=np.int64)

    holder: Dict[Tuple[int, int, int], int] = {}
    occ: Dict[Tuple[int, int, int], int] = {}
    hopb: Dict[Tuple[int, int, int], int] = {}

    injecting: List[int] = []
    next_pid = 0
    delivered_n = 0
    dropped_n = 0
    max_queue = 0
    last_busy = -1
    deadlocked = False
    cycle = 0
    work_left = True
    while cycle < max_cycles:
        moved = False
        # 1. dying links take down every packet holding one of their buffers
        if link_dead:
            victims = sorted(
                {
                    p
                    for (u, v, _), p in holder.items()
                    if link_dead.get((u, v), _NEVER) <= cycle
                }
            )
            if victims:
                vset = set(victims)
                for ext in [e for e, p in holder.items() if p in vset]:
                    del holder[ext], occ[ext], hopb[ext]
                for p in victims:
                    srcf[p] = 0
                dropped_n += len(victims)
                moved = True
        # 2. arrivals whose injection cycle has come
        while next_pid < num and inject[next_pid] <= cycle:
            p = next_pid
            next_pid += 1
            if k[p] == 0:
                delivered_at[p] = inject[p]
                delivered_n += 1
                moved = True
            else:
                injecting.append(p)
        injecting = [p for p in injecting if srcf[p] > 0]
        # 3. network candidates: per physical link, the movable front flit
        #    of the occupied VC whose holder is oldest (smallest pid)
        by_phys: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        for ext, p in holder.items():
            if occ[ext] > 0:
                by_phys.setdefault(ext[:2], []).append(ext)
        net_moves = []  # (pid, ext, hop, is_head, is_last, is_tail, to_ext)
        for bufs in by_phys.values():
            best = None
            for ext in bufs:
                p = holder[ext]
                i = hopb[ext]
                is_head = head[p] == i
                is_last = i == k[p]
                to = None if is_last else exts[p][i]
                if is_last:
                    ok = True
                elif is_head:
                    ok = to not in holder
                else:
                    ok = occ.get(to, 0) < B
                if ok and (best is None or p < best[0]):
                    is_tail = srcf[p] == 0 and tailb[p] == i and occ[ext] == 1
                    best = (p, ext, i, is_head, is_last, is_tail, to)
            if best is not None:
                net_moves.append(best)
        # 4. injection candidates: one flit per waiting packet, pid order
        inj_moves = []  # (pid, first_ext, is_head_injection)
        for p in injecting:
            e1 = exts[p][0]
            if head[p] == 0:
                if e1 not in holder:
                    inj_moves.append((p, e1, True))
            elif occ.get(e1, 0) < B:
                inj_moves.append((p, e1, False))
        # 5. head flits claiming the same free buffer: smallest pid wins
        claims: Dict[Tuple[int, int, int], int] = {}
        for p, _, _, is_head, is_last, _, to in net_moves:
            if is_head and not is_last:
                claims[to] = min(claims.get(to, p), p)
        for p, e1, is_head in inj_moves:
            if is_head:
                claims[e1] = min(claims.get(e1, p), p)
        net_moves = [
            m
            for m in net_moves
            if not (m[3] and not m[4]) or claims[m[6]] == m[0]
        ]
        inj_moves = [m for m in inj_moves if not m[2] or claims[m[1]] == m[0]]
        # 6. apply every surviving move simultaneously
        recv = []
        for p, ext, i, is_head, is_last, is_tail, to in net_moves:
            occ[ext] -= 1
            if is_tail:
                del holder[ext], occ[ext], hopb[ext]
                if not is_last:
                    tailb[p] = i + 1
            if is_head:
                if is_last:
                    head[p] = k[p] + 1
                else:
                    holder[to] = p
                    occ[to] = occ.get(to, 0) + 1
                    hopb[to] = i + 1
                    head[p] = i + 1
                    recv.append(to)
            elif not is_last:
                occ[to] += 1
                recv.append(to)
            if is_last and is_tail:
                delivered_at[p] = cycle + 1
                delivered_n += 1
            moved = True
        for p, e1, is_head in inj_moves:
            srcf[p] -= 1
            if is_head:
                holder[e1] = p
                occ[e1] = occ.get(e1, 0) + 1
                hopb[e1] = 1
                head[p] = 1
            else:
                occ[e1] += 1
            if srcf[p] == 0:
                tailb[p] = 1
            recv.append(e1)
            moved = True
        for ext in recv:
            if occ.get(ext, 0) > max_queue:
                max_queue = occ[ext]
        # 7. advance time -- or jump to the next event, or stop
        if moved:
            last_busy = cycle
            cycle += 1
            continue
        live = next_pid - delivered_n - dropped_n
        if live == 0:
            if next_pid < num:
                cycle = min(inject[next_pid], max_cycles)
                continue
            work_left = False
            break
        events = []
        if next_pid < num:
            events.append(inject[next_pid])
        events.extend(c for c in link_dead.values() if c > cycle)
        if events:
            cycle = min(min(events), max_cycles)
            continue
        deadlocked = True
        break
    stalled = num - delivered_n - dropped_n
    if deadlocked or not (work_left and stalled):
        cycles = max(last_busy + 1, 1)
    else:
        cycles = max(max_cycles, 1)
    return FlowOutcome(
        cycles=cycles,
        delivered_at=delivered_at,
        max_queue=max_queue,
        dropped_in_flight=dropped_n,
        stalled=stalled,
        deadlocked=deadlocked,
    )


# ---------------------------------------------------------------------------
# Vectorized engine: the same semantics over flat NumPy state
# ---------------------------------------------------------------------------


def vectorized_flow_run(
    topo: Topology,
    flow: FlowControl,
    link_seq: np.ndarray,
    link_offsets: np.ndarray,
    link_codes: np.ndarray,
    first_link_at: np.ndarray,
    nhops: np.ndarray,
    inject: np.ndarray,
    nf: np.ndarray,
    link_dead: Dict[Tuple[int, int], int],
    max_cycles: int,
    backend=None,
) -> FlowOutcome:
    """Array implementation of :func:`reference_flow_run`'s semantics.

    Since the advance kernels were fused, this is a one-run batch
    through :func:`repro.network.kernel.run_fused`: buffer state lives
    in flat per-extended-channel arrays (extended channel = physical
    link id x VC), per-packet state in flat pid arrays, and every cycle
    is a bounded number of NumPy gathers/scatters over the
    occupied-buffer set.  Outcomes are bit-identical to the reference
    loop (and to the same run inside any K-run batch).
    """
    # imported here: the kernel builds on this module's declarations
    from repro.network.kernel import KernelRun, run_fused

    run = KernelRun(
        flow=flow,
        inject=inject,
        nhops=nhops,
        first_link_at=first_link_at,
        link_seq=link_seq,
        link_offsets=link_offsets,
        link_codes=link_codes,
        nf=nf,
        link_dead=link_dead,
    )
    return run_fused(topo, [run], max_cycles, backend=backend)[0]
