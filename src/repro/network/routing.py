"""Routing algorithms on cube topologies.

Three routers with one interface (``route(topology, src, dst) -> path``
as a list of node indices):

- :class:`BfsRouter` -- exact shortest path in the topology (the
  oracle);
- :class:`CanonicalRouter` -- the paper's canonical path (Section 2):
  scan left to right flipping 1->0 bits first, then 0->1 bits, skipping
  hops that would leave the vertex set.  On :math:`Q_d(1^s)` the proof of
  Proposition 3.1 shows the unmodified canonical path already stays inside
  -- the distributed, table-free routing of the Hsu--Liu line;
- :class:`GreedyRouter` -- a purely local rule: from the current node,
  move to any neighbour strictly closer in Hamming distance to the
  destination; fail when stuck (used to demonstrate *why* isometry
  matters for local routing);
- :class:`AdaptiveRouter` -- the fault-aware extension of the canonical
  rule: prefer a canonical move over a *live* link, and when faults (or
  non-isometry) block every closer step, misroute to any live neighbour
  under a bounded misroute budget -- still table-free and local.

:func:`route_stats` sweeps node pairs and reports reachability, stretch
(path length / graph distance) and hop histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.traversal import bfs_distances
from repro.network.topology import Topology
from repro.words.core import flip, hamming

__all__ = [
    "AdaptiveRouter",
    "BfsRouter",
    "CanonicalRouter",
    "DimensionOrderRouter",
    "GreedyRouter",
    "RouteStats",
    "RouteTable",
    "route_stats",
]


class BfsRouter:
    """Exact shortest-path routing (global knowledge)."""

    name = "bfs"

    def route(self, topo: Topology, src: int, dst: int) -> Optional[List[int]]:
        g = topo.graph
        dist = bfs_distances(g, dst)
        if dist[src] < 0:
            return None
        path = [src]
        cur = src
        while cur != dst:
            cur = min(g.neighbors(cur), key=lambda v: dist[v])
            if dist[cur] < 0:
                return None
            path.append(cur)
        return path

    def build_table(
        self, topo: Topology, pairs: Iterable[Tuple[int, int]]
    ) -> "RouteTable":
        """Batched table build: one BFS per *destination* plus a
        vectorised next-hop extraction, instead of one BFS per pair.

        For every destination the next-hop array ``toward[v]`` is the
        first neighbour of ``v`` (in adjacency order) that is strictly
        closer to the destination -- exactly the vertex
        :meth:`route`'s ``min(..., key=dist)`` picks -- so the batched
        paths are identical to the per-pair ones.
        """
        g = topo.graph
        n = g.num_vertices
        indptr, indices = g.csr()
        order = list(dict.fromkeys(pairs))  # dedupe, keep first-seen order
        data: List[int] = []
        offsets: List[int] = [0]
        pair_row: Dict[Tuple[int, int], int] = {}
        counts = indptr[1:] - indptr[:-1]
        rows_of = np.repeat(np.arange(n, dtype=np.int64), counts)
        for dst in sorted({d for _, d in order}):
            dist = bfs_distances(g, dst)
            # toward[v]: first neighbour with dist == dist[v] - 1
            closer = dist[indices] == dist[rows_of] - 1
            hit_rows, first_at = np.unique(rows_of[closer], return_index=True)
            toward = np.full(n, -1, dtype=np.int64)
            toward[hit_rows] = indices[np.flatnonzero(closer)[first_at]]
            for src, d in order:
                if d != dst:
                    continue
                if dist[src] < 0:
                    pair_row[(src, d)] = -1
                    continue
                path = [src]
                cur = src
                while cur != dst:
                    cur = int(toward[cur])
                    path.append(cur)
                pair_row[(src, d)] = len(offsets) - 1
                data.extend(path)
                offsets.append(len(data))
        return RouteTable(
            route_data=np.asarray(data, dtype=np.int64),
            route_offsets=np.asarray(offsets, dtype=np.int64),
            pair_row=pair_row,
        )


class CanonicalRouter:
    """Canonical bit-fix routing with in-set skipping.

    Repeatedly scans positions left to right and performs the first
    *admissible* canonical move: flip a 1->0 mismatch if the result stays
    a vertex, else (after all 1->0 options) a 0->1 mismatch.  If a full
    scan makes no progress the route fails.  On factors ``1^s``
    (Proposition 3.1) the first canonical move is always admissible, so
    the router is optimal there; elsewhere it may detour or fail, which
    is precisely what the N1 experiment quantifies.
    """

    name = "canonical"

    def route(self, topo: Topology, src: int, dst: int) -> Optional[List[int]]:
        g = topo.graph
        if topo.word_length is None:
            raise ValueError("canonical routing needs word-addressed nodes")
        cur_word = topo.node_word(src)
        dst_word = topo.node_word(dst)
        path = [src]
        guard = 4 * (topo.word_length + 1)
        while cur_word != dst_word and guard > 0:
            guard -= 1
            nxt = self._canonical_step(g, cur_word, dst_word)
            if nxt is None:
                return None
            cur_word = nxt
            path.append(g.index_of(cur_word))
        if cur_word != dst_word:
            return None
        return path

    @staticmethod
    def _canonical_step(g, cur: str, dst: str) -> Optional[str]:
        for i in range(len(cur)):
            if cur[i] == "1" and dst[i] == "0":
                cand = flip(cur, i)
                if g.has_label(cand):
                    return cand
        for i in range(len(cur)):
            if cur[i] == "0" and dst[i] == "1":
                cand = flip(cur, i)
                if g.has_label(cand):
                    return cand
        return None


class AdaptiveRouter(CanonicalRouter):
    """Fault-aware canonical routing with a bounded misroute budget.

    The local detour rule of the Hsu--Liu fault-tolerance line: at each
    node, take the first canonical move (1->0 mismatch flips left to
    right, then 0->1) whose link is *live* -- on a masked fault view
    (:meth:`Topology.with_faults`) dead links are missing edges and
    failed nodes have hidden addresses, so this test is purely local.
    When no closer live neighbour exists, *misroute*: flip the leftmost
    matching bit that lands on a live neighbour, spending one unit of a
    ``max_misroutes`` budget (each misroute costs two extra hops).  The
    immediately previous node is never revisited, so a misroute is never
    undone one step later.  On an unfaulted ``Q_d(1^s)`` no misroute is
    ever needed (Proposition 3.1) and the routes coincide with
    :class:`CanonicalRouter`'s.
    """

    name = "adaptive"

    def __init__(self, max_misroutes: int = 4):
        if max_misroutes < 0:
            raise ValueError(f"max_misroutes must be >= 0, got {max_misroutes}")
        self.max_misroutes = max_misroutes

    def route(self, topo: Topology, src: int, dst: int) -> Optional[List[int]]:
        g = topo.graph
        if topo.word_length is None:
            raise ValueError("adaptive routing needs word-addressed nodes")
        cur_word = topo.node_word(src)
        dst_word = topo.node_word(dst)
        budget = self.max_misroutes
        # each misroute flips one matching bit and must be re-fixed later
        limit = hamming(cur_word, dst_word) + 2 * self.max_misroutes
        path = [src]
        prev = -1
        while cur_word != dst_word:
            if len(path) - 1 >= limit:
                return None
            step = self._adaptive_step(g, path[-1], cur_word, dst_word, prev, budget > 0)
            if step is None:
                return None
            nxt, nxt_word, misrouted = step
            if misrouted:
                budget -= 1
            prev = path[-1]
            cur_word = nxt_word
            path.append(nxt)
        return path

    @staticmethod
    def _adaptive_step(
        g, cur: int, cur_word: str, dst_word: str, prev: int, may_misroute: bool
    ) -> Optional[Tuple[int, str, bool]]:
        for bits in (("1", "0"), ("0", "1")):
            for i in range(len(cur_word)):
                if cur_word[i] == bits[0] and dst_word[i] == bits[1]:
                    cand = flip(cur_word, i)
                    if g.has_label(cand):
                        j = g.index_of(cand)
                        if j != prev and g.has_edge(cur, j):
                            return (j, cand, False)
        if may_misroute:
            for i in range(len(cur_word)):
                if cur_word[i] == dst_word[i]:
                    cand = flip(cur_word, i)
                    if g.has_label(cand):
                        j = g.index_of(cand)
                        if j != prev and g.has_edge(cur, j):
                            return (j, cand, True)
        return None


class DimensionOrderRouter:
    """Strict e-cube routing: fix differing bits left to right, no fallback.

    Deadlock-free by construction on *any* topology (channels are used in
    strictly increasing dimension order, so the channel dependency graph
    is acyclic), but it only delivers when every prefix-fixed word is a
    vertex -- guaranteed on the full hypercube and, in the 1->0-first
    variant below, on the ``1^s`` family (Proposition 3.1's canonical
    path).  Delivery failures on other cubes are the measured price of
    strictness, contrast with :class:`CanonicalRouter`'s fallback.
    """

    name = "ecube"

    def route(self, topo: Topology, src: int, dst: int) -> Optional[List[int]]:
        g = topo.graph
        if topo.word_length is None:
            raise ValueError("dimension-order routing needs word-addressed nodes")
        cur = topo.node_word(src)
        dst_word = topo.node_word(dst)
        path = [src]
        # phase 1: 1 -> 0 flips left to right, phase 2: 0 -> 1 flips
        for phase_bits in (("1", "0"), ("0", "1")):
            for i in range(len(cur)):
                if cur[i] == phase_bits[0] and dst_word[i] == phase_bits[1]:
                    cur = flip(cur, i)
                    if not g.has_label(cur):
                        return None
                    path.append(g.index_of(cur))
        return path


class GreedyRouter:
    """Local Hamming-descent routing; fails when no neighbour improves."""

    name = "greedy"

    def route(self, topo: Topology, src: int, dst: int) -> Optional[List[int]]:
        g = topo.graph
        if topo.word_length is None:
            raise ValueError("greedy routing needs word-addressed nodes")
        dst_word = topo.node_word(dst)
        cur = src
        path = [cur]
        while cur != dst:
            cur_word = topo.node_word(cur)
            h_cur = hamming(cur_word, dst_word)
            nxt = None
            for v in g.neighbors(cur):
                if hamming(topo.node_word(v), dst_word) < h_cur:
                    nxt = v
                    break
            if nxt is None:
                return None
            cur = nxt
            path.append(cur)
        return path


@dataclass
class RouteTable:
    """Batched routes in a flat CSR-style layout.

    Row ``r`` is the node sequence
    ``route_data[route_offsets[r] : route_offsets[r + 1]]``.  ``pair_row``
    maps each resolved ``(src, dst)`` pair to its row, or to ``-1`` when
    the router failed the pair (the packet is dropped at injection).

    The table is what the vectorized simulator consumes: routes are
    resolved once per *unique* pair instead of once per packet, and the
    flat arrays let the engine advance every in-flight packet with NumPy
    gathers instead of per-packet list indexing.
    """

    route_data: np.ndarray
    route_offsets: np.ndarray
    pair_row: Dict[Tuple[int, int], int]

    @classmethod
    def build(
        cls,
        topo: Topology,
        router,
        pairs: Iterable[Tuple[int, int]],
    ) -> "RouteTable":
        """Resolve every unique pair through ``router`` into one table."""
        data: List[int] = []
        offsets: List[int] = [0]
        pair_row: Dict[Tuple[int, int], int] = {}
        for pair in pairs:
            if pair in pair_row:
                continue
            src, dst = pair
            path = router.route(topo, src, dst)
            if path is None:
                pair_row[pair] = -1
                continue
            pair_row[pair] = len(offsets) - 1
            data.extend(path)
            offsets.append(len(data))
        return cls(
            route_data=np.asarray(data, dtype=np.int64),
            route_offsets=np.asarray(offsets, dtype=np.int64),
            pair_row=pair_row,
        )

    @property
    def num_routes(self) -> int:
        return len(self.route_offsets) - 1

    def lengths(self) -> np.ndarray:
        """Node count of every route (hops + 1), one entry per row."""
        return self.route_offsets[1:] - self.route_offsets[:-1]

    def route_nodes(self, row: int) -> np.ndarray:
        """The node sequence of row ``row`` (a view, do not mutate)."""
        return self.route_data[self.route_offsets[row] : self.route_offsets[row + 1]]


@dataclass(frozen=True)
class RouteStats:
    """Aggregate routing quality over a pair sample."""

    router: str
    pairs: int
    delivered: int
    optimal: int
    total_hops: int
    total_shortest: int

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.pairs if self.pairs else 1.0

    @property
    def optimality_rate(self) -> float:
        return self.optimal / self.delivered if self.delivered else 0.0

    @property
    def stretch(self) -> float:
        """Average delivered-path length over shortest-path length."""
        return self.total_hops / self.total_shortest if self.total_shortest else 1.0


def route_stats(
    topo: Topology,
    router,
    pairs: Optional[Sequence[Tuple[int, int]]] = None,
) -> RouteStats:
    """Run ``router`` over ``pairs`` (default: all ordered pairs) and verify
    each returned path is a real path before scoring it."""
    g = topo.graph
    n = g.num_vertices
    if pairs is None:
        pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    delivered = optimal = total_hops = total_shortest = 0
    dist_cache: Dict[int, np.ndarray] = {}
    for s, t in pairs:
        if s not in dist_cache:
            dist_cache[s] = bfs_distances(g, s)
        shortest = int(dist_cache[s][t])
        path = router.route(topo, s, t)
        if path is None:
            continue
        if path[0] != s or path[-1] != t:
            raise AssertionError(f"router {router.name} returned a broken path")
        for a, b in zip(path, path[1:]):
            if not g.has_edge(a, b):
                raise AssertionError(f"router {router.name} used a non-edge")
        hops = len(path) - 1
        delivered += 1
        total_hops += hops
        total_shortest += shortest
        if hops == shortest:
            optimal += 1
    return RouteStats(
        router=getattr(router, "name", type(router).__name__),
        pairs=len(pairs),
        delivered=delivered,
        optimal=optimal,
        total_hops=total_hops,
        total_shortest=total_shortest,
    )
