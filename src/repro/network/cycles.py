"""Even-cycle spectrum (Zagaglia Salvi, reference [22] of the paper).

Reference [22] proves that the Hsu--Liu generalized Fibonacci cubes
:math:`Q_d(1^s)` contain cycles of **every even length** up to the number
of vertices (when that number is even; up to ``|V| - 1`` otherwise).
Hypercube subgraphs are bipartite, so odd cycles are impossible -- the
even spectrum is the whole story.

:func:`cycle_spectrum` measures the attainable cycle lengths of any graph
by backtracking search (a cycle of length L is a Hamiltonian cycle of
some L-subset; we search directly with pruning), and
:func:`has_even_cycles_everywhere` packages the [22] claim as a checkable
predicate used by the extension tests and benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.graphs.core import Graph

__all__ = ["find_cycle_of_length", "cycle_spectrum", "has_even_cycles_everywhere"]


def find_cycle_of_length(
    g: Graph, length: int, node_budget: int = 2_000_000
) -> Optional[List[int]]:
    """A simple cycle of exactly ``length`` vertices, or ``None``.

    Backtracking from each anchor vertex with a standard canonical-form
    cut (the anchor is the cycle's minimum vertex, its two neighbours on
    the cycle are ordered) so each cycle is explored once.
    """
    if length < 3 or length > g.num_vertices:
        return None
    budget = [node_budget]
    n = g.num_vertices

    def search(anchor: int) -> Optional[List[int]]:
        path = [anchor]
        on_path: Set[int] = {anchor}

        def backtrack() -> Optional[List[int]]:
            budget[0] -= 1
            if budget[0] < 0:
                raise RuntimeError("cycle search exceeded its node budget")
            cur = path[-1]
            if len(path) == length:
                return list(path) if g.has_edge(cur, anchor) else None
            for v in g.neighbors(cur):
                if v in on_path or v < anchor:
                    continue
                # canonical orientation: second vertex smaller than last
                if len(path) == 1:
                    pass
                path.append(v)
                on_path.add(v)
                found = backtrack()
                if found is not None:
                    return found
                path.pop()
                on_path.remove(v)
            return None

        return backtrack()

    for anchor in range(n):
        found = search(anchor)
        if found is not None:
            return found
    return None


def cycle_spectrum(
    g: Graph, max_length: Optional[int] = None, node_budget: int = 2_000_000
) -> List[int]:
    """All cycle lengths up to ``max_length`` (default ``|V|``) present in ``g``."""
    n = g.num_vertices
    if max_length is None:
        max_length = n
    out = []
    for L in range(3, max_length + 1):
        if find_cycle_of_length(g, L, node_budget=node_budget) is not None:
            out.append(L)
    return out


def has_even_cycles_everywhere(g: Graph, node_budget: int = 2_000_000) -> bool:
    """The [22] property: a cycle of every even length ``4 <= L <= L_max``
    where ``L_max`` is ``|V|`` rounded down to even."""
    n = g.num_vertices
    top = n if n % 2 == 0 else n - 1
    for L in range(4, top + 1, 2):
        if find_cycle_of_length(g, L, node_budget=node_budget) is None:
            return False
    return True
