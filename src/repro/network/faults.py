"""Fault model: static graph surgery and dynamic fault plans.

Two complementary views of the 1993-lineage claim that Fibonacci-type
cubes degrade gracefully under faults:

- **Static surgery** (:func:`fault_tolerance_trial`): remove a random
  node set offline and measure surviving connectivity, diameter
  inflation and routable-pair fraction -- structure only, no traffic.

- **Dynamic fault plans** (:class:`FaultPlan`): a reproducible schedule
  of node and link failures, each active from a given cycle onward
  (cycle 0 = failed before traffic starts).  A plan threads through the
  simulation engines (:mod:`repro.network.simulator`) as *link masks*:

  - a failed node kills every incident link (both directions); a failed
    link kills both directions of that link;
  - a packet that sits queued on a link during a cycle in which the link
    is dead is dropped and counted in ``SimResult.dropped`` -- faults
    strike in flight, not just between runs;
  - packets injected at or after a fault cycle are routed against the
    *masked* topology (:meth:`Topology.with_faults`), one route-table
    rebuild per fault epoch.  Fault-aware routers
    (:class:`~repro.network.routing.AdaptiveRouter`, BFS) detour around
    the damage; the table-free canonical router sees node deaths (word
    addresses of failed nodes are hidden) but is *oblivious to link
    deaths* and pays in dropped packets -- the measured contrast the
    ICPP'93 line argued about.

Plans are frozen, hashable and picklable, with a compact string grammar
(:meth:`FaultPlan.parse` / :meth:`FaultPlan.spec`) so sweeps can carry a
``--faults`` axis: ``"n3,n5@10,l0-2@5"`` fails node 3 at cycle 0, node 5
at cycle 10 and link {0, 2} at cycle 5; ``"rand4@20s7"`` fails 4
seed-7-random nodes at cycle 20.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple


from repro.graphs.traversal import all_pairs_distances, connected_components
from repro.network.topology import Topology

__all__ = ["FaultPlan", "FaultReport", "fault_tolerance_trial"]

_NEVER = 2**62  # a cycle no simulation reaches: "never fails"

_NODE_RE = re.compile(r"n(\d+)(?:@(\d+))?")
_LINK_RE = re.compile(r"l(\d+)-(\d+)(?:@(\d+))?")
_RAND_RE = re.compile(r"rand(\d+)(?:@(\d+))?(?:s(\d+))?")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of node and link failures.

    ``node_faults`` holds ``(cycle, node)`` events, ``link_faults`` holds
    ``(cycle, u, v)`` events with ``u < v``; an entity failing is
    permanent from its cycle onward.  Construction normalises: endpoints
    are ordered, duplicates keep their *earliest* failure cycle, events
    are stored sorted -- so equal plans compare and hash equal.
    """

    node_faults: Tuple[Tuple[int, int], ...] = ()
    link_faults: Tuple[Tuple[int, int, int], ...] = ()

    def __post_init__(self):
        nodes: Dict[int, int] = {}
        for cycle, v in self.node_faults:
            cycle, v = int(cycle), int(v)
            if cycle < 0 or v < 0:
                raise ValueError(f"bad node fault ({cycle}, {v}): need cycle, node >= 0")
            nodes[v] = min(nodes.get(v, _NEVER), cycle)
        links: Dict[Tuple[int, int], int] = {}
        for cycle, u, v in self.link_faults:
            cycle, u, v = int(cycle), int(u), int(v)
            if cycle < 0 or u < 0 or v < 0:
                raise ValueError(f"bad link fault ({cycle}, {u}, {v}): need all >= 0")
            if u == v:
                raise ValueError(f"link fault {u}-{v} is a self-loop")
            key = (u, v) if u < v else (v, u)
            links[key] = min(links.get(key, _NEVER), cycle)
        object.__setattr__(
            self, "node_faults", tuple(sorted((c, v) for v, c in nodes.items()))
        )
        object.__setattr__(
            self, "link_faults", tuple(sorted((c, u, v) for (u, v), c in links.items()))
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def static(
        cls,
        nodes: Iterable[int] = (),
        links: Iterable[Tuple[int, int]] = (),
    ) -> "FaultPlan":
        """All failures present from cycle 0 (the classic offline model)."""
        return cls(
            node_faults=tuple((0, v) for v in nodes),
            link_faults=tuple((0, u, v) for u, v in links),
        )

    @classmethod
    def random_nodes(
        cls, num_nodes: int, k: int, seed: int = 0, at_cycle: int = 0
    ) -> "FaultPlan":
        """``k`` random node failures at ``at_cycle``, deterministic in ``seed``."""
        if not 0 <= k <= num_nodes:
            raise ValueError(f"need 0 <= k <= {num_nodes}, got {k}")
        rng = random.Random(seed)
        return cls(
            node_faults=tuple((at_cycle, v) for v in rng.sample(range(num_nodes), k))
        )

    @classmethod
    def parse(cls, spec: str, num_nodes: Optional[int] = None) -> "FaultPlan":
        """Parse a comma-separated fault spec.

        Tokens: ``n<v>[@<cycle>]`` (node fault), ``l<u>-<v>[@<cycle>]``
        (link fault), ``rand<k>[@<cycle>][s<seed>]`` (``k`` random node
        faults; needs ``num_nodes``).  The empty string is the empty plan.
        """
        nodes = []
        links = []
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if m := _NODE_RE.fullmatch(token):
                nodes.append((int(m.group(2) or 0), int(m.group(1))))
            elif m := _LINK_RE.fullmatch(token):
                links.append((int(m.group(3) or 0), int(m.group(1)), int(m.group(2))))
            elif m := _RAND_RE.fullmatch(token):
                if num_nodes is None:
                    raise ValueError(
                        f"random fault token {token!r} needs num_nodes to resolve"
                    )
                k, cyc = int(m.group(1)), int(m.group(2) or 0)
                rng = random.Random(int(m.group(3) or 0))
                if not 0 <= k <= num_nodes:
                    raise ValueError(f"{token!r}: need 0 <= k <= {num_nodes}")
                nodes.extend((cyc, v) for v in rng.sample(range(num_nodes), k))
            else:
                raise ValueError(
                    f"bad fault token {token!r} in {spec!r}: expected "
                    "'n<v>[@c]', 'l<u>-<v>[@c]' or 'rand<k>[@c][s<seed>]'"
                )
        return cls(node_faults=tuple(nodes), link_faults=tuple(links))

    def spec(self) -> str:
        """Canonical round-trip string (``parse(plan.spec()) == plan``)."""
        toks = [f"n{v}" + (f"@{c}" if c else "") for c, v in self.node_faults]
        toks += [f"l{u}-{v}" + (f"@{c}" if c else "") for c, u, v in self.link_faults]
        return ",".join(toks)

    # -- queries -----------------------------------------------------------

    @property
    def num_events(self) -> int:
        return len(self.node_faults) + len(self.link_faults)

    def cycles(self) -> Tuple[int, ...]:
        """Sorted distinct fault cycles: the routing-epoch boundaries."""
        return tuple(
            sorted(
                {c for c, _ in self.node_faults} | {c for c, _, _ in self.link_faults}
            )
        )

    def dead_nodes_at(self, cycle: int) -> FrozenSet[int]:
        """Nodes already failed at ``cycle`` (events with cycle <= it)."""
        return frozenset(v for c, v in self.node_faults if c <= cycle)

    def dead_links_at(self, cycle: int) -> FrozenSet[Tuple[int, int]]:
        """Explicit link faults active at ``cycle``, as ``(u, v)`` with
        ``u < v`` (links killed by node faults are not listed here)."""
        return frozenset((u, v) for c, u, v in self.link_faults if c <= cycle)

    def node_death_cycles(self) -> Dict[int, int]:
        """First failure cycle per failed node."""
        return {v: c for c, v in self.node_faults}

    def link_death_map(self, topo: Topology) -> Dict[Tuple[int, int], int]:
        """First cycle each *directed* link stops forwarding.

        Node faults kill every incident link in both directions; links
        that never die are absent from the map.
        """
        dead: Dict[Tuple[int, int], int] = {}

        def note(u: int, v: int, c: int) -> None:
            for key in ((u, v), (v, u)):
                if c < dead.get(key, _NEVER):
                    dead[key] = c

        for c, v in self.node_faults:
            for u in topo.graph.neighbors(v):
                note(u, v, c)
        for c, u, v in self.link_faults:
            note(u, v, c)
        return dead

    def validate(self, topo: Topology) -> "FaultPlan":
        """Check every event names a real node/link of ``topo``; return self."""
        n = topo.num_nodes
        for c, v in self.node_faults:
            if v >= n:
                raise ValueError(
                    f"fault node {v} out of range for {topo.name} ({n} nodes)"
                )
        for c, u, v in self.link_faults:
            if u >= n or v >= n or not topo.graph.has_edge(u, v):
                raise ValueError(f"faulted link {u}-{v} is not a link of {topo.name}")
        return self


@dataclass(frozen=True)
class FaultReport:
    """Outcome of one fault-injection trial."""

    topology: str
    nodes: int
    failed: int
    still_connected: bool
    largest_component_fraction: float
    diameter_before: int
    diameter_after: Optional[int]
    reachable_pair_fraction: float


def fault_tolerance_trial(
    topo: Topology, num_faults: int, seed: int = 0
) -> FaultReport:
    """Remove ``num_faults`` random nodes; report structural degradation.

    ``diameter_after`` is measured on the largest surviving component and
    is ``None`` when fewer than two nodes survive.
    """
    n = topo.num_nodes
    if not 0 <= num_faults < n:
        raise ValueError(f"need 0 <= faults < nodes, got {num_faults} of {n}")
    rng = random.Random(seed)
    dist_before = all_pairs_distances(topo.graph)
    diameter_before = int(dist_before.max()) if n > 1 else 0
    failed = set(rng.sample(range(n), num_faults))
    keep = [v for v in range(n) if v not in failed]
    sub, _ = topo.graph.induced_subgraph(keep)
    comps = connected_components(sub)
    comps.sort(key=len, reverse=True)
    survivors = sub.num_vertices
    largest = comps[0] if comps else []
    still_connected = len(comps) == 1 and survivors > 0
    reachable_pairs = sum(len(c) * (len(c) - 1) for c in comps)
    total_pairs = survivors * (survivors - 1)
    if len(largest) >= 2:
        big, _ = sub.induced_subgraph(largest)
        diameter_after: Optional[int] = int(all_pairs_distances(big).max())
    else:
        diameter_after = None
    return FaultReport(
        topology=topo.name,
        nodes=n,
        failed=num_faults,
        still_connected=still_connected,
        largest_component_fraction=(len(largest) / survivors) if survivors else 0.0,
        diameter_before=diameter_before,
        diameter_after=diameter_after,
        reachable_pair_fraction=(reachable_pairs / total_pairs) if total_pairs else 1.0,
    )
