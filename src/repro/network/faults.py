"""Fault tolerance: node failures and rerouting.

The 1993-lineage papers argued Fibonacci-type cubes degrade gracefully
under faults.  :func:`fault_tolerance_trial` removes a random set of
nodes and measures: surviving connectivity, diameter inflation, and the
fraction of surviving node pairs still routable by each router.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


from repro.graphs.traversal import all_pairs_distances, connected_components
from repro.network.topology import Topology

__all__ = ["FaultReport", "fault_tolerance_trial"]


@dataclass(frozen=True)
class FaultReport:
    """Outcome of one fault-injection trial."""

    topology: str
    nodes: int
    failed: int
    still_connected: bool
    largest_component_fraction: float
    diameter_before: int
    diameter_after: Optional[int]
    reachable_pair_fraction: float


def fault_tolerance_trial(
    topo: Topology, num_faults: int, seed: int = 0
) -> FaultReport:
    """Remove ``num_faults`` random nodes; report structural degradation.

    ``diameter_after`` is measured on the largest surviving component and
    is ``None`` when fewer than two nodes survive.
    """
    n = topo.num_nodes
    if not 0 <= num_faults < n:
        raise ValueError(f"need 0 <= faults < nodes, got {num_faults} of {n}")
    rng = random.Random(seed)
    dist_before = all_pairs_distances(topo.graph)
    diameter_before = int(dist_before.max()) if n > 1 else 0
    failed = set(rng.sample(range(n), num_faults))
    keep = [v for v in range(n) if v not in failed]
    sub, _ = topo.graph.induced_subgraph(keep)
    comps = connected_components(sub)
    comps.sort(key=len, reverse=True)
    survivors = sub.num_vertices
    largest = comps[0] if comps else []
    still_connected = len(comps) == 1 and survivors > 0
    reachable_pairs = sum(len(c) * (len(c) - 1) for c in comps)
    total_pairs = survivors * (survivors - 1)
    if len(largest) >= 2:
        big, _ = sub.induced_subgraph(largest)
        diameter_after: Optional[int] = int(all_pairs_distances(big).max())
    else:
        diameter_after = None
    return FaultReport(
        topology=topo.name,
        nodes=n,
        failed=num_faults,
        still_connected=still_connected,
        largest_component_fraction=(len(largest) / survivors) if survivors else 0.0,
        diameter_before=diameter_before,
        diameter_after=diameter_after,
        reachable_pair_fraction=(reachable_pairs / total_pairs) if total_pairs else 1.0,
    )
