"""Collective-communication workloads compiled for the cycle engines.

The ICPP'93 line motivates the Fibonacci-cube topologies by their
*communication algorithms* -- broadcast trees, ring emulation over
Hamiltonian paths -- yet schedules alone say nothing about contention.
This module turns the abstract schedules of
:mod:`repro.network.broadcast` and :mod:`repro.network.hamilton` into
first-class *simulated* workloads: dependency-respecting
``(cycle, src, dst)`` traffic with a barrier between rounds, runnable
through both :class:`~repro.network.simulator.ReferenceSimulator` and
:class:`~repro.network.simulator.VectorizedSimulator` under every
switching mode and :class:`~repro.network.faults.FaultPlan`.

Collectives (single-port model: one send and one receive per node per
round)
-----------------------------------------------------------------------
``broadcast``
    One root informs everyone: the greedy binomial/BFS-tree schedule of
    :func:`~repro.network.broadcast.binomial_broadcast_schedule`
    (optimal ``ceil(log2 n)`` rounds on the hypercube).
``reduce``
    The broadcast tree run backwards: leaves combine towards the root,
    every round of the broadcast schedule reversed and arrow-flipped, so
    a node sends its partial result only after all of its children have.
``allgather``
    Everyone ends with everyone's block.  On the full hypercube this is
    recursive doubling -- round ``k`` exchanges along dimension ``k``,
    meeting the ``log2 n`` bound exactly; generalized cubes are not
    closed under bit flips, so there the schedule falls back to a
    BFS-tree gather (the ``reduce`` rounds) followed by the broadcast.
``alltoall``
    All-to-all personalized exchange: ``n - 1`` cyclic-shift rounds,
    round ``k`` sending node ``i``'s block to node ``(i + k) mod n`` --
    every ordered pair exactly once, one send/receive per node per round.
``ring``
    Ring emulation over a Hamiltonian path
    (:func:`~repro.network.hamilton.find_hamiltonian_path`): ``n - 1``
    rounds of neighbour shifts along the path (closing the ring over the
    end-to-end link when the path happens to be a cycle) -- the workload
    behind ring allgather/allreduce on a cube that has no ring.  When
    the budgeted search finds no path the ring is *virtual* (DFS order,
    successors routed multi-hop), keeping the workload total on every
    topology.

Compilation (:func:`run_collective`)
------------------------------------
Rounds are separated by barriers: all messages of round ``r`` are
injected at one cycle, and round ``r + 1`` is injected at the cycle the
engine reports round ``r`` complete.  The barrier cycles are
*discovered by simulation* (each round probed at its absolute barrier
cycle -- exact, because the network is drained at every barrier), so
they are correct under contention, multi-flit serialisation and faults
-- and because both engines are bit-identical, compiling against either
yields the same traffic and the same :class:`CollectiveResult`.  A
round that deadlocks or stalls at ``max_cycles`` stops injecting
further rounds and the final engine pass reports the wedged state
instead of hanging.

Every schedule is checked by :func:`verify_collective_schedule` (valid
nodes, single-port feasibility per round, tree/ring messages on real
links, full coverage) -- the tests run it on every collective and
topology they touch.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, List, Optional, Tuple, Union

from repro.network.broadcast import binomial_broadcast_schedule, verify_schedule
from repro.network.faults import FaultPlan
from repro.network.flowcontrol import FlowControl
from repro.network.hamilton import find_hamiltonian_path
from repro.network.routing import BfsRouter
from repro.network.simulator import (
    ReferenceSimulator,
    SimResult,
    VectorizedSimulator,
)
from repro.network.topology import Topology
from repro.network.traffic import flit_sizes

__all__ = [
    "COLLECTIVES",
    "CollectiveResult",
    "allgather_schedule",
    "alltoall_schedule",
    "broadcast_schedule",
    "collective_schedule",
    "reduce_schedule",
    "ring_schedule",
    "round_lower_bound",
    "run_collective",
    "schedule_link_loads",
    "verify_collective_schedule",
]

Round = List[Tuple[int, int]]
Schedule = List[Round]


def round_lower_bound(topo: Topology) -> int:
    """The single-port lower bound ``ceil(log2 n)`` on collective rounds."""
    n = topo.num_nodes
    return ceil(log2(n)) if n > 1 else 0


def broadcast_schedule(topo: Topology, root: int = 0) -> Schedule:
    """Single-port broadcast rounds from ``root`` (binomial/BFS tree)."""
    return binomial_broadcast_schedule(topo, root)


def reduce_schedule(topo: Topology, root: int = 0) -> Schedule:
    """Single-port reduce towards ``root``: the broadcast tree reversed.

    Round ``r`` of the reduce is round ``R - 1 - r`` of the broadcast
    with every ``(sender, receiver)`` flipped, so each node forwards its
    partial result only after every child in the tree has sent -- the
    dependency order of a combine, by construction.
    """
    rounds = binomial_broadcast_schedule(topo, root)
    return [[(v, u) for u, v in rnd] for rnd in reversed(rounds)]


def _is_full_hypercube(topo: Topology) -> bool:
    return (
        topo.word_length is not None
        and topo.num_nodes == 1 << topo.word_length
    )


def allgather_schedule(topo: Topology, root: int = 0) -> Schedule:
    """Single-port allgather rounds.

    On the full hypercube: recursive doubling -- round ``k`` pairs every
    node with its dimension-``k`` neighbour and both directions exchange,
    ``log2 n`` rounds, meeting the bound exactly.  On any other topology
    (generalized cubes are not closed under bit flips): a BFS-tree
    gather to ``root`` followed by the broadcast back out --
    ``reduce`` + ``broadcast`` rounds.
    """
    if _is_full_hypercube(topo):
        g = topo.graph
        d = topo.word_length
        rounds: Schedule = []
        for k in range(d):
            rnd: Round = []
            for v in range(topo.num_nodes):
                word = topo.node_word(v)
                partner = word[:k] + ("1" if word[k] == "0" else "0") + word[k + 1:]
                rnd.append((v, g.index_of(partner)))
            rounds.append(rnd)
        return rounds
    return reduce_schedule(topo, root) + broadcast_schedule(topo, root)


def alltoall_schedule(topo: Topology, root: int = 0) -> Schedule:
    """All-to-all personalized exchange: ``n - 1`` cyclic-shift rounds.

    Round ``k`` sends node ``i``'s block for node ``(i + k) mod n`` --
    every ordered pair is served exactly once and every round is a
    fixed-point-free permutation, so the single-port budget (one send,
    one receive per node per round) holds with equality.  ``root`` is
    accepted for registry uniformity and ignored.
    """
    n = topo.num_nodes
    return [[(i, (i + k) % n) for i in range(n)] for k in range(1, n)]


# ring orders memoised per graph signature: the exact Hamiltonian search
# is ~1 ms on clean cubes but can burn its whole budget on irregular
# (faulted) graphs, and traffic generators rebuild schedules per call
_RING_CACHE: Dict[Tuple, Tuple[int, ...]] = {}
_RING_BUDGET = 20_000


def _ring_order(g, node_budget: int) -> Tuple[int, ...]:
    """A ring-emulation node order: a Hamiltonian path when the budgeted
    search finds one, else a DFS preorder (the *virtual ring* fallback,
    consecutive nodes routed multi-hop)."""
    key = (node_budget, g.num_vertices, g.num_edges, tuple(g.edges()))
    hit = _RING_CACHE.get(key)
    if hit is not None:
        return hit
    try:
        path = find_hamiltonian_path(g, node_budget=node_budget)
    except RuntimeError:
        path = None
    if path is None:
        seen = [False] * g.num_vertices
        path = []
        stack = [0]
        while stack:
            v = stack.pop()
            if seen[v]:
                continue
            seen[v] = True
            path.append(v)
            stack.extend(sorted(g.neighbors(v), reverse=True))
    order = tuple(path)
    if len(_RING_CACHE) >= 16:
        _RING_CACHE.clear()
    _RING_CACHE[key] = order
    return order


def ring_schedule(
    topo: Topology, root: int = 0, node_budget: int = _RING_BUDGET
) -> Schedule:
    """Ring emulation over a Hamiltonian path: ``n - 1`` shift rounds.

    A Hamiltonian path is found by the exact search of
    :mod:`repro.network.hamilton` under ``node_budget`` backtrack nodes
    (milliseconds on the clean cube families); each round every node
    forwards one block to its successor along the path, and when the
    end-to-end link happens to exist the ring closes over it (a
    Hamiltonian cycle emulates the ring with no pipeline drain).  On a
    graph where the budgeted search finds no path (non-Hamiltonian, or
    an irregular faulted survivor where the exact search blows up) the
    schedule degrades to a *virtual ring* -- DFS preorder, successors
    routed multi-hop by the engine -- so the workload stays total on
    every topology, like every traffic pattern.  ``root`` rotates the
    ring start when the path closes into a cycle; on an open path it is
    ignored.
    """
    g = topo.graph
    n = topo.num_nodes
    if n == 1:
        return []
    path = list(_ring_order(g, node_budget))
    closed = g.has_edge(path[-1], path[0])
    if closed and root:
        at = path.index(root % n)
        path = path[at:] + path[:at]
    if closed:
        rnd = [(path[j], path[(j + 1) % n]) for j in range(n)]
    else:
        rnd = [(path[j], path[j + 1]) for j in range(n - 1)]
    return [list(rnd) for _ in range(n - 1)]


COLLECTIVES: Dict[str, object] = {
    "broadcast": broadcast_schedule,
    "reduce": reduce_schedule,
    "allgather": allgather_schedule,
    "alltoall": alltoall_schedule,
    "ring": ring_schedule,
}


def collective_schedule(name: str, topo: Topology, root: int = 0) -> Schedule:
    """Build a collective's round schedule by registry name."""
    try:
        builder = COLLECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown collective {name!r}; choose from {sorted(COLLECTIVES)}"
        ) from None
    n = topo.num_nodes
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for {n} nodes")
    return builder(topo, root)


# collectives whose every message is a single link activation (tree
# schedules); ``alltoall`` messages are always multi-hop, and a ``ring``
# round rides real links only when a Hamiltonian path was found (the
# virtual-ring fallback routes successors multi-hop), so both are
# checked for single-port feasibility but not edge-locality
_NEIGHBOUR_COLLECTIVES = frozenset({"broadcast", "reduce", "allgather"})


def verify_collective_schedule(
    topo: Topology, name: str, schedule: Schedule, root: int = 0
) -> bool:
    """Validate a collective schedule against the single-port model.

    Checks, for every round: senders and receivers are valid distinct
    nodes, no node sends twice, no node receives twice; for the
    tree/ring collectives every message additionally rides an existing
    link (``alltoall`` messages are multi-hop and routed by the engine,
    which itself only ever uses real links).  Collective-specific
    coverage: ``broadcast`` must satisfy
    :func:`~repro.network.broadcast.verify_schedule`, ``reduce`` must be
    its exact reversal, ``alltoall`` must serve every ordered pair
    exactly once.
    """
    g = topo.graph
    n = g.num_vertices
    neighbour_only = name in _NEIGHBOUR_COLLECTIVES
    for rnd in schedule:
        senders = set()
        receivers = set()
        for u, v in rnd:
            if not (0 <= u < n and 0 <= v < n) or u == v:
                return False
            if u in senders or v in receivers:
                return False
            if neighbour_only and not g.has_edge(u, v):
                return False
            senders.add(u)
            receivers.add(v)
    if name == "broadcast":
        return verify_schedule(topo, root, schedule)
    if name == "reduce":
        forward = [[(v, u) for u, v in rnd] for rnd in reversed(schedule)]
        return verify_schedule(topo, root, forward)
    if name == "alltoall":
        pairs = [(u, v) for rnd in schedule for u, v in rnd]
        return len(pairs) == n * (n - 1) and len(set(pairs)) == len(pairs)
    return True


def schedule_link_loads(
    topo: Topology, schedule: Schedule, router=None
) -> Dict[Tuple[int, int], int]:
    """Messages per *directed* link over the whole schedule, as routed.

    Each ``(src, dst)`` message is resolved through ``router`` (default
    exact shortest path) on the healthy topology and every link of its
    route counts one unit -- the static offered congestion the paper's
    link-load arguments reason about.  Unroutable messages contribute
    nothing.
    """
    router = router if router is not None else BfsRouter()
    counts: Dict[Tuple[int, int], int] = {}
    for rnd in schedule:
        for pair in rnd:
            counts[pair] = counts.get(pair, 0) + 1
    route_of: Dict[Tuple[int, int], Optional[List[int]]] = {}
    if hasattr(router, "build_table"):
        # batched resolution: one BFS per destination, not one per pair
        table = router.build_table(topo, list(counts))
        for pair, row in table.pair_row.items():
            route_of[pair] = None if row < 0 else table.route_nodes(row).tolist()
    else:
        for pair in counts:
            route_of[pair] = router.route(topo, *pair)
    loads: Dict[Tuple[int, int], int] = {}
    for pair, mult in counts.items():
        path = route_of[pair]
        if path is None:
            continue
        for a, b in zip(path, path[1:]):
            loads[(a, b)] = loads.get((a, b), 0) + mult
    return loads


@dataclass(frozen=True)
class CollectiveResult:
    """One compiled-and-simulated collective, in SimResult-compatible form.

    ``rounds`` is the schedule's round count and ``round_bound`` the
    single-port lower bound ``ceil(log2 n)``; ``round_starts`` holds the
    injection (barrier) cycle of every round actually injected -- fewer
    than ``rounds`` only when the run deadlocked or hit ``max_cycles``
    mid-collective.  ``result`` is the engine's :class:`SimResult` over
    the full compiled ``traffic`` (completion time = ``result.cycles``),
    and ``max_link_load`` / ``avg_link_load`` condense
    :func:`schedule_link_loads` over the links the schedule actually
    uses.
    """

    name: str
    topology: str
    root: int
    rounds: int
    round_bound: int
    round_starts: Tuple[int, ...]
    traffic: Tuple[Tuple[int, int, int], ...]
    result: SimResult
    max_link_load: int
    avg_link_load: float

    @property
    def completion_time(self) -> int:
        """Cycles from first injection to last delivery (the run length)."""
        return self.result.cycles

    @property
    def completed(self) -> bool:
        """Every round injected and every message delivered."""
        return (
            len(self.round_starts) == self.rounds
            and self.result.delivered == self.result.injected
        )


_ENGINES = {
    "reference": ReferenceSimulator,
    "vectorized": VectorizedSimulator,
}


def run_collective(
    topo: Topology,
    name: str,
    root: int = 0,
    router=None,
    engine: Union[str, type] = "vectorized",
    switching: Union[str, FlowControl] = "sf",
    flits: Union[int, str] = 1,
    flit_seed: int = 0,
    faults: Optional[FaultPlan] = None,
    max_cycles: int = 100000,
) -> CollectiveResult:
    """Compile and simulate one collective with per-round barriers.

    The schedule's rounds are injected one barrier at a time: round
    ``r + 1`` enters at the cycle the engine reports round ``r``
    complete, so no message is offered before every message it depends
    on has been delivered; the returned ``result`` is one engine pass
    over the full compiled traffic.  ``engine`` is ``"vectorized"`` /
    ``"reference"`` (or a simulator class); since the engines are
    bit-identical, both compile the same barriers and return the same
    result -- the collectives equivalence tests assert exactly that.

    ``flits`` is an int or a ``"lo-hi"`` spec resolved per message with
    ``flit_seed`` (wormhole/vct only); ``faults`` threads a
    :class:`FaultPlan` through every run, so a collective can lose tree
    edges mid-flight and the delivery/drop accounting shows it.  A
    deadlocked (or ``max_cycles``-stalled) round stops the compilation:
    later rounds are never injected and the wedged state is reported.
    """
    if isinstance(engine, str):
        try:
            engine_cls = _ENGINES[engine]
        except KeyError:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(_ENGINES)}"
            ) from None
    else:
        engine_cls = engine
    schedule = collective_schedule(name, topo, root=root)
    if not verify_collective_schedule(topo, name, schedule, root=root):
        raise RuntimeError(
            f"collective {name!r} produced an invalid schedule on {topo.name} (bug)"
        )
    sim = engine_cls(topo, router)
    total = sum(len(rnd) for rnd in schedule)
    sizes = flit_sizes(total, flits, seed=flit_seed)
    traffic: List[Tuple[int, int, int]] = []
    starts: List[int] = []
    cycle = 0
    # each round is probed in isolation: the network is provably drained
    # at every barrier (the next round injects only after every earlier
    # message was delivered or dropped), so a round injected alone at
    # its absolute barrier cycle behaves exactly as it does inside the
    # full run -- O(rounds) engine work instead of re-simulating the
    # growing prefix every round.  A round that stalls (deadlock, or
    # undelivered work at the max_cycles cap) ends the compilation;
    # completing *exactly at* the cap is a completion, not a wedge.
    for rnd in schedule:
        starts.append(cycle)
        chunk = [(cycle, u, v) for u, v in rnd]
        chunk_sizes = sizes[len(traffic): len(traffic) + len(chunk)]
        traffic.extend(chunk)
        probe = sim.run(
            chunk,
            max_cycles=max_cycles,
            faults=faults,
            switching=switching,
            flits=chunk_sizes,
        )
        if probe.deadlocked or probe.stalled:
            break
        # max() guards the all-dropped round, whose run reports cycles=1
        cycle = max(cycle, probe.cycles)
    result = sim.run(
        traffic,
        max_cycles=max_cycles,
        faults=faults,
        switching=switching,
        flits=sizes[: len(traffic)],
    )
    loads = schedule_link_loads(topo, schedule, router=sim.router)
    return CollectiveResult(
        name=name,
        topology=topo.name,
        root=root,
        rounds=len(schedule),
        round_bound=round_lower_bound(topo),
        round_starts=tuple(starts),
        traffic=tuple(traffic),
        result=result,
        max_link_load=max(loads.values()) if loads else 0,
        avg_link_load=(sum(loads.values()) / len(loads)) if loads else 0.0,
    )
