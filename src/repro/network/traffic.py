"""Traffic-pattern library for the network simulator.

Interconnection papers never judge a topology on uniform random traffic
alone: adversarial permutations (transpose, bit reversal, tornado),
hotspots and bursty sources are what separate a fat bisection from a thin
one.  Every generator here produces the simulator's native format -- a
list of ``(cycle, src, dst)`` triples, sorted, with ``src != dst`` -- and
is deterministic given ``seed``.

Patterns are *topology-aware*: on word-addressed topologies (all the cube
families) the structured patterns act on the binary node words, and fall
back to an index-space mapping whenever the transformed word is not a
vertex (generalized Fibonacci cubes are not closed under e.g. reversal
for non-palindromic factors).  The fallback keeps every pattern total on
every topology, so sweeps can run the same scenario grid everywhere.

The registry :data:`PATTERNS` / :func:`make_traffic` is what the sweep
harness and the ``repro sweep`` CLI iterate over.  The collective
operations of :mod:`repro.network.collectives` are registered too
(``broadcast``/``reduce``/``allgather``/``alltoall``/``ring``) in an
*open-loop* form: the schedule's rounds become injection waves spread
over the window (repeated from seeded roots until ``num_packets``
triples exist), so collectives slot into the same load-sweep grids as
every other pattern -- the *closed-loop* barriered form lives in
:func:`repro.network.collectives.run_collective` and the sweep's
``--collective`` axis.  Flow-controlled runs
(wormhole / virtual cut-through) pair a traffic list with per-packet
flit counts from :func:`flit_sizes`, aligned entry for entry.  Under a fault plan
(:class:`~repro.network.faults.FaultPlan`), :func:`make_traffic` removes
the triples whose *source* is already dead at its injection cycle --
failed nodes stop injecting, while dead destinations and in-flight
losses stay the simulator's accounting.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.network.faults import _NEVER, FaultPlan
from repro.network.topology import Topology

__all__ = [
    "PATTERNS",
    "bit_reversal_traffic",
    "bursty_traffic",
    "collective_traffic",
    "flit_sizes",
    "hotspot_traffic",
    "make_traffic",
    "permutation_traffic",
    "tornado_traffic",
    "transpose_traffic",
    "uniform_traffic",
]

Traffic = List[Tuple[int, int, int]]


def _check_args(topo: Topology, num_packets: int, inject_window: int) -> int:
    if topo.num_nodes < 2:
        raise ValueError("traffic generation needs at least two nodes")
    if num_packets < 0:
        raise ValueError(f"num_packets must be non-negative, got {num_packets}")
    if inject_window < 1:
        raise ValueError(f"inject_window must be at least 1, got {inject_window}")
    return topo.num_nodes


def uniform_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> Traffic:
    """Uniform random traffic: ``num_packets`` triples ``(cycle, src, dst)``
    with distinct ``src != dst`` drawn uniformly, injection cycles uniform
    over ``[0, inject_window)``.  Deterministic given ``seed``."""
    n = _check_args(topo, num_packets, inject_window)
    rng = random.Random(seed)
    out = []
    for _ in range(num_packets):
        s = rng.randrange(n)
        t = rng.randrange(n - 1)
        if t >= s:
            t += 1
        out.append((rng.randrange(inject_window), s, t))
    out.sort()
    return out


def permutation_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> Traffic:
    """Random-permutation traffic: one fixed-point-free permutation per run.

    The permutation is a uniformly random ``n``-cycle (successor map of a
    shuffled node order), so every node sends to exactly one partner and
    no node sends to itself -- the classic "permutation routing" workload.
    """
    n = _check_args(topo, num_packets, inject_window)
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    partner = [0] * n
    for i, v in enumerate(order):
        partner[v] = order[(i + 1) % n]
    out = []
    for _ in range(num_packets):
        s = rng.randrange(n)
        out.append((rng.randrange(inject_window), s, partner[s]))
    out.sort()
    return out


def _word_mapped(topo: Topology, src: int, mapper: Callable[[str], str]) -> Optional[int]:
    """Apply ``mapper`` to the word address of ``src``; ``None`` when the
    topology is not word-addressed or the image is not a vertex."""
    if topo.word_length is None:
        return None
    image = mapper(topo.node_word(src))
    g = topo.graph
    if not g.has_label(image):
        return None
    return g.index_of(image)


def _index_bits(n: int) -> int:
    return max(1, (n - 1).bit_length())


def _avoid_self(src: int, dst: int, n: int) -> int:
    return (src + 1) % n if dst == src else dst


def _structured_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int,
    word_map: Optional[Callable[[str], str]],
    index_map: Callable[[int, int], int],
) -> Traffic:
    """Shared engine of the deterministic src->dst patterns: use the word
    mapping when given and it lands on a vertex, else the index mapping
    mod ``n``."""
    n = _check_args(topo, num_packets, inject_window)
    rng = random.Random(seed)
    b = _index_bits(n)
    dst_of: List[int] = []
    for s in range(n):
        t = _word_mapped(topo, s, word_map) if word_map is not None else None
        if t is None:
            t = index_map(s, b) % n
        dst_of.append(_avoid_self(s, t, n))
    out = []
    for _ in range(num_packets):
        s = rng.randrange(n)
        out.append((rng.randrange(inject_window), s, dst_of[s]))
    out.sort()
    return out


def transpose_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> Traffic:
    """Matrix-transpose traffic: destination address swaps the two halves
    of the source address (words when possible, index bits otherwise)."""

    def word_map(w: str) -> str:
        half = len(w) // 2
        return w[half:] + w[:half]

    def index_map(s: int, b: int) -> int:
        half = b // 2
        hi, lo = s >> half, s & ((1 << half) - 1)
        return (lo << (b - half)) | hi

    return _structured_traffic(
        topo, num_packets, inject_window, seed, word_map, index_map
    )


def bit_reversal_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> Traffic:
    """Bit-reversal traffic: destination address is the reversed source
    address -- the FFT communication pattern."""

    def index_map(s: int, b: int) -> int:
        out = 0
        for _ in range(b):
            out = (out << 1) | (s & 1)
            s >>= 1
        return out

    return _structured_traffic(
        topo, num_packets, inject_window, seed, lambda w: w[::-1], index_map
    )


def tornado_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> Traffic:
    """Tornado traffic: node ``i`` sends to ``(i + n // 2) mod n``, the
    classic half-way-around adversary for minimal routing."""
    n = topo.num_nodes
    stride = max(1, n // 2)
    # a wrapped stride (n == 1, or any (s + stride) % n == s degeneracy)
    # would make every node its own destination, violating the src != dst
    # pattern contract: reject it up front instead of emitting self-traffic
    if n < 2 or stride % n == 0:
        raise ValueError(
            f"tornado traffic is degenerate on {n} node(s): "
            f"stride {stride} wraps every source onto itself"
        )
    # tornado is defined on node positions, not addresses: no word mapping
    return _structured_traffic(
        topo, num_packets, inject_window, seed, None, lambda s, b: (s + stride) % n
    )


def hotspot_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
    hotspot: int = 0,
    fraction: float = 0.5,
) -> Traffic:
    """Hotspot traffic: each packet targets ``hotspot`` with probability
    ``fraction``, and a uniform random destination otherwise."""
    # validate the node count with the argument checks, not deep inside the
    # draw loop: a single-node topology would otherwise surface as a raw
    # ``randrange(0)`` ValueError when the first hotspot packet picks its
    # source from the empty "everyone but the hotspot" population
    if topo.num_nodes < 2:
        raise ValueError(
            "hotspot traffic needs at least two nodes "
            "(no source can target a distinct hotspot on "
            f"{topo.num_nodes} node(s))"
        )
    n = _check_args(topo, num_packets, inject_window)
    if not 0 <= hotspot < n:
        raise ValueError(f"hotspot node {hotspot} out of range for {n} nodes")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"hotspot fraction must be in [0, 1], got {fraction}")
    rng = random.Random(seed)
    out = []
    for _ in range(num_packets):
        if rng.random() < fraction:
            t = hotspot
            s = rng.randrange(n - 1)
            if s >= t:
                s += 1
        else:
            s = rng.randrange(n)
            t = rng.randrange(n - 1)
            if t >= s:
                t += 1
        out.append((rng.randrange(inject_window), s, t))
    out.sort()
    return out


def bursty_traffic(
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
    mean_burst: int = 8,
) -> Traffic:
    """Bursty on/off sources: packets arrive in geometric bursts of mean
    length ``mean_burst``, one packet per cycle, all of a burst sharing one
    ``(src, dst)`` pair -- the self-similar-ish load that stresses FIFO
    depth far more than the same volume spread uniformly."""
    n = _check_args(topo, num_packets, inject_window)
    if mean_burst < 1:
        raise ValueError(f"mean_burst must be at least 1, got {mean_burst}")
    rng = random.Random(seed)
    out: Traffic = []
    while len(out) < num_packets:
        s = rng.randrange(n)
        t = rng.randrange(n - 1)
        if t >= s:
            t += 1
        start = rng.randrange(inject_window)
        length = 1
        while rng.random() >= 1.0 / mean_burst:  # geometric, mean = mean_burst
            length += 1
        # cap the burst at the window edge: every pattern honours the
        # documented [0, inject_window) contract, so the sweep harness's
        # load * nodes * window normalisation stays exact
        length = min(length, num_packets - len(out), inject_window - start)
        for k in range(length):
            out.append((start + k, s, t))
    out.sort()
    return out


def flit_sizes(
    num_packets: int,
    flits: "str | int" = "1",
    seed: int = 0,
) -> List[int]:
    """Per-packet flit counts for the flow-controlled switching modes.

    ``flits`` is a compact spec: an int (or digit string) gives every
    packet that many flits; ``"lo-hi"`` draws each packet's size
    uniformly from ``[lo, hi]``, deterministic given ``seed``.  The
    returned list aligns with a traffic list of ``num_packets`` triples
    (generate it *after* any fault filtering so the two stay aligned).
    """
    if num_packets < 0:
        raise ValueError(f"num_packets must be non-negative, got {num_packets}")
    if isinstance(flits, int):
        lo = hi = flits
    else:
        text = str(flits).strip()
        lo_s, sep, hi_s = text.partition("-")
        try:
            lo = int(lo_s)
            hi = int(hi_s) if sep else lo
        except ValueError:
            raise ValueError(
                f"bad flits spec {flits!r}: expected '<n>' or '<lo>-<hi>'"
            ) from None
    if lo < 1 or hi < lo:
        raise ValueError(
            f"bad flits spec {flits!r}: need 1 <= lo <= hi, got [{lo}, {hi}]"
        )
    if lo == hi:
        return [lo] * num_packets
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(num_packets)]


def collective_traffic(
    name: str,
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
) -> Traffic:
    """Open-loop traffic from a collective's round schedule.

    One repetition compiles the collective (from a seeded random root)
    and maps its rounds onto injection waves inside the window: each
    round gets a seeded wave cycle drawn from ``[0, inject_window)``,
    the waves sorted so round order is preserved (later rounds never
    inject before earlier ones).  Repetitions (fresh roots) accumulate
    until ``num_packets`` triples exist; the last one is truncated.
    This is the *offered-load* view for pattern sweeps -- it respects
    round ordering but not delivery barriers; for true per-round
    barriers use :func:`repro.network.collectives.run_collective`.
    """
    # imported lazily: collectives builds on this module's flit_sizes
    from repro.network.collectives import collective_schedule

    n = _check_args(topo, num_packets, inject_window)
    rng = random.Random(seed)
    out: Traffic = []
    while len(out) < num_packets:
        root = rng.randrange(n)
        rounds = collective_schedule(name, topo, root=root)
        waves = sorted(rng.randrange(inject_window) for _ in rounds)
        rep = [
            (wave, u, v)
            for wave, rnd in zip(waves, rounds)
            for u, v in rnd
        ]
        out.extend(rep[: num_packets - len(out)])
    out.sort()
    return out


def _collective_pattern(name: str) -> Callable[..., Traffic]:
    def pattern(
        topo: Topology, num_packets: int, inject_window: int, seed: int = 0
    ) -> Traffic:
        return collective_traffic(name, topo, num_packets, inject_window, seed=seed)

    pattern.__name__ = f"{name}_traffic"
    pattern.__doc__ = f"Open-loop {name!r} collective traffic (see collective_traffic)."
    return pattern


PATTERNS: Dict[str, Callable[..., Traffic]] = {
    "uniform": uniform_traffic,
    "permutation": permutation_traffic,
    "transpose": transpose_traffic,
    "bitrev": bit_reversal_traffic,
    "tornado": tornado_traffic,
    "hotspot": hotspot_traffic,
    "bursty": bursty_traffic,
    "broadcast": _collective_pattern("broadcast"),
    "reduce": _collective_pattern("reduce"),
    "allgather": _collective_pattern("allgather"),
    "alltoall": _collective_pattern("alltoall"),
    "ring": _collective_pattern("ring"),
}


def make_traffic(
    pattern: str,
    topo: Topology,
    num_packets: int,
    inject_window: int,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    **kwargs,
) -> Traffic:
    """Generate traffic by registry name (see :data:`PATTERNS`).

    ``faults`` silences dead sources: triples whose source node has
    failed at or before their injection cycle are removed, so offered
    load comes from surviving nodes only.
    """
    try:
        fn = PATTERNS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown traffic pattern {pattern!r}; "
            f"choose from {sorted(PATTERNS)}"
        ) from None
    out = fn(topo, num_packets, inject_window, seed=seed, **kwargs)
    if faults is not None and faults.node_faults:
        death = faults.node_death_cycles()
        out = [t for t in out if death.get(t[1], _NEVER) > t[0]]
    return out
