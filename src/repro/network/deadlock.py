"""Deadlock analysis of routing functions (Dally--Seitz).

The Hsu--Liu companion work (reference [11] of the paper) is about
*deadlock-free* routing on Fibonacci-type cubes.  The classical criterion:
wormhole/store-and-forward routing on a channel set is deadlock-free iff
its **channel dependency graph** (CDG) is acyclic -- nodes are directed
channels (directed edges of the topology), with an arc from channel
``c1`` to ``c2`` whenever some routed path uses ``c2`` immediately after
``c1``.

:func:`channel_dependency_graph` builds the CDG of any router over any
topology; :func:`is_deadlock_free` checks acyclicity.  Dimension-ordered
routing (our :class:`~repro.network.routing.CanonicalRouter` is the
0-before-1, left-to-right variant) is deadlock-free on the ``1^s`` cubes;
a random-shortest-path router generally is not -- both facts are
exercised by the tests and the extension bench.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.topology import Topology

__all__ = ["channel_dependency_graph", "is_deadlock_free", "find_dependency_cycle"]

Channel = Tuple[int, int]


def channel_dependency_graph(
    topo: Topology, router, pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> Dict[Channel, Set[Channel]]:
    """Adjacency of the CDG induced by routing every pair (or ``pairs``).

    Channels are directed edges ``(u, v)``.  Pairs whose route fails are
    skipped (the router's delivery rate is a separate concern).
    """
    n = topo.graph.num_vertices
    if pairs is None:
        pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    deps: Dict[Channel, Set[Channel]] = {}
    for s, t in pairs:
        path = router.route(topo, s, t)
        if path is None or len(path) < 3:
            continue
        channels = list(zip(path, path[1:]))
        for c1, c2 in zip(channels, channels[1:]):
            deps.setdefault(c1, set()).add(c2)
    return deps


def find_dependency_cycle(
    deps: Dict[Channel, Set[Channel]]
) -> Optional[List[Channel]]:
    """A cycle of the CDG, or ``None`` when acyclic (iterative DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[Channel, int] = {}
    parent: Dict[Channel, Optional[Channel]] = {}

    for root in deps:
        if color.get(root, WHITE) != WHITE:
            continue
        stack: List[Tuple[Channel, int]] = [(root, 0)]
        color[root] = GRAY
        parent[root] = None
        while stack:
            node, idx = stack.pop()
            succs = sorted(deps.get(node, ()))
            if idx < len(succs):
                stack.append((node, idx + 1))
                nxt = succs[idx]
                c = color.get(nxt, WHITE)
                if c == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, 0))
                elif c == GRAY:
                    # back edge: reconstruct the cycle
                    cycle = [nxt, node]
                    cur = node
                    while parent[cur] is not None and cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                        if cur == nxt:
                            break
                    cycle.reverse()
                    # trim to start at nxt
                    if nxt in cycle:
                        i = cycle.index(nxt)
                        cycle = cycle[i:]
                    return cycle
            else:
                color[node] = BLACK
    return None


def is_deadlock_free(
    topo: Topology, router, pairs: Optional[Sequence[Tuple[int, int]]] = None
) -> bool:
    """Dally--Seitz: the routing function is deadlock-free iff its channel
    dependency graph is acyclic."""
    deps = channel_dependency_graph(topo, router, pairs)
    return find_dependency_cycle(deps) is None
