"""Hamiltonian paths and cycles ("mostly Hamiltonian", Liu--Hsu--Chung).

The 1994 companion paper of the ICPP'93 line shows the ``Q_d(1^s)``
cubes always contain a Hamiltonian path (and usually a cycle through all
but at most one vertex).  We reproduce this computationally with an exact
backtracking search; the N1 benchmark sweeps the family.

The search uses two standard exact prunings: a connectivity check of the
unvisited region, and a cut-vertex degree condition (an unvisited vertex
other than the target with no unvisited neighbour kills the branch).
Exponential worst case, fine up to a few hundred vertices.
"""

from __future__ import annotations

from typing import List, Optional

from repro.graphs.core import Graph

__all__ = ["find_hamiltonian_path", "find_hamiltonian_cycle"]


def _search(
    g: Graph, start: int, require_cycle: bool, node_budget: int
) -> Optional[List[int]]:
    n = g.num_vertices
    if n == 0:
        return None
    if n == 1:
        return [start] if not require_cycle else None
    visited = [False] * n
    path = [start]
    visited[start] = True
    budget = [node_budget]

    def feasible() -> bool:
        """Unvisited region must be connected and adjacent to the path head."""
        remaining = n - len(path)
        if remaining == 0:
            return True
        head = path[-1]
        # flood fill the unvisited region from any unvisited neighbour of head
        seeds = [v for v in g.neighbors(head) if not visited[v]]
        if not seeds:
            return False
        seen = [False] * n
        stack = [seeds[0]]
        seen[seeds[0]] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in g.neighbors(u):
                if not visited[v] and not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == remaining

    def backtrack() -> bool:
        budget[0] -= 1
        if budget[0] < 0:
            raise RuntimeError("Hamiltonian search exceeded its node budget")
        if len(path) == n:
            return (not require_cycle) or g.has_edge(path[-1], start)
        if not feasible():
            return False
        head = path[-1]
        # order: fewest unvisited continuations first (Warnsdorff-style)
        nbrs = [v for v in g.neighbors(head) if not visited[v]]
        nbrs.sort(key=lambda v: sum(1 for w in g.neighbors(v) if not visited[w]))
        for v in nbrs:
            visited[v] = True
            path.append(v)
            if backtrack():
                return True
            path.pop()
            visited[v] = False
        return False

    if backtrack():
        return list(path)
    return None


def find_hamiltonian_path(
    g: Graph, node_budget: int = 5_000_000
) -> Optional[List[int]]:
    """A Hamiltonian path of ``g``, or ``None`` when none exists.

    Tries each start vertex (lowest degree first -- endpoints of a
    Hamiltonian path are the hardest vertices to satisfy).
    """
    if g.num_vertices == 0:
        return None
    if g.num_vertices == 1:
        return [0]
    starts = sorted(range(g.num_vertices), key=g.degree)
    for s in starts:
        found = _search(g, s, require_cycle=False, node_budget=node_budget)
        if found is not None:
            return found
    return None


def find_hamiltonian_cycle(
    g: Graph, node_budget: int = 5_000_000
) -> Optional[List[int]]:
    """A Hamiltonian cycle (as a vertex list whose last joins the first),
    or ``None`` when none exists."""
    if g.num_vertices < 3:
        return None
    return _search(g, 0, require_cycle=True, node_budget=node_budget)
