"""Topology wrapper: a network view of a cube graph.

Adds the metrics interconnection papers compare: node/link counts, degree
range, diameter, average inter-node distance, and the degree-times-
diameter cost measure.  The N1 benchmark tabulates these for the
hypercube, the Fibonacci cube and the ``Q_d(1^s)`` family side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances, connected_components, is_connected

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports topology)
    from repro.network.faults import FaultPlan

__all__ = ["Topology", "faulted_topology", "topology_of"]


@dataclass
class Topology:
    """A network topology: a connected graph plus routing metadata.

    ``word_length`` is set when nodes are binary words of a fixed length
    (cube-like topologies); routers that rely on bit addresses require
    it.  ``allow_disconnected`` is set on masked fault views
    (:meth:`with_faults`), where failed nodes survive as isolated
    vertices so indices stay stable.
    """

    name: str
    graph: Graph
    word_length: Optional[int] = None
    allow_disconnected: bool = False

    def __post_init__(self):
        if self.graph.num_vertices == 0:
            raise ValueError("a topology needs at least one node")
        if not self.allow_disconnected and not is_connected(self.graph):
            raise ValueError(f"topology {self.name!r} is disconnected")

    # -- metrics ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    @property
    def num_links(self) -> int:
        return self.graph.num_edges

    def degree_range(self) -> tuple:
        degs = self.graph.degrees()
        return (min(degs), max(degs))

    def metrics(self) -> Dict[str, float]:
        """All headline metrics in one dict (computed fresh each call)."""
        dist = all_pairs_distances(self.graph)
        n = self.num_nodes
        if n > 1:
            triu = dist[np.triu_indices(n, k=1)]
            avg = float(triu.mean())
            dia = int(triu.max())
        else:
            avg, dia = 0.0, 0
        dmin, dmax = self.degree_range()
        return {
            "nodes": n,
            "links": self.num_links,
            "min_degree": dmin,
            "max_degree": dmax,
            "diameter": dia,
            "avg_distance": avg,
            "cost_degree_x_diameter": dmax * dia,
        }

    def node_word(self, index: int) -> str:
        """The binary-word address of a node (labels must be words)."""
        label = self.graph.label_of(index)
        if not isinstance(label, str):
            raise TypeError(f"node {index} has non-word label {label!r}")
        return label

    # -- fault masking -----------------------------------------------------

    def with_faults(self, plan: "FaultPlan", at_cycle: int = 0) -> "Topology":
        """The masked view of this topology at ``at_cycle`` of ``plan``.

        Same vertex set (indices stay stable for traffic and routes):
        links dead at that cycle are removed and failed nodes survive as
        isolated vertices whose word addresses are *hidden* behind
        sentinel labels, so word-based routers cannot step onto them.
        Returns ``self`` unchanged when nothing has failed yet.
        """
        dead_nodes = plan.dead_nodes_at(at_cycle)
        dead_links = plan.dead_links_at(at_cycle)
        if not dead_nodes and not dead_links:
            return self
        g = self.graph
        masked = Graph(g.num_vertices)
        for u, v in g.edges():  # edges() yields u < v, matching dead_links
            if u in dead_nodes or v in dead_nodes or (u, v) in dead_links:
                continue
            masked.add_edge(u, v)
        if g.labels is not None:
            masked.set_labels(
                [
                    ("failed", i) if i in dead_nodes else lab
                    for i, lab in enumerate(g.labels)
                ]
            )
        return Topology(
            name=f"{self.name}/f@{at_cycle}",
            graph=masked,
            word_length=self.word_length,
            allow_disconnected=True,
        )


def topology_of(cube_or_graph, name: Optional[str] = None) -> Topology:
    """Wrap a :class:`GeneralizedFibonacciCube`, an ``(f, d)`` pair, or a
    plain labelled :class:`Graph` as a :class:`Topology`."""
    if isinstance(cube_or_graph, GeneralizedFibonacciCube):
        cube = cube_or_graph
        return Topology(
            name or f"Q_{cube.d}({cube.f})", cube.graph(), word_length=cube.d
        )
    if isinstance(cube_or_graph, tuple):
        f, d = cube_or_graph
        cube = generalized_fibonacci_cube(f, d)
        return Topology(name or f"Q_{d}({f})", cube.graph(), word_length=d)
    if isinstance(cube_or_graph, Graph):
        length = None
        if cube_or_graph.labels and isinstance(cube_or_graph.labels[0], str):
            lengths = {len(w) for w in cube_or_graph.labels}
            if len(lengths) == 1:
                length = lengths.pop()
        return Topology(name or "graph", cube_or_graph, word_length=length)
    raise TypeError(f"cannot build a topology from {cube_or_graph!r}")


def faulted_topology(topo: Topology, num_faults: int, seed: int = 0) -> Topology:
    """The surviving network after ``num_faults`` random node failures.

    Removes the faulted nodes and keeps the *largest connected component*
    (a :class:`Topology` must be connected), labels carried over -- the
    degraded-but-operational network the fault-tolerance simulations run
    traffic on.  Deterministic given ``seed``.
    """
    n = topo.num_nodes
    if not 0 <= num_faults < n:
        raise ValueError(f"need 0 <= faults < nodes, got {num_faults} of {n}")
    rng = random.Random(seed)
    failed = set(rng.sample(range(n), num_faults))
    keep = [v for v in range(n) if v not in failed]
    sub, _ = topo.graph.induced_subgraph(keep)
    comps = connected_components(sub)
    largest = max(comps, key=len)
    if len(largest) < sub.num_vertices:
        sub, _ = sub.induced_subgraph(largest)
    if len(largest) < 2:
        raise ValueError(f"only {len(largest)} node survives {num_faults} faults")
    return Topology(
        name=f"{topo.name}-f{num_faults}s{seed}",
        graph=sub,
        word_length=topo.word_length,
    )
