"""Topology wrapper: a network view of a cube graph.

Adds the metrics interconnection papers compare: node/link counts, degree
range, diameter, average inter-node distance, and the degree-times-
diameter cost measure.  The N1 benchmark tabulates these for the
hypercube, the Fibonacci cube and the ``Q_d(1^s)`` family side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances, connected_components, is_connected

__all__ = ["Topology", "faulted_topology", "topology_of"]


@dataclass
class Topology:
    """A network topology: a connected graph plus routing metadata.

    ``word_length`` is set when nodes are binary words of a fixed length
    (cube-like topologies); routers that rely on bit addresses require
    it.
    """

    name: str
    graph: Graph
    word_length: Optional[int] = None

    def __post_init__(self):
        if self.graph.num_vertices == 0:
            raise ValueError("a topology needs at least one node")
        if not is_connected(self.graph):
            raise ValueError(f"topology {self.name!r} is disconnected")

    # -- metrics ---------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    @property
    def num_links(self) -> int:
        return self.graph.num_edges

    def degree_range(self) -> tuple:
        degs = self.graph.degrees()
        return (min(degs), max(degs))

    def metrics(self) -> Dict[str, float]:
        """All headline metrics in one dict (computed fresh each call)."""
        dist = all_pairs_distances(self.graph)
        n = self.num_nodes
        if n > 1:
            triu = dist[np.triu_indices(n, k=1)]
            avg = float(triu.mean())
            dia = int(triu.max())
        else:
            avg, dia = 0.0, 0
        dmin, dmax = self.degree_range()
        return {
            "nodes": n,
            "links": self.num_links,
            "min_degree": dmin,
            "max_degree": dmax,
            "diameter": dia,
            "avg_distance": avg,
            "cost_degree_x_diameter": dmax * dia,
        }

    def node_word(self, index: int) -> str:
        """The binary-word address of a node (labels must be words)."""
        label = self.graph.label_of(index)
        if not isinstance(label, str):
            raise TypeError(f"node {index} has non-word label {label!r}")
        return label


def topology_of(cube_or_graph, name: Optional[str] = None) -> Topology:
    """Wrap a :class:`GeneralizedFibonacciCube`, an ``(f, d)`` pair, or a
    plain labelled :class:`Graph` as a :class:`Topology`."""
    if isinstance(cube_or_graph, GeneralizedFibonacciCube):
        cube = cube_or_graph
        return Topology(
            name or f"Q_{cube.d}({cube.f})", cube.graph(), word_length=cube.d
        )
    if isinstance(cube_or_graph, tuple):
        f, d = cube_or_graph
        cube = generalized_fibonacci_cube(f, d)
        return Topology(name or f"Q_{d}({f})", cube.graph(), word_length=d)
    if isinstance(cube_or_graph, Graph):
        length = None
        if cube_or_graph.labels and isinstance(cube_or_graph.labels[0], str):
            lengths = {len(w) for w in cube_or_graph.labels}
            if len(lengths) == 1:
                length = lengths.pop()
        return Topology(name or "graph", cube_or_graph, word_length=length)
    raise TypeError(f"cannot build a topology from {cube_or_graph!r}")


def faulted_topology(topo: Topology, num_faults: int, seed: int = 0) -> Topology:
    """The surviving network after ``num_faults`` random node failures.

    Removes the faulted nodes and keeps the *largest connected component*
    (a :class:`Topology` must be connected), labels carried over -- the
    degraded-but-operational network the fault-tolerance simulations run
    traffic on.  Deterministic given ``seed``.
    """
    n = topo.num_nodes
    if not 0 <= num_faults < n:
        raise ValueError(f"need 0 <= faults < nodes, got {num_faults} of {n}")
    rng = random.Random(seed)
    failed = set(rng.sample(range(n), num_faults))
    keep = [v for v in range(n) if v not in failed]
    sub, _ = topo.graph.induced_subgraph(keep)
    comps = connected_components(sub)
    largest = max(comps, key=len)
    if len(largest) < sub.num_vertices:
        sub, _ = sub.induced_subgraph(largest)
    if len(largest) < 2:
        raise ValueError(f"only {len(largest)} node survives {num_faults} faults")
    return Topology(
        name=f"{topo.name}-f{num_faults}s{seed}",
        graph=sub,
        word_length=topo.word_length,
    )
