"""Command-line interface: ``gfc`` (also ``python -m repro.cli``).

Subcommands
-----------
``gfc table1``
    Regenerate Table 1 of the paper and diff it against the printed table.
``gfc classify F D``
    Verdict for :math:`Q_D(F) \\hookrightarrow Q_D` (theorems, then brute
    force with ``--bruteforce``).
``gfc counts F D``
    Vertices/edges/squares of :math:`Q_D(F)` via the automaton counters.
``gfc structure F D``
    Degree/diameter report (Proposition 6.1 view).
``gfc network F D``
    Interconnection metrics + routing/broadcast summary of the topology.
``gfc ladder D``
    Verify the Section 8 :math:`\\Theta^*`-ladder of :math:`Q_D(101)`.
``gfc sweep``
    Saturation-curve sweeps over (topology x router x pattern x faults
    x switching x load) grids on the vectorized network simulator, with
    CSV/JSON output; ``--faults`` adds fault-plan axes for degradation
    curves, ``--switching/--vcs/--buffer/--flits`` sweep the wormhole /
    virtual-cut-through flow-control configurations, ``--collective``
    adds closed-loop collective workloads (broadcast, reduce, allgather,
    alltoall, ring) compiled with per-round barriers, ``--batch``
    co-batches compatible points into lock-step simulator runs
    (bit-identical records, several times the throughput), and
    ``--cache-dir`` consults/fills the content-addressed result cache so
    repeated grid cells are never re-simulated; ``--workload`` adds
    multi-tenant overlay points (tenant spec grammar of
    :mod:`repro.network.workloads`) and ``--trace`` replays recorded
    NDJSON traces as workload points.
``gfc trace``
    Record a multi-tenant workload's arbitrated schedule as a versioned
    NDJSON trace (``trace record``), or inspect one (``trace info``).
``gfc insights``
    Run the rule-driven insight engine over a sweep's CSV/JSON records:
    saturation knees, deadlock and fault-degradation alerts, tenant
    starvation, analytic-divergence warnings, and the
    hypercube-vs-Fibonacci verdict, as text or a stable JSON report.
``gfc analytic``
    The predict side of predict-then-verify: ``analytic counts`` gives
    exact node/edge counts (and the discovered linear recurrences) of
    cube topologies at arbitrary dimension via the avoidance-FSM
    transfer matrices; ``analytic bounds`` adds the direction-cut
    bisection estimate and the uniform-traffic saturation bound
    ``theta* = crossing*N / (n0*n1)`` (the classical ``2B/N`` with
    ``B`` the bisection channel count); ``analytic compare``
    cross-checks those bounds against the simulated saturation knees
    of a sweep's records.
``gfc serve``
    Long-lived sweep job server (asyncio + worker pool) over the same
    cache: clients submit grids, cached cells answer instantly, missing
    cells fan out to workers and stream back as they land.
``gfc submit``
    Send a sweep grid to a running server and stream the records;
    ``--csv``/``--json`` output is byte-identical to ``gfc sweep``.
``gfc jobs``
    List the jobs a running server has seen.
``gfc backends``
    List the kernel backends (numpy / native), whether each is usable,
    and what ``auto`` resolves to here and why; ``--backend`` on
    ``sweep`` and ``serve`` pins the choice per invocation.

Installed both as ``gfc`` and as ``repro``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gfc",
        description="Generalized Fibonacci cubes: reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="regenerate Table 1 and diff vs the paper")
    p_table.add_argument("--max-d", type=int, default=9, help="probe dimensions 1..MAX_D")

    p_cls = sub.add_parser("classify", help="embeddability verdict for one (f, d)")
    p_cls.add_argument("factor")
    p_cls.add_argument("d", type=int)
    p_cls.add_argument(
        "--bruteforce", action="store_true", help="settle UNKNOWN cases computationally"
    )

    p_cnt = sub.add_parser("counts", help="|V|, |E|, |S| of Q_d(f) (automaton counters)")
    p_cnt.add_argument("factor")
    p_cnt.add_argument("d", type=int)

    p_str = sub.add_parser("structure", help="degree/diameter report of Q_d(f)")
    p_str.add_argument("factor")
    p_str.add_argument("d", type=int)

    p_net = sub.add_parser("network", help="interconnection metrics of Q_d(f)")
    p_net.add_argument("factor")
    p_net.add_argument("d", type=int)

    p_lad = sub.add_parser("ladder", help="verify the Q_d(101) Theta* ladder")
    p_lad.add_argument("d", type=int)

    p_multi = sub.add_parser(
        "multifactor", help="order/size/isometry of Q_d(F) for a factor SET"
    )
    p_multi.add_argument("factors", help="comma-separated factors, e.g. 111,000")
    p_multi.add_argument("d", type=int)

    p_poly = sub.add_parser(
        "cubepoly", help="cube polynomial coefficients of Q_d(f)"
    )
    p_poly.add_argument("factor")
    p_poly.add_argument("d", type=int)

    p_spec = sub.add_parser("spectrum", help="cycle spectrum of Q_d(f)")
    p_spec.add_argument("factor")
    p_spec.add_argument("d", type=int)

    p_wie = sub.add_parser(
        "wiener", help="Wiener index / average distance of Q_d(f)"
    )
    p_wie.add_argument("factor")
    p_wie.add_argument("d", type=int)

    p_swp = sub.add_parser(
        "sweep",
        help="saturation-curve sweep on the vectorized network simulator",
    )
    _add_grid_args(p_swp)
    p_swp.add_argument(
        "--processes", type=int, default=1,
        help="worker processes for the grid (default: serial)",
    )
    p_swp.add_argument(
        "--batch", type=int, default=1,
        help="co-batch up to N compatible points (open-loop pattern "
             "points sharing a topology, any switching mode) per "
             "lock-step simulator run; results are bit-identical, the "
             "grid just finishes faster (default: %(default)s = "
             "unbatched)",
    )
    p_swp.add_argument(
        "--cache-dir", metavar="DIR",
        help="consult/fill the content-addressed result cache at DIR "
             "(created if missing); cached grid cells are returned "
             "without re-simulation, so repeated or grown grids are "
             "incremental (default: no cache)",
    )
    p_swp.add_argument(
        "--backend", choices=["auto", "numpy", "native"], default=None,
        help="kernel backend for every simulated point (default: "
             "$REPRO_BACKEND or auto); results are bit-identical either "
             "way, 'native' fails loudly when no compiler exists",
    )
    p_swp.add_argument(
        "--trace", action="append", dest="traces", metavar="PATH",
        help="replay a recorded NDJSON trace (see 'trace record') as a "
             "workload point; repeatable; the trace's own topology is "
             "added to the grid when no --topo is given",
    )
    p_swp.add_argument("--csv", metavar="PATH", help="write records as CSV")
    p_swp.add_argument("--json", metavar="PATH", help="write records as JSON")

    p_trc = sub.add_parser(
        "trace",
        help="record / inspect multi-tenant workload traces "
             "(versioned NDJSON)",
    )
    trc_sub = p_trc.add_subparsers(dest="trace_command", required=True)
    p_rec = trc_sub.add_parser(
        "record",
        help="compile a workload's arbitrated schedule and write it as "
             "an NDJSON trace",
    )
    p_rec.add_argument(
        "--topo", required=True, metavar="SPEC",
        help="topology spec 'Q:<d>' or '<factor>:<d>'",
    )
    p_rec.add_argument(
        "--workload", required=True, metavar="SPEC",
        help="tenant spec 'name:pattern:load[:prio];...[;rate=N]', e.g. "
             "'bg:uniform:0.2;fg:broadcast:0.4:2'",
    )
    p_rec.add_argument(
        "--window", type=int, default=64,
        help="injection window in cycles (default: %(default)s)",
    )
    p_rec.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for every tenant's traffic (default: %(default)s)",
    )
    p_rec.add_argument(
        "--scale", type=float, default=1.0,
        help="load-scale multiplier applied to every tenant "
             "(default: %(default)s)",
    )
    p_rec.add_argument(
        "--out", required=True, metavar="PATH", help="trace file to write"
    )
    p_inf = trc_sub.add_parser("info", help="summarise a trace file")
    p_inf.add_argument("path", metavar="TRACE")

    p_ins = sub.add_parser(
        "insights",
        help="rule-driven insight report over sweep records (CSV or JSON)",
    )
    p_ins.add_argument(
        "path", metavar="RECORDS",
        help="a 'sweep --csv' or 'sweep --json' output file",
    )
    p_ins.add_argument(
        "--json", action="store_true",
        help="print the stable JSON report instead of text",
    )
    p_ins.add_argument(
        "--out", metavar="PATH",
        help="also write the JSON report to PATH",
    )

    p_ana = sub.add_parser(
        "analytic",
        help="analytic FSM layer: exact counts, bisection/saturation "
             "bounds, and the bound-vs-knee cross-check",
    )
    ana_sub = p_ana.add_subparsers(dest="analytic_command", required=True)
    p_acnt = ana_sub.add_parser(
        "counts",
        help="exact node/edge counts of cube topologies at any dimension",
    )
    p_acnt.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="topology spec 'Q:<d>', '<factor>:<d>' or "
             "'<f1>,<f2>:<d>' (multi-factor), or a record name "
             "like 'Q_7(11)'",
    )
    p_acnt.add_argument(
        "--recurrence", action="store_true",
        help="also print the discovered linear recurrences for the "
             "node and edge sequences",
    )
    p_abnd = ana_sub.add_parser(
        "bounds",
        help="bisection estimate and uniform-traffic saturation bound",
    )
    p_abnd.add_argument(
        "specs", nargs="+", metavar="SPEC",
        help="topology spec or record name (as for 'analytic counts')",
    )
    p_acmp = ana_sub.add_parser(
        "compare",
        help="cross-check analytic bounds against a sweep's simulated "
             "saturation knees",
    )
    p_acmp.add_argument(
        "path", metavar="RECORDS",
        help="a 'sweep --csv' or 'sweep --json' output file",
    )
    p_acmp.add_argument(
        "--tolerance", type=float, default=None, metavar="RATIO",
        help="accept knees up to RATIO x the analytic bound "
             "(default: the crosscheck module's KNEE_TOLERANCE)",
    )
    p_acmp.add_argument(
        "--json", action="store_true",
        help="print the stable JSON report instead of text",
    )
    p_acmp.add_argument(
        "--out", metavar="PATH",
        help="also write the JSON report to PATH",
    )

    p_srv = sub.add_parser(
        "serve",
        help="long-lived sweep job server (asyncio + worker pool + "
             "content-addressed result cache)",
    )
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address")
    p_srv.add_argument(
        "--port", type=int, default=None,
        help="bind port (default: 8642; 0 = ephemeral)",
    )
    p_srv.add_argument(
        "--cache-dir", metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)",
    )
    p_srv.add_argument(
        "--no-cache", action="store_true",
        help="serve without a result cache: every submitted cell is "
             "simulated fresh",
    )
    p_srv.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool width (default: the executor's default)",
    )
    p_srv.add_argument(
        "--processes", action="store_true",
        help="simulate in a process pool instead of threads",
    )
    p_srv.add_argument(
        "--batch", type=int, default=1,
        help="default co-batch size for submitted grids "
             "(default: %(default)s = every cell alone)",
    )
    p_srv.add_argument(
        "--backend", choices=["auto", "numpy", "native"], default=None,
        help="kernel backend the worker pool simulates with (default: "
             "$REPRO_BACKEND or auto)",
    )

    p_sub = sub.add_parser(
        "submit",
        help="submit a sweep grid to a running server and stream records",
    )
    _add_grid_args(p_sub)
    p_sub.add_argument("--host", default="127.0.0.1", help="server address")
    p_sub.add_argument(
        "--port", type=int, default=None,
        help="server port (default: 8642)",
    )
    p_sub.add_argument(
        "--batch", type=int, default=None,
        help="override the server's co-batch size for this job",
    )
    p_sub.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="connect/handshake timeout; once the job is accepted the "
             "stream waits for records indefinitely (0 = never time "
             "out; default: %(default)s)",
    )
    p_sub.add_argument("--csv", metavar="PATH", help="write records as CSV")
    p_sub.add_argument("--json", metavar="PATH", help="write records as JSON")

    p_jobs = sub.add_parser("jobs", help="list a running server's jobs")
    p_jobs.add_argument("--host", default="127.0.0.1", help="server address")
    p_jobs.add_argument(
        "--port", type=int, default=None,
        help="server port (default: 8642)",
    )

    sub.add_parser(
        "backends",
        help="list kernel backends and what 'auto' resolves to here",
    )

    return parser


def _add_grid_args(p_swp) -> None:
    """The sweep-grid axes, shared verbatim by ``sweep`` and ``submit``
    (one grid language, whether the points run in-process or on the
    server)."""
    p_swp.add_argument(
        "--topo", action="append", dest="topos", metavar="SPEC",
        help="topology spec 'Q:<d>' or '<factor>:<d>'; repeatable "
             "(default: Q:7 and 11:7)",
    )
    p_swp.add_argument(
        "--patterns", default="uniform,transpose,tornado,hotspot",
        help="comma-separated traffic patterns (default: %(default)s)",
    )
    p_swp.add_argument(
        "--loads", default="0.1,0.2,0.4,0.6,0.8",
        help="comma-separated offered loads, packets/node/cycle "
             "(default: %(default)s)",
    )
    p_swp.add_argument(
        "--routers", default="bfs",
        help="comma-separated routers: bfs, canonical, adaptive, ecube, "
             "greedy (default: %(default)s)",
    )
    p_swp.add_argument(
        "--seeds", default="0", help="comma-separated RNG seeds (default: 0)"
    )
    p_swp.add_argument(
        "--faults", action="append", dest="faults", metavar="PLAN",
        help="fault-plan spec, e.g. 'n3,n5@10,l0-2@5' or 'rand4@20s7'; "
             "repeatable to sweep a fault axis ('' = unfaulted baseline, "
             "always included unless given explicitly)",
    )
    p_swp.add_argument(
        "--switching", default="sf",
        help="comma-separated switching modes: sf, wormhole, vct "
             "(default: %(default)s); sf is the single-flit infinite-FIFO "
             "store-and-forward baseline",
    )
    p_swp.add_argument(
        "--vcs", default="1",
        help="comma-separated virtual-channel counts per link "
             "(wormhole/vct only; default: %(default)s)",
    )
    p_swp.add_argument(
        "--buffer", default="4",
        help="comma-separated per-(link, VC) buffer depths in flits "
             "(wormhole/vct only; default: %(default)s)",
    )
    p_swp.add_argument(
        "--flits", default="1",
        help="comma-separated packet-size specs, '<n>' or '<lo>-<hi>' "
             "flits per packet (wormhole/vct only; default: %(default)s)",
    )
    p_swp.add_argument(
        "--workload", action="append", dest="workloads", metavar="SPEC",
        help="multi-tenant overlay workload "
             "'name:pattern:load[:prio];...[;rate=N]', e.g. "
             "'bg:uniform:0.2;fg:broadcast:0.4:2;rate=1'; repeatable; "
             "the --loads axis scales every tenant's load, and rate=N "
             "caps injection at N packet(s)/node/cycle with "
             "priority-then-name arbitration (0 = no cap)",
    )
    p_swp.add_argument(
        "--collective", action="append", dest="collectives", metavar="NAME",
        help="closed-loop collective workload: broadcast, reduce, "
             "allgather, alltoall or ring; repeatable; compiled with "
             "per-round barriers (the seed picks the root), so the "
             "pattern/load axes do not apply to these points",
    )
    p_swp.add_argument(
        "--window", type=int, default=64,
        help="injection window in cycles (default: %(default)s)",
    )
    p_swp.add_argument(
        "--max-cycles", type=int, default=100000,
        help="simulation cycle cap per point (default: %(default)s)",
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        return _cmd_table1(args)
    if args.command == "classify":
        return _cmd_classify(args)
    if args.command == "counts":
        return _cmd_counts(args)
    if args.command == "structure":
        return _cmd_structure(args)
    if args.command == "network":
        return _cmd_network(args)
    if args.command == "ladder":
        return _cmd_ladder(args)
    if args.command == "multifactor":
        return _cmd_multifactor(args)
    if args.command == "cubepoly":
        return _cmd_cubepoly(args)
    if args.command == "spectrum":
        return _cmd_spectrum(args)
    if args.command == "wiener":
        return _cmd_wiener(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "insights":
        return _cmd_insights(args)
    if args.command == "analytic":
        return _cmd_analytic(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "backends":
        return _cmd_backends(args)
    raise AssertionError("unreachable")


def _grid_from_args(args) -> dict:
    """The expand_grid keyword dict a sweep/submit invocation names --
    the same parsing whether the grid runs in-process or on the server."""
    return dict(
        topologies=args.topos or ["Q:7", "11:7"],
        patterns=[p for p in args.patterns.split(",") if p],
        loads=[float(x) for x in args.loads.split(",") if x],
        routers=[r for r in args.routers.split(",") if r],
        seeds=[int(s) for s in args.seeds.split(",") if s],
        faults=args.faults if args.faults else [""],
        switching=[s for s in args.switching.split(",") if s],
        vcs=[int(v) for v in args.vcs.split(",") if v],
        buffers=[int(b) for b in args.buffer.split(",") if b],
        flits=[f for f in args.flits.split(",") if f],
        collectives=args.collectives if args.collectives else [""],
        workloads=args.workloads if args.workloads else [""],
        inject_window=args.window,
        max_cycles=args.max_cycles,
    )


def _write_outputs(records, args) -> None:
    from repro.network.sweep import write_csv, write_json

    if args.csv:
        write_csv(records, args.csv)
        print(f"wrote {len(records)} records to {args.csv}")
    if args.json:
        write_json(records, args.json)
        print(f"wrote {len(records)} records to {args.json}")


def _cmd_sweep(args) -> int:
    from repro.network.sweep import run_sweep

    grid = _grid_from_args(args)
    traces = None
    if args.traces:
        from repro.network.workloads import read_trace, trace_key

        traces = {}
        trace_topos: List[str] = []
        for path in args.traces:
            try:
                trace = read_trace(path)
            except OSError as exc:
                print(f"sweep: error: cannot read {path}: {exc}", file=sys.stderr)
                return 2
            except ValueError as exc:
                print(f"sweep: error: {path}: {exc}", file=sys.stderr)
                return 2
            key = trace_key(trace)
            traces[key] = trace
            ref = f"trace:{key}"
            if ref not in grid["workloads"]:
                grid["workloads"] = [w for w in grid["workloads"] if w] + [ref]
            if trace.topology and trace.topology not in trace_topos:
                trace_topos.append(trace.topology)
        if not args.topos and trace_topos:
            # replay on the topologies the traces were recorded on
            # (traces refuse to run anywhere else)
            grid["topologies"] = trace_topos
    cache = None
    if args.cache_dir:
        from repro.network.service import ResultCache

        cache = ResultCache(args.cache_dir)
    try:
        records = run_sweep(
            processes=args.processes, batch=args.batch, cache=cache,
            backend=args.backend, traces=traces, **grid,
        )
    except ValueError as exc:
        print(f"sweep: error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        # an explicitly requested backend that cannot run here
        print(f"sweep: error: {exc}", file=sys.stderr)
        return 2
    _print_curves(records)
    if cache is not None:
        print(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es), "
            f"{cache.stores} store(d) at {cache.root}"
        )
    _write_outputs(records, args)
    return 0


def _print_curves(records) -> None:
    from repro.network.sweep import saturation_curves

    header = (
        f"{'topology':>12} {'router':>9} {'pattern':>12} {'load':>6} "
        f"{'avg lat':>8} {'p95':>7} {'thruput':>8} {'deliv':>6} "
        f"{'drop':>6} {'stall':>6} {'dlock':>5} {'maxq':>5}"
    )
    for (topo, router, pattern, faults, flow, coll), curve in sorted(
        saturation_curves(records).items()
    ):
        tag = f" / faults[{faults}]" if faults else ""
        tag += f" / {flow}" if flow else ""
        if coll:
            bound = curve[0].round_bound
            tag += f" / coll[{coll}: {curve[0].rounds:g} rounds, bound {bound}]"
        print(f"-- {topo} / {router} / {pattern}{tag}")
        print(header)
        for r in curve:
            print(
                f"{r.topology:>12} {r.router:>9} {r.pattern:>12} {r.load:>6.2f} "
                f"{r.avg_latency:>8.2f} {r.p95_latency:>7.1f} {r.throughput:>8.3f} "
                f"{r.delivery_rate:>6.3f} {r.dropped:>6.1f} {r.stalled:>6.1f} "
                f"{r.deadlock_rate:>5.2f} {r.max_queue:>5}"
            )


def _cmd_trace(args) -> int:
    from repro.network.workloads import read_trace, trace_key

    if args.trace_command == "record":
        from repro.network.sweep import parse_topology
        from repro.network.workloads import record_trace, write_trace

        try:
            topo = parse_topology(args.topo)
            trace = record_trace(
                args.workload, args.topo, topo, args.window,
                seed=args.seed, load_scale=args.scale,
            )
        except ValueError as exc:
            print(f"trace: error: {exc}", file=sys.stderr)
            return 2
        write_trace(trace, args.out)
        print(
            f"recorded {len(trace.traffic)} packet(s) from "
            f"{len(trace.tenants)} tenant(s) on {topo.name} to {args.out}"
        )
        print(f"trace key: {trace_key(trace)}")
        return 0
    # trace info
    try:
        trace = read_trace(args.path)
    except OSError as exc:
        print(f"trace: error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"trace: error: {exc}", file=sys.stderr)
        return 2
    print(f"trace {args.path}")
    print(f"{'topology':>14}: {trace.topology}")
    print(f"{'inject window':>14}: {trace.inject_window}")
    print(f"{'workload':>14}: {trace.workload or '(unspecified)'}")
    print(f"{'seed':>14}: {trace.seed}")
    print(f"{'packets':>14}: {len(trace.traffic)}")
    print(f"{'key':>14}: {trace_key(trace)}")
    counts = {name: 0 for name in trace.tenants}
    for t in trace.tenant_ids:
        counts[trace.tenants[t]] += 1
    for name, prio in zip(trace.tenants, trace.priorities):
        print(f"{'tenant':>14}: {name} (priority {prio}, "
              f"{counts[name]} packet(s))")
    return 0


def _cmd_insights(args) -> int:
    from repro.network.insights import (
        analyze,
        load_records,
        render_text,
        report_to_json,
    )

    try:
        records = load_records(args.path)
    except OSError as exc:
        print(f"insights: error: cannot read {args.path}: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"insights: error: {exc}", file=sys.stderr)
        return 2
    report = analyze(records)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report_to_json(report))
        print(f"wrote insight report to {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(report_to_json(report))
    else:
        print(render_text(report))
    return 0


def _cmd_analytic(args) -> int:
    if args.analytic_command == "compare":
        return _cmd_analytic_compare(args)
    from repro.analytic import analytic_summary, cube_model
    from repro.analytic.enumeration import edge_system, vertex_system

    for spec in args.specs:
        summary = analytic_summary(spec)
        if summary is None:
            print(f"analytic: error: not a cube topology: {spec!r}",
                  file=sys.stderr)
            return 2
        d = summary["dimension"]
        factors = summary["factors"]
        name = f"Q_{d}" + (f"({','.join(factors)})" if factors else "")
        print(f"{name}:")
        print(f"{'nodes':>18}: {summary['nodes']}")
        print(f"{'edges':>18}: {summary['edges']}")
        if args.analytic_command == "bounds":
            cut = summary["bisection"]
            if cut is None:
                print(f"{'bisection':>18}: (no cuts: d = 0)")
            else:
                print(f"{'bisection cut':>18}: position {cut['position']} "
                      f"({cut['n0']} | {cut['n1']}, "
                      f"{cut['crossing']} crossing)")
            print(f"{'saturation bound':>18}: "
                  f"theta* = {summary['saturation_bound']:.4f} "
                  f"pkt/node/cycle")
        elif args.recurrence:
            fsm = cube_model(tuple(factors))
            for label, system in (
                ("node", vertex_system(fsm)), ("edge", edge_system(fsm)),
            ):
                rec = system.linear_recurrence()
                terms = " + ".join(
                    f"{c}*a(n-{i + 1})" for i, c in enumerate(rec) if c
                ) or "0"
                print(f"{label + ' recurrence':>18}: a(n) = {terms} "
                      f"(order {len(rec)})")
    return 0


def _cmd_analytic_compare(args) -> int:
    from repro.analytic.crosscheck import (
        crosscheck_report,
        render_text,
        report_to_json,
    )
    from repro.network.insights import load_records

    try:
        records = load_records(args.path)
    except OSError as exc:
        print(f"analytic: error: cannot read {args.path}: {exc}",
              file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"analytic: error: {exc}", file=sys.stderr)
        return 2
    kwargs = {} if args.tolerance is None else {"tolerance": args.tolerance}
    try:
        report = crosscheck_report(records, **kwargs)
    except ValueError as exc:
        print(f"analytic: error: {exc}", file=sys.stderr)
        return 2
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report_to_json(report))
        print(f"wrote cross-check report to {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(report_to_json(report))
    else:
        print(render_text(report))
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.network.service import DEFAULT_PORT, ResultCache, SweepServer

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.backend:
        from repro.network.backends import resolve_backend

        try:
            resolve_backend(args.backend)  # fail before binding the port
        except (RuntimeError, ValueError) as exc:
            print(f"serve: error: {exc}", file=sys.stderr)
            return 2
    server = SweepServer(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        cache=cache,
        workers=args.workers,
        use_processes=args.processes,
        batch=args.batch,
        backend=args.backend,
    )

    async def _serve() -> None:
        host, port = await server.start()
        where = cache.root if cache is not None else "disabled"
        print(f"repro sweep service on {host}:{port} (cache: {where})")
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    print(f"served {len(server.jobs)} job(s)")
    return 0


def _cmd_submit(args) -> int:
    from repro.network.service import DEFAULT_PORT, ServiceError, SweepClient

    client = SweepClient(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        timeout=args.timeout if args.timeout > 0 else None,
    )
    progress = {"cached": 0, "simulated": 0, "points": 0, "job": 0}

    def on_event(event: dict) -> None:
        kind = event.get("event")
        if kind == "accepted":
            progress["job"] = event["job"]
            progress["points"] = event["points"]
            print(f"job {event['job']} accepted: {event['points']} point(s)")
        elif kind == "record":
            progress["cached" if event["cached"] else "simulated"] += 1

    try:
        records = client.submit(
            _grid_from_args(args), batch=args.batch, on_event=on_event
        )
    except (ServiceError, ValueError) as exc:
        print(f"submit: error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(
            f"submit: cannot reach server at {client.host}:{client.port}: {exc}",
            file=sys.stderr,
        )
        return 2
    _print_curves(records)
    print(
        f"job {progress['job']}: {progress['points']} point(s), "
        f"{progress['cached']} from cache, {progress['simulated']} simulated"
    )
    _write_outputs(records, args)
    return 0


def _cmd_jobs(args) -> int:
    from repro.network.service import DEFAULT_PORT, ServiceError, SweepClient

    client = SweepClient(
        host=args.host, port=DEFAULT_PORT if args.port is None else args.port
    )
    try:
        jobs = client.jobs()
    except (ServiceError, OSError) as exc:
        print(f"jobs: error: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print("no jobs yet")
        return 0
    print(f"{'job':>5} {'state':>8} {'points':>7} {'cached':>7} "
          f"{'simmed':>7} {'topologies'}")
    for job in jobs:
        print(
            f"{job['job']:>5} {job['state']:>8} {job['points']:>7} "
            f"{job['cached']:>7} {job['simulated']:>7} "
            f"{','.join(job['topologies'])}"
            + (f"  [{job['error']}]" if job.get("error") else "")
        )
    return 0


def _cmd_backends(args) -> int:
    from repro.network.backends import backend_infos, resolve_backend

    infos = backend_infos()
    width = max(len(i["name"]) for i in infos)
    for info in infos:
        status = "available" if info["available"] else "unavailable"
        print(f"{info['name']:>{width}}  {status:<12} {info['reason']}")
    auto = resolve_backend("auto")
    _, why = auto.availability()
    print(f"{'auto':>{width}}  -> {auto.name:<9} {why}")
    return 0


def _cmd_multifactor(args) -> int:
    from repro.cubes.multifactor import MultiFactorCube
    from repro.graphs.traversal import is_connected
    from repro.isometry.bruteforce import is_isometric_bfs

    factors = [f for f in args.factors.split(",") if f]
    cube = MultiFactorCube(factors, args.d)
    print(f"Q_{args.d}({{{','.join(cube.factors)}}}):")
    print(f"        vertices: {cube.num_vertices}")
    print(f"           edges: {cube.num_edges}")
    print(f"       connected: {is_connected(cube.graph())}")
    print(f"  isometric in Q: {is_isometric_bfs(cube)}")
    return 0


def _cmd_cubepoly(args) -> int:
    from repro.invariants.cubepoly import cube_coefficients

    co = cube_coefficients((args.factor, args.d))
    print(f"C(Q_{args.d}({args.factor}), x) coefficients:")
    for k, c in enumerate(co):
        if c or k <= 2:
            label = {0: "|V|", 1: "|E|", 2: "|S|"}.get(k, f"Q_{k}s")
            print(f"  c_{k} = {c:<10} ({label})")
    return 0


def _cmd_spectrum(args) -> int:
    from repro.cubes.generalized import generalized_fibonacci_cube
    from repro.network.cycles import cycle_spectrum

    g = generalized_fibonacci_cube(args.factor, args.d).graph()
    spec = cycle_spectrum(g)
    print(f"cycle lengths of Q_{args.d}({args.factor}): {spec or 'none (acyclic)'}")
    evens = list(range(4, g.num_vertices + 1, 2))
    full = all(L in spec for L in evens if L <= (g.num_vertices // 2) * 2)
    print(f"cycles of every even length up to |V|: {full}")
    return 0


def _cmd_wiener(args) -> int:
    from repro.invariants.distances import (
        average_distance,
        wiener_by_cuts,
        wiener_index,
    )

    spec = (args.factor, args.d)
    w = wiener_index(spec)
    cuts = wiener_by_cuts(spec)
    print(f"Wiener index W(Q_{args.d}({args.factor})) = {w}")
    print(f"average distance = {average_distance(spec):.4f}")
    print(f"coordinate-cut sum = {cuts} "
          f"({'matches: isometric' if cuts == w else 'undercounts: NOT isometric'})")
    return 0


def _cmd_table1(args) -> int:
    from repro.classify import classification_table, table1_expected

    rows = classification_table(max_d=args.max_d)
    expected = table1_expected()
    mismatches = 0
    for row in rows:
        want = expected.get(row.f, "-absent-")
        status = "always" if row.threshold is None else f"iff d <= {row.threshold}"
        ok = want == row.threshold
        mismatches += 0 if ok else 1
        mark = "OK " if ok else "DIFF"
        print(f"[{mark}] {row.f:>6}  {status:<14} via {', '.join(row.sources)}")
    print(f"{len(rows)} rows, {mismatches} mismatches vs the paper")
    return 1 if mismatches else 0


def _cmd_classify(args) -> int:
    from repro.classify import classify, classify_with_bruteforce

    fn = classify_with_bruteforce if args.bruteforce else classify
    print(str(fn(args.factor, args.d)))
    return 0


def _cmd_counts(args) -> int:
    from repro.words import (
        count_edges_automaton,
        count_squares_automaton,
        count_vertices_automaton,
    )

    f, d = args.factor, args.d
    print(f"|V(Q_{d}({f}))| = {count_vertices_automaton(f, d)}")
    print(f"|E(Q_{d}({f}))| = {count_edges_automaton(f, d)}")
    print(f"|S(Q_{d}({f}))| = {count_squares_automaton(f, d)}")
    return 0


def _cmd_structure(args) -> int:
    from repro.invariants import structure_report

    rep = structure_report((args.factor, args.d))
    for key, value in vars(rep).items():
        print(f"{key:>14}: {value}")
    print(f"  prop 6.1 (max degree = diameter = d): {rep.satisfies_prop_6_1()}")
    return 0


def _cmd_network(args) -> int:
    from repro.network import (
        BfsRouter,
        CanonicalRouter,
        broadcast_rounds,
        route_stats,
        topology_of,
    )

    topo = topology_of((args.factor, args.d))
    print(f"topology {topo.name}")
    for key, value in topo.metrics().items():
        print(f"{key:>24}: {value}")
    for router in (BfsRouter(), CanonicalRouter()):
        stats = route_stats(topo, router)
        print(
            f"router {stats.router:>10}: delivery {stats.delivery_rate:.3f}, "
            f"optimal {stats.optimality_rate:.3f}, stretch {stats.stretch:.3f}"
        )
    rounds, bound = broadcast_rounds(topo, 0)
    print(f"broadcast rounds from node 0: {rounds} (lower bound {bound})")
    return 0


def _cmd_ladder(args) -> int:
    from repro.conjectures import q101_ladder_certificate

    cert = q101_ladder_certificate(args.d)
    print(f"Q_{args.d}(101): Theta* ladder verified, {len(cert.rungs)} rungs")
    for top, bottom in cert.rungs:
        print(f"  {top}")
        print(f"  {bottom}")
        print("  --")
    print("e and g are Theta*-related but NOT Theta-related => not a partial cube")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
