"""The ``f``-dimension ``dim_f(G)`` and Proposition 7.1.

``dim_f(G)`` is defined when ``f`` is *admissible* -- i.e.
:math:`Q_d(f) \\hookrightarrow Q_d` for **all** ``d`` -- and equals the
least ``d`` with :math:`G \\hookrightarrow Q_d(f)`.  ``dim_11`` is the
Fibonacci dimension of [2]; ``idim`` is the hypercube case.

Proposition 7.1 (implemented constructively here): for admissible
``f ∉ {1, 0, 10, 01}`` and connected ``G``,

.. math:: idim(G) \\le dim_f(G) \\le 3\\,idim(G) - 2,

with the upper bound witnessed by *spreading* a canonical hypercube
embedding: insert a constant 0 between coordinates when ``11`` is a
factor of ``f`` (giving :math:`2\\,idim - 1`), a constant 1 when ``00``
is (same length), and the pair ``00`` when ``f`` alternates (giving
:math:`3\\,idim - 2`; an alternating admissible ``f`` has two 1s at
distance two, which spread words never contain).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.classify.rules import applicable_rules
from repro.classify.verdict import Status
from repro.cubes.generalized import generalized_fibonacci_cube
from repro.dimension.embedding import find_isometric_embedding
from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances
from repro.isometry.theta import hypercube_coordinates, idim
from repro.words.core import contains_factor, hamming

__all__ = [
    "isometric_dimension",
    "is_admissible_factor",
    "f_dimension",
    "prop71_upper_bound_embedding",
]


def isometric_dimension(graph: Graph) -> Optional[int]:
    """``idim(G)``: least ``d`` with :math:`G \\hookrightarrow Q_d`
    (``None`` when no hypercube hosts ``G``)."""
    return idim(graph)


#: factors proved isometric for every d by the paper (orbit-closed rules)
_ALWAYS_SOURCES = (
    "Proposition 3.1",
    "Theorem 3.3(i)",
    "Theorem 4.3",
    "Theorem 4.4",
    "Proposition 5.1",
)


def is_admissible_factor(f: str, probe_up_to: int = 12) -> Optional[bool]:
    """Is ``f`` admissible (isometric for **all** ``d``)?

    ``True`` when one of the paper's always-isometric families matches an
    orbit representative; ``False`` when any rule reports NOT isometric
    for some probed ``d``; ``None`` when the theorems are silent (a
    finite probe cannot certify all ``d``).
    """
    for d in range(1, probe_up_to + 1):
        for v in applicable_rules(f, d):
            if v.status is Status.NOT_ISOMETRIC:
                return False
            if v.status is Status.ISOMETRIC and v.source in _ALWAYS_SOURCES:
                return True
    return None


def f_dimension(
    graph: Graph,
    f: str,
    *,
    require_admissible: bool = True,
    node_budget: int = 2_000_000,
) -> Optional[int]:
    """``dim_f(G)``: least ``d`` with :math:`G \\hookrightarrow Q_d(f)`.

    Returns ``None`` when ``idim(G)`` is infinite (then ``dim_f`` is too,
    by Proposition 7.1).  Searches ``d`` upward from the ``idim`` lower
    bound; by the Proposition 7.1 upper bound the search is capped at
    ``3 idim - 2``, and failure to find an embedding by then raises --
    that would falsify the proposition.
    """
    if require_admissible and is_admissible_factor(f) is not True:
        raise ValueError(
            f"f={f!r} is not known to be admissible; dim_f may be ill-defined "
            "(pass require_admissible=False to try anyway)"
        )
    d0 = idim(graph)
    if d0 is None:
        return None
    if d0 == 0:
        return 0
    upper = 3 * d0 - 2
    for d in range(d0, upper + 1):
        host = generalized_fibonacci_cube(f, d).graph()
        if find_isometric_embedding(graph, host, node_budget=node_budget) is not None:
            return d
    raise AssertionError(
        f"no embedding of G into Q_d({f}) for d up to {upper}; "
        "this contradicts Proposition 7.1"
    )


def prop71_upper_bound_embedding(graph: Graph, f: str) -> Tuple[List[str], int]:
    """The explicit Proposition 7.1 embedding of ``G`` into a
    :math:`Q_{d'}(f)`.

    Returns ``(words, d')`` where ``words[u]`` is the image of vertex
    ``u`` and ``d'`` is ``2 idim - 1`` (factor contains 11 or 00) or
    ``3 idim - 2`` (alternating factor).  The construction is verified on
    the way out: images avoid ``f`` and pairwise Hamming distances equal
    graph distances; a failure raises :class:`AssertionError`.
    """
    if f in ("0", "1", "01", "10"):
        raise ValueError("Proposition 7.1 excludes f in {0, 1, 01, 10}")
    coords = hypercube_coordinates(graph)  # raises when idim(G) = infinity
    if contains_factor(f, "11"):
        spread = ["0".join(w) for w in coords]
    elif contains_factor(f, "00"):
        spread = ["1".join(w) for w in coords]
    else:
        spread = ["00".join(w) for w in coords]
    d_prime = len(spread[0]) if spread else 0
    dist = all_pairs_distances(graph)
    n = graph.num_vertices
    for u in range(n):
        if contains_factor(spread[u], f):
            raise AssertionError(
                f"Prop 7.1 image {spread[u]} contains forbidden factor {f}"
            )
        for v in range(u + 1, n):
            if hamming(spread[u], spread[v]) != int(dist[u, v]):
                raise AssertionError("Prop 7.1 spreading failed to preserve distances")
    return spread, d_prime
