"""Section 7: the ``f``-dimension of a graph.

For a string ``f`` with :math:`Q_d(f) \\hookrightarrow Q_d` for all ``d``
(an *admissible* string), ``dim_f(G)`` is the least ``d`` such that ``G``
embeds isometrically into :math:`Q_d(f)`; ``idim(G)`` (the isometric
dimension) is the hypercube case.  Proposition 7.1 shows
``dim_f(G) < \\infty`` iff ``idim(G) < \\infty`` with the sandwich

.. math:: idim(G) \\le dim_f(G) \\le 3\\,idim(G) - 2,

via explicit bit-spreading constructions that this package implements and
verifies.

- :mod:`repro.dimension.embedding` -- backtracking isometric-embedding
  search ``G -> H`` with distance-matrix pruning (exact, for small ``G``);
- :mod:`repro.dimension.fdim` -- ``dim_f`` (exact search + Prop 7.1
  bounds), admissibility of ``f``, the spreading maps of the proof;
- :mod:`repro.dimension.inverse` -- the inverse dimension
  ``dim^{-1}_f(G)`` = the largest ``d`` with
  :math:`Q_d(f) \\hookrightarrow G` (studied in [3] for ``f = 11``).
"""

from repro.dimension.embedding import find_isometric_embedding, is_isometrically_embeddable
from repro.dimension.fdim import (
    f_dimension,
    is_admissible_factor,
    isometric_dimension,
    prop71_upper_bound_embedding,
)
from repro.dimension.inverse import inverse_dimension
from repro.dimension.lattice import lattice_dimension, semicube_graph, semicubes

__all__ = [
    "find_isometric_embedding",
    "is_isometrically_embeddable",
    "f_dimension",
    "is_admissible_factor",
    "isometric_dimension",
    "prop71_upper_bound_embedding",
    "inverse_dimension",
    "lattice_dimension",
    "semicube_graph",
    "semicubes",
]
