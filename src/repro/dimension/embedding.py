"""Exact isometric-embedding search ``G -> H``.

Finds a map ``phi`` with :math:`d_H(\\phi(u), \\phi(v)) = d_G(u, v)` for
all vertex pairs, or proves none exists.  The search assigns the vertices
of ``G`` in BFS order from an arbitrary root; a partial assignment is
pruned as soon as one distance disagrees, and the candidate images of the
next vertex are restricted to the ``H``-sphere of the right radius around
the image of its BFS parent.  This is exponential in the worst case --
the paper notes that even deciding ``dim_11(G) = idim(G)`` is
NP-complete -- but exact and fast for the graph corpus the experiments
use (trees, cycles, grids, small cubes).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances

__all__ = ["find_isometric_embedding", "is_isometrically_embeddable"]


def _bfs_order(graph: Graph) -> List[int]:
    order: List[int] = []
    seen = [False] * graph.num_vertices
    for root in range(graph.num_vertices):
        if seen[root]:
            continue
        seen[root] = True
        queue = [root]
        while queue:
            u = queue.pop(0)
            order.append(u)
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
    return order


def find_isometric_embedding(
    g: Graph, h: Graph, node_budget: int = 2_000_000
) -> Optional[List[int]]:
    """An isometric embedding of ``g`` into ``h``, or ``None``.

    Returns ``phi`` as a list: ``phi[u]`` is the ``h``-vertex hosting
    ``g``-vertex ``u``.  ``node_budget`` caps the number of search-tree
    nodes; exceeding it raises :class:`RuntimeError` (so a silent timeout
    can never be mistaken for "not embeddable").
    """
    ng, nh = g.num_vertices, h.num_vertices
    if ng == 0:
        return []
    if ng > nh:
        return None
    dg = all_pairs_distances(g)
    if (dg < 0).any():
        # disconnected G embeds isometrically in nothing connected we use
        return None
    dh = all_pairs_distances(h)
    order = _bfs_order(g)
    # parent in the BFS order (index into `order` already placed)
    placed_before: List[List[int]] = []
    for k, u in enumerate(order):
        placed_before.append(order[:k])
    phi: List[int] = [-1] * ng
    used = [False] * nh
    budget = [node_budget]

    def candidates(k: int) -> List[int]:
        u = order[k]
        if k == 0:
            return list(range(nh))
        # restrict via the most constraining placed vertex (largest degree
        # of information: just use the BFS parent = first placed neighbour)
        anchor = placed_before[k][-1]
        req = int(dg[u, anchor])
        row = dh[phi[anchor]]
        return np.flatnonzero(row == req).tolist()

    def backtrack(k: int) -> bool:
        if k == ng:
            return True
        budget[0] -= 1
        if budget[0] < 0:
            raise RuntimeError("embedding search exceeded its node budget")
        u = order[k]
        for x in candidates(k):
            if used[x]:
                continue
            ok = True
            for w in placed_before[k]:
                if int(dh[x, phi[w]]) != int(dg[u, w]):
                    ok = False
                    break
            if ok:
                phi[u] = x
                used[x] = True
                if backtrack(k + 1):
                    return True
                phi[u] = -1
                used[x] = False
        return False

    if backtrack(0):
        return phi
    return None


def is_isometrically_embeddable(g: Graph, h: Graph, node_budget: int = 2_000_000) -> bool:
    """Decision form of :func:`find_isometric_embedding`."""
    return find_isometric_embedding(g, h, node_budget=node_budget) is not None
