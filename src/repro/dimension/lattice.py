"""Lattice dimension of partial cubes (Eppstein; reference [6] of the paper).

The paper cites the lattice dimension alongside ``idim`` and the
Fibonacci dimension when introducing ``dim_f``.  The *lattice dimension*
``ldim(G)`` is the least ``k`` such that ``G`` embeds isometrically into
the integer lattice :math:`\\mathbb{Z}^k` (with the :math:`\\ell_1`
metric).

Eppstein's theorem: for a partial cube with ``idim(G)`` Θ-classes,

.. math:: ldim(G) = idim(G) - |M|,

where ``M`` is a maximum matching of the **semicube graph**: its vertices
are the ``2·idim`` *semicubes* (the two sides of each Θ-cut), and two
semicubes from different cuts are adjacent iff their union is all of
``V(G)`` (each then can serve as the "far end" of the other's lattice
axis).  Matched cut pairs share one lattice dimension (one runs in the
positive, one in the negative direction); unmatched cuts each consume a
dimension.

This module implements the semicube graph and a maximum matching by
augmenting-path search (the semicube graph is small: ``2·idim`` nodes),
giving exact ``ldim`` for the graph corpus of the Section 7 experiments.
Known anchors used by the tests: paths have ``ldim = 1``, even cycles
and grids have ``ldim = 2``, a tree with ``L`` leaves has
``ldim = ceil(L / 2)``, and ``ldim(Q_d) = d``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple


from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances
from repro.isometry.theta import is_partial_cube, theta_classes

__all__ = ["semicubes", "semicube_graph", "lattice_dimension"]


def semicubes(graph: Graph) -> List[Tuple[FrozenSet[int], FrozenSet[int]]]:
    """The two sides of every Θ-cut, as a list of frozenset pairs.

    Requires a partial cube (each Θ*-class of edges disconnects the graph
    into exactly the two sides determined by any of its edges).
    """
    dist = all_pairs_distances(graph)
    out: List[Tuple[FrozenSet[int], FrozenSet[int]]] = []
    n = graph.num_vertices
    for cls in theta_classes(graph, dist):
        x, y = cls[0]
        side_x = frozenset(v for v in range(n) if dist[v, x] < dist[v, y])
        side_y = frozenset(v for v in range(n) if dist[v, y] < dist[v, x])
        out.append((side_x, side_y))
    return out


def semicube_graph(
    graph: Graph,
) -> Tuple[List[Tuple[int, int]], int]:
    """Edges of the semicube graph + the number of Θ-cuts.

    Semicube ``2i`` is side 0 of cut ``i``; ``2i + 1`` its side 1.  Two
    semicubes of *different* cuts are adjacent iff their union covers the
    vertex set.
    """
    cubes = semicubes(graph)
    all_v = frozenset(range(graph.num_vertices))
    flat: List[FrozenSet[int]] = []
    for a, b in cubes:
        flat.extend((a, b))
    edges: List[Tuple[int, int]] = []
    m = len(flat)
    for i in range(m):
        for j in range(i + 1, m):
            if i // 2 == j // 2:
                continue
            if flat[i] | flat[j] == all_v:
                edges.append((i, j))
    return edges, len(cubes)


def _max_matching(num_nodes: int, edges: List[Tuple[int, int]]) -> int:
    """Exact maximum matching by branch and bound.

    The semicube graph is not bipartite in general, so augmenting-path
    search without blossoms could undercount; instead we use an exact
    exponential search with a standard bound (matched + remaining/2),
    which is instantaneous at semicube-graph sizes (``2·idim`` nodes).
    The tests cross-validate against networkx's blossom implementation.
    """
    adj: Dict[int, List[int]] = {v: [] for v in range(num_nodes)}
    for a, b in edges:
        adj[a].append(b)
        adj[b].append(a)
    best = [0]

    def branch(v: int, used: int, size: int) -> None:
        # upper bound: every remaining unused vertex can add at most 1/2
        remaining = num_nodes - v
        if size + remaining // 2 + (remaining % 2) <= best[0]:
            return
        if v >= num_nodes:
            best[0] = max(best[0], size)
            return
        if (used >> v) & 1:
            branch(v + 1, used, size)
            return
        # option 1: leave v unmatched
        branch(v + 1, used, size)
        # option 2: match v with an available neighbour
        for u in adj[v]:
            if u > v and not (used >> u) & 1:
                branch(v + 1, used | (1 << v) | (1 << u), size + 1)

    branch(0, 0, 0)
    return best[0]


def lattice_dimension(graph: Graph) -> Optional[int]:
    """``ldim(G)`` by Eppstein's formula; ``None`` for non-partial-cubes."""
    if graph.num_vertices == 1:
        return 0
    if not is_partial_cube(graph):
        return None
    edges, num_cuts = semicube_graph(graph)
    matching = _max_matching(2 * num_cuts, edges)
    return num_cuts - matching
