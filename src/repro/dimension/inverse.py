"""Inverse dimension ``dim^{-1}_f(G)`` (Section 7, after Prop. 7.1).

``dim^{-1}_f(G)`` is the largest ``d`` such that :math:`Q_d(f)` embeds
isometrically into ``G``.  For ``f = 11`` (Fibonacci cubes into
hypercubes) deciding it is NP-complete [3]; our implementation is the
exact exponential search, adequate for the small corpus of the E10
experiment.
"""

from __future__ import annotations

from typing import Optional

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.dimension.embedding import find_isometric_embedding
from repro.graphs.core import Graph

__all__ = ["inverse_dimension"]


def inverse_dimension(
    graph: Graph, f: str, d_max: int = 16, node_budget: int = 2_000_000
) -> Optional[int]:
    """Largest ``d <= d_max`` with :math:`Q_d(f) \\hookrightarrow G`.

    Returns ``None`` when not even :math:`Q_1(f)` (an edge or a vertex)
    embeds.  Stops early once :math:`Q_d(f)` outgrows ``G``.
    """
    best: Optional[int] = None
    for d in range(1, d_max + 1):
        cube = generalized_fibonacci_cube(f, d)
        if cube.num_vertices > graph.num_vertices:
            break
        phi = find_isometric_embedding(cube.graph(), graph, node_budget=node_budget)
        if phi is not None:
            best = d
    return best
