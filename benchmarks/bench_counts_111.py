"""E1 -- eqs. (1)-(3) (Section 6): recurrences for G_d = Q_d(111).

Checks the three coupled recurrences against brute-force graph counts in
the enumerable range and against the automaton counters far beyond it.
"""

from repro.invariants.counts import brute_counts, recurrences_111
from repro.words.counting import (
    count_edges_automaton,
    count_squares_automaton,
    count_vertices_automaton,
)

from conftest import print_table


def test_bench_e1_recurrences_vs_bruteforce(benchmark):
    rec = recurrences_111(10)

    def measure():
        return [brute_counts("111", d) for d in range(11)]

    brute = benchmark(measure)
    rows = []
    for d in range(11):
        assert brute[d] == rec[d], d
        rows.append((d, rec[d].vertices, rec[d].edges, rec[d].squares))
    print_table("Q_d(111): eqs (1)-(3) vs brute force (all equal)",
                ["d", "|V|", "|E|", "|S|"], rows)


def test_bench_e1_recurrences_vs_automaton(benchmark):
    """Same identities at d = 120 where enumeration is impossible."""

    def far():
        rec = recurrences_111(120)
        return (
            rec[120],
            count_vertices_automaton("111", 120),
            count_edges_automaton("111", 120),
            count_squares_automaton("111", 120),
        )

    counts, v, e, s = benchmark(far)
    assert counts.vertices == v
    assert counts.edges == e
    assert counts.squares == s
