"""E10 -- Proposition 7.1: idim(G) <= dim_f(G) <= 3 idim(G) - 2.

Exact f-dimensions on a small graph corpus, sandwich bounds everywhere,
and the constructive upper-bound embedding verified.
"""

import pytest

from repro.dimension.fdim import (
    f_dimension,
    isometric_dimension,
    prop71_upper_bound_embedding,
)
from repro.graphs.core import Graph

from conftest import print_table


def path_graph(n):
    return Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n):
    return Graph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def star_graph(k):
    return Graph.from_edges(k + 1, [(0, i + 1) for i in range(k)])


def grid_graph(r, c):
    e = []
    for i in range(r):
        for j in range(c):
            if j + 1 < c:
                e.append((i * c + j, i * c + j + 1))
            if i + 1 < r:
                e.append((i * c + j, (i + 1) * c + j))
    return Graph.from_edges(r * c, e)


CORPUS = {
    "P5": path_graph(5),
    "C4": cycle_graph(4),
    "C6": cycle_graph(6),
    "star4": star_graph(4),
    "grid2x3": grid_graph(2, 3),
}

FACTORS = ["11", "110"]


def sweep():
    rows = []
    for name, g in CORPUS.items():
        d0 = isometric_dimension(g)
        for f in FACTORS:
            df = f_dimension(g, f)
            rows.append((name, f, d0, df, 3 * d0 - 2))
    return rows


def test_bench_e10_bounds(benchmark):
    rows = benchmark(sweep)
    for name, f, d0, df, upper in rows:
        assert d0 <= df <= upper, (name, f)
    print_table(
        "Prop 7.1: idim <= dim_f <= 3 idim - 2",
        ["graph", "f", "idim", "dim_f", "3 idim - 2"],
        rows,
    )


@pytest.mark.parametrize("f", ["11", "110", "1010"])
def test_bench_e10_constructive_upper_bound(benchmark, f):
    g = CORPUS["C6"]
    words, dp = benchmark(prop71_upper_bound_embedding, g, f)
    d0 = isometric_dimension(g)
    assert dp <= 3 * d0 - 2
    assert len(words) == g.num_vertices
