"""E5 -- Proposition 6.1: max degree = diameter = d for embeddable cubes.

Sweeps every embeddable factor of length <= 4 over a range of dimensions
and confirms the proposition on the actual graphs.
"""

from repro.classify.engine import classify_with_bruteforce
from repro.classify.verdict import Status
from repro.invariants.structure import structure_report
from repro.words.core import all_words

from conftest import print_table


def sweep():
    rows = []
    for length in (2, 3, 4):
        for f in all_words(length):
            if f in ("01", "10"):
                continue  # the path case, excluded by the proposition
            for d in range(max(2, length), 8):
                v = classify_with_bruteforce(f, d)
                if v.status is not Status.ISOMETRIC:
                    continue
                rep = structure_report((f, d))
                rows.append((f, d, rep.max_degree, rep.diameter, rep.satisfies_prop_6_1()))
    return rows


def test_bench_e5_prop61_sweep(benchmark):
    rows = benchmark(sweep)
    assert rows, "sweep produced no embeddable cases"
    assert all(ok for *_, ok in rows)
    sample = [r for r in rows if r[1] == 7]
    print_table(
        "Prop 6.1 at d = 7 (max degree = diameter = 7 everywhere)",
        ["f", "d", "max degree", "diameter", "holds"],
        sample,
    )
