"""N2 -- saturation-curve sweeps (the evaluation the 1993 papers plot).

Drives the sweep harness over a Fibonacci-cube-vs-hypercube grid across
four traffic patterns and rising offered load, checks the physics
(latency monotone in load, hotspot worse than uniform), and times the
grid as one benchmark unit.

The batched-sweep gates (``test_bench_sweep_batched_speedup`` on the
store-and-forward grid, ``test_bench_sweep_batched_flow_speedup`` on a
wormhole grid) are the acceptance claims of the batch axis: packing a
multi-seed grid into lock-step
:class:`~repro.network.batch.BatchedSimulator` runs must deliver at
least 3x the sweep throughput of the point-by-point harness while
producing bit-identical records -- and since the fused kernel batches
every switching mode natively, the claim holds for flow-control points
too.  ``test_bench_sweep_warm_cache`` is the sweep-service cache's
acceptance claim: a warm content-addressed cache answers the whole grid
without simulating a single point.  These are *timing* gates and belong
to the benchmark-regression CI job (uploaded as ``BENCH_batch.json``),
not the untimed smoke pass.
"""

import time
from dataclasses import replace

from repro.network.sweep import run_sweep, saturation_curves

from conftest import print_table

GRID = dict(
    topologies=["Q:6", "11:6"],
    patterns=("uniform", "transpose", "tornado", "hotspot"),
    loads=(0.1, 0.3, 0.6),
    inject_window=32,
)

# the standard grid replicated over four seeds: the K-replication shape
# the batch axis exists for (96 points, 48 co-batched per topology)
SEEDED_GRID = dict(GRID, seeds=(0, 1, 2, 3))
BATCH = 48

# a wormhole grid of the same replicated shape: finite buffers, 2 VCs,
# 2-flit packets (32 points, 16 co-batched per topology)
FLOW_GRID = dict(
    topologies=["Q:6", "11:6"],
    patterns=("uniform", "transpose"),
    loads=(0.1, 0.3),
    seeds=(0, 1, 2, 3),
    switching=("wormhole",),
    vcs=(2,),
    buffers=(4,),
    flits=("2",),
    inject_window=32,
)
FLOW_BATCH = 16


def test_bench_n2_saturation_grid(benchmark):
    records = benchmark(run_sweep, **GRID)
    assert len(records) == 2 * 4 * 3
    curves = saturation_curves(records)
    rows = []
    for (topo, router, pattern, faults, flow, coll), curve in sorted(curves.items()):
        # latency can only stay flat or grow as offered load rises
        lats = [r.avg_latency for r in curve]
        assert lats[-1] >= lats[0] * 0.95, (topo, pattern, lats)
        rows.append(
            (topo, pattern,
             " -> ".join(f"{r.avg_latency:.1f}" for r in curve),
             f"{curve[-1].delivery_rate:.3f}")
        )
    print_table(
        "Avg latency across offered loads 0.1 -> 0.3 -> 0.6",
        ["topology", "pattern", "avg latency", "delivery@0.6"],
        rows,
    )
    # hotspot concentrates at one node: worse than uniform at equal load
    for topo in ("Q_6", "Q_6(11)"):
        hot = curves[(topo, "bfs", "hotspot", "", "", "")][-1]
        uni = curves[(topo, "bfs", "uniform", "", "", "")][-1]
        assert hot.avg_latency > uni.avg_latency, topo


def test_bench_n2_parallel_matches_serial(benchmark):
    serial = run_sweep(["11:5"], patterns=("uniform",), loads=(0.2, 0.4),
                       inject_window=16)
    parallel = benchmark(
        run_sweep, ["11:5"], patterns=("uniform",), loads=(0.2, 0.4),
        inject_window=16, processes=2,
    )
    assert parallel == serial


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_bench_sweep_batched_speedup(benchmark):
    """The batch-axis acceptance gate: the standard multi-seed grid runs
    at least 3x faster co-batched than point-by-point, with records
    bit-identical apart from the ``batch`` bookkeeping column."""
    unbatched = run_sweep(**SEEDED_GRID)
    batched = benchmark(lambda: run_sweep(batch=BATCH, **SEEDED_GRID))
    assert [replace(r, batch=1) for r in batched] == unbatched

    # best of three on each side: one noisy-neighbour stall must not
    # fail the assert in either direction
    seq_seconds = min(
        _timed(lambda: run_sweep(**SEEDED_GRID)) for _ in range(3)
    )
    bat_seconds = min(
        _timed(lambda: run_sweep(batch=BATCH, **SEEDED_GRID)) for _ in range(3)
    )
    speedup = seq_seconds / bat_seconds
    print_table(
        f"Sweep throughput, standard grid x 4 seeds ({len(unbatched)} points)",
        ["harness", "seconds", "points/s", "speedup"],
        [
            ("point-by-point", f"{seq_seconds:.3f}",
             f"{len(unbatched) / seq_seconds:.0f}", "1.0x"),
            (f"batched (K<={BATCH})", f"{bat_seconds:.3f}",
             f"{len(unbatched) / bat_seconds:.0f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 3.0, f"batched sweep only {speedup:.1f}x faster"


def test_bench_sweep_batched_flow_speedup(benchmark):
    """The flow-control half of the batch-axis acceptance gate: a
    wormhole multi-seed grid -- credit backpressure, VC allocation and
    multi-flit packets all live -- must also run at least 3x faster
    co-batched than point-by-point, bit-identical apart from the
    ``batch`` column.  Before the fused kernel these points fell back
    to the sequential path; this gate keeps them natively batched."""
    unbatched = run_sweep(**FLOW_GRID)
    batched = benchmark(lambda: run_sweep(batch=FLOW_BATCH, **FLOW_GRID))
    assert [replace(r, batch=1) for r in batched] == unbatched

    # best of three on each side, as in the sf gate
    seq_seconds = min(
        _timed(lambda: run_sweep(**FLOW_GRID)) for _ in range(3)
    )
    bat_seconds = min(
        _timed(lambda: run_sweep(batch=FLOW_BATCH, **FLOW_GRID))
        for _ in range(3)
    )
    speedup = seq_seconds / bat_seconds
    print_table(
        f"Sweep throughput, wormhole grid x 4 seeds ({len(unbatched)} points)",
        ["harness", "seconds", "points/s", "speedup"],
        [
            ("point-by-point", f"{seq_seconds:.3f}",
             f"{len(unbatched) / seq_seconds:.0f}", "1.0x"),
            (f"batched (K<={FLOW_BATCH})", f"{bat_seconds:.3f}",
             f"{len(unbatched) / bat_seconds:.0f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 3.0, f"batched wormhole sweep only {speedup:.1f}x faster"


def test_bench_sweep_warm_cache(benchmark, tmp_path):
    """The sweep-service cache acceptance gate: with a warm
    content-addressed cache, repeating the full multi-seed grid
    re-simulates *zero* points (the stores counter does not move) and
    the repeat is a pure disk read -- at least 3x faster than the cold
    batched fill it replays, in practice orders of magnitude.  Records
    stay bit-identical to the uncached harness apart from the ``batch``
    bookkeeping column (cache hits always report 1)."""
    from repro.network.service import ResultCache

    cache = ResultCache(tmp_path / "cache")
    cold_seconds = _timed(lambda: run_sweep(cache=cache, batch=BATCH, **SEEDED_GRID))
    cold_stores = cache.stores
    warm = benchmark(lambda: run_sweep(cache=cache, **SEEDED_GRID))
    assert cache.stores == cold_stores, "warm repeat re-simulated points"
    assert warm == run_sweep(**SEEDED_GRID)

    warm_seconds = min(
        _timed(lambda: run_sweep(cache=cache, **SEEDED_GRID)) for _ in range(3)
    )
    assert cache.stores == cold_stores
    speedup = cold_seconds / warm_seconds
    print_table(
        f"Warm-cache repeat, standard grid x 4 seeds ({len(warm)} points)",
        ["harness", "seconds", "points/s", "speedup"],
        [
            ("cold (batched fill)", f"{cold_seconds:.3f}",
             f"{len(warm) / cold_seconds:.0f}", "1.0x"),
            ("warm (pure cache)", f"{warm_seconds:.3f}",
             f"{len(warm) / warm_seconds:.0f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 3.0, f"warm-cache repeat only {speedup:.1f}x faster"


def test_bench_sweep_backend_identity(benchmark):
    """Backend neutrality at sweep scale: the whole standard grid,
    batched, produces bit-identical records under the NumPy and native
    kernels (the backend is not an axis, it is an implementation)."""
    from repro.network.backends import native as native_mod

    if native_mod.load_library()[0] is None:
        import pytest

        pytest.skip("no usable C toolchain for the native backend")

    via_numpy = run_sweep(batch=BATCH, backend="numpy", **SEEDED_GRID)
    via_native = benchmark(
        lambda: run_sweep(batch=BATCH, backend="native", **SEEDED_GRID)
    )
    assert via_native == via_numpy


def test_bench_batched_grid_with_faults_matches(benchmark):
    """Batching must survive the awkward axes too: a mixed grid with a
    fault plan and multiple routers produces identical records batched
    or not (faulted points co-batch -- only their route tables stay
    per-point)."""
    grid = dict(
        topologies=["11:6"], patterns=("uniform", "hotspot"),
        routers=("bfs", "adaptive"), loads=(0.2, 0.5),
        faults=("", "rand2s3"), inject_window=16,
    )
    serial = run_sweep(**grid)
    batched = benchmark(lambda: run_sweep(batch=16, **grid))
    assert [replace(r, batch=1) for r in batched] == serial
    assert {r.batch for r in batched} == {16}
