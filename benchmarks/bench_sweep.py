"""N2 -- saturation-curve sweeps (the evaluation the 1993 papers plot).

Drives the sweep harness over a Fibonacci-cube-vs-hypercube grid across
four traffic patterns and rising offered load, checks the physics
(latency monotone in load, hotspot worse than uniform), and times the
grid as one benchmark unit.
"""

from repro.network.sweep import run_sweep, saturation_curves

from conftest import print_table

GRID = dict(
    topologies=["Q:6", "11:6"],
    patterns=("uniform", "transpose", "tornado", "hotspot"),
    loads=(0.1, 0.3, 0.6),
    inject_window=32,
)


def test_bench_n2_saturation_grid(benchmark):
    records = benchmark(run_sweep, **GRID)
    assert len(records) == 2 * 4 * 3
    curves = saturation_curves(records)
    rows = []
    for (topo, router, pattern, faults, flow, coll), curve in sorted(curves.items()):
        # latency can only stay flat or grow as offered load rises
        lats = [r.avg_latency for r in curve]
        assert lats[-1] >= lats[0] * 0.95, (topo, pattern, lats)
        rows.append(
            (topo, pattern,
             " -> ".join(f"{r.avg_latency:.1f}" for r in curve),
             f"{curve[-1].delivery_rate:.3f}")
        )
    print_table(
        "Avg latency across offered loads 0.1 -> 0.3 -> 0.6",
        ["topology", "pattern", "avg latency", "delivery@0.6"],
        rows,
    )
    # hotspot concentrates at one node: worse than uniform at equal load
    for topo in ("Q_6", "Q_6(11)"):
        hot = curves[(topo, "bfs", "hotspot", "", "", "")][-1]
        uni = curves[(topo, "bfs", "uniform", "", "", "")][-1]
        assert hot.avg_latency > uni.avg_latency, topo


def test_bench_n2_parallel_matches_serial(benchmark):
    serial = run_sweep(["11:5"], patterns=("uniform",), loads=(0.2, 0.4),
                       inject_window=16)
    parallel = benchmark(
        run_sweep, ["11:5"], patterns=("uniform",), loads=(0.2, 0.4),
        inject_window=16, processes=2,
    )
    assert parallel == serial
