"""F1 -- Figure 1 (Section 2): the generalized Fibonacci cube Q_4(101).

The figure depicts Q_4(101).  We regenerate the graph and check the
depicted structure: 12 vertices (16 minus the four words containing 101),
18 edges, the degree profile, and -- per Proposition 3.2 -- that this graph
is *not* isometric in Q_4 while Q_3(101) still is.
"""

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.traversal import diameter
from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.vectorized import isometry_report

from conftest import print_table


def build_fig1():
    cube = generalized_fibonacci_cube("101", 4)
    return cube, cube.graph()


def test_bench_fig1_structure(benchmark):
    cube, graph = benchmark(build_fig1)
    assert cube.num_vertices == 12
    assert cube.num_edges == 18
    removed = {"0101", "1010", "1011", "1101"}
    assert all(w not in cube for w in removed)
    assert diameter(graph) == 4
    print_table(
        "Figure 1: Q_4(101)",
        ["quantity", "value"],
        [
            ("vertices", cube.num_vertices),
            ("edges", cube.num_edges),
            ("removed words", ", ".join(sorted(removed))),
            ("diameter", diameter(graph)),
            ("degree sequence", cube.degree_sequence()),
        ],
    )


def test_bench_fig1_isometry_threshold(benchmark):
    """Lemma 2.1 gives isometry up to d = 3; Prop 3.2 kills d >= 4."""

    def verdicts():
        return [(d, is_isometric_bfs(("101", d))) for d in range(1, 7)]

    rows = benchmark(verdicts)
    assert rows == [(1, True), (2, True), (3, True), (4, False), (5, False), (6, False)]


def test_bench_fig1_witness(benchmark):
    report = benchmark(isometry_report, ("101", 4))
    assert not report.isometric
    assert report.first_bad_level == 2
