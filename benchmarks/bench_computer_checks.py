"""E7 -- Section 5 "checked by computer" cases, re-run from scratch.

The paper settles four cells of Table 1 by machine:

    Q_6(1100) isometric      (Theorem 3.3(ii) proof, d = 6)
    Q_6(10110) isometric     (Table 1 footnote)
    Q_6(10101) isometric     (Table 1 footnote)
    Q_7(10101) isometric     (Table 1 footnote)

Both engines (BFS reference and vectorised DP) re-derive each, and the
first non-isometric dimension right above each check is confirmed too.
"""

import pytest

from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.vectorized import is_isometric_dp

from conftest import print_table

CHECKS = [
    ("1100", 6, True),
    ("10110", 6, True),
    ("10101", 6, True),
    ("10101", 7, True),
    # the first failures right above, for contrast
    ("1100", 7, False),
    ("10110", 7, False),
    ("10101", 8, False),
]


@pytest.mark.parametrize("f,d,expected", CHECKS)
def test_bench_e7_bfs(benchmark, f, d, expected):
    assert benchmark(is_isometric_bfs, (f, d)) == expected


@pytest.mark.parametrize("f,d,expected", CHECKS)
def test_bench_e7_dp(benchmark, f, d, expected):
    assert benchmark(is_isometric_dp, (f, d)) == expected


def test_bench_e7_report(benchmark):
    rows = benchmark(
        lambda: [
            (f, d, exp, is_isometric_bfs((f, d)), is_isometric_dp((f, d)))
            for f, d, exp in CHECKS
        ]
    )
    assert all(exp == bfs == dp for _, _, exp, bfs, dp in rows)
    print_table(
        "Section 5 computer checks, re-verified",
        ["f", "d", "paper", "BFS engine", "DP engine"],
        rows,
    )
