"""F2 -- Figure 2 (Section 8): Q_5(11) (Fibonacci cube) vs Q_4(110).

The figure juxtaposes Gamma_5 with the 110-cube Q_4(110) to illustrate the
final-remark identities:

    |V(Q_d(110))| = |V(Gamma_{d+1})| - 1
    |E(Q_d(110))| = |E(Gamma_{d+1})| - 1
    |S(Q_d(110))| = |S(Gamma_{d+1})|
    diam/maxdeg  d  vs  d+1

We reproduce the figure's pair (d = 4) exactly and sweep the identities
over a long series (automaton counters keep it exact at large d).
"""

from repro.invariants.counts import brute_counts
from repro.invariants.structure import structure_report
from repro.words.counting import (
    count_edges_automaton,
    count_squares_automaton,
    count_vertices_automaton,
)

from conftest import print_table


def figure_pair():
    return brute_counts("11", 5), brute_counts("110", 4)


def test_bench_fig2_exact_pair(benchmark):
    gamma5, h4 = benchmark(figure_pair)
    assert gamma5.vertices == h4.vertices + 1
    assert gamma5.edges == h4.edges + 1
    assert gamma5.squares == h4.squares
    rep_g = structure_report(("11", 5))
    rep_h = structure_report(("110", 4))
    assert rep_g.diameter == 5 and rep_h.diameter == 4
    assert rep_g.max_degree == 5 and rep_h.max_degree == 4
    print_table(
        "Figure 2: Q_5(11) vs Q_4(110)",
        ["quantity", "Q_5(11)", "Q_4(110)"],
        [
            ("vertices", gamma5.vertices, h4.vertices),
            ("edges", gamma5.edges, h4.edges),
            ("squares", gamma5.squares, h4.squares),
            ("diameter", rep_g.diameter, rep_h.diameter),
            ("max degree", rep_g.max_degree, rep_h.max_degree),
        ],
    )


def test_bench_fig2_series(benchmark):
    """The identities across d = 0..40 via the automaton counters."""

    def sweep():
        rows = []
        for d in range(0, 41, 5):
            rows.append(
                (
                    d,
                    count_vertices_automaton("110", d),
                    count_vertices_automaton("11", d + 1),
                    count_edges_automaton("110", d),
                    count_edges_automaton("11", d + 1),
                    count_squares_automaton("110", d),
                    count_squares_automaton("11", d + 1),
                )
            )
        return rows

    rows = benchmark(sweep)
    for d, v_h, v_g, e_h, e_g, s_h, s_g in rows:
        assert v_h == v_g - 1, d
        assert e_h == e_g - 1, d
        assert s_h == s_g, d
    print_table(
        "Fig 2 identities at scale",
        ["d", "V(H_d)", "V(G_{d+1})", "E(H_d)", "E(G_{d+1})", "S(H_d)", "S(G_{d+1})"],
        rows,
    )
