"""N2 -- flow-control experiments: wormhole/VCT vs store-and-forward.

Times the finite-buffer wormhole engine (vectorized vs reference,
equivalence asserted), tabulates the switching disciplines on identical
traffic, and runs the deadlock demonstration: BFS-routed wormhole with a
single virtual channel deadlocks on the non-isometric ``Q_5(1010)``
(detected and reported) while strict dimension-order routing delivers
100% of the same traffic -- the Dally--Seitz criterion made dynamic.
"""

import time

from repro.network.deadlock import is_deadlock_free
from repro.network.flowcontrol import FlowControl
from repro.network.routing import BfsRouter, DimensionOrderRouter
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.topology import topology_of
from repro.network.traffic import flit_sizes, uniform_traffic

from conftest import print_table


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_bench_flowcontrol_vectorized_speedup(benchmark):
    """The wormhole cycle loop's equivalence-and-speed contract: the
    array engine must produce the reference engine's exact SimResult,
    measurably faster (>= 2x on the bench workload; ~5x typical)."""
    topo = topology_of(("11", 10))  # Gamma_10: 144 nodes
    traffic = uniform_traffic(topo, 8000, 150, seed=42)
    sizes = flit_sizes(len(traffic), "1-6", seed=7)
    flow = FlowControl("wormhole", buffer_depth=4, num_vcs=2)

    ref_result, ref_seconds = _timed(
        lambda: ReferenceSimulator(topo).run(traffic, switching=flow, flits=sizes)
    )
    vec_result = benchmark(
        lambda: VectorizedSimulator(topo).run(traffic, switching=flow, flits=sizes)
    )
    # best of three: one noisy-neighbour stall must not fail the assert
    vec_seconds = min(
        _timed(
            lambda: VectorizedSimulator(topo).run(
                traffic, switching=flow, flits=sizes
            )
        )[1]
        for _ in range(3)
    )
    assert vec_result == ref_result
    speedup = ref_seconds / vec_seconds
    print_table(
        "Wormhole engine: vectorized vs reference (Gamma_10, 8k packets, 1-6 flits)",
        ["engine", "seconds", "speedup"],
        [
            ("reference", f"{ref_seconds:.3f}", "1.0x"),
            ("vectorized", f"{vec_seconds:.3f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 2.0, f"vectorized wormhole engine only {speedup:.1f}x faster"


def test_bench_flowcontrol_switching_comparison(benchmark):
    """Store-and-forward vs wormhole vs VCT on identical traffic: the
    multi-flit pipelined modes pay serialisation latency, bounded
    buffers cap queue depth (the README table)."""
    topo = topology_of(("11", 8))  # Gamma_8: 55 nodes
    traffic = uniform_traffic(topo, 1500, 96, seed=11)
    sim = VectorizedSimulator(topo, BfsRouter())

    def run_all():
        rows = []
        for label, flow, flits in [
            ("sf", "sf", 1),
            ("wormhole b2", FlowControl("wormhole", buffer_depth=2), 4),
            ("wormhole b8", FlowControl("wormhole", buffer_depth=8), 4),
            ("vct b8", FlowControl("vct", buffer_depth=8), 4),
        ]:
            res = sim.run(traffic, switching=flow, flits=flits)
            rows.append((label, res))
        return rows

    rows = benchmark(run_all)
    by_label = dict(rows)
    assert all(res.delivery_rate == 1.0 for _, res in rows)
    assert all(not res.deadlocked for _, res in rows)
    # 4-flit serialisation costs latency over single-flit store-and-forward
    assert by_label["wormhole b8"].avg_latency > by_label["sf"].avg_latency
    # shallower buffers stall the pipeline harder
    assert by_label["wormhole b2"].avg_latency >= by_label["wormhole b8"].avg_latency
    assert by_label["wormhole b2"].max_queue <= 2
    print_table(
        "Switching modes on Gamma_8 (1.5k packets; 4 flits for wormhole/vct)",
        ["mode", "avg lat", "max lat", "cycles", "max queue"],
        [
            (label, f"{res.avg_latency:.2f}", res.max_latency, res.cycles,
             res.max_queue)
            for label, res in rows
        ],
    )


def test_bench_flowcontrol_deadlock_demo(benchmark):
    """The acceptance demo: on Q_5(1010), BFS wormhole routing with one
    VC deadlocks (reported, cycles bounded) while e-cube delivers 100%
    of the identical traffic -- exactly what the static CDG analysis
    predicts for each router."""
    topo = topology_of(("1010", 5))
    n = topo.num_nodes
    ecube = DimensionOrderRouter()
    pairs = [
        (s, t)
        for s in range(n)
        for t in range(n)
        if s != t and ecube.route(topo, s, t) is not None
    ]
    traffic = [(0, s, t) for s, t in pairs]
    assert not is_deadlock_free(topo, BfsRouter(), pairs)
    assert is_deadlock_free(topo, ecube, pairs)
    flow = FlowControl("wormhole", buffer_depth=1, num_vcs=1)

    res_bfs = benchmark(
        lambda: VectorizedSimulator(topo, BfsRouter()).run(
            traffic, switching=flow, flits=4
        )
    )
    res_ecube = VectorizedSimulator(topo, ecube).run(
        traffic, switching=flow, flits=4
    )
    assert res_bfs.deadlocked and res_bfs.stalled > 0
    assert res_bfs.cycles < 100000  # reported, not hung
    assert not res_ecube.deadlocked
    assert res_ecube.delivery_rate == 1.0
    print_table(
        "Wormhole deadlock on Q_5(1010) (654 packets, 4 flits, 1 VC, depth-1 buffers)",
        ["router", "CDG acyclic", "deadlocked", "delivered", "stalled", "cycles"],
        [
            ("bfs", "no", res_bfs.deadlocked,
             f"{res_bfs.delivered}/{res_bfs.injected}", res_bfs.stalled,
             res_bfs.cycles),
            ("ecube", "yes", res_ecube.deadlocked,
             f"{res_ecube.delivered}/{res_ecube.injected}", res_ecube.stalled,
             res_ecube.cycles),
        ],
    )
