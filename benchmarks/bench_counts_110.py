"""E2/E3/E4 -- eqs. (4)-(6), Propositions 6.2 and 6.3: H_d = Q_d(110).

Four independent sources must agree: brute force, recurrences, closed
forms, automaton counters; plus |V(H_d)| = F_{d+3} - 1.
"""

from repro.combinat.sequences import fibonacci
from repro.invariants.counts import (
    brute_counts,
    edges_110_closed,
    edges_110_convolution,
    recurrences_110,
    squares_110_closed,
    vertices_110_closed,
)
from repro.words.counting import count_squares_automaton

from conftest import print_table


def test_bench_e2_recurrences_vs_bruteforce(benchmark):
    rec = recurrences_110(10)
    brute = benchmark(lambda: [brute_counts("110", d) for d in range(11)])
    rows = []
    for d in range(11):
        assert brute[d] == rec[d], d
        rows.append((d, rec[d].vertices, fibonacci(d + 3) - 1, rec[d].edges, rec[d].squares))
    print_table(
        "Q_d(110): eqs (4)-(6); |V| = F_{d+3}-1",
        ["d", "|V|", "F_{d+3}-1", "|E|", "|S|"],
        rows,
    )


def test_bench_e3_proposition_6_2(benchmark):
    """|E(H_d)|: convolution form == /5 closed form == recurrence."""

    def sweep():
        rec = recurrences_110(300)
        return [
            (d, rec[d].edges, edges_110_convolution(d), edges_110_closed(d))
            for d in range(0, 301, 30)
        ]

    rows = benchmark(sweep)
    for d, by_rec, by_conv, by_closed in rows:
        assert by_rec == by_conv == by_closed, d
    print_table(
        "Prop 6.2: |E(H_d)| three ways (all equal)",
        ["d", "recurrence", "convolution", "closed /5"],
        [(d, a, "=", "=") for d, a, _, _ in rows],
    )


def test_bench_e4_proposition_6_3(benchmark):
    """|S(H_d)| closed form vs recurrence vs automaton."""

    def sweep():
        rec = recurrences_110(150)
        out = []
        for d in range(0, 151, 25):
            out.append((d, rec[d].squares, squares_110_closed(d)))
        out.append((40, count_squares_automaton("110", 40), squares_110_closed(40)))
        return out

    rows = benchmark(sweep)
    for d, got, closed in rows:
        assert got == closed, d
    print_table(
        "Prop 6.3: |S(H_d)| closed form (all equal)",
        ["d", "measured", "closed form"],
        rows,
    )


def test_bench_e2_vertices_closed(benchmark):
    vals = benchmark(lambda: [vertices_110_closed(d) for d in range(200)])
    rec = recurrences_110(199)
    assert vals == [c.vertices for c in rec]
