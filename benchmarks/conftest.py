"""Shared reporting helper for the benchmark harness.

Each ``bench_*.py`` file regenerates one paper artefact (table, figure, or
worked claim), asserts the reproduced shape against the paper, and times
the computational kernel with pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the regenerated rows exactly as the paper prints them.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print an aligned reproduction table (visible under ``pytest -s``)."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print()
    print(f"== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
