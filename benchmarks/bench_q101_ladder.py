"""E11 -- Section 8 worked example: Q_d(101) is isometric in NO hypercube.

Rebuilds the paper's Theta* ladder for a range of d, verifies every rung,
and runs the full Winkler partial-cube recognition as an independent
confirmation.
"""

import pytest

from repro.conjectures.q101 import q101_ladder_certificate, q101_not_partial_cube

from conftest import print_table


@pytest.mark.parametrize("d", [4, 5, 6, 7])
def test_bench_e11_ladder(benchmark, d):
    cert = benchmark(q101_ladder_certificate, d)
    assert len(cert.rungs) == 2 * d - 3
    assert cert.theta_direct is False


@pytest.mark.parametrize("d", [4, 5, 6])
def test_bench_e11_winkler(benchmark, d):
    assert benchmark(q101_not_partial_cube, d)


def test_bench_e11_summary(benchmark):
    rows = benchmark(
        lambda: [
            (d, len(q101_ladder_certificate(d).rungs), q101_not_partial_cube(d))
            for d in (4, 5, 6)
        ]
    )
    print_table(
        "Q_d(101): Theta-ladder rungs and Winkler verdict",
        ["d", "ladder rungs (2d-3)", "not a partial cube"],
        rows,
    )
    assert all(bad for _, _, bad in rows)
