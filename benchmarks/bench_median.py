"""E6 -- Proposition 6.4: median-closed generalized Fibonacci cubes.

Confirms median closure for every |f| = 2 and refutes it (with the
proof's certificate triple) for every |f| in {3, 4} over several d.
"""

from repro.invariants.medianclosed import is_median_closed, median_certificate_triple
from repro.words.core import all_words

from conftest import print_table


def sweep():
    rows = []
    for f in all_words(2):
        for d in (2, 4, 6):
            rows.append((f, d, is_median_closed(f, d), None))
    for length in (3, 4):
        for f in all_words(length):
            for d in (length, length + 2):
                closed = is_median_closed(f, d)
                cert = None if closed else median_certificate_triple(f, d)[3]
                rows.append((f, d, closed, cert))
    return rows


def test_bench_e6_median_classification(benchmark):
    rows = benchmark(sweep)
    for f, d, closed, cert in rows:
        if len(f) == 2:
            assert closed, (f, d)
        else:
            assert not closed, (f, d)
            assert cert is not None
    print_table(
        "Prop 6.4: median closed iff |f| = 2 (certificate = missing median)",
        ["f", "d", "median closed", "missing median"],
        [(f, d, c, m or "-") for f, d, c, m in rows if d <= 5][:20],
    )
