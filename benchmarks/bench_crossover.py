"""E8 -- Theorem 3.3 thresholds: where embeddability crosses over.

The paper's sharpest quantitative claims are the exact crossover
dimensions:

    f = 1^2 0^s (s >= 2):   isometric  iff  d <= s + 4
    f = 1^r 0^s (r,s >= 3): isometric  iff  d <= 2r + 2s - 3

We sweep the families and locate each measured crossover on the real
graphs; it must land exactly on the paper's formula.
"""

import pytest

from repro.isometry.bruteforce import is_isometric_bfs

from conftest import print_table


def measured_threshold(f: str, d_max: int) -> int:
    """Largest d <= d_max with Q_d(f) isometric; asserts monotonicity."""
    pattern = [is_isometric_bfs((f, d)) for d in range(1, d_max + 1)]
    if all(pattern):
        return d_max
    first_bad = pattern.index(False)
    assert not any(pattern[first_bad:]), f"non-monotone pattern for {f}: {pattern}"
    return first_bad  # 1-based d of last True


@pytest.mark.parametrize("s", [2, 3, 4, 5])
def test_bench_e8_thm33ii_crossover(benchmark, s):
    f = "11" + "0" * s
    got = benchmark(measured_threshold, f, s + 7)
    assert got == s + 4, (f, got)


@pytest.mark.parametrize("r,s", [(3, 3)])
def test_bench_e8_thm33iii_crossover(benchmark, r, s):
    f = "1" * r + "0" * s
    got = benchmark(measured_threshold, f, 2 * r + 2 * s - 1)
    assert got == 2 * r + 2 * s - 3, (f, got)


def test_bench_e8_crossover_table(benchmark):
    def sweep():
        rows = []
        for s in (2, 3, 4):
            f = "11" + "0" * s
            rows.append((f, f"s+4 = {s + 4}", measured_threshold(f, s + 7)))
        f = "111000"
        rows.append((f, "2r+2s-3 = 9", measured_threshold(f, 11)))
        return rows

    rows = benchmark(sweep)
    for f, formula, got in rows:
        assert str(got) == formula.split("= ")[1], (f, formula, got)
    print_table(
        "Theorem 3.3 crossovers: paper formula vs measured",
        ["f", "paper threshold", "measured threshold"],
        rows,
    )
