"""T1 -- Table 1 (Section 5): classification of all factors, |f| <= 5.

Regenerates the paper's only table with the theorem engine + the two
brute-force "computer check" gaps, diffs it cell-by-cell against the
printed table, and times the full regeneration.
"""

import pytest

from repro.classify.table1 import classification_table, table1_expected

from conftest import print_table


def build_table():
    return classification_table(max_length=5, max_d=9)


def test_bench_table1_regeneration(benchmark):
    rows = benchmark(build_table)
    got = {r.f: r.threshold for r in rows}
    expected = table1_expected()
    assert got == expected, "regenerated Table 1 deviates from the paper"
    print_table(
        "Table 1 (paper) vs regenerated",
        ["factor", "paper", "measured", "decided by"],
        [
            (
                r.f,
                "always" if expected[r.f] is None else f"d <= {expected[r.f]}",
                "always" if r.threshold is None else f"d <= {r.threshold}",
                "; ".join(r.sources),
            )
            for r in rows
        ],
    )


@pytest.mark.parametrize("f,d", [("10110", 6), ("10101", 6), ("10101", 7)])
def test_bench_table1_computer_checks(benchmark, f, d):
    """The paper's footnoted computer checks, timed individually."""
    from repro.isometry.vectorized import is_isometric_dp

    result = benchmark(is_isometric_dp, (f, d))
    assert result is True
