"""N3 -- collective-communication experiments on the cycle engines.

Times the vectorized engine against the reference engine on compiled
collective traffic (equivalence asserted, >= 2x gate), and regenerates
the paper-lineage comparison: single-port broadcast and allgather across
the hypercube, the Fibonacci cube of comparable order, and a faulted
cube -- round counts against the ``ceil(log2 n)`` bound and measured
completion cycles under contention.
"""

import time

from repro.cubes.hypercube import hypercube
from repro.network.collectives import (
    COLLECTIVES,
    round_lower_bound,
    run_collective,
)
from repro.network.faults import FaultPlan
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.topology import topology_of

from conftest import print_table


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_bench_collectives_vectorized_speedup(benchmark):
    """The engines' contract on collective traffic: compile the alltoall
    exchange once (barriers discovered by the vectorized engine), then
    replay the compiled traffic through both engines -- identical
    SimResult required, the array engine measurably faster (>= 2x on
    the bench workload)."""
    topo = topology_of(("11", 9))  # Gamma_9: 89 nodes
    coll = run_collective(topo, "alltoall")
    traffic = list(coll.traffic)
    assert coll.completed and len(traffic) == 89 * 88

    ref_result, ref_seconds = _timed(
        lambda: ReferenceSimulator(topo).run(traffic)
    )
    vec_result = benchmark(lambda: VectorizedSimulator(topo).run(traffic))
    # best of three: one noisy-neighbour stall must not fail the assert
    vec_seconds = min(
        _timed(lambda: VectorizedSimulator(topo).run(traffic))[1]
        for _ in range(3)
    )
    assert vec_result == ref_result == coll.result
    speedup = ref_seconds / vec_seconds
    print_table(
        "Collective engine replay: vectorized vs reference "
        "(Gamma_9 alltoall, 7832 messages, 88 barriers)",
        ["engine", "seconds", "speedup"],
        [
            ("reference", f"{ref_seconds:.3f}", "1.0x"),
            ("vectorized", f"{vec_seconds:.3f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 2.0, f"vectorized engine only {speedup:.1f}x faster"


def test_bench_collectives_broadcast_vs_topology(benchmark):
    """The paper's comparison, simulated: single-port broadcast on the
    hypercube meets the ceil(log2 n) round bound exactly; the Fibonacci
    cube of comparable order pays at most one extra round; a faulted
    cube loses the subtree behind the dead node but the surviving
    schedule still completes."""
    scenarios = [
        ("Q_5", topology_of(hypercube(5), name="Q_5"), None),
        ("Gamma_7", topology_of(("11", 7)), None),
        ("Gamma_7 + fault", topology_of(("11", 7)), FaultPlan(node_faults=((2, 5),))),
    ]

    def run_all():
        return [
            (label, run_collective(topo, "broadcast", root=0, faults=plan))
            for label, topo, plan in scenarios
        ]

    rows = benchmark(run_all)
    by_label = dict(rows)
    q5, fib, hurt = (
        by_label["Q_5"], by_label["Gamma_7"], by_label["Gamma_7 + fault"]
    )
    assert q5.rounds == q5.round_bound == 5  # binomial tree is optimal
    assert fib.round_bound <= fib.rounds <= fib.round_bound + 1
    assert q5.result.delivered == q5.result.injected
    assert fib.result.delivered == fib.result.injected
    assert hurt.result.dropped > 0
    assert hurt.result.delivered < hurt.result.injected
    nodes = {label: topo.num_nodes for label, topo, _ in scenarios}
    print_table(
        "Single-port broadcast across topologies (root 0)",
        ["topology", "nodes", "rounds", "bound", "cycles", "delivered",
         "max link load"],
        [
            (label, nodes[label], r.rounds, r.round_bound, r.completion_time,
             f"{r.result.delivered}/{r.result.injected}", r.max_link_load)
            for label, r in rows
        ],
    )


def test_bench_collectives_full_table(benchmark):
    """Every collective on the Fibonacci cube vs the hypercube: rounds,
    completion cycles and congestion in one table (the README table)."""
    topos = [
        ("Q_4", topology_of(hypercube(4), name="Q_4")),
        ("Gamma_6", topology_of(("11", 6))),
    ]

    def run_all():
        return [
            (t_label, name, run_collective(topo, name, root=0))
            for t_label, topo in topos
            for name in sorted(COLLECTIVES)
        ]

    rows = benchmark(run_all)
    for _, _, res in rows:
        assert res.completed
        assert res.result.delivered == res.result.injected
        assert res.rounds >= res.round_bound
    hyper = {name: res for t, name, res in rows if t == "Q_4"}
    # recursive doubling meets the bound on the hypercube
    assert hyper["allgather"].rounds == round_lower_bound(topos[0][1])
    print_table(
        "Collectives on Q_4 (16 nodes) vs Gamma_6 (21 nodes)",
        ["topology", "collective", "rounds", "bound", "cycles",
         "messages", "avg lat", "max link load"],
        [
            (t_label, name, res.rounds, res.round_bound,
             res.completion_time, res.result.injected,
             f"{res.result.avg_latency:.2f}", res.max_link_load)
            for t_label, name, res in rows
        ],
    )
