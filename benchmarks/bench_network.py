"""N1 -- interconnection-network experiments (the ICPP'93 lineage).

Compares Q_d, Gamma_d = Q_d(11) and Q_d(111) as interconnection
topologies: size/degree/diameter economics, shortest-path routing by the
distributed canonical rule, single-port broadcast rounds, fault tolerance,
and Hamiltonicity ("mostly Hamiltonian").
"""

import time

import pytest

from collections import Counter

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.network.broadcast import broadcast_rounds
from repro.network.faults import FaultPlan, fault_tolerance_trial
from repro.network.hamilton import find_hamiltonian_path
from repro.network.routing import AdaptiveRouter, BfsRouter, CanonicalRouter, route_stats
from repro.network.simulator import (
    NetworkSimulator,
    ReferenceSimulator,
    VectorizedSimulator,
    uniform_traffic,
)
from repro.network.topology import topology_of

from conftest import print_table

D = 7
TOPOLOGIES = {
    "Q_7": lambda: topology_of(hypercube(D), name="Q_7"),
    "Q_7(11)": lambda: topology_of(("11", D)),
    "Q_7(111)": lambda: topology_of(("111", D)),
}


def test_bench_n1_metrics(benchmark):
    def collect():
        return {name: mk().metrics() for name, mk in TOPOLOGIES.items()}

    metrics = benchmark(collect)
    # Fibonacci cubes trade nodes for sparser wiring at equal diameter
    assert metrics["Q_7"]["nodes"] > metrics["Q_7(111)"]["nodes"] > metrics["Q_7(11)"]["nodes"]
    assert metrics["Q_7"]["diameter"] == metrics["Q_7(11)"]["diameter"] == D
    print_table(
        "Topology economics at d = 7",
        ["topology", "nodes", "links", "max deg", "diameter", "avg dist"],
        [
            (name, m["nodes"], m["links"], m["max_degree"], m["diameter"],
             f"{m['avg_distance']:.2f}")
            for name, m in metrics.items()
        ],
    )


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_bench_n1_canonical_routing_optimal(benchmark, name):
    """On Q_d(1^s) the table-free canonical rule routes optimally
    (Proposition 3.1 made operational)."""
    topo = TOPOLOGIES[name]()
    stats = benchmark(route_stats, topo, CanonicalRouter())
    assert stats.delivery_rate == 1.0
    assert stats.optimality_rate == 1.0


def test_bench_n1_broadcast(benchmark):
    def rounds():
        return [
            (name, *broadcast_rounds(mk(), 0)) for name, mk in TOPOLOGIES.items()
        ]

    rows = benchmark(rounds)
    for name, used, bound in rows:
        assert used <= bound + 3, (name, used, bound)
    print_table("Single-port broadcast rounds", ["topology", "rounds", "log2 bound"], rows)


def test_bench_n1_simulator_latency(benchmark):
    def run():
        out = []
        for name, mk in TOPOLOGIES.items():
            topo = mk()
            traffic = uniform_traffic(topo, 150, 100, seed=42)
            res = NetworkSimulator(topo, BfsRouter()).run(traffic)
            out.append((name, res.delivery_rate, round(res.avg_latency, 2), res.max_queue))
        return out

    rows = benchmark(run)
    for name, rate, avg, _ in rows:
        assert rate == 1.0, name
    print_table(
        "Uniform traffic, store-and-forward simulator",
        ["topology", "delivery", "avg latency", "max queue"],
        rows,
    )


def test_bench_n1_fault_tolerance(benchmark):
    def trial():
        out = []
        for name, mk in TOPOLOGIES.items():
            rep = fault_tolerance_trial(mk(), 3, seed=13)
            out.append((name, rep.still_connected, f"{rep.largest_component_fraction:.3f}",
                        rep.diameter_after))
        return out

    rows = benchmark(trial)
    for name, _, frac, _ in rows:
        assert float(frac) > 0.85, name
    print_table(
        "3 random node faults",
        ["topology", "still connected", "largest comp.", "diameter after"],
        rows,
    )


def test_bench_n1_adaptive_vs_oblivious_under_faults(benchmark):
    """The dynamic fault story: kill the links the canonical rule leans on
    hardest; the fault-oblivious canonical router pays in dropped packets
    while the adaptive detour rule routes around the damage."""
    topo = topology_of(("11", 7))
    traffic = uniform_traffic(topo, 2000, 64, seed=7)
    used = Counter()
    canonical = CanonicalRouter()
    for _, s, t in traffic:
        path = canonical.route(topo, s, t)
        for a, b in zip(path, path[1:]):
            used[(min(a, b), max(a, b))] += 1
    hot_links = [link for link, _ in used.most_common(4)]
    plan = FaultPlan.static(links=hot_links)

    sim_canonical = NetworkSimulator(topo, canonical)
    sim_adaptive = NetworkSimulator(topo, AdaptiveRouter())
    res_canonical = sim_canonical.run(traffic, faults=plan)
    res_adaptive = benchmark(lambda: sim_adaptive.run(traffic, faults=plan))

    assert res_canonical.dropped > 0
    assert res_adaptive.delivered > res_canonical.delivered
    assert res_adaptive.misroutes > 0
    print_table(
        "4 hottest canonical links killed at cycle 0 (Gamma_7, 2k packets)",
        ["router", "delivered", "dropped", "misroutes", "avg latency"],
        [
            ("canonical", res_canonical.delivered, res_canonical.dropped,
             res_canonical.misroutes, f"{res_canonical.avg_latency:.2f}"),
            ("adaptive", res_adaptive.delivered, res_adaptive.dropped,
             res_adaptive.misroutes, f"{res_adaptive.avg_latency:.2f}"),
        ],
    )


@pytest.mark.parametrize("s,d", [(2, 7), (3, 7)])
def test_bench_n1_mostly_hamiltonian(benchmark, s, d):
    g = generalized_fibonacci_cube("1" * s, d).graph()
    path = benchmark(find_hamiltonian_path, g)
    assert path is not None and len(path) == g.num_vertices


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_bench_n1_vectorized_speedup(benchmark):
    """The tentpole claim: the vectorized engine runs the bench-scale
    workload at least 10x faster than the per-packet reference loop,
    while producing an identical SimResult."""
    topo = topology_of(("11", 10))  # Gamma_10: 144 nodes
    traffic = uniform_traffic(topo, 15000, 150, seed=42)
    t0 = time.perf_counter()
    ref_result = ReferenceSimulator(topo).run(traffic)
    ref_seconds = time.perf_counter() - t0

    vec_result = benchmark(lambda: VectorizedSimulator(topo).run(traffic))
    # best of three: one noisy-neighbour stall must not fail the assert
    vec_seconds = min(
        _timed(lambda: VectorizedSimulator(topo).run(traffic)) for _ in range(3)
    )

    assert vec_result == ref_result
    speedup = ref_seconds / vec_seconds
    print_table(
        "Vectorized engine vs reference (Gamma_10, 15k packets)",
        ["engine", "seconds", "speedup"],
        [
            ("reference", f"{ref_seconds:.3f}", "1.0x"),
            ("vectorized", f"{vec_seconds:.3f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 10.0, f"vectorized engine only {speedup:.1f}x faster"


def test_bench_n1_native_backend_speedup(benchmark):
    """The compiled C sf kernel vs the NumPy engines on the advance hot
    path itself (batch preparation excluded on both sides -- it is
    shared code, and at sweep scale it is amortised by batching while
    the cycle loop is not).  The backends must be bit-identical and the
    native one at least 5x faster."""
    import numpy as np

    from repro.network.backends import native as native_mod
    from repro.network.kernel import KernelRun, _link_arrays, run_fused
    from repro.network.routing import BfsRouter
    from repro.network.simulator import _as_flow, _prepare

    if native_mod.load_library()[0] is None:
        pytest.skip("no usable C toolchain for the native backend")

    topo = topology_of(("11", 10))  # Gamma_10: 144 nodes
    traffic = uniform_traffic(topo, 15000, 150, seed=42)
    prep = _prepare(topo, BfsRouter(), list(traffic), None, None)
    link_seq, link_offsets, link_codes = _link_arrays(
        topo.num_nodes, prep.table
    )
    nhops = prep.table.lengths()[prep.row] - 1
    flow = _as_flow("sf")

    def make_run():
        # a KernelRun is consumed by the engine; rebuild per timing
        return KernelRun(
            flow=flow, inject=prep.inject, nhops=nhops,
            first_link_at=link_offsets[prep.row],
            link_seq=link_seq, link_offsets=link_offsets,
            link_codes=link_codes,
            nf=np.ones(len(prep.inject), dtype=np.int64),
            link_dead={},
        )

    def advance(backend):
        return run_fused(topo, [make_run()], 100000, backend=backend)[0]

    native_out = benchmark(lambda: advance("native"))
    numpy_out = advance("numpy")
    # best of three per backend: one stall must not fail the gate
    numpy_seconds = min(_timed(lambda: advance("numpy")) for _ in range(3))
    native_seconds = min(_timed(lambda: advance("native")) for _ in range(3))

    assert numpy_out.cycles == native_out.cycles
    assert numpy_out.max_queue == native_out.max_queue
    assert np.array_equal(numpy_out.delivered_at, native_out.delivered_at)
    speedup = numpy_seconds / native_seconds
    print_table(
        "Kernel backends on the sf advance loop (Gamma_10, 15k packets)",
        ["backend", "seconds", "speedup"],
        [
            ("numpy", f"{numpy_seconds:.4f}", "1.0x"),
            ("native", f"{native_seconds:.4f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 5.0, f"native backend only {speedup:.1f}x faster"
