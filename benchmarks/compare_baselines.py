"""Compare fresh pytest-benchmark JSON against a checked-in baseline.

CI runners are noisy and heterogeneous, so absolute seconds are useless
as a gate: the same commit can be 2x slower on a cold shared runner.
What *is* stable is the shape of a suite -- each benchmark's share of
the suite's total mean time.  If ``test_bench_n2_saturation_grid`` took
40% of the sweep suite yesterday and takes 70% today, one workload
regressed relative to its peers no matter how fast the machine is.

This script loads two pytest-benchmark JSON files (the checked-in
baseline under ``benchmarks/baselines/`` and the fresh CI output),
computes each benchmark's normalized share of the common-set total, and
fails (exit 1) when any share grew by more than ``--tolerance``
(default 25%, relative).  ``--absolute`` gates on raw mean seconds
instead -- useful locally on a quiet machine, wrong for CI.

A benchmark present in the baseline but missing from the fresh run
fails the comparison (a silently dropped workload is a regression in
coverage); a fresh benchmark absent from the baseline is reported but
passes (the baseline just needs regenerating, see below).

The before/after table goes to stdout and, when ``$GITHUB_STEP_SUMMARY``
is set, to the job summary as GitHub-flavoured markdown.

Regenerating a baseline after an intentional perf change::

    PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py -q \
        --benchmark-json=benchmarks/baselines/BENCH_batch.json

Stdlib only: this must run on a bare CI python before (or without)
the dev extras.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

DEFAULT_TOLERANCE = 0.25


def load_means(path: str) -> Dict[str, float]:
    """Map benchmark fullname -> mean seconds from a pytest-benchmark
    JSON file.  Failures name the offending file: when CI compares four
    suites in one loop, "No such file" without a path is a treasure
    hunt."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"compare_baselines: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"compare_baselines: {path} is not valid JSON: {exc}")
    means: Dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        means[bench["fullname"]] = float(bench["stats"]["mean"])
    if not means:
        raise SystemExit(
            f"compare_baselines: {path} contains no benchmarks "
            "(was the suite run with --benchmark-json?)"
        )
    return means


def shares(means: Dict[str, float], names: List[str]) -> Dict[str, float]:
    """Each name's fraction of the summed mean over ``names``."""
    total = sum(means[n] for n in names)
    if total <= 0:
        return {n: 0.0 for n in names}
    return {n: means[n] / total for n in names}


def compare(
    base: Dict[str, float],
    fresh: Dict[str, float],
    tolerance: float,
    absolute: bool,
) -> Tuple[List[Tuple[str, float, float, float, str]], List[str], List[str]]:
    """Rows of (name, baseline metric, fresh metric, ratio, verdict),
    plus the missing-from-fresh and new-in-fresh name lists.

    The metric is the normalized share (or the raw mean with
    ``absolute``); ratio is fresh/baseline and the verdict is ``FAIL``
    when it exceeds ``1 + tolerance``.
    """
    common = sorted(set(base) & set(fresh))
    missing = sorted(set(base) - set(fresh))
    new = sorted(set(fresh) - set(base))
    if absolute:
        b_metric = {n: base[n] for n in common}
        f_metric = {n: fresh[n] for n in common}
    else:
        b_metric = shares(base, common)
        f_metric = shares(fresh, common)
    rows = []
    for name in common:
        b, f = b_metric[name], f_metric[name]
        ratio = f / b if b > 0 else float("inf")
        verdict = "FAIL" if ratio > 1.0 + tolerance else "ok"
        rows.append((name, b, f, ratio, verdict))
    return rows, missing, new


def render(
    title: str,
    rows: List[Tuple[str, float, float, float, str]],
    missing: List[str],
    new: List[str],
    absolute: bool,
) -> str:
    unit = "mean s" if absolute else "share"
    fmt = (lambda v: f"{v:.4f}") if absolute else (lambda v: f"{v:.1%}")
    lines = [
        f"### {title}",
        "",
        f"| benchmark | baseline {unit} | fresh {unit} | ratio | verdict |",
        "| --- | ---: | ---: | ---: | --- |",
    ]
    for name, b, f, ratio, verdict in rows:
        short = name.split("::", 1)[-1]
        lines.append(
            f"| {short} | {fmt(b)} | {fmt(f)} | {ratio:.2f}x | {verdict} |"
        )
    for name in missing:
        short = name.split("::", 1)[-1]
        lines.append(f"| {short} | present | **missing** | -- | FAIL |")
    for name in new:
        short = name.split("::", 1)[-1]
        lines.append(f"| {short} | -- | new | -- | ok (regenerate baseline) |")
    lines.append("")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="checked-in pytest-benchmark JSON")
    parser.add_argument("fresh", help="freshly produced pytest-benchmark JSON")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative growth allowed before failing "
             "(default: %(default)s = 25%%)",
    )
    parser.add_argument(
        "--absolute", action="store_true",
        help="gate on raw mean seconds instead of normalized shares "
             "(machine-dependent; avoid in CI)",
    )
    args = parser.parse_args(argv)

    base = load_means(args.baseline)
    fresh = load_means(args.fresh)
    rows, missing, new = compare(base, fresh, args.tolerance, args.absolute)
    title = os.path.basename(args.fresh)
    table = render(title, rows, missing, new, args.absolute)
    print(table)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(table + "\n")

    failed = [r[0] for r in rows if r[4] == "FAIL"] + missing
    if failed:
        print(
            f"FAIL [{args.fresh} vs baseline {args.baseline}]: "
            f"{len(failed)} benchmark(s) regressed beyond "
            f"{args.tolerance:.0%}: " + ", ".join(failed),
            file=sys.stderr,
        )
        return 1
    print(
        f"ok [{args.fresh}]: {len(rows)} benchmark(s) within "
        f"{args.tolerance:.0%} of {args.baseline}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
