"""E9 -- Lemma 2.4 certificates: paper constructions vs exhaustive search.

For every non-embeddable case in range, the explicit critical pair written
in the paper's proofs must verify, and the exhaustive search must find a
pair of the same (or smaller) criticality p.
"""

import pytest

from repro.isometry.critical import find_critical_pair, paper_critical_pair

from conftest import print_table

CASES = [
    ("101", 4),    # Prop 3.2
    ("1101", 5),   # Prop 3.2
    ("1001", 5),   # Prop 3.2
    ("1100", 7),   # Thm 3.3, r=s=2, 3-critical
    ("1100", 8),   # Thm 3.3 Case 2
    ("11000", 8),  # Thm 3.3(ii) boundary +1
    ("10110", 7),  # Prop 4.2
    ("10101", 8),  # Prop 4.1
]


@pytest.mark.parametrize("f,d", CASES)
def test_bench_e9_paper_construction(benchmark, f, d):
    pair = benchmark(paper_critical_pair, f, d)
    assert pair is not None, (f, d)


@pytest.mark.parametrize("f,d", CASES)
def test_bench_e9_search_confirms(benchmark, f, d):
    pair = benchmark(find_critical_pair, (f, d), 3)
    assert pair is not None, (f, d)


def test_bench_e9_side_by_side(benchmark):
    rows = benchmark(
        lambda: [
            (f, d, paper_critical_pair(f, d).source, paper_critical_pair(f, d).p,
             find_critical_pair((f, d), 3).p)
            for f, d in CASES
        ]
    )
    for f, d, source, p_paper, p_search in rows:
        assert p_search <= p_paper
    print_table(
        "Critical words: paper construction vs search",
        ["f", "d", "construction", "p (paper)", "p (search)"],
        rows,
    )
