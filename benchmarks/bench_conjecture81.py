"""E12 -- Conjecture 8.1: Q_d(f) isometric => Q_d(ff) isometric.

Experimental sweep over all factors up to length 4 and d <= 8: every
non-vacuous instance must support the conjecture (a violation would be a
publishable counterexample; the bench fails loudly in that case).
"""

from repro.conjectures.conj81 import sweep_conjecture_81

from conftest import print_table


def test_bench_e12_sweep(benchmark):
    cases = benchmark(sweep_conjecture_81, 4, 8)
    violations = [c for c in cases if c.violates]
    support = sum(1 for c in cases if c.supports)
    assert not violations, f"counterexample(s) to Conjecture 8.1: {violations[:3]}"
    assert support > 50
    by_factor = {}
    for c in cases:
        by_factor.setdefault(c.f, []).append(c)
    rows = [
        (f, len(cs), sum(1 for c in cs if c.supports))
        for f, cs in sorted(by_factor.items())
    ]
    print_table(
        "Conjecture 8.1 sweep (premise-true cases, zero violations)",
        ["f", "cases", "supporting"],
        rows[:24],
    )
