"""X1 -- extension experiments beyond the paper's printed artefacts.

Three studies the paper's definitions invite but do not carry out:

1. **Multi-factor cubes** ``Q_d(F)``: single-factor admissibility does not
   compose -- ``Q_d(111)`` and ``Q_d(000)`` are isometric for every ``d``
   (Prop 3.1 + Lemma 2.2), yet ``Q_d({111, 000})`` stops being isometric
   at ``d = 4``.
2. **Cube polynomial**: the Section 6 counts are coefficients 0..2 of
   ``C(Q_d(f), x)``; we compute the whole polynomial and validate the
   Fibonacci-cube closed recurrence.
3. **Even-cycle spectrum** (reference [22]): ``Q_d(1^s)`` has cycles of
   every even length.
"""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.multifactor import multi_factor_cube
from repro.invariants.counts import brute_counts
from repro.invariants.cubepoly import cube_coefficients, gamma_cube_coefficient
from repro.isometry.bruteforce import is_isometric_bfs
from repro.network.cycles import has_even_cycles_everywhere

from conftest import print_table


def test_bench_x1_multifactor_isometry(benchmark):
    def sweep():
        rows = []
        for d in range(2, 8):
            cube = multi_factor_cube(("111", "000"), d)
            rows.append((d, cube.num_vertices, is_isometric_bfs(cube)))
        return rows

    rows = benchmark(sweep)
    verdicts = {d: iso for d, _, iso in rows}
    assert verdicts[2] and verdicts[3]
    assert not any(verdicts[d] for d in range(4, 8))
    print_table(
        "Q_d({111,000}): joint isometry breaks at d = 4 "
        "(each factor alone is admissible for every d)",
        ["d", "|V|", "isometric"],
        rows,
    )


def test_bench_x1_cube_polynomial(benchmark):
    def compute():
        return {d: cube_coefficients(("11", d)) for d in range(0, 9)}

    polys = benchmark(compute)
    rows = []
    for d, co in polys.items():
        bc = brute_counts("11", d)
        assert co[0] == bc.vertices
        assert (co[1] if len(co) > 1 else 0) == bc.edges
        assert (co[2] if len(co) > 2 else 0) == bc.squares
        for k in range(len(co)):
            assert co[k] == gamma_cube_coefficient(d, k), (d, k)
        rows.append((d, [c for c in co if c] or [co[0]]))
    print_table(
        "Cube polynomial of Gamma_d (coefficients c_0, c_1, ...)",
        ["d", "nonzero coefficients"],
        rows,
    )


@pytest.mark.parametrize("s,d", [(2, 5), (2, 6), (3, 5)])
def test_bench_x1_even_cycle_spectrum(benchmark, s, d):
    g = generalized_fibonacci_cube("1" * s, d).graph()
    assert benchmark(has_even_cycles_everywhere, g)


def test_bench_x1_frontier_length6(benchmark):
    """Table 1 extended to |f| = 6: 20 orbits, classified exactly."""
    from repro.classify.frontier import classify_frontier, frontier_statistics

    rows = benchmark(classify_frontier, 6, 8)
    stats = frontier_statistics(rows)
    assert stats["orbits"] == 20
    assert stats["needed_computer"] >= 1
    print_table(
        "Length-6 frontier (beyond the paper's Table 1)",
        ["f", "pattern", "computer cells", "sources"],
        [
            (
                r.f,
                "always (<= 8)" if r.threshold is None else f"iff d <= {r.threshold}",
                ",".join(map(str, r.computer_cells)) or "-",
                "; ".join(s for s in r.sources if s != "Lemma 2.1"),
            )
            for r in rows
        ],
    )


def test_bench_x1_deadlock_freedom(benchmark):
    """Dimension-ordered routing is deadlock-free exactly on the 1^s family.

    On Q_d(1^s) the canonical route never needs its skip fallback
    (Prop 3.1's proof), so dimension order is preserved and the CDG is
    acyclic.  On Q_5(1010) -- isometric too (Thm 4.4)! -- the fallback
    reorders dimensions and a channel-dependency cycle appears: isometry
    alone does not buy deadlock freedom.
    """
    from repro.network.deadlock import is_deadlock_free
    from repro.network.routing import CanonicalRouter
    from repro.network.topology import topology_of

    def sweep():
        return [
            (f"Q_{d}({f})", is_deadlock_free(topology_of((f, d)), CanonicalRouter()))
            for f, d in [("11", 5), ("11", 6), ("111", 5), ("1010", 5)]
        ]

    rows = benchmark(sweep)
    verdicts = dict(rows)
    assert verdicts["Q_5(11)"] and verdicts["Q_6(11)"] and verdicts["Q_5(111)"]
    assert not verdicts["Q_5(1010)"]
    print_table(
        "Dally-Seitz check of canonical routing "
        "(deadlock-free iff no skip fallback needed)",
        ["topology", "deadlock-free"],
        rows,
    )


def test_bench_x1_lattice_dimension(benchmark):
    """Eppstein lattice dimension (the paper's reference [6]) on Gamma_d."""
    from repro.cubes.fibonacci import fibonacci_cube
    from repro.dimension.lattice import lattice_dimension
    from repro.isometry.theta import idim

    def sweep():
        out = []
        for d in range(2, 6):
            g = fibonacci_cube(d).graph()
            out.append((d, idim(g), lattice_dimension(g)))
        return out

    rows = benchmark(sweep)
    for d, i, label in rows:
        assert i == d and label <= i
    print_table("Gamma_d: isometric vs lattice dimension", ["d", "idim", "ldim"], rows)
