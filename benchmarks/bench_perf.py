"""P1 -- performance ablations of the implementation choices.

Not a paper artefact: these benches quantify the engineering decisions
DESIGN.md calls out, so regressions in the fast paths are measurable.

- cube construction: automaton sweep vs per-word filtering;
- isometry: vectorised DP vs per-vertex BFS reference;
- counting: transfer matrix vs enumeration;
- BFS: CSR frontier sweep vs deque.
"""

import pytest

from repro.cubes.generalized import GeneralizedFibonacciCube
from repro.graphs.traversal import bfs_distances, bfs_distances_csr
from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.vectorized import is_isometric_dp
from repro.words.counting import count_vertices_automaton
from repro.words.enumerate import avoiding_int_array, count_avoiding_bruteforce


class TestConstruction:
    def test_vertex_sweep_d16(self, benchmark):
        codes = benchmark(avoiding_int_array, "11", 16)
        assert codes.size == 2584  # F_18

    def test_full_cube_build_d12(self, benchmark):
        def build():
            cube = GeneralizedFibonacciCube("110", 12)
            return cube.graph().num_edges

        edges = benchmark(build)
        assert edges > 0


class TestIsometryEngines:
    """Ablation: the DP engine vs the BFS reference on the same input."""

    CASE = ("1100", 8)  # 100+ vertices, non-isometric

    def test_bfs_reference(self, benchmark):
        assert benchmark(is_isometric_bfs, self.CASE) is False

    def test_dp_vectorised(self, benchmark):
        assert benchmark(is_isometric_dp, self.CASE) is False

    def test_bfs_isometric_case(self, benchmark):
        assert benchmark(is_isometric_bfs, ("11", 12)) is True

    def test_dp_isometric_case(self, benchmark):
        assert benchmark(is_isometric_dp, ("11", 12)) is True


class TestCounting:
    """Ablation: transfer-matrix counting vs enumeration."""

    def test_automaton_count_d24(self, benchmark):
        assert benchmark(count_vertices_automaton, "11", 24) == 121393

    def test_enumeration_count_d24(self, benchmark):
        assert benchmark(count_avoiding_bruteforce, "11", 24) == 121393

    def test_automaton_count_d2000(self, benchmark):
        # enumeration could never do this
        v = benchmark(count_vertices_automaton, "110", 2000)
        assert v > 10**400


class TestBfsKernels:
    """Ablation: CSR frontier sweep vs deque BFS on a dense cube level."""

    @pytest.fixture(scope="class")
    def big_graph(self):
        return GeneralizedFibonacciCube("111", 14).graph()

    def test_deque_bfs(self, benchmark, big_graph):
        dist = benchmark(bfs_distances, big_graph, 0)
        assert int(dist.max()) >= 7

    def test_csr_bfs(self, benchmark, big_graph):
        dist = benchmark(bfs_distances_csr, big_graph, 0)
        assert int(dist.max()) >= 7
