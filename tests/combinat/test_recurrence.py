"""Unit tests for the linear/affine recurrence engine."""

import pytest

from repro.combinat.recurrence import AffineRecurrence, LinearRecurrence
from repro.combinat.sequences import fibonacci, tribonacci


class TestAffineRecurrence:
    def test_fibonacci(self):
        rec = AffineRecurrence([1, 1], [0, 1])
        assert [rec(n) for n in range(10)] == [fibonacci(n) for n in range(10)]

    def test_constant_term(self):
        # a(n) = a(n-1) + 1, a(0) = 0  ->  a(n) = n
        rec = AffineRecurrence([1], [0], constant=1)
        assert [rec(n) for n in range(6)] == [0, 1, 2, 3, 4, 5]

    def test_v110_recurrence(self):
        # eq (4): V(d) = V(d-1) + V(d-2) + 1 with V(0)=1, V(1)=2 gives F_{d+3}-1
        rec = AffineRecurrence([1, 1], [1, 2], constant=1)
        for d in range(20):
            assert rec(d) == fibonacci(d + 3) - 1

    def test_prefix(self):
        rec = AffineRecurrence([1, 1], [0, 1])
        assert rec.prefix(6) == [0, 1, 1, 2, 3, 5, 8]

    def test_wrong_initial_count(self):
        with pytest.raises(ValueError):
            AffineRecurrence([1, 1], [0])

    def test_empty_coeffs(self):
        with pytest.raises(ValueError):
            AffineRecurrence([], [])

    def test_negative_index(self):
        rec = AffineRecurrence([1], [1])
        with pytest.raises(ValueError):
            rec(-1)


class TestLinearRecurrence:
    def test_at_matches_iterative(self):
        rec = LinearRecurrence([1, 1], [0, 1])
        for n in (0, 1, 5, 40, 97):
            assert rec.at(n) == fibonacci(n)

    def test_tribonacci_companion(self):
        rec = LinearRecurrence([1, 1, 1], [0, 0, 1])
        for n in (0, 2, 10, 37):
            assert rec.at(n) == tribonacci(n)

    def test_companion_matrix_shape(self):
        rec = LinearRecurrence([2, 0, 1], [1, 2, 3])
        mat = rec.companion_matrix()
        assert mat == [[2, 0, 1], [1, 0, 0], [0, 1, 0]]

    def test_at_negative_rejected(self):
        rec = LinearRecurrence([1], [1])
        with pytest.raises(ValueError):
            rec.at(-3)
