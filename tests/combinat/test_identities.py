"""Unit tests for Fibonacci identities and Gamma_d counting formulas."""

import pytest

from repro.combinat.identities import (
    fibonacci_convolution,
    fibonacci_convolution_closed,
    gamma_edge_count,
    gamma_square_count,
    gamma_vertex_count,
)

from tests.conftest import naive_avoiding, naive_count_edges, naive_count_squares


class TestConvolution:
    def test_small_values(self):
        # d = 0: F_1 F_1 = 1;  d = 1: F_1 F_2 + F_2 F_1 = 2
        assert fibonacci_convolution(0) == 1
        assert fibonacci_convolution(1) == 2

    @pytest.mark.parametrize("d", range(0, 30, 3))
    def test_closed_form_matches_sum(self, d):
        assert fibonacci_convolution(d) == fibonacci_convolution_closed(d)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci_convolution(-1)
        with pytest.raises(ValueError):
            fibonacci_convolution_closed(-1)


class TestGammaCounts:
    @pytest.mark.parametrize("d", range(0, 10))
    def test_vertex_count_vs_enumeration(self, d):
        assert gamma_vertex_count(d) == len(naive_avoiding("11", d))

    @pytest.mark.parametrize("d", range(0, 10))
    def test_edge_count_vs_enumeration(self, d):
        assert gamma_edge_count(d) == naive_count_edges("11", d)

    @pytest.mark.parametrize("d", range(0, 10))
    def test_square_count_vs_enumeration(self, d):
        assert gamma_square_count(d) == naive_count_squares("11", d)

    def test_closed_forms_are_integral_far_out(self):
        # Fraction arithmetic raises if the /5 and /50 divisions ever fail
        for d in range(0, 200, 17):
            gamma_edge_count(d)
            gamma_square_count(d)

    def test_negative_rejected(self):
        for fn in (gamma_vertex_count, gamma_edge_count, gamma_square_count):
            with pytest.raises(ValueError):
                fn(-1)
