"""Unit tests for Fibonacci-family sequences."""

import pytest

from repro.combinat.sequences import (
    fibonacci,
    fibonacci_pair,
    kbonacci,
    lucas_number,
    tribonacci,
)


class TestFibonacci:
    def test_convention(self):
        # paper convention F_1 = F_2 = 1
        assert [fibonacci(n) for n in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]

    def test_recurrence_far_out(self):
        for n in (50, 90, 200):
            assert fibonacci(n) == fibonacci(n - 1) + fibonacci(n - 2)

    def test_fast_doubling_pair(self):
        for n in range(30):
            assert fibonacci_pair(n) == (fibonacci(n), fibonacci(n + 1))

    def test_big_value_exact(self):
        assert fibonacci(100) == 354224848179261915075

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fibonacci(-1)


class TestLucas:
    def test_initial(self):
        assert [lucas_number(n) for n in range(8)] == [2, 1, 3, 4, 7, 11, 18, 29]

    def test_recurrence(self):
        for n in range(2, 25):
            assert lucas_number(n) == lucas_number(n - 1) + lucas_number(n - 2)

    def test_identity_with_fibonacci(self):
        for n in range(1, 20):
            assert lucas_number(n) == fibonacci(n - 1) + fibonacci(n + 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lucas_number(-2)


class TestKbonacci:
    def test_tribonacci_values(self):
        assert [tribonacci(n) for n in range(9)] == [0, 0, 1, 1, 2, 4, 7, 13, 24]

    def test_k2_is_fibonacci(self):
        for n in range(20):
            assert kbonacci(2, n) == fibonacci(n)

    def test_recurrence_order4(self):
        vals = [kbonacci(4, n) for n in range(20)]
        for n in range(4, 20):
            assert vals[n] == sum(vals[n - 4 : n])

    def test_order_below_two_rejected(self):
        with pytest.raises(ValueError):
            kbonacci(1, 5)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            kbonacci(3, -1)

    def test_counts_words_avoiding_ones_run(self):
        # |V(Q_d(1^k))| equals a shifted k-bonacci number; verify against
        # the naive filter for k = 3
        from tests.conftest import naive_avoiding

        for d in range(9):
            assert len(naive_avoiding("111", d)) == kbonacci(3, d + 3)
