"""Property-based tests (hypothesis) across the cube/isometry layer.

Random factors and dimensions; the invariants under test are the paper's
own structural facts, so these are randomized reproductions rather than
generic fuzzing.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classify.engine import classify
from repro.classify.verdict import Status
from repro.cubes.generalized import GeneralizedFibonacciCube
from repro.cubes.symmetries import factor_orbit
from repro.invariants.distances import wiener_by_cuts, wiener_index
from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.vectorized import is_isometric_dp
from repro.words.core import complement, hamming, reverse
from repro.words.counting import count_edges_automaton, count_vertices_automaton
from repro.words.correlation import count_avoiding_gf

factors = st.text(alphabet="01", min_size=1, max_size=5)
dims = st.integers(min_value=1, max_value=7)


@given(factors, dims)
@settings(max_examples=80, deadline=None)
def test_engines_always_agree(f, d):
    """The BFS reference and the vectorised DP never disagree."""
    assert is_isometric_bfs((f, d)) == is_isometric_dp((f, d))


@given(factors, dims)
@settings(max_examples=80, deadline=None)
def test_counting_engines_agree(f, d):
    """Enumeration, transfer matrix, and Guibas-Odlyzko all count alike."""
    cube = GeneralizedFibonacciCube(f, d)
    assert cube.num_vertices == count_vertices_automaton(f, d)
    assert cube.num_vertices == count_avoiding_gf(f, d)
    assert cube.num_edges == count_edges_automaton(f, d)


@given(factors, dims)
@settings(max_examples=60, deadline=None)
def test_orbit_invariance(f, d):
    """Lemmas 2.2/2.3: everything transfers along the symmetry orbit."""
    base_v = count_vertices_automaton(f, d)
    base_e = count_edges_automaton(f, d)
    base_iso = is_isometric_bfs((f, d))
    for g in factor_orbit(f):
        assert count_vertices_automaton(g, d) == base_v
        assert count_edges_automaton(g, d) == base_e
        assert is_isometric_bfs((g, d)) == base_iso


@given(factors, dims)
@settings(max_examples=60, deadline=None)
def test_theorem_engine_sound(f, d):
    """Any decided verdict matches the machine (soundness of the rules)."""
    v = classify(f, d)
    if v.status is Status.UNKNOWN:
        return
    assert (v.status is Status.ISOMETRIC) == is_isometric_bfs((f, d))


@given(factors, dims)
@settings(max_examples=40, deadline=None)
def test_lemma_2_1_region(f, d):
    """d <= |f| always embeds (Lemma 2.1), randomized."""
    if d <= len(f):
        assert is_isometric_bfs((f, d))


@given(factors, dims)
@settings(max_examples=40, deadline=None)
def test_wiener_cut_witness(f, d):
    """Aggregate isometry witness: cut-Wiener == Wiener iff isometric
    (on connected cubes with >= 2 vertices)."""
    from repro.graphs.traversal import is_connected

    cube = GeneralizedFibonacciCube(f, d)
    if cube.num_vertices < 2 or not is_connected(cube.graph()):
        return
    equal = wiener_by_cuts(cube) == wiener_index(cube)
    assert equal == is_isometric_bfs(cube)


@given(factors, dims, st.data())
@settings(max_examples=60, deadline=None)
def test_adjacency_is_exactly_hamming_one(f, d, data):
    cube = GeneralizedFibonacciCube(f, d)
    if cube.num_vertices < 2:
        return
    g = cube.graph()
    i = data.draw(st.integers(min_value=0, max_value=cube.num_vertices - 1))
    j = data.draw(st.integers(min_value=0, max_value=cube.num_vertices - 1))
    if i == j:
        return
    expected = hamming(cube.word_of(i), cube.word_of(j)) == 1
    assert g.has_edge(i, j) == expected


@given(factors)
@settings(max_examples=60, deadline=None)
def test_orbit_is_group_action(f):
    orbit = set(factor_orbit(f))
    assert {complement(g) for g in orbit} == orbit
    assert {reverse(g) for g in orbit} == orbit
