"""Djokovic--Winkler relation, partial cubes, isometric dimension."""

import pytest

from repro.cubes.fibonacci import fibonacci_cube
from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.isometry.theta import (
    hypercube_coordinates,
    idim,
    is_bipartite,
    is_partial_cube,
    theta_classes,
    theta_matrix,
)
from repro.words.core import hamming

from tests.conftest import complete_graph, cycle_graph, grid_graph, path_graph, star_graph


class TestBipartite:
    def test_even_cycle(self):
        assert is_bipartite(cycle_graph(6))

    def test_odd_cycle(self):
        assert not is_bipartite(cycle_graph(5))

    def test_tree(self):
        assert is_bipartite(star_graph(4))

    def test_disconnected_mixed(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3), (3, 4), (4, 2)])
        assert not is_bipartite(g)


class TestTheta:
    def test_path_every_edge_own_class(self):
        g = path_graph(5)
        classes = theta_classes(g)
        assert len(classes) == 4
        assert all(len(c) == 1 for c in classes)

    def test_even_cycle_opposite_edges(self):
        g = cycle_graph(6)
        classes = theta_classes(g)
        assert len(classes) == 3
        assert all(len(c) == 2 for c in classes)

    def test_hypercube_classes_are_directions(self):
        g = hypercube(3)
        classes = theta_classes(g)
        assert len(classes) == 3
        assert all(len(c) == 4 for c in classes)

    def test_theta_matrix_symmetric(self):
        g = grid_graph(2, 3)
        mat = theta_matrix(g)
        assert (mat == mat.T).all()

    def test_empty_graph(self):
        assert theta_matrix(Graph(1)).shape == (0, 0)


class TestPartialCubes:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: path_graph(5), True),
            (lambda: cycle_graph(6), True),
            (lambda: cycle_graph(5), False),  # odd
            (lambda: complete_graph(3), False),
            (lambda: star_graph(4), True),  # tree
            (lambda: grid_graph(3, 3), True),
            (lambda: hypercube(4), True),
            (lambda: fibonacci_cube(5).graph(), True),
            (lambda: complete_graph(4), False),
        ],
    )
    def test_recognition(self, builder, expected):
        assert is_partial_cube(builder()) == expected

    def test_k23_not_partial_cube(self):
        # K_{2,3} is bipartite but not a partial cube
        g = Graph.from_edges(5, [(i, j) for i in (0, 1) for j in (2, 3, 4)])
        assert is_bipartite(g)
        assert not is_partial_cube(g)

    def test_disconnected_not_partial_cube(self):
        assert not is_partial_cube(Graph.from_edges(4, [(0, 1), (2, 3)]))

    def test_q_d_101_never_partial_cube(self):
        """The Section 8 example, full Winkler check for several d."""
        for d in range(4, 7):
            g = generalized_fibonacci_cube("101", d).graph()
            assert not is_partial_cube(g), d


class TestIdim:
    def test_path(self):
        assert idim(path_graph(6)) == 5

    def test_tree_edges(self):
        # every tree: idim = number of edges
        assert idim(star_graph(5)) == 5

    def test_even_cycle(self):
        assert idim(cycle_graph(8)) == 4

    def test_hypercube(self):
        assert idim(hypercube(4)) == 4

    def test_fibonacci_cube(self):
        # Gamma_d embeds in Q_d and in nothing smaller
        for d in range(1, 6):
            assert idim(fibonacci_cube(d).graph()) == d

    def test_grid(self):
        assert idim(grid_graph(3, 4)) == 2 + 3

    def test_non_partial_cube_is_none(self):
        assert idim(complete_graph(3)) is None

    def test_single_vertex(self):
        assert idim(Graph(1)) == 0


class TestCoordinates:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: path_graph(5),
            lambda: cycle_graph(6),
            lambda: grid_graph(2, 4),
            lambda: fibonacci_cube(4).graph(),
        ],
    )
    def test_coordinates_isometric(self, builder):
        from repro.graphs.traversal import all_pairs_distances

        g = builder()
        coords = hypercube_coordinates(g)
        dist = all_pairs_distances(g)
        n = g.num_vertices
        assert len({len(c) for c in coords}) == 1
        for u in range(n):
            for v in range(n):
                assert hamming(coords[u], coords[v]) == int(dist[u, v])

    def test_word_length_is_idim(self):
        g = cycle_graph(6)
        coords = hypercube_coordinates(g)
        assert len(coords[0]) == idim(g)

    def test_raises_on_non_partial_cube(self):
        with pytest.raises(ValueError):
            hypercube_coordinates(complete_graph(3))
        with pytest.raises(ValueError):
            hypercube_coordinates(Graph.from_edges(5, [(i, j) for i in (0, 1) for j in (2, 3, 4)]))

    def test_single_vertex(self):
        assert hypercube_coordinates(Graph(1)) == [""]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hypercube_coordinates(Graph(0))
