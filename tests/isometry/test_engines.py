"""The two isometry engines: BFS reference vs vectorised DP.

Both must agree everywhere, and both must agree with Table 1.
"""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.isometry.bruteforce import (
    is_isometric_bfs,
    isometric_defect,
    popcount64,
    subgraph_distances,
)
from repro.isometry.vectorized import is_isometric_dp, isometry_report
from repro.words.core import all_words, hamming

import numpy as np


# cases with known verdicts straight from Table 1
KNOWN = [
    ("11", 8, True),
    ("111", 8, True),
    ("110", 8, True),
    ("101", 3, True),
    ("101", 4, False),
    ("1100", 6, True),
    ("1100", 7, False),
    ("1010", 9, True),
    ("1101", 4, True),
    ("1101", 5, False),
    ("1001", 5, False),
    ("11010", 9, True),
    ("10110", 6, True),
    ("10110", 7, False),
    ("10101", 7, True),
    ("10101", 8, False),
    ("11100", 7, True),
    ("11100", 8, False),
]


class TestKnownVerdicts:
    @pytest.mark.parametrize("f,d,expected", KNOWN)
    def test_bfs_engine(self, f, d, expected):
        assert is_isometric_bfs((f, d)) == expected

    @pytest.mark.parametrize("f,d,expected", KNOWN)
    def test_dp_engine(self, f, d, expected):
        assert is_isometric_dp((f, d)) == expected


class TestEnginesAgreeExhaustively:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_all_factors_small_d(self, length):
        for f in all_words(length):
            if "1" not in f and "0" not in f:
                continue
            for d in range(1, 8):
                assert is_isometric_bfs((f, d)) == is_isometric_dp((f, d)), (f, d)


class TestDefects:
    def test_isometric_has_no_defect(self):
        assert isometric_defect(("11", 7)) is None

    def test_defect_structure(self):
        b, c, inner, outer = isometric_defect(("101", 4))
        cube = generalized_fibonacci_cube("101", 4)
        assert b in cube and c in cube
        assert hamming(b, c) == outer
        assert inner > outer or inner == -1

    def test_report_witness_is_critical_level(self):
        rep = isometry_report(("101", 4))
        assert not rep.isometric
        assert rep.first_bad_level == 2
        b, c = rep.witness
        assert hamming(b, c) == 2
        assert rep.num_bad_pairs > 0

    def test_report_isometric(self):
        rep = isometry_report(("110", 7))
        assert rep.isometric
        assert rep.first_bad_level is None
        assert rep.witness is None
        assert rep.num_bad_pairs == 0

    def test_dp_memory_guard(self):
        with pytest.raises(MemoryError):
            isometry_report(("10101010", 16), max_vertices=10)

    def test_single_vertex_cube_is_isometric(self):
        # f = "1", all-zero word only
        assert is_isometric_bfs(("1", 5))
        assert is_isometric_dp(("1", 5))


class TestSubgraphDistances:
    def test_distances_from_zero_match_hamming_when_isometric(self):
        cube = generalized_fibonacci_cube("11", 6)
        i0 = cube.index_of_word("000000")
        dist = subgraph_distances(cube, i0)
        for j in range(len(cube)):
            assert dist[j] == bin(cube.code_of(j)).count("1")

    def test_accepts_tuple(self):
        dist = subgraph_distances(("11", 4), 0)
        assert dist[0] == 0


class TestPopcount:
    def test_matches_bin_count(self):
        vals = np.array([0, 1, 2, 3, 255, 2**40 - 1, 2**62 - 3], dtype=np.int64)
        got = popcount64(vals)
        want = [bin(int(v)).count("1") for v in vals]
        assert got.tolist() == want

    def test_shape_preserved(self):
        vals = np.arange(16, dtype=np.int64).reshape(4, 4)
        assert popcount64(vals).shape == (4, 4)
