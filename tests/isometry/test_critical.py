"""Lemma 2.4 p-critical words: search and paper constructions."""

import pytest

from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.critical import (
    CriticalPair,
    find_critical_pair,
    paper_critical_pair,
    verify_critical_pair,
)
from repro.words.core import hamming


class TestVerification:
    def test_paper_prop32_example(self):
        # f = 101, d = 4: b = 1101? no -- use the Prop 3.2 shape directly:
        # r=s=t=1, d=4: b = 1 1 0^0 1 1 -> "1111"? stick to the generator
        pair = paper_critical_pair("101", 4)
        assert verify_critical_pair("101", pair.b, pair.c)

    def test_invalid_pair_rejected(self):
        # vertices of Q_4(11) at distance 2 with a free interval neighbour
        assert not verify_critical_pair("11", "0000", "0101")

    def test_wrong_length_pair(self):
        assert not verify_critical_pair("11", "000", "0101")

    def test_pair_containing_factor_rejected(self):
        assert not verify_critical_pair("11", "1100", "0000")

    def test_distance_one_rejected(self):
        assert not verify_critical_pair("101", "0000", "0001")

    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            CriticalPair("11", 4, "0000", "0101", 2, source="bogus")


class TestSearch:
    def test_finds_pair_exactly_when_not_isometric(self):
        # Lemma 2.4 gives one direction; for these small cubes the search
        # also certifies the converse experimentally.
        for f, d in [("101", 4), ("1101", 5), ("1100", 7), ("10110", 7)]:
            assert not is_isometric_bfs((f, d))
            pair = find_critical_pair((f, d))
            assert pair is not None, (f, d)
            assert pair.source == "search"

    def test_no_pair_in_isometric_cubes(self):
        for f, d in [("11", 6), ("110", 6), ("1010", 7), ("11010", 7)]:
            assert find_critical_pair((f, d), p_max=3) is None, (f, d)

    def test_search_respects_p_max(self):
        # Q_7(1100) has a 3-critical pair but no 2-critical pair
        assert find_critical_pair(("1100", 7), p_max=2) is None
        pair = find_critical_pair(("1100", 7), p_max=3)
        assert pair is not None and pair.p == 3


class TestPaperConstructions:
    @pytest.mark.parametrize(
        "f,d_min",
        [
            ("101", 4),      # r=s=t=1
            ("1101", 5),     # r=2,s=1,t=1
            ("1001", 5),     # r=1,s=2,t=1
            ("11011", 6),    # r=2,s=1,t=2
            ("10001", 6),    # r=1,s=3,t=1
            ("1110111", 8),  # r=3,s=1,t=3
        ],
    )
    def test_prop_3_2_all_d(self, f, d_min):
        for d in range(d_min, d_min + 4):
            pair = paper_critical_pair(f, d)
            assert pair is not None and pair.source == "Proposition 3.2"
            assert pair.p == 2
            assert len(pair.b) == d

    def test_prop_3_2_below_threshold_gives_nothing(self):
        assert paper_critical_pair("101", 3) is None

    @pytest.mark.parametrize("s", [4, 5, 6])
    def test_thm_3_3_case1(self, s):
        f = "11" + "0" * s
        for d in range(s + 5, min(2 * s + 2, s + 8)):
            pair = paper_critical_pair(f, d)
            assert pair is not None, (f, d)
            assert pair.p == 2

    def test_thm_3_3_r2s2_three_critical(self):
        for d in range(7, 11):
            pair = paper_critical_pair("1100", d)
            assert pair is not None and pair.p == 3

    @pytest.mark.parametrize(
        "f,thresh",
        [("11100", 8), ("111000", 10), ("1110000", 12)],
    )
    def test_thm_3_3_case2(self, f, thresh):
        # d >= 2r + 2s - 2
        for d in range(thresh, thresh + 3):
            pair = paper_critical_pair(f, d)
            assert pair is not None, (f, d)

    @pytest.mark.parametrize("s", [2, 3])
    def test_prop_4_1(self, s):
        f = "10" * s + "1"
        for d in range(4 * s, 4 * s + 3):
            pair = paper_critical_pair(f, d)
            assert pair is not None and pair.source == "Proposition 4.1"

    def test_prop_4_1_below_threshold(self):
        assert paper_critical_pair("10101", 7) is None

    @pytest.mark.parametrize("r,s", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_prop_4_2(self, r, s):
        f = "10" * r + "1" + "10" * s
        d0 = 2 * r + 2 * s + 3
        for d in range(d0, d0 + 3):
            pair = paper_critical_pair(f, d)
            assert pair is not None and pair.source == "Proposition 4.2"

    def test_unmatched_factor_returns_none(self):
        assert paper_critical_pair("11", 9) is None
        assert paper_critical_pair("1010", 9) is None

    def test_constructed_pairs_are_hamming_p(self):
        for f, d in [("101", 6), ("1100", 9), ("10101", 9), ("10110", 8)]:
            pair = paper_critical_pair(f, d)
            assert pair is not None
            assert hamming(pair.b, pair.c) == pair.p
