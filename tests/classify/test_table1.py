"""Table 1: the paper's classification for |f| <= 5, regenerated and diffed."""

import pytest

from repro.classify.table1 import (
    Table1Row,
    classification_table,
    orbit_representatives,
    table1_expected,
)


@pytest.fixture(scope="module")
def table():
    return classification_table(max_length=5, max_d=9)


class TestOrbitRepresentatives:
    def test_counts_per_length(self):
        # Burnside over {id, complement, reverse, rev-comp}
        assert len(orbit_representatives(1)) == 1
        assert len(orbit_representatives(2)) == 2
        assert len(orbit_representatives(3)) == 3
        assert len(orbit_representatives(4)) == 6
        assert len(orbit_representatives(5)) == 10

    def test_paper_choices_present(self):
        assert set(orbit_representatives(3)) == {"111", "110", "101"}
        assert "11010" in orbit_representatives(5)
        assert "10101" in orbit_representatives(5)


class TestTable1(object):
    def test_row_count(self, table):
        assert len(table) == 22  # 1 + 2 + 3 + 6 + 10

    def test_exact_match_with_paper(self, table):
        got = {r.f: r.threshold for r in table}
        assert got == table1_expected()

    def test_always_rows(self, table):
        always = {r.f for r in table if r.always_isometric}
        assert always == {
            "1", "11", "10", "111", "110",
            "1111", "1110", "1010",
            "11111", "11110", "11010",
        }

    def test_computer_checks_used_exactly_where_the_paper_did(self, table):
        needed = {r.f for r in table if any("brute force" in s for s in r.sources)}
        assert needed == {"10110", "10101"}

    def test_provenance_nonempty(self, table):
        for row in table:
            assert row.sources, row
            assert "Lemma 2.1" in row.sources

    def test_without_bruteforce_raises(self):
        with pytest.raises(RuntimeError):
            classification_table(max_length=5, max_d=9, use_bruteforce=False)

    def test_small_table_without_bruteforce_ok(self):
        rows = classification_table(max_length=4, max_d=9, use_bruteforce=False)
        got = {r.f: r.threshold for r in rows}
        expected = {k: v for k, v in table1_expected().items() if len(k) <= 4}
        assert got == expected

    def test_row_dataclass(self):
        row = Table1Row("11", None, ("Proposition 3.1",), 9)
        assert row.always_isometric
        row2 = Table1Row("101", 3, ("Proposition 3.2",), 9)
        assert not row2.always_isometric
