"""Rule-level tests: each paper statement matched exactly, never contradicting."""

import pytest

from repro.classify.rules import (
    ALL_RULES,
    applicable_rules,
    rule_lemma_2_1,
    rule_prop_3_1,
    rule_prop_3_2,
    rule_prop_4_1,
    rule_prop_4_2,
    rule_prop_5_1,
    rule_thm_3_3_i,
    rule_thm_3_3_ii,
    rule_thm_3_3_iii,
    rule_thm_4_3,
    rule_thm_4_4,
)
from repro.classify.verdict import Status
from repro.words.core import all_words


class TestIndividualRules:
    def test_lemma_2_1_fires_below_length(self):
        v = rule_lemma_2_1("1100", 4, "1100")
        assert v is not None and v.status is Status.ISOMETRIC

    def test_lemma_2_1_silent_above_length(self):
        assert rule_lemma_2_1("1100", 5, "1100") is None

    def test_prop_3_1_only_ones(self):
        assert rule_prop_3_1("111", 9, "111").status is Status.ISOMETRIC
        assert rule_prop_3_1("110", 9, "110") is None

    def test_thm_3_3_i_matches_1r0(self):
        assert rule_thm_3_3_i("1110", 9, "1110").status is Status.ISOMETRIC
        assert rule_thm_3_3_i("1100", 9, "1100") is None

    def test_thm_3_3_ii_threshold(self):
        assert rule_thm_3_3_ii("1100", 6, "1100").status is Status.ISOMETRIC
        assert rule_thm_3_3_ii("1100", 7, "1100").status is Status.NOT_ISOMETRIC
        # s = 3: threshold s + 4 = 7
        assert rule_thm_3_3_ii("11000", 7, "11000").status is Status.ISOMETRIC
        assert rule_thm_3_3_ii("11000", 8, "11000").status is Status.NOT_ISOMETRIC

    def test_thm_3_3_ii_needs_r2(self):
        assert rule_thm_3_3_ii("111000", 9, "111000") is None

    def test_thm_3_3_iii_threshold(self):
        # r = s = 3: threshold 2r + 2s - 3 = 9
        assert rule_thm_3_3_iii("111000", 9, "111000").status is Status.ISOMETRIC
        assert rule_thm_3_3_iii("111000", 10, "111000").status is Status.NOT_ISOMETRIC

    def test_thm_3_3_iii_needs_both_ge_3(self):
        assert rule_thm_3_3_iii("1100", 5, "1100") is None
        assert rule_thm_3_3_iii("11000", 6, "11000") is None

    def test_prop_3_2_three_blocks(self):
        assert rule_prop_3_2("101", 4, "101").status is Status.NOT_ISOMETRIC
        assert rule_prop_3_2("101", 3, "101") is None  # lemma 2.1 range
        assert rule_prop_3_2("11011", 6, "11011").status is Status.NOT_ISOMETRIC

    def test_prop_3_2_ignores_other_shapes(self):
        assert rule_prop_3_2("1100", 9, "1100") is None
        assert rule_prop_3_2("010", 9, "010") is None  # starts with 0

    def test_thm_4_3(self):
        assert rule_thm_4_3("110110", 12, "110110").status is Status.ISOMETRIC
        assert rule_thm_4_3("1010", 12, "1010") is None  # s = 1 excluded

    def test_thm_4_4(self):
        assert rule_thm_4_4("1010", 12, "1010").status is Status.ISOMETRIC
        assert rule_thm_4_4("10", 12, "10").status is Status.ISOMETRIC
        assert rule_thm_4_4("101", 12, "101") is None

    def test_prop_4_1(self):
        # s = 2: not isometric from d = 8
        assert rule_prop_4_1("10101", 8, "10101").status is Status.NOT_ISOMETRIC
        assert rule_prop_4_1("10101", 7, "10101") is None
        assert rule_prop_4_1("101", 8, "101") is None  # s = 1 left to Prop 3.2

    def test_prop_4_2(self):
        # r = s = 1: (10)1(10) = 10110, not isometric from d = 7
        assert rule_prop_4_2("10110", 7, "10110").status is Status.NOT_ISOMETRIC
        assert rule_prop_4_2("10110", 6, "10110") is None

    def test_prop_5_1(self):
        assert rule_prop_5_1("11010", 20, "11010").status is Status.ISOMETRIC
        assert rule_prop_5_1("01011", 20, "01011") is None  # orbit handled upstream


class TestConsistency:
    """The paper's statements must never contradict each other."""

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5, 6])
    def test_no_contradictions_small_factors(self, length):
        for f in all_words(length):
            for d in range(1, 14):
                verdicts = [
                    v
                    for v in applicable_rules(f, d)
                    if v.status is not Status.UNKNOWN
                ]
                statuses = {v.status for v in verdicts}
                assert len(statuses) <= 1, (f, d, verdicts)

    def test_rule_count(self):
        assert len(ALL_RULES) == 11
