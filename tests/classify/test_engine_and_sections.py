"""Engine tests + theorem-vs-ground-truth for Sections 3 and 4.

Every decided verdict of the theorem engine is validated against the
actual graphs (BFS/DP isometry check) over an exhaustive grid -- the
strongest form of reproduction for a theory paper: the theorems must
predict the machine.
"""

import pytest

from repro.classify.engine import classify, classify_with_bruteforce, decide
from repro.classify.verdict import Status
from repro.isometry.bruteforce import is_isometric_bfs
from repro.words.core import all_words


class TestEngineBasics:
    def test_lemma_2_1_region(self):
        v = classify("11010", 5)
        assert v.status is Status.ISOMETRIC and v.source == "Lemma 2.1"

    def test_complement_transfer(self):
        # 00 is settled through its complement 11 (Prop 3.1)
        v = classify("00", 9)
        assert v.status is Status.ISOMETRIC
        assert v.via == "11"

    def test_reverse_transfer(self):
        # 011 reversed is 110 (Thm 3.3(i))
        v = classify("011", 9)
        assert v.status is Status.ISOMETRIC

    def test_unknown_gap(self):
        # 10110 at d = 6 is the paper's computer check
        assert classify("10110", 6).status is Status.UNKNOWN

    def test_bruteforce_settles_gap(self):
        v = classify_with_bruteforce("10110", 6)
        assert v.status is Status.ISOMETRIC
        assert "brute force" in v.source

    def test_bruteforce_skips_when_decided(self):
        v = classify_with_bruteforce("11", 9)
        assert v.source == "Proposition 3.1"

    def test_decide_tri_state(self):
        assert decide("11", 9) is True
        assert decide("101", 9) is False
        assert decide("10101", 6) is None

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            classify("", 3)
        with pytest.raises(ValueError):
            classify("11", 0)
        with pytest.raises(ValueError):
            classify("21", 3)

    def test_status_not_boolean(self):
        with pytest.raises(TypeError):
            bool(Status.ISOMETRIC)


class TestTheoremsPredictTheMachine:
    """Exhaustive: every decided verdict must match brute force."""

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_exhaustive_small(self, length):
        for f in all_words(length):
            for d in range(1, 9):
                v = classify(f, d)
                if v.status is Status.UNKNOWN:
                    continue
                truth = is_isometric_bfs((f, d))
                assert (v.status is Status.ISOMETRIC) == truth, (f, d, v)

    def test_proposition_3_1_family(self):
        for s in (1, 2, 3, 4):
            for d in range(1, 10):
                assert is_isometric_bfs(("1" * s, d)), (s, d)

    def test_theorem_3_3_i_family(self):
        for r in (1, 2, 3, 4):
            f = "1" * r + "0"
            for d in range(1, 10):
                assert is_isometric_bfs((f, d)), (f, d)

    @pytest.mark.parametrize("s", [2, 3, 4])
    def test_theorem_3_3_ii_exact_threshold(self, s):
        f = "11" + "0" * s
        for d in range(1, s + 8):
            expected = d <= s + 4
            assert is_isometric_bfs((f, d)) == expected, (f, d)

    def test_theorem_3_3_iii_exact_threshold(self):
        f = "111000"  # r = s = 3, threshold 9
        for d in range(7, 12):
            assert is_isometric_bfs((f, d)) == (d <= 9), d

    def test_theorem_4_3_family(self):
        for s in (2, 3):
            f = "1" * s + "0" + "1" * s + "0"
            for d in range(1, 11):
                assert is_isometric_bfs((f, d)), (f, d)

    def test_theorem_4_4_family(self):
        for s in (1, 2, 3):
            f = "10" * s
            for d in range(1, 11):
                assert is_isometric_bfs((f, d)), (f, d)

    def test_proposition_4_1_exact(self):
        # f = 10101 (s=2): isometric up to 7, never after (4s = 8)
        for d in range(1, 11):
            assert is_isometric_bfs(("10101", d)) == (d <= 7), d

    def test_proposition_4_2_exact(self):
        # f = 10110 (r=s=1): isometric up to 6, not from 7 = 2r+2s+3
        for d in range(1, 11):
            assert is_isometric_bfs(("10110", d)) == (d <= 6), d

    def test_proposition_5_1_family(self):
        for d in range(1, 12):
            assert is_isometric_bfs(("11010", d)), d


class TestGapHonesty:
    """The engine must claim UNKNOWN exactly where the paper needed a computer."""

    def test_computer_check_cases_are_unknown(self):
        assert classify("1100", 6).status is not Status.UNKNOWN  # Thm 3.3(ii) covers it
        assert classify("10110", 6).status is Status.UNKNOWN
        assert classify("10101", 6).status is Status.UNKNOWN
        assert classify("10101", 7).status is Status.UNKNOWN

    def test_prop_4_1_gap_range(self):
        # (10)^3 1: |f| = 7, threshold 4s = 12; gap is 8..11
        f = "1010101"
        for d in range(8, 12):
            assert classify(f, d).status is Status.UNKNOWN, d
        assert classify(f, 12).status is Status.NOT_ISOMETRIC
        assert classify(f, 7).status is Status.ISOMETRIC
