"""The classification frontier beyond Table 1."""

import pytest

from repro.classify.frontier import classify_frontier, frontier_statistics
from repro.classify.table1 import table1_expected


class TestFrontierReproducesTable1:
    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_matches_table1(self, length):
        expected = {
            f: t for f, t in table1_expected().items() if len(f) == length
        }
        rows = classify_frontier(length, max_d=9)
        got = {r.f: r.threshold for r in rows}
        assert got == expected

    def test_computer_cells_match_footnotes(self):
        rows = classify_frontier(5, max_d=9)
        by_f = {r.f: r for r in rows}
        assert by_f["10110"].computer_cells == (6,)
        assert by_f["10101"].computer_cells == (6, 7)
        for f, row in by_f.items():
            if f not in ("10110", "10101"):
                assert row.decided_by_theorems_alone, f


class TestLength6Frontier:
    @pytest.fixture(scope="class")
    def rows(self):
        return classify_frontier(6, max_d=8)

    def test_orbit_count(self, rows):
        # Burnside: (64 + 8 + 8 + 0)/4 = 20
        assert len(rows) == 20

    def test_statistics_shape(self, rows):
        stats = frontier_statistics(rows)
        assert stats["orbits"] == 20
        assert stats["always_within_probe"] + stats["with_threshold"] == 20
        assert stats["needed_computer"] >= 1  # theorems don't close length 6

    def test_known_members(self, rows):
        by_f = {r.f: r for r in rows}
        # 111111 = 1^6: Prop 3.1, always
        assert by_f["111111"].always_within_probe
        assert by_f["111111"].decided_by_theorems_alone
        # 101010 = (10)^3: Thm 4.4, always
        assert by_f["101010"].always_within_probe
        # 110110 = 1^2 0 1^2 0: Thm 4.3, always
        assert by_f["110110"].always_within_probe
        # 100001 = 1 0^4 1: Prop 3.2, threshold 6
        assert by_f["100001"].threshold == 6

    def test_thresholds_are_in_probe_range(self, rows):
        for r in rows:
            if r.threshold is not None:
                assert 1 <= r.threshold < r.max_d
