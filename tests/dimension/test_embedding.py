"""Exact isometric-embedding search."""

import pytest

from repro.cubes.fibonacci import fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.dimension.embedding import (
    find_isometric_embedding,
    is_isometrically_embeddable,
)
from repro.graphs.core import Graph
from repro.graphs.traversal import all_pairs_distances

from tests.conftest import complete_graph, cycle_graph, grid_graph, path_graph, star_graph


def assert_isometric(g, h, phi):
    dg = all_pairs_distances(g)
    dh = all_pairs_distances(h)
    for u in range(g.num_vertices):
        for v in range(g.num_vertices):
            assert int(dh[phi[u], phi[v]]) == int(dg[u, v])


class TestPositive:
    def test_path_into_cycle(self):
        g, h = path_graph(3), cycle_graph(6)
        phi = find_isometric_embedding(g, h)
        assert phi is not None
        assert_isometric(g, h, phi)

    def test_path_into_hypercube(self):
        g, h = path_graph(4), hypercube(3)
        phi = find_isometric_embedding(g, h)
        assert phi is not None
        assert_isometric(g, h, phi)

    def test_c4_into_hypercube(self):
        g, h = cycle_graph(4), hypercube(2)
        phi = find_isometric_embedding(g, h)
        assert phi is not None

    def test_gamma_into_hypercube(self):
        """Gamma_d isometric in Q_d -- the paper's opening observation."""
        for d in (2, 3, 4):
            g = fibonacci_cube(d).graph()
            phi = find_isometric_embedding(g, hypercube(d))
            assert phi is not None
            assert_isometric(g, hypercube(d), phi)

    def test_self_embedding(self):
        g = grid_graph(2, 3)
        phi = find_isometric_embedding(g, g)
        assert phi is not None
        assert_isometric(g, g, phi)

    def test_empty_graph(self):
        assert find_isometric_embedding(Graph(0), path_graph(2)) == []


class TestNegative:
    def test_bigger_into_smaller(self):
        assert not is_isometrically_embeddable(path_graph(5), path_graph(4))

    def test_c6_not_in_q2(self):
        assert not is_isometrically_embeddable(cycle_graph(6), hypercube(2))

    def test_odd_cycle_not_in_hypercube(self):
        assert not is_isometrically_embeddable(cycle_graph(5), hypercube(4))

    def test_k3_not_in_bipartite(self):
        assert not is_isometrically_embeddable(complete_graph(3), hypercube(3))

    def test_p4_not_isometric_in_c4(self):
        # P4 has diameter 3, C4 has diameter 2
        assert not is_isometrically_embeddable(path_graph(4), cycle_graph(4))

    def test_star_not_in_small_cycle(self):
        assert not is_isometrically_embeddable(star_graph(3), cycle_graph(8))

    def test_disconnected_guest(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert find_isometric_embedding(g, hypercube(3)) is None


class TestBudget:
    def test_budget_exhaustion_raises(self):
        g = grid_graph(3, 3)
        h = hypercube(5)
        with pytest.raises(RuntimeError):
            find_isometric_embedding(g, h, node_budget=3)
