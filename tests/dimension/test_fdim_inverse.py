"""Section 7: f-dimension, Proposition 7.1 bounds, inverse dimension."""

import pytest

from repro.cubes.fibonacci import fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.dimension.fdim import (
    f_dimension,
    is_admissible_factor,
    isometric_dimension,
    prop71_upper_bound_embedding,
)
from repro.dimension.inverse import inverse_dimension
from repro.graphs.core import Graph

from tests.conftest import complete_graph, cycle_graph, grid_graph, path_graph, star_graph


class TestAdmissibility:
    def test_always_families(self):
        for f in ("1", "11", "111", "10", "110", "1110", "1010", "101010",
                  "110110", "11010"):
            assert is_admissible_factor(f) is True, f

    def test_non_admissible(self):
        for f in ("101", "1101", "1001", "1100", "10110", "10101"):
            assert is_admissible_factor(f) is False, f

    def test_silent_cases_return_none(self):
        # a long factor no theorem covers beyond Lemma 2.1 within the probe
        assert is_admissible_factor("1101101", probe_up_to=7) is None


class TestFDimension:
    def test_dim_f_of_k1(self):
        assert f_dimension(Graph(1), "11") == 0

    def test_dim_11_path(self):
        # P_{n+1} embeds in Gamma_n via 0...0 -> 10...0 chain? idim = n,
        # and Gamma_d contains an isometric path of length d
        assert f_dimension(path_graph(4), "11") == 3

    def test_dim_11_c4(self):
        # C4 needs a 4-cycle avoiding 11: Gamma_2 = P3 has none; Gamma_3?
        # vertices 000,001,010,100,101: squares? 000-001-101-100: yes!
        assert f_dimension(cycle_graph(4), "11") == 3

    def test_dim_11_c6(self):
        assert f_dimension(cycle_graph(6), "11") == 5

    def test_dim_110_vs_idim(self):
        g = cycle_graph(6)
        d110 = f_dimension(g, "110")
        assert isometric_dimension(g) <= d110 <= 3 * isometric_dimension(g) - 2

    def test_star_dimension(self):
        g = star_graph(3)
        # idim(K_{1,3}) = 3; with f = 11 the star needs the centre adjacent
        # to 3 pairwise-distance-2 words avoiding 11
        d = f_dimension(g, "11")
        assert 3 <= d <= 7

    def test_bounds_hold_on_corpus(self):
        for g in (path_graph(5), cycle_graph(4), grid_graph(2, 3), star_graph(4)):
            d0 = isometric_dimension(g)
            for f in ("11", "110"):
                df = f_dimension(g, f)
                assert d0 <= df <= 3 * d0 - 2, (f, d0, df)

    def test_non_partial_cube_returns_none(self):
        assert f_dimension(complete_graph(3), "11") is None

    def test_rejects_inadmissible(self):
        with pytest.raises(ValueError):
            f_dimension(path_graph(3), "101")

    def test_hypercube_dim_f_is_larger(self):
        # Q_2 itself: dim_11(Q_2) must exceed idim = 2 (Gamma_2 is a path)
        g = hypercube(2)
        assert isometric_dimension(g) == 2
        assert f_dimension(g, "11") == 3


class TestProp71Construction:
    @pytest.mark.parametrize("f", ["11", "111", "1101011"])  # contain 11
    def test_spreading_with_zeros(self, f):
        g = cycle_graph(6)
        words, dp = prop71_upper_bound_embedding(g, f)
        assert dp == 2 * isometric_dimension(g) - 1
        assert all(len(w) == dp for w in words)

    def test_spreading_with_ones(self):
        g = path_graph(4)
        words, dp = prop71_upper_bound_embedding(g, "100")
        assert dp == 2 * isometric_dimension(g) - 1

    def test_alternating_factor_uses_00(self):
        g = cycle_graph(4)
        words, dp = prop71_upper_bound_embedding(g, "1010")
        assert dp == 3 * isometric_dimension(g) - 2

    def test_rejects_trivial_factors(self):
        for f in ("0", "1", "01", "10"):
            with pytest.raises(ValueError):
                prop71_upper_bound_embedding(path_graph(3), f)

    def test_raises_on_non_partial_cube(self):
        with pytest.raises(ValueError):
            prop71_upper_bound_embedding(complete_graph(3), "11")


class TestInverseDimension:
    def test_hypercube_hosts_its_gamma(self):
        # Gamma_d isometric in Q_d: dim^{-1}_11(Q_d) >= d
        assert inverse_dimension(hypercube(3), "11", d_max=5) == 3

    def test_path_host(self):
        # P_4 = Q_3(10): the biggest Q_d(10) inside is itself
        host = fibonacci_cube(3).graph()
        assert inverse_dimension(host, "10", d_max=6) >= 2

    def test_too_small_host(self):
        assert inverse_dimension(Graph(1), "11", d_max=4) is None

    def test_respects_d_max(self):
        assert inverse_dimension(hypercube(4), "11", d_max=2) == 2
