"""Lattice dimension (Eppstein, the paper's reference [6])."""

import networkx as nx
import pytest

from repro.cubes.fibonacci import fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.dimension.lattice import (
    _max_matching,
    lattice_dimension,
    semicubes,
)
from repro.graphs.core import Graph
from repro.isometry.theta import idim

from tests.conftest import complete_graph, cycle_graph, grid_graph, path_graph, star_graph


class TestSemicubes:
    def test_path_semicubes_are_prefixes(self):
        g = path_graph(4)
        for a, b in semicubes(g):
            assert a | b == frozenset(range(4))
            assert not (a & b)

    def test_count_equals_idim(self):
        g = grid_graph(2, 3)
        assert len(semicubes(g)) == idim(g)

    def test_sides_partition(self):
        g = hypercube(3)
        n = g.num_vertices
        for a, b in semicubes(g):
            assert len(a) + len(b) == n


class TestMatching:
    def test_empty_graph(self):
        assert _max_matching(4, []) == 0

    def test_triangle(self):
        assert _max_matching(3, [(0, 1), (1, 2), (0, 2)]) == 1

    def test_path_matching(self):
        assert _max_matching(4, [(0, 1), (1, 2), (2, 3)]) == 2

    def test_blossom_case(self):
        # odd cycle + pendant: greedy non-blossom algorithms can fail here
        edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (2, 5)]
        assert _max_matching(6, edges) == 3

    def test_against_networkx_blossom(self):
        import random

        rng = random.Random(3)
        for _ in range(15):
            n = rng.randrange(4, 11)
            edges = [
                (i, j)
                for i in range(n)
                for j in range(i + 1, n)
                if rng.random() < 0.35
            ]
            nxg = nx.Graph()
            nxg.add_nodes_from(range(n))
            nxg.add_edges_from(edges)
            want = len(nx.max_weight_matching(nxg, maxcardinality=True))
            assert _max_matching(n, edges) == want


class TestLatticeDimension:
    def test_paths_are_one_dimensional(self):
        for n in (2, 4, 7):
            assert lattice_dimension(path_graph(n)) == 1

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_even_cycles(self, k):
        # Eppstein: ldim(C_{2k}) = k
        assert lattice_dimension(cycle_graph(2 * k)) == k

    def test_trees_half_the_leaves(self):
        # ldim(tree) = ceil(L/2) where L = number of leaves
        assert lattice_dimension(star_graph(3)) == 2
        assert lattice_dimension(star_graph(4)) == 2
        assert lattice_dimension(star_graph(5)) == 3
        # spider with 3 legs of length 2: 3 leaves
        spider = Graph.from_edges(
            7, [(0, 1), (1, 2), (0, 3), (3, 4), (0, 5), (5, 6)]
        )
        assert lattice_dimension(spider) == 2

    def test_grids_are_planar_lattice(self):
        assert lattice_dimension(grid_graph(2, 3)) == 2
        assert lattice_dimension(grid_graph(3, 3)) == 2

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_hypercube_needs_full_dimension(self, d):
        assert lattice_dimension(hypercube(d)) == d

    def test_fibonacci_cube(self):
        # measured: Gamma_4 fits Z^2 (idim 4, two matched cut pairs)
        assert lattice_dimension(fibonacci_cube(4).graph()) == 2

    def test_sandwich_with_idim(self):
        for g in (path_graph(6), cycle_graph(6), grid_graph(2, 4), star_graph(4)):
            ld = lattice_dimension(g)
            assert ld <= idim(g)

    def test_non_partial_cube(self):
        assert lattice_dimension(complete_graph(3)) is None

    def test_single_vertex(self):
        assert lattice_dimension(Graph(1)) == 0
