"""Unit tests for Q_d and canonical paths (Section 2)."""

import itertools

import pytest

from repro.cubes.hypercube import (
    canonical_path,
    canonical_path_ints,
    hamming_int,
    hypercube,
)
from repro.graphs.traversal import bfs_distances, diameter
from repro.words.core import hamming, word_to_int


class TestHypercube:
    @pytest.mark.parametrize("d", range(0, 6))
    def test_order_and_size(self, d):
        g = hypercube(d)
        assert g.num_vertices == 2**d
        assert g.num_edges == d * 2 ** (d - 1) if d else g.num_edges == 0

    def test_adjacency_is_hamming_one(self):
        g = hypercube(4)
        for u, v in g.edges():
            assert hamming_int(u, v) == 1

    def test_labels_match_codes(self):
        g = hypercube(3)
        for i in range(8):
            assert word_to_int(g.label_of(i)) == i

    def test_distance_is_hamming(self):
        g = hypercube(4)
        for s in range(16):
            dist = bfs_distances(g, s)
            for t in range(16):
                assert dist[t] == hamming_int(s, t)

    def test_diameter(self):
        assert diameter(hypercube(5)) == 5

    def test_regularity(self):
        g = hypercube(4)
        assert all(deg == 4 for deg in g.degrees())

    def test_negative_dimension(self):
        with pytest.raises(ValueError):
            hypercube(-1)

    def test_d0(self):
        g = hypercube(0)
        assert g.num_vertices == 1 and g.num_edges == 0
        assert g.label_of(0) == ""


class TestCanonicalPath:
    def test_length_is_hamming(self):
        for b, c in [("1100", "0011"), ("1010", "1010"), ("111", "000")]:
            path = canonical_path(b, c)
            assert len(path) == hamming(b, c) + 1
            assert path[0] == b and path[-1] == c

    def test_consecutive_differ_by_one(self):
        path = canonical_path("110010", "011001")
        for a, b in zip(path, path[1:]):
            assert hamming(a, b) == 1

    def test_ones_removed_before_added(self):
        # from 10 to 01: first drop the 1 (-> 00), then add (-> 01)
        assert canonical_path("10", "01") == ["10", "00", "01"]

    def test_order_is_left_to_right(self):
        # 1->0 flips happen leftmost first
        path = canonical_path("1100", "0000")
        assert path == ["1100", "0100", "0000"]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            canonical_path("10", "100")

    def test_gamma_canonical_paths_stay_inside(self):
        """The Section 2 argument: canonical paths between Fibonacci-cube
        vertices never create 11."""
        from repro.words.enumerate import list_avoiding

        words = list_avoiding("11", 6)
        for b, c in itertools.combinations(words, 2):
            for w in canonical_path(b, c):
                assert "11" not in w, (b, c, w)

    def test_int_version_matches_string_version(self):
        d = 5
        for b, c in [("11000", "00110"), ("10101", "01010"), ("11111", "00000")]:
            sp = canonical_path(b, c)
            ip = canonical_path_ints(word_to_int(b), word_to_int(c), d)
            assert [word_to_int(w) for w in sp] == ip

    def test_int_version_range_check(self):
        with pytest.raises(ValueError):
            canonical_path_ints(8, 0, 3)
