"""Lemmas 2.2 and 2.3: Q_d(f) ~ Q_d(complement f) ~ Q_d(reverse f)."""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.symmetries import (
    canonical_factor,
    complement_isomorphism,
    factor_orbit,
    reverse_isomorphism,
)
from repro.graphs.isomorphism import are_isomorphic
from repro.words.core import complement, reverse


class TestOrbit:
    def test_orbit_members(self):
        assert set(factor_orbit("110")) == {"110", "001", "011", "100"}

    def test_palindrome_orbit_small(self):
        assert set(factor_orbit("101")) == {"101", "010"}

    def test_self_reverse_complement(self):
        # 10 reversed is 01 = complement of 10
        assert set(factor_orbit("10")) == {"10", "01"}

    def test_orbit_size_divides_four(self):
        for f in ("1", "11", "110", "1010", "11010", "100110"):
            assert len(factor_orbit(f)) in (1, 2, 4)

    def test_canonical_is_least(self):
        assert canonical_factor("110") == "001"
        assert canonical_factor("11010") == "00101"

    def test_canonical_constant_on_orbit(self):
        for f in ("1101", "10010", "111000"):
            canon = canonical_factor(f)
            for g in factor_orbit(f):
                assert canonical_factor(g) == canon


class TestLemma22:
    """Q_d(f) isomorphic to Q_d(complement(f)) via bitwise complement."""

    @pytest.mark.parametrize("f", ["11", "110", "101", "1100", "11010"])
    @pytest.mark.parametrize("d", [3, 5, 6])
    def test_complement_map_is_isomorphism(self, f, d):
        cube_f = generalized_fibonacci_cube(f, d)
        cube_fc = generalized_fibonacci_cube(complement(f), d)
        phi = complement_isomorphism(d)
        # bijection on vertex sets
        images = {phi(w) for w in cube_f.words()}
        assert images == set(cube_fc.words())
        # edges map to edges
        g1, g2 = cube_f.graph(), cube_fc.graph()
        for u, v in g1.edges():
            iu = g2.index_of(phi(g1.label_of(u)))
            iv = g2.index_of(phi(g1.label_of(v)))
            assert g2.has_edge(iu, iv)

    @pytest.mark.parametrize("f", ["110", "1100"])
    def test_abstract_isomorphism(self, f):
        d = 5
        g1 = generalized_fibonacci_cube(f, d).graph()
        g2 = generalized_fibonacci_cube(complement(f), d).graph()
        assert are_isomorphic(g1, g2)

    def test_gamma_d_is_q_d_00(self):
        # Gamma_d ~ Q_d(00), the instance the paper points out
        d = 6
        g1 = generalized_fibonacci_cube("11", d).graph()
        g2 = generalized_fibonacci_cube("00", d).graph()
        assert are_isomorphic(g1, g2)

    def test_phi_rejects_wrong_length(self):
        phi = complement_isomorphism(4)
        with pytest.raises(ValueError):
            phi("101")


class TestLemma23:
    """Q_d(f) isomorphic to Q_d(reverse(f)) via word reversal."""

    @pytest.mark.parametrize("f", ["110", "1101", "11010", "10110"])
    @pytest.mark.parametrize("d", [4, 6])
    def test_reverse_map_is_isomorphism(self, f, d):
        cube_f = generalized_fibonacci_cube(f, d)
        cube_fr = generalized_fibonacci_cube(reverse(f), d)
        phi = reverse_isomorphism(d)
        assert {phi(w) for w in cube_f.words()} == set(cube_fr.words())
        g1, g2 = cube_f.graph(), cube_fr.graph()
        for u, v in g1.edges():
            iu = g2.index_of(phi(g1.label_of(u)))
            iv = g2.index_of(phi(g1.label_of(v)))
            assert g2.has_edge(iu, iv)

    def test_counts_equal_across_whole_orbit(self):
        d = 7
        for f in ("1101", "10010"):
            base = generalized_fibonacci_cube(f, d)
            for g in factor_orbit(f):
                other = generalized_fibonacci_cube(g, d)
                assert other.num_vertices == base.num_vertices
                assert other.num_edges == base.num_edges

    def test_phi_rejects_wrong_length(self):
        phi = reverse_isomorphism(4)
        with pytest.raises(ValueError):
            phi("10101")
