"""Unit tests for Fibonacci and Lucas cubes."""

import pytest

from repro.combinat.sequences import fibonacci, lucas_number
from repro.cubes.fibonacci import (
    fibonacci_cube,
    fibonacci_labels,
    lucas_cube,
    zeckendorf_rank,
)
from repro.graphs.traversal import diameter, is_connected


class TestFibonacciCube:
    @pytest.mark.parametrize("d", range(0, 10))
    def test_order_is_fibonacci(self, d):
        assert fibonacci_cube(d).num_vertices == fibonacci(d + 2)

    def test_is_q_d_11(self):
        cube = fibonacci_cube(5)
        assert cube.f == "11"
        assert all("11" not in w for w in cube.words())

    def test_labels_sorted(self):
        labels = fibonacci_labels(6)
        assert labels == sorted(labels)
        assert len(labels) == fibonacci(8)

    def test_diameter_is_d(self):
        assert diameter(fibonacci_cube(6).graph()) == 6


class TestZeckendorf:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_rank_is_bijection_onto_initial_segment(self, d):
        ranks = sorted(zeckendorf_rank(w) for w in fibonacci_labels(d))
        assert ranks == list(range(fibonacci(d + 2)))

    def test_rank_of_zero_word(self):
        assert zeckendorf_rank("0000") == 0

    def test_rank_examples(self):
        # d=4: "1000" has weight F_4 = 3? position 0 carries F_{d+1-0} ...
        # trust the bijection test; spot check monotonicity in the top bit
        assert zeckendorf_rank("1000") > zeckendorf_rank("0101")

    def test_rejects_11(self):
        with pytest.raises(ValueError):
            zeckendorf_rank("0110")


class TestLucasCube:
    @pytest.mark.parametrize("d", range(1, 10))
    def test_order_is_lucas_number(self, d):
        # |V(Lambda_d)| = L_d for d >= 1
        assert lucas_cube(d).num_vertices == lucas_number(d)

    def test_no_circular_11(self):
        g = lucas_cube(5)
        for w in g.labels:
            assert "11" not in w
            assert not (w[0] == "1" and w[-1] == "1")

    def test_connected(self):
        for d in range(1, 8):
            assert is_connected(lucas_cube(d))

    def test_subgraph_of_fibonacci_cube(self):
        lam = set(lucas_cube(6).labels)
        gam = set(fibonacci_cube(6).words())
        assert lam <= gam

    def test_d0(self):
        g = lucas_cube(0)
        assert g.num_vertices == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            lucas_cube(-1)
