"""Unit tests for the GeneralizedFibonacciCube class."""

import networkx as nx
import pytest

from repro.cubes.generalized import GeneralizedFibonacciCube, generalized_fibonacci_cube
from repro.graphs.nxadapter import to_networkx
from repro.words.core import hamming

from tests.conftest import naive_avoiding, naive_count_edges


class TestVertexSet:
    @pytest.mark.parametrize("f", ["1", "11", "110", "101", "1010", "11010"])
    @pytest.mark.parametrize("d", [0, 1, 4, 7])
    def test_words_match_naive(self, f, d):
        cube = GeneralizedFibonacciCube(f, d)
        assert cube.words() == naive_avoiding(f, d)

    def test_len_and_contains(self):
        cube = generalized_fibonacci_cube("11", 4)
        assert len(cube) == 8
        assert "0101" in cube
        assert "0110" not in cube
        assert "010" not in cube  # wrong length

    def test_contains_by_code(self):
        cube = generalized_fibonacci_cube("11", 4)
        assert 0b0101 in cube
        assert 0b0110 not in cube

    def test_index_word_roundtrip(self):
        cube = generalized_fibonacci_cube("110", 5)
        for i in range(len(cube)):
            w = cube.word_of(i)
            assert cube.index_of_word(w) == i
            assert cube.code_of(i) == int(cube.codes[i])

    def test_index_of_wrong_length(self):
        cube = generalized_fibonacci_cube("11", 4)
        with pytest.raises(KeyError):
            cube.index_of_word("010")

    def test_d_below_factor_gives_full_cube(self):
        cube = GeneralizedFibonacciCube("11010", 4)
        assert cube.num_vertices == 16

    def test_d_equal_factor_removes_one(self):
        cube = GeneralizedFibonacciCube("11010", 5)
        assert cube.num_vertices == 31
        assert "11010" not in cube

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            GeneralizedFibonacciCube("", 3)
        with pytest.raises(ValueError):
            GeneralizedFibonacciCube("12", 3)
        with pytest.raises(ValueError):
            GeneralizedFibonacciCube("11", -1)


class TestGraphStructure:
    @pytest.mark.parametrize("f", ["11", "110", "101", "1100"])
    @pytest.mark.parametrize("d", [1, 3, 6])
    def test_edge_count_matches_naive(self, f, d):
        assert generalized_fibonacci_cube(f, d).num_edges == naive_count_edges(f, d)

    def test_edges_are_hamming_one(self):
        cube = generalized_fibonacci_cube("101", 5)
        g = cube.graph()
        for u, v in g.edges():
            assert hamming(g.label_of(u), g.label_of(v)) == 1

    def test_all_hamming_one_pairs_are_edges(self):
        cube = generalized_fibonacci_cube("110", 5)
        g = cube.graph()
        words = cube.words()
        for i in range(len(words)):
            for j in range(i + 1, len(words)):
                if hamming(words[i], words[j]) == 1:
                    assert g.has_edge(i, j)

    def test_graph_cached(self):
        cube = GeneralizedFibonacciCube("11", 5)
        assert cube.graph() is cube.graph()

    def test_fig1_q4_101(self):
        """Fig. 1 of the paper: Q_4(101)."""
        cube = generalized_fibonacci_cube("101", 4)
        assert cube.num_vertices == 12
        assert cube.num_edges == 18
        # the four removed words all contain 101
        removed = set(naive_avoiding("11", 0))  # placeholder no-op
        gone = {w for w in ("0101", "1010", "1011", "1101")}
        for w in gone:
            assert w not in cube

    def test_degree_sequence_sorted(self):
        cube = generalized_fibonacci_cube("11", 4)
        seq = cube.degree_sequence()
        assert seq == sorted(seq)
        assert max(seq) == 4  # 0000 has all d neighbours

    def test_host_neighbors(self):
        cube = generalized_fibonacci_cube("11", 3)
        i = cube.index_of_word("000")
        nbrs = set(cube.host_neighbors(i))
        assert nbrs == {0b100, 0b010, 0b001}

    def test_hamming_method(self):
        cube = generalized_fibonacci_cube("11", 4)
        i, j = cube.index_of_word("0000"), cube.index_of_word("0101")
        assert cube.hamming(i, j) == 2

    def test_connectivity_of_isometric_cube(self):
        # isometric subgraphs are connected; check via networkx too
        g = to_networkx(generalized_fibonacci_cube("11", 7).graph())
        assert nx.is_connected(g)

    def test_repr(self):
        cube = GeneralizedFibonacciCube("11", 3)
        assert "f='11'" in repr(cube) and "d=3" in repr(cube)


class TestCaching:
    def test_lru_returns_same_object(self):
        a = generalized_fibonacci_cube("11", 6)
        b = generalized_fibonacci_cube("11", 6)
        assert a is b

    def test_distinct_keys_distinct_objects(self):
        assert generalized_fibonacci_cube("11", 6) is not generalized_fibonacci_cube("11", 7)
