"""Multi-factor cubes Q_d(F) and their interop with the single-factor engines."""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.multifactor import MultiFactorCube, multi_factor_cube
from repro.graphs.traversal import is_connected
from repro.invariants.structure import structure_report
from repro.isometry.bruteforce import is_isometric_bfs
from repro.isometry.vectorized import is_isometric_dp

from tests.conftest import naive_all_words


class TestConstruction:
    @pytest.mark.parametrize("f", ["11", "101", "1100"])
    @pytest.mark.parametrize("d", [0, 3, 6])
    def test_singleton_equals_single_factor_cube(self, f, d):
        mc = MultiFactorCube([f], d)
        sc = generalized_fibonacci_cube(f, d)
        assert mc.words() == sc.words()
        assert mc.num_edges == sc.num_edges

    def test_monotone_in_factor_set(self):
        base = set(MultiFactorCube(["11"], 6).words())
        more = set(MultiFactorCube(["11", "000"], 6).words())
        assert more <= base

    def test_factors_deduped_sorted(self):
        mc = MultiFactorCube(["11", "11", "00"], 3)
        assert mc.factors == ("00", "11")

    def test_contains_and_index(self):
        mc = MultiFactorCube(["11", "00"], 4)
        assert "0101" in mc and "1010" in mc
        assert "0011" not in mc
        assert mc.index_of_word("0101") == 0
        with pytest.raises(KeyError):
            mc.index_of_word("010")

    def test_cache(self):
        a = multi_factor_cube(("11", "00"), 5)
        b = multi_factor_cube(("11", "00"), 5)
        assert a is b

    def test_invalid(self):
        with pytest.raises(ValueError):
            MultiFactorCube(["11"], -1)
        with pytest.raises(ValueError):
            MultiFactorCube([], 3)


class TestGraph:
    def test_edges_are_hamming_one(self):
        from repro.words.core import hamming

        mc = MultiFactorCube(["110", "011"], 5)
        g = mc.graph()
        for u, v in g.edges():
            assert hamming(g.label_of(u), g.label_of(v)) == 1

    def test_edge_count_matches_naive(self):
        factors = ["101", "010"]
        d = 6
        words = set(
            w for w in naive_all_words(d) if not any(f in w for f in factors)
        )
        count = 0
        for w in words:
            for i in range(d):
                flipped = w[:i] + ("1" if w[i] == "0" else "0") + w[i + 1 :]
                if flipped in words:
                    count += 1
        assert MultiFactorCube(factors, d).num_edges == count // 2


class TestEngineInterop:
    """The single-factor machinery runs unchanged on multi-factor cubes."""

    def test_isometry_engines_accept_multifactor(self):
        mc = multi_factor_cube(("111", "000"), 6)
        assert is_isometric_bfs(mc) == is_isometric_dp(mc)

    def test_structure_report(self):
        mc = multi_factor_cube(("11", "000"), 6)
        rep = structure_report(mc)
        assert rep.f == "000,11"
        assert rep.num_vertices == mc.num_vertices

    def test_joint_cube_can_lose_isometry(self):
        """Individually admissible factors whose joint cube disconnects:
        {11, 00} at d >= 2 leaves the two alternating words at distance d."""
        mc = multi_factor_cube(("11", "00"), 5)
        assert mc.num_vertices == 2
        assert not is_connected(mc.graph())
        assert not is_isometric_bfs(mc)

    def test_joint_cube_that_stays_isometric(self):
        # {111, 000} stays isometric up to d = 3 ...
        mc = multi_factor_cube(("111", "000"), 3)
        assert is_isometric_bfs(mc)

    def test_joint_isometry_is_not_inherited(self):
        """... but fails from d = 4 even though each factor alone is
        admissible for every d (Prop 3.1 + Lemma 2.2) -- single-factor
        embeddability does not compose under intersection."""
        mc = multi_factor_cube(("111", "000"), 4)
        assert not is_isometric_bfs(mc)
        assert not is_isometric_dp(mc)

    def test_rejects_non_cube_objects(self):
        with pytest.raises(TypeError):
            is_isometric_bfs(42)
