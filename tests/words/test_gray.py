"""Reflected Gray codes."""

import pytest

from repro.cubes.generalized import generalized_fibonacci_cube

from repro.words.gray import (
    gray_code,
    gray_rank,
    gray_rank_order,
    gray_unrank,
    gray_words,
    is_gray_order,
)


class TestGrayCode:
    def test_d3_sequence(self):
        assert list(gray_code(3)) == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_is_permutation(self):
        for d in range(6):
            assert sorted(gray_code(d)) == list(range(1 << d))

    def test_consecutive_differ_by_one_bit(self):
        words = gray_words(6)
        assert is_gray_order(words, cyclic=True)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(gray_code(-1))

    def test_rank_unrank_roundtrip(self):
        for rank in range(256):
            assert gray_rank(gray_unrank(rank)) == rank

    def test_rank_is_sequence_position(self):
        seq = list(gray_code(5))
        for pos, code in enumerate(seq):
            assert gray_rank(code) == pos

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            gray_rank(-1)
        with pytest.raises(ValueError):
            gray_unrank(-2)


class TestGrayOrder:
    def test_empty_and_singleton(self):
        assert is_gray_order([])
        assert is_gray_order(["0101"])

    def test_detects_break(self):
        assert not is_gray_order(["00", "11"])

    def test_cyclic_check(self):
        assert is_gray_order(["00", "01", "11", "10"], cyclic=True)
        assert not is_gray_order(["00", "01", "11"], cyclic=True)

    def test_restriction_to_fibonacci_cube_not_gray(self):
        """Dropping forbidden words from a Gray sequence breaks the
        single-bit-change property -- the reason Hamiltonicity of
        Q_d(1^s) needed real work (Liu-Hsu-Chung)."""
        cube = generalized_fibonacci_cube("11", 5)
        order = gray_rank_order(cube)
        assert sorted(order) == cube.words()
        assert not is_gray_order(order)

    def test_hamiltonian_path_is_gray_order(self):
        from repro.network.hamilton import find_hamiltonian_path

        cube = generalized_fibonacci_cube("11", 6)
        g = cube.graph()
        path = find_hamiltonian_path(g)
        words = [g.label_of(v) for v in path]
        assert is_gray_order(words)
