"""Property-based tests (hypothesis) for the word substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.words.automaton import FactorAutomaton
from repro.words.core import (
    blocks,
    block_string,
    complement,
    contains_factor,
    flip,
    hamming,
    int_to_word,
    reverse,
    word_add,
    word_to_int,
)

binary_words = st.text(alphabet="01", min_size=0, max_size=24)
nonempty_words = st.text(alphabet="01", min_size=1, max_size=24)
factors = st.text(alphabet="01", min_size=1, max_size=6)


@given(binary_words)
def test_complement_involution(w):
    assert complement(complement(w)) == w


@given(binary_words)
def test_reverse_involution(w):
    assert reverse(reverse(w)) == w


@given(binary_words)
def test_complement_reverse_commute(w):
    assert complement(reverse(w)) == reverse(complement(w))


@given(nonempty_words, factors)
def test_factor_symmetry_under_complement(w, f):
    """f factor of w  <=>  complement(f) factor of complement(w) (Lemma 2.2 core)."""
    assert contains_factor(w, f) == contains_factor(complement(w), complement(f))


@given(nonempty_words, factors)
def test_factor_symmetry_under_reversal(w, f):
    """f factor of w  <=>  reverse(f) factor of reverse(w) (Lemma 2.3 core)."""
    assert contains_factor(w, f) == contains_factor(reverse(w), reverse(f))


@given(binary_words)
def test_blocks_roundtrip(w):
    assert block_string(blocks(w)) == w


@given(binary_words)
def test_blocks_are_maximal(w):
    bs = blocks(w)
    for (d1, _), (d2, _) in zip(bs, bs[1:]):
        assert d1 != d2


@given(st.data())
def test_word_add_abelian_group(data):
    d = data.draw(st.integers(min_value=1, max_value=16))
    fixed = st.text(alphabet="01", min_size=d, max_size=d)
    a, b, c = data.draw(fixed), data.draw(fixed), data.draw(fixed)
    assert word_add(a, b) == word_add(b, a)
    assert word_add(word_add(a, b), c) == word_add(a, word_add(b, c))
    assert word_add(a, a) == "0" * d


@given(st.data())
def test_hamming_is_metric(data):
    d = data.draw(st.integers(min_value=1, max_value=16))
    fixed = st.text(alphabet="01", min_size=d, max_size=d)
    a, b, c = data.draw(fixed), data.draw(fixed), data.draw(fixed)
    assert hamming(a, b) == hamming(b, a)
    assert (hamming(a, b) == 0) == (a == b)
    assert hamming(a, c) <= hamming(a, b) + hamming(b, c)


@given(st.data())
def test_flip_changes_hamming_by_one(data):
    w = data.draw(nonempty_words)
    i = data.draw(st.integers(min_value=0, max_value=len(w) - 1))
    assert hamming(w, flip(w, i)) == 1
    assert flip(flip(w, i), i) == w


@given(st.integers(min_value=0, max_value=20), st.data())
def test_int_codec_roundtrip(d, data):
    code = data.draw(st.integers(min_value=0, max_value=(1 << d) - 1))
    assert word_to_int(int_to_word(code, d)) == code


@given(nonempty_words, factors)
def test_automaton_agrees_with_substring(w, f):
    assert FactorAutomaton(f).avoids(w) == (f not in w)


@given(factors, factors)
@settings(max_examples=60)
def test_automaton_concatenation_closure(f, prefix):
    """Running the automaton is compositional: state after prefix+suffix
    equals running the suffix from the prefix state (when not forbidden)."""
    auto = FactorAutomaton(f)
    s1 = auto.run(prefix)
    if s1 == auto.forbidden:
        return
    suffix = "01" * 3
    s_direct = auto.run(prefix + suffix)
    s_chained = s1
    for ch in suffix:
        s_chained = auto.table[s_chained][ch == "1"]
    assert s_direct == s_chained
