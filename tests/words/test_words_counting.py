"""Unit tests for the automaton vertex/edge/square counters."""

import pytest

from repro.combinat.sequences import fibonacci
from repro.words.counting import (
    count_edges_automaton,
    count_squares_automaton,
    count_vertices_automaton,
)

from tests.conftest import naive_avoiding, naive_count_edges, naive_count_squares


FACTORS = ["1", "11", "10", "110", "101", "111", "1100", "1010", "1101", "11010"]


class TestVertexCount:
    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("d", [0, 1, 2, 5, 8])
    def test_matches_naive(self, f, d):
        assert count_vertices_automaton(f, d) == len(naive_avoiding(f, d))

    def test_fibonacci_identity(self):
        for d in range(15):
            assert count_vertices_automaton("11", d) == fibonacci(d + 2)

    def test_kbonacci_identity(self):
        # |V(Q_d(1^k))| follows the k-bonacci recurrence
        for k in (2, 3, 4):
            f = "1" * k
            vals = [count_vertices_automaton(f, d) for d in range(12)]
            for d in range(k, 12):
                assert vals[d] == sum(vals[d - k : d])

    def test_huge_d_is_cheap_and_consistent(self):
        # transfer matrix keeps the recurrence exactly at d = 500
        v = [count_vertices_automaton("11", d) for d in (498, 499, 500)]
        assert v[2] == v[1] + v[0]

    def test_short_d_equals_2_pow(self):
        assert count_vertices_automaton("11010", 4) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            count_vertices_automaton("", 3)
        with pytest.raises(ValueError):
            count_vertices_automaton("11", -1)


class TestEdgeCount:
    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("d", [0, 1, 2, 5, 8])
    def test_matches_naive(self, f, d):
        assert count_edges_automaton(f, d) == naive_count_edges(f, d)

    def test_hypercube_when_factor_long(self):
        # d < |f|: Q_d(f) = Q_d has d * 2^(d-1) edges
        assert count_edges_automaton("11010", 4) == 4 * 8

    def test_linear_in_d_feasible(self):
        # d in the hundreds must be exact and fast
        e1 = count_edges_automaton("110", 300)
        e2 = count_edges_automaton("110", 301)
        e3 = count_edges_automaton("110", 302)
        # eq (5): E(d) = E(d-1) + E(d-2) + V(d-2) + 2
        v = count_vertices_automaton("110", 300)
        assert e3 == e2 + e1 + v + 2


class TestSquareCount:
    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("d", [0, 1, 2, 5, 7])
    def test_matches_naive(self, f, d):
        assert count_squares_automaton(f, d) == naive_count_squares(f, d)

    def test_hypercube_squares(self):
        # Q_4 has C(4,2) * 2^2 = 24 squares; factor too long to matter
        assert count_squares_automaton("11010", 4) == 24

    def test_recurrence_6_at_large_d(self):
        # eq (6): S(d) = S(d-1) + S(d-2) + E(d-2) + 1 for Q_d(110)
        s = [count_squares_automaton("110", d) for d in (60, 61, 62)]
        e60 = count_edges_automaton("110", 60)
        assert s[2] == s[1] + s[0] + e60 + 1


class TestStreamingEdgeCount:
    """The pair DP streams over positions: O(m^2) live state, so large
    d is limited by arithmetic on big integers, not by memory."""

    def test_fibonacci_closed_form_at_large_d(self):
        # E(Gamma_d) = (d F_{d+1} + 2 (d+1) F_d) / 5, exact at d = 2000
        for d in (200, 1000, 2000):
            expected = (d * fibonacci(d + 1) + 2 * (d + 1) * fibonacci(d)) // 5
            assert count_edges_automaton("11", d) == expected

    def test_peak_memory_does_not_scale_with_d(self):
        import tracemalloc

        def peak(d):
            tracemalloc.start()
            count_edges_automaton("1100", d)
            _, high = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return high

        peak(50)  # warm caches outside the measurement
        small, large = peak(50), peak(800)
        # 16x the dimension must not cost 16x the memory; allow a
        # generous factor for the bigger integers in the DP vectors
        assert large < 6 * small
