"""Multi-factor Aho--Corasick automaton."""


import pytest

from repro.words.aho import MultiFactorAutomaton

from tests.conftest import naive_all_words


def naive_avoiding_set(factors, d):
    return [w for w in naive_all_words(d) if not any(f in w for f in factors)]


FACTOR_SETS = [
    ["11"],
    ["11", "00"],
    ["101", "010"],
    ["110", "011"],
    ["11", "000"],
    ["1010", "0101", "111"],
    ["1", "0"],          # forbids everything of length >= 1
    ["10", "01", "11"],  # only 00...0 survives
]


class TestAvoids:
    @pytest.mark.parametrize("factors", FACTOR_SETS)
    @pytest.mark.parametrize("d", [0, 1, 3, 6])
    def test_matches_naive(self, factors, d):
        auto = MultiFactorAutomaton(factors)
        for w in naive_all_words(d):
            assert auto.avoids(w) == (not any(f in w for f in factors)), (factors, w)

    def test_single_factor_matches_kmp(self):
        from repro.words.automaton import FactorAutomaton

        for f in ("11", "101", "1100", "11010"):
            kmp = FactorAutomaton(f)
            aho = MultiFactorAutomaton([f])
            for w in naive_all_words(7):
                assert kmp.avoids(w) == aho.avoids(w), (f, w)

    def test_redundant_superstring_harmless(self):
        # 110 is redundant next to 11
        a = MultiFactorAutomaton(["11"])
        b = MultiFactorAutomaton(["11", "110"])
        for w in naive_all_words(6):
            assert a.avoids(w) == b.avoids(w)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiFactorAutomaton([])
        with pytest.raises(ValueError):
            MultiFactorAutomaton([""])
        with pytest.raises(ValueError):
            MultiFactorAutomaton(["12"])


class TestEnumeration:
    @pytest.mark.parametrize("factors", FACTOR_SETS)
    @pytest.mark.parametrize("d", [0, 2, 5, 7])
    def test_iter_matches_naive(self, factors, d):
        auto = MultiFactorAutomaton(factors)
        assert list(auto.iter_avoiding(d)) == naive_avoiding_set(factors, d)

    @pytest.mark.parametrize("factors", FACTOR_SETS[:5])
    def test_int_array_matches_iter(self, factors):
        from repro.words.core import word_to_int

        auto = MultiFactorAutomaton(factors)
        for d in (0, 4, 8):
            got = auto.avoiding_int_array(d).tolist()
            want = [word_to_int(w) for w in auto.iter_avoiding(d)]
            assert got == want

    def test_negative_length(self):
        with pytest.raises(ValueError):
            list(MultiFactorAutomaton(["11"]).iter_avoiding(-1))


class TestCounting:
    @pytest.mark.parametrize("factors", FACTOR_SETS)
    @pytest.mark.parametrize("d", [0, 1, 4, 8])
    def test_vertex_count(self, factors, d):
        auto = MultiFactorAutomaton(factors)
        assert auto.count_vertices(d) == len(naive_avoiding_set(factors, d))

    @pytest.mark.parametrize("factors", [["11", "00"], ["101", "010"], ["11", "000"]])
    @pytest.mark.parametrize("d", [0, 1, 4, 7])
    def test_edge_count(self, factors, d):
        auto = MultiFactorAutomaton(factors)
        words = set(naive_avoiding_set(factors, d))
        count = 0
        for w in words:
            for i in range(d):
                flipped = w[:i] + ("1" if w[i] == "0" else "0") + w[i + 1 :]
                if flipped in words:
                    count += 1
        assert auto.count_edges(d) == count // 2

    def test_alternating_words_count(self):
        # avoiding both 11 and 00 leaves exactly 2 words for every d >= 1
        auto = MultiFactorAutomaton(["11", "00"])
        for d in range(1, 30):
            assert auto.count_vertices(d) == 2

    def test_big_d_cheap(self):
        auto = MultiFactorAutomaton(["111", "000"])
        v = auto.count_vertices(300)
        # satisfies the same recurrence as its transfer matrix implies
        assert v == auto.count_vertices(299) + auto.count_vertices(298)


class TestSubsumption:
    """Construction drops factors that contain another factor: the
    superstring can never fire first, so the automaton shrinks while
    the language is untouched."""

    def test_subsumed_factors_dropped(self):
        aho = MultiFactorAutomaton(["11", "110", "0101"])
        assert aho.factors == ("0101", "11")

    def test_counts_unchanged_by_subsumed_factors(self):
        minimal = MultiFactorAutomaton(["11", "000"])
        bloated = MultiFactorAutomaton(["11", "000", "110", "0001", "11011"])
        assert bloated.factors == minimal.factors
        assert bloated.num_states == minimal.num_states
        for d in range(10):
            assert bloated.count_vertices(d) == minimal.count_vertices(d)
            assert bloated.count_edges(d) == minimal.count_edges(d)

    def test_duplicate_factors_collapse(self):
        assert MultiFactorAutomaton(["101", "101"]).factors == ("101",)

    def test_equal_length_factors_kept(self):
        aho = MultiFactorAutomaton(["110", "011"])
        assert aho.factors == ("011", "110")
