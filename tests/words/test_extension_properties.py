"""Property-based tests for the extension layer (Aho-Corasick, Gray, GF)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.words.aho import MultiFactorAutomaton
from repro.words.automaton import FactorAutomaton
from repro.words.correlation import count_avoiding_gf
from repro.words.counting import count_vertices_automaton
from repro.words.gray import gray_rank, gray_unrank, gray_words, is_gray_order

factors = st.text(alphabet="01", min_size=1, max_size=5)
factor_sets = st.lists(factors, min_size=1, max_size=3)
words = st.text(alphabet="01", min_size=0, max_size=16)


@given(factor_sets, words)
@settings(max_examples=100, deadline=None)
def test_aho_agrees_with_substring_scan(fs, w):
    auto = MultiFactorAutomaton(fs)
    assert auto.avoids(w) == (not any(f in w for f in fs))


@given(factors, words)
@settings(max_examples=100, deadline=None)
def test_aho_singleton_equals_kmp(f, w):
    assert MultiFactorAutomaton([f]).avoids(w) == FactorAutomaton(f).avoids(w)


@given(factor_sets, st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_aho_count_matches_enumeration(fs, d):
    auto = MultiFactorAutomaton(fs)
    assert auto.count_vertices(d) == len(list(auto.iter_avoiding(d)))


@given(factor_sets, factors, st.integers(min_value=0, max_value=9))
@settings(max_examples=60, deadline=None)
def test_aho_monotone_under_larger_sets(fs, extra, d):
    base = MultiFactorAutomaton(fs).count_vertices(d)
    bigger = MultiFactorAutomaton(list(fs) + [extra]).count_vertices(d)
    assert bigger <= base


@given(factors, st.integers(min_value=0, max_value=20))
@settings(max_examples=80, deadline=None)
def test_three_counting_engines_agree(f, d):
    a = count_vertices_automaton(f, d)
    b = count_avoiding_gf(f, d)
    assert a == b


@given(st.integers(min_value=0, max_value=(1 << 20) - 1))
def test_gray_rank_roundtrip(code):
    assert gray_unrank(gray_rank(code)) == code


@given(st.integers(min_value=0, max_value=8))
def test_gray_words_are_gray(d):
    assert is_gray_order(gray_words(d), cyclic=d >= 1)
