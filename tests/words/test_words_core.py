"""Unit tests for repro.words.core (Section 2 primitives)."""

import pytest

from repro.words.core import (
    all_words,
    block_string,
    blocks,
    complement,
    concat_blocks,
    contains_factor,
    e_i,
    flip,
    hamming,
    int_to_word,
    is_binary_word,
    reverse,
    validate_word,
    word_add,
    word_to_int,
)


class TestValidation:
    def test_binary_words_accepted(self):
        for w in ("", "0", "1", "0101", "111000"):
            assert is_binary_word(w)

    def test_non_binary_rejected(self):
        for w in ("2", "ab", "01x", " 01"):
            assert not is_binary_word(w)

    def test_non_string_rejected(self):
        assert not is_binary_word(101)
        assert not is_binary_word(None)
        assert not is_binary_word(["0", "1"])

    def test_validate_passthrough(self):
        assert validate_word("0110") == "0110"

    def test_validate_raises(self):
        with pytest.raises(ValueError, match="myname"):
            validate_word("012", name="myname")


class TestComplementReverse:
    def test_complement_simple(self):
        assert complement("1100") == "0011"

    def test_complement_empty(self):
        assert complement("") == ""

    def test_complement_involution(self):
        for w in ("0", "1", "0101", "1110001"):
            assert complement(complement(w)) == w

    def test_reverse_simple(self):
        assert reverse("110") == "011"

    def test_reverse_involution(self):
        for w in ("", "10", "11010"):
            assert reverse(reverse(w)) == w

    def test_complement_reverse_commute(self):
        for w in ("110", "10010", "111000"):
            assert complement(reverse(w)) == reverse(complement(w))


class TestWordAddFlip:
    def test_add_is_xor(self):
        assert word_add("1100", "1010") == "0110"

    def test_add_identity(self):
        assert word_add("1011", "0000") == "1011"

    def test_add_self_is_zero(self):
        assert word_add("1011", "1011") == "0000"

    def test_add_length_mismatch(self):
        with pytest.raises(ValueError):
            word_add("10", "100")

    def test_flip_matches_add_ei(self):
        w = "10110"
        for i in range(5):
            assert flip(w, i) == word_add(w, e_i(5, i))

    def test_flip_out_of_range(self):
        with pytest.raises(IndexError):
            flip("101", 3)
        with pytest.raises(IndexError):
            flip("101", -1)

    def test_e_i_structure(self):
        assert e_i(4, 0) == "1000"
        assert e_i(4, 3) == "0001"

    def test_e_i_out_of_range(self):
        with pytest.raises(IndexError):
            e_i(3, 3)


class TestHamming:
    def test_identical(self):
        assert hamming("1010", "1010") == 0

    def test_all_differ(self):
        assert hamming("1111", "0000") == 4

    def test_symmetric(self):
        assert hamming("1100", "1010") == hamming("1010", "1100") == 2

    def test_mismatched_length_raises(self):
        with pytest.raises(ValueError):
            hamming("10", "100")

    def test_flip_changes_by_one(self):
        w = "011010"
        for i in range(len(w)):
            assert hamming(w, flip(w, i)) == 1


class TestFactor:
    def test_contains_self(self):
        assert contains_factor("1011", "1011")

    def test_contains_middle(self):
        assert contains_factor("01101", "110")

    def test_absent(self):
        assert not contains_factor("10101", "11")

    def test_empty_factor_everywhere(self):
        assert contains_factor("101", "")
        assert contains_factor("", "")

    def test_factor_longer_than_word(self):
        assert not contains_factor("10", "101")


class TestBlocks:
    def test_single_block(self):
        assert blocks("1111") == [("1", 4)]

    def test_alternating(self):
        assert blocks("1010") == [("1", 1), ("0", 1), ("1", 1), ("0", 1)]

    def test_paper_example(self):
        assert blocks("110100") == [("1", 2), ("0", 1), ("1", 1), ("0", 2)]

    def test_empty(self):
        assert blocks("") == []

    def test_roundtrip(self):
        for w in ("1", "10", "1101", "000111000"):
            assert block_string(blocks(w)) == w

    def test_concat_blocks(self):
        assert concat_blocks(("1", 2), ("0", 3), ("1", 1)) == "110001"

    def test_concat_blocks_zero_run(self):
        assert concat_blocks(("1", 2), ("0", 0), ("1", 1)) == "111"

    def test_block_string_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            block_string([("2", 1)])

    def test_block_string_rejects_negative_run(self):
        with pytest.raises(ValueError):
            block_string([("1", -1)])


class TestIntCodec:
    def test_round_trip_all_d4(self):
        for code in range(16):
            w = int_to_word(code, 4)
            assert word_to_int(w) == code

    def test_msb_is_first_letter(self):
        assert word_to_int("100") == 4
        assert word_to_int("001") == 1

    def test_lex_order_equals_numeric_order(self):
        words = list(all_words(5))
        codes = [word_to_int(w) for w in words]
        assert codes == sorted(codes)
        assert words == sorted(words)

    def test_empty_word(self):
        assert word_to_int("") == 0
        assert int_to_word(0, 0) == ""

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_word(8, 3)
        with pytest.raises(ValueError):
            int_to_word(-1, 3)
        with pytest.raises(ValueError):
            int_to_word(0, -1)

    def test_all_words_count(self):
        assert len(list(all_words(6))) == 64

    def test_all_words_negative(self):
        with pytest.raises(ValueError):
            list(all_words(-1))
