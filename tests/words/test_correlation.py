"""Guibas--Odlyzko counting via the autocorrelation polynomial."""

import pytest

from repro.words.correlation import (
    autocorrelation,
    correlation_polynomial,
    count_avoiding_gf,
)
from repro.words.counting import count_vertices_automaton

from tests.conftest import naive_avoiding


class TestAutocorrelation:
    def test_always_contains_zero(self):
        for f in ("1", "10", "1100", "11010"):
            assert 0 in autocorrelation(f)

    def test_unbordered_word(self):
        # 1100 has no nontrivial border
        assert autocorrelation("1100") == [0]

    def test_periodic_word(self):
        # 1010: shifting by 2 realigns
        assert autocorrelation("1010") == [0, 2]

    def test_all_ones(self):
        assert autocorrelation("1111") == [0, 1, 2, 3]

    def test_polynomial_coefficients(self):
        assert correlation_polynomial("1010") == [1, 0, 1, 0]
        assert correlation_polynomial("11") == [1, 1]

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation("")
        with pytest.raises(ValueError):
            autocorrelation("12")


class TestGfCounting:
    FACTORS = ["1", "11", "10", "110", "101", "111", "1100", "1010", "11010", "10110"]

    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("d", [0, 1, 2, 5, 9])
    def test_matches_naive(self, f, d):
        assert count_avoiding_gf(f, d) == len(naive_avoiding(f, d))

    @pytest.mark.parametrize("f", FACTORS)
    def test_matches_automaton_far_out(self, f):
        for d in (30, 75):
            assert count_avoiding_gf(f, d) == count_vertices_automaton(f, d), (f, d)

    def test_fibonacci_numbers(self):
        from repro.combinat.sequences import fibonacci

        for d in range(20):
            assert count_avoiding_gf("11", d) == fibonacci(d + 2)

    def test_correlation_matters(self):
        """Words with the same length but different autocorrelation avoid
        at different rates -- the classical Guibas-Odlyzko surprise."""
        # 1010 (periodic) vs 1100 (unbordered), both length 4
        a = [count_avoiding_gf("1010", d) for d in range(14)]
        b = [count_avoiding_gf("1100", d) for d in range(14)]
        assert a != b
        # the unbordered factor is avoided by FEWER words eventually
        assert b[13] < a[13]

    def test_validation(self):
        with pytest.raises(ValueError):
            count_avoiding_gf("", 3)
        with pytest.raises(ValueError):
            count_avoiding_gf("11", -1)
