"""Unit tests for the KMP factor automaton."""

import pytest

from repro.words.automaton import (
    FactorAutomaton,
    kmp_failure,
    matrix_mult,
    matrix_power,
)

from tests.conftest import naive_all_words


class TestFailureFunction:
    def test_no_borders(self):
        assert kmp_failure("10") == [0, 0]

    def test_classic(self):
        assert kmp_failure("1011") == [0, 0, 1, 1]

    def test_periodic(self):
        assert kmp_failure("1010") == [0, 0, 1, 2]

    def test_all_same(self):
        assert kmp_failure("1111") == [0, 1, 2, 3]

    def test_single(self):
        assert kmp_failure("0") == [0]


class TestAutomaton:
    @pytest.mark.parametrize("f", ["1", "0", "11", "10", "110", "101", "1010", "11010", "10010"])
    def test_avoids_matches_substring_test(self, f):
        auto = FactorAutomaton(f)
        for d in range(0, 8):
            for w in naive_all_words(d):
                assert auto.avoids(w) == (f not in w), (f, w)

    def test_run_reaches_forbidden_and_stays(self):
        auto = FactorAutomaton("101")
        assert auto.run("0101") == auto.forbidden
        assert auto.run("010111") == auto.forbidden  # absorbing

    def test_run_partial_progress(self):
        auto = FactorAutomaton("110")
        # "11" matches 2 characters of the pattern
        assert auto.run("11") == 2

    def test_step_rejects_bad_bit(self):
        auto = FactorAutomaton("11")
        with pytest.raises(ValueError):
            auto.step(0, "2")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            FactorAutomaton("")

    def test_non_binary_pattern_rejected(self):
        with pytest.raises(ValueError):
            FactorAutomaton("12")

    def test_num_states(self):
        assert FactorAutomaton("1101").num_states == 5

    def test_safe_successors_avoid_forbidden(self):
        auto = FactorAutomaton("11")
        # from state 1 (just read a 1), reading 1 would be forbidden
        succ = auto.safe_successors(1)
        assert ("0", 0) not in succ  # bits are ints
        bits = [bit for bit, _ in succ]
        assert bits == [0]

    def test_transfer_matrix_row_sums(self):
        # every non-forbidden state has exactly 2 outgoing bits, of which
        # the matrix keeps those not entering the forbidden state
        auto = FactorAutomaton("111")
        mat = auto.transfer_matrix()
        for s, row in enumerate(mat):
            assert sum(row) in (1, 2)

    def test_transfer_matrix_counts_words(self):
        auto = FactorAutomaton("11")
        mat = auto.transfer_matrix()
        power = matrix_power(mat, 5)
        # F_{7} = 13 words of length 5 avoid 11
        assert sum(power[0]) == 13


class TestMatrixHelpers:
    def test_mult_identity(self):
        a = [[1, 2], [3, 4]]
        eye = [[1, 0], [0, 1]]
        assert matrix_mult(a, eye) == a
        assert matrix_mult(eye, a) == a

    def test_power_zero_is_identity(self):
        a = [[2, 1], [1, 1]]
        assert matrix_power(a, 0) == [[1, 0], [0, 1]]

    def test_power_matches_repeated_mult(self):
        a = [[2, 1], [1, 1]]
        expected = a
        for _ in range(4):
            expected = matrix_mult(expected, a)
        assert matrix_power(a, 5) == expected

    def test_power_negative_raises(self):
        with pytest.raises(ValueError):
            matrix_power([[1]], -1)

    def test_fibonacci_via_matrix(self):
        fib = [[1, 1], [1, 0]]
        p = matrix_power(fib, 10)
        assert p[0][1] == 55  # F_10


class TestMatrixDegenerateInputs:
    """The hardened helpers: degenerate shapes are defined, malformed
    shapes raise instead of corrupting downstream counts."""

    def test_empty_times_empty(self):
        assert matrix_mult([], []) == []

    def test_empty_power(self):
        assert matrix_power([], 0) == []
        assert matrix_power([], 7) == []

    def test_one_by_one(self):
        assert matrix_mult([[3]], [[5]]) == [[15]]
        assert matrix_power([[3]], 4) == [[81]]

    def test_ragged_rows_raise(self):
        with pytest.raises(ValueError):
            matrix_mult([[1, 2], [3]], [[1], [2]])
        with pytest.raises(ValueError):
            matrix_mult([[1]], [[1, 2], [3]])
        with pytest.raises(ValueError):
            matrix_power([[1, 2], [3]], 2)

    def test_inner_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            matrix_mult([[1, 2]], [[1, 2]])

    def test_non_square_power_raises(self):
        with pytest.raises(ValueError):
            matrix_power([[1, 2]], 2)

    def test_single_letter_factor(self):
        # avoiding "0" leaves exactly the all-ones word at every d
        auto = FactorAutomaton("0")
        assert auto.transfer_matrix() == [[1]]
        for d in (0, 1, 5, 40):
            assert sum(matrix_power(auto.transfer_matrix(), d)[0]) == 1
