"""Unit tests for factor-avoiding enumeration."""

import numpy as np
import pytest

from repro.words.core import word_to_int
from repro.words.enumerate import (
    avoiding_int_array,
    count_avoiding_bruteforce,
    iter_avoiding,
    list_avoiding,
)

from tests.conftest import naive_avoiding


FACTORS = ["1", "11", "10", "110", "101", "1100", "1010", "11010", "10110"]


class TestIterAvoiding:
    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("d", [0, 1, 3, 6])
    def test_matches_naive_filter(self, f, d):
        assert list_avoiding(f, d) == naive_avoiding(f, d)

    def test_lexicographic_order(self):
        words = list_avoiding("11", 7)
        assert words == sorted(words)

    def test_d_zero_yields_empty_word(self):
        assert list_avoiding("101", 0) == [""]

    def test_factor_one_only_zeros(self):
        assert list_avoiding("1", 4) == ["0000"]

    def test_empty_factor_rejected(self):
        with pytest.raises(ValueError):
            list(iter_avoiding("", 3))

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            list(iter_avoiding("11", -1))


class TestAvoidingIntArray:
    @pytest.mark.parametrize("f", FACTORS)
    @pytest.mark.parametrize("d", [0, 1, 4, 7])
    def test_matches_string_enumeration(self, f, d):
        codes = avoiding_int_array(f, d)
        expected = np.array([word_to_int(w) for w in naive_avoiding(f, d)], dtype=np.int64)
        assert np.array_equal(codes, expected)

    def test_sorted(self):
        codes = avoiding_int_array("110", 9)
        assert np.all(np.diff(codes) > 0)

    def test_dtype(self):
        assert avoiding_int_array("11", 5).dtype == np.int64

    def test_d_too_large_rejected(self):
        with pytest.raises(ValueError):
            avoiding_int_array("11", 63)

    def test_large_d_matches_fibonacci(self):
        # |V(Gamma_20)| = F_22 = 17711
        assert avoiding_int_array("11", 20).size == 17711

    def test_count_bruteforce_helper(self):
        assert count_avoiding_bruteforce("11", 6) == 21
