"""The analytic-vs-simulated cross-check driver, plus its golden
fixture.

The fixture ``tests/network/golden/analytic_crosscheck.json`` is the
canonical :func:`crosscheck_report` of the same deterministic sweep
records behind the insight-engine golden
(``tests/network/golden/insights_records.json``): one grid, two
byte-pinned reports.  Regenerate after an *intentional* change with::

    PYTHONPATH=src:tests python -c \\
      "from analytic.test_crosscheck_golden import dump_golden_crosscheck; \\
       dump_golden_crosscheck()"

(after regenerating the insight goldens first, if the sweep schema
changed -- see ``tests/network/test_insights.py``).
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.analytic.crosscheck import (
    KNEE_TOLERANCE,
    crosscheck_report,
    render_text,
    report_to_json,
)
from repro.cli import main
from repro.network.insights import load_records

GOLDEN = Path(__file__).parent.parent / "network" / "golden"


def golden_records():
    return load_records(str(GOLDEN / "insights_records.json"))


class TestGoldenCrosscheck:
    def test_report_bytes_match_fixture(self):
        report = crosscheck_report(golden_records())
        assert report_to_json(report) == (
            GOLDEN / "analytic_crosscheck.json").read_text()

    def test_golden_grid_agrees_with_the_bounds(self):
        # the acceptance criterion: on the golden small-d grid every
        # simulated knee sits within KNEE_TOLERANCE of its analytic
        # bound -- no divergences, nothing unexplained
        report = crosscheck_report(golden_records())
        assert report["compared"] == 2
        assert report["verdict_counts"]["divergent"] == 0
        assert report["verdict_counts"]["consistent"] == 2
        for comparison in report["comparisons"]:
            assert comparison["knee_ratio"] <= KNEE_TOLERANCE

    def test_cli_compare_matches_fixture(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        rc = main([
            "analytic", "compare", str(GOLDEN / "insights_records.json"),
            "--json", "--out", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr()
        golden = (GOLDEN / "analytic_crosscheck.json").read_text()
        assert captured.out == golden
        assert out.read_text() == golden


class TestCrosscheckReport:
    def test_ineligible_curves_are_skipped(self):
        # faulted clones of every record must be skipped, not compared
        records = golden_records()
        faulted = [replace(r, faults="n1@5") for r in records]
        report = crosscheck_report(records + faulted)
        assert report["compared"] == 2
        assert report["skipped"] >= 2

    def test_no_knee_verdict(self):
        # keep only the low-load half of every curve: no knee anywhere
        records = [r for r in golden_records() if r.load <= 0.5]
        report = crosscheck_report(records)
        assert report["compared"] == 2
        assert report["verdict_counts"]["no-knee"] == 2
        for comparison in report["comparisons"]:
            assert comparison["knee_load"] is None
            assert comparison["knee_ratio"] is None

    def test_divergent_verdict_with_tight_tolerance(self):
        # shrinking the tolerance below the hypercube's ratio of 1.0
        # flips its verdict: the band is doing the deciding
        report = crosscheck_report(golden_records(), tolerance=0.9)
        assert report["verdict_counts"]["divergent"] >= 1

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            crosscheck_report([], tolerance=0.0)

    def test_render_text_mentions_every_verdict(self):
        report = crosscheck_report(golden_records())
        text = render_text(report)
        assert "2 compared against analytic bounds" in text
        assert "[consistent]" in text


def dump_golden_crosscheck() -> None:
    """Regenerate the golden cross-check fixture (after an intentional
    model or report-format change only)."""
    report = crosscheck_report(golden_records())
    (GOLDEN / "analytic_crosscheck.json").write_text(report_to_json(report))
