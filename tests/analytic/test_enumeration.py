"""Counting systems: series vs matrix powers vs extracted recurrences,
including the d = 200 speed contract of the analytic layer."""

import time

import pytest

from repro.analytic.enumeration import (
    CountingSystem,
    berlekamp_massey,
    edge_system,
    vertex_system,
)
from repro.analytic.fsm import FSM
from repro.combinat.sequences import fibonacci
from repro.words.counting import count_edges_automaton, count_vertices_automaton


class TestBerlekampMassey:
    def test_fibonacci(self):
        assert berlekamp_massey([1, 1, 2, 3, 5, 8, 13, 21]) == [1, 1]

    def test_geometric(self):
        assert berlekamp_massey([1, 3, 9, 27, 81]) == [3]

    def test_zero_sequence(self):
        assert berlekamp_massey([0, 0, 0, 0]) == []


class TestVertexSystem:
    def test_matches_kmp_counter(self):
        for f in ("11", "000", "101", "0110"):
            system = vertex_system(FSM.from_factors([f]))
            for d in range(12):
                assert system.term(d) == count_vertices_automaton(f, d)

    def test_series_matches_term(self):
        system = vertex_system(FSM.from_factors(["101"]))
        assert system.series(15) == [system.term(d) for d in range(15)]

    def test_discovers_the_fibonacci_recurrence(self):
        system = vertex_system(FSM.from_factors(["11"]))
        assert system.linear_recurrence() == [1, 1]
        assert system.smart_enumeration(10) == [
            fibonacci(d + 2) for d in range(10)]


class TestEdgeSystem:
    def test_matches_streaming_counter(self):
        for f in ("11", "000", "101"):
            system = edge_system(FSM.from_factors([f]))
            for d in range(11):
                assert system.term(d) == count_edges_automaton(f, d)

    def test_hypercube_edges(self):
        system = edge_system(FSM.universal())
        for d in range(12):
            expected = d * 2 ** (d - 1) if d else 0
            assert system.term(d) == expected

    def test_recurrence_extends_exactly(self):
        system = edge_system(FSM.from_factors(["11"]))
        assert system.smart_term(60) == system.term(60)


class TestSpeedContract:
    def test_d200_under_a_second(self):
        # the acceptance criterion: exact counts at d = 200 in < 1 s
        start = time.monotonic()
        fsm = FSM.from_factors(["11"])
        nodes = vertex_system(fsm).term(200)
        edges = edge_system(fsm).smart_term(200)
        elapsed = time.monotonic() - start
        assert nodes == fibonacci(202)
        # closed form: E(Gamma_d) = (d F_{d+1} + 2 (d+1) F_d) / 5
        d = 200
        assert edges == (d * fibonacci(d + 1) + 2 * (d + 1) * fibonacci(d)) // 5
        assert elapsed < 1.0


class TestValidation:
    def test_shapes(self):
        with pytest.raises(ValueError):
            CountingSystem([[1, 2]], [1], [1])
        with pytest.raises(ValueError):
            CountingSystem([[1]], [1, 2], [1])
        system = CountingSystem([[2]], [1], [1])
        with pytest.raises(ValueError):
            system.term(-1)
        with pytest.raises(ValueError):
            system.series(-1)

    def test_trivial_systems(self):
        # 1x1 system: powers of the single entry
        system = CountingSystem([[2]], [1], [1])
        assert system.series(5) == [1, 2, 4, 8, 16]
        assert system.linear_recurrence() == [2]
        # never-accepting system: identically zero, empty recurrence
        system = CountingSystem([[2]], [1], [0])
        assert system.linear_recurrence() == []
        assert system.smart_enumeration(6) == [0] * 6
