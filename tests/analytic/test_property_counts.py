"""Property tests: every counting route agrees with brute force and
with the actually-built topologies (the satellite-4 contract)."""

import random

import pytest

from repro.analytic.enumeration import edge_system, vertex_system
from repro.analytic.fsm import FSM
from repro.cubes.fibonacci import fibonacci_cube
from repro.cubes.generalized import generalized_fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.network.topology import topology_of
from repro.words.core import all_words, contains_factor
from repro.words.counting import count_vertices_automaton


def random_factors(seed, n=12, max_len=5):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        length = rng.randint(1, max_len)
        out.append("".join(rng.choice("01") for _ in range(length)))
    return out


class TestBruteForceAgreement:
    @pytest.mark.parametrize("f", random_factors(seed=7))
    def test_vertices_match_brute_force(self, f):
        fsm = FSM.from_factors([f])
        system = vertex_system(fsm)
        for d in range(13):
            brute = sum(1 for w in all_words(d) if not contains_factor(w, f))
            assert count_vertices_automaton(f, d) == brute
            assert fsm.count_words(d) == brute
            assert system.term(d) == brute

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_factor_sets_match_brute_force(self, seed):
        factors = random_factors(seed=seed, n=3, max_len=4)
        fsm = FSM.from_factors(factors)
        for d in range(11):
            brute = [
                w for w in all_words(d)
                if not any(contains_factor(w, f) for f in factors)
            ]
            assert fsm.count_words(d) == len(brute)

    @pytest.mark.parametrize("f", ["11", "000", "101", "0101"])
    def test_edges_match_brute_force(self, f):
        system = edge_system(FSM.from_factors([f]))
        for d in range(10):
            words = [w for w in all_words(d) if not contains_factor(w, f)]
            kept = set(words)
            brute = sum(
                1 for w in words for i in range(d)
                if w[i] == "0" and w[:i] + "1" + w[i + 1:] in kept
            )
            assert system.term(d) == brute


class TestTopologyAgreement:
    @pytest.mark.parametrize("d", range(1, 9))
    def test_hypercube(self, d):
        topo = topology_of(hypercube(d), name=f"Q_{d}")
        fsm = FSM.universal()
        assert vertex_system(fsm).term(d) == topo.num_nodes
        assert edge_system(fsm).term(d) == topo.num_links

    @pytest.mark.parametrize("d", range(1, 10))
    def test_fibonacci_cube(self, d):
        cube = fibonacci_cube(d)
        fsm = FSM.from_factors(["11"])
        assert vertex_system(fsm).term(d) == cube.num_vertices
        assert edge_system(fsm).term(d) == cube.num_edges

    @pytest.mark.parametrize("f,d", [
        ("101", 7), ("000", 6), ("0110", 7), ("00", 8),
    ])
    def test_generalized_cubes(self, f, d):
        cube = generalized_fibonacci_cube(f, d)
        topo = topology_of((f, d))
        fsm = FSM.from_factors([f])
        assert vertex_system(fsm).term(d) == cube.num_vertices == topo.num_nodes
        assert edge_system(fsm).term(d) == cube.num_edges == topo.num_links
