"""Direction cuts, bisection estimates and the saturation bound,
cross-checked against exact edge counts and the built topologies."""

import pytest

from repro.analytic.bounds import (
    DirectionCut,
    analytic_saturation_bound,
    analytic_summary,
    bisection_estimate,
    cube_model,
    cut_profile,
    parse_cube_name,
    saturation_bound,
)
from repro.analytic.enumeration import edge_system, vertex_system
from repro.analytic.fsm import FSM
from repro.network.topology import topology_of
from repro.cubes.hypercube import hypercube


class TestCutProfile:
    def test_cuts_tile_the_edge_set(self):
        # sum of direction-cut crossings = total edges, every family
        for factors in ((), ("11",), ("101",), ("00", "11")):
            fsm = cube_model(factors)
            for d in range(9):
                profile = cut_profile(fsm, d)
                assert sum(c.crossing for c in profile) == edge_system(fsm).term(d)

    def test_sides_partition_the_vertices(self):
        for factors in ((), ("11",), ("101",)):
            fsm = cube_model(factors)
            for d in range(1, 9):
                n = vertex_system(fsm).term(d)
                for cut in cut_profile(fsm, d):
                    assert cut.n0 + cut.n1 == n

    def test_hypercube_cuts_are_exact_bisections(self):
        for d in range(1, 10):
            for cut in cut_profile(FSM.universal(), d):
                assert cut.n0 == cut.n1 == 2 ** (d - 1)
                assert cut.crossing == 2 ** (d - 1)

    def test_d0_has_no_cuts(self):
        assert cut_profile(FSM.universal(), 0) == []
        assert bisection_estimate([]) is None

    def test_negative_dimension(self):
        with pytest.raises(ValueError):
            cut_profile(FSM.universal(), -1)


class TestSaturationBound:
    def test_hypercube_bound_is_two(self):
        # full-duplex links: theta* = crossing*N/(n0*n1) = 2.0 exactly
        for d in range(1, 10):
            assert analytic_saturation_bound(f"Q_{d}") == 2.0

    def test_degenerate_cuts_bound_nothing(self):
        assert saturation_bound(None) == 0.0
        assert saturation_bound(DirectionCut(0, 5, 0, 0)) == 0.0

    def test_fibonacci_cube_below_hypercube(self):
        for d in range(2, 10):
            bound = analytic_saturation_bound(f"Q_{d}(11)")
            assert 0.0 < bound < 2.0

    def test_bisection_tie_breaks_deterministic(self):
        cuts = [
            DirectionCut(0, 4, 4, 7),
            DirectionCut(1, 4, 4, 3),
            DirectionCut(2, 5, 3, 1),
        ]
        assert bisection_estimate(cuts) == cuts[1]


class TestParseCubeName:
    @pytest.mark.parametrize("name,expected", [
        ("Q_7", (7, ())),
        ("Q_7(11)", (7, ("11",))),
        ("Q_5(00,11)", (5, ("00", "11"))),
        ("Q:7", (7, ())),
        ("hypercube:4", (4, ())),
        ("11:7", (7, ("11",))),
        ("00,11:6", (6, ("00", "11"))),
        ("Q_0", (0, ())),
    ])
    def test_recognized(self, name, expected):
        assert parse_cube_name(name) == expected

    @pytest.mark.parametrize("name", [
        "", "torus_4", "Q_x", "Q_7(12)", "Q_7()", "ab:7", "11:x", "11:-3",
        "Q_7(11",
    ])
    def test_rejected(self, name):
        assert parse_cube_name(name) is None


class TestAnalyticSummary:
    def test_matches_built_topology(self):
        topo = topology_of(("101", 7))
        summary = analytic_summary(topo.name)
        assert summary["nodes"] == topo.num_nodes
        assert summary["edges"] == topo.num_links

    def test_matches_hypercube(self):
        topo = topology_of(hypercube(6), name="Q_6")
        summary = analytic_summary("Q_6")
        assert summary["nodes"] == topo.num_nodes
        assert summary["edges"] == topo.num_links

    def test_unrecognized_is_zero_bound(self):
        assert analytic_summary("mesh_4x4") is None
        assert analytic_saturation_bound("mesh_4x4") == 0.0

    def test_d0_bound_is_zero(self):
        assert analytic_saturation_bound("Q_0") == 0.0
