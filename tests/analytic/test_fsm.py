"""The avoidance-FSM language algebra, pinned against brute force and
the published enumeration sequences of the FSM literature."""

import pytest

from repro.analytic.fsm import FSM
from repro.analytic.enumeration import vertex_system
from repro.words.core import all_words, contains_factor

# Enumeration sequences from the FiniteStateMachines exemplar: number
# of binary words of length 0..10 in each language.
SEQ_AVOID_000 = [1, 2, 4, 7, 13, 24, 44, 81, 149, 274, 504]
SEQ_AVOID_101 = [1, 2, 4, 7, 12, 21, 37, 65, 114, 200, 351]
SEQ_BOTH = [1, 2, 4, 6, 9, 13, 19, 28, 41, 60, 88]
SEQ_EITHER = [1, 2, 4, 8, 16, 32, 62, 118, 222, 414, 767]


def brute(predicate, d):
    return sum(1 for w in all_words(d) if predicate(w))


class TestConstruction:
    def test_universal_accepts_everything(self):
        u = FSM.universal()
        assert all(u.accepts(w) for w in all_words(6))
        assert u.count_words(10) == 1024

    def test_from_factors_is_avoidance(self):
        f = FSM.from_factors(["11"])
        for d in range(8):
            for w in all_words(d):
                assert f.accepts(w) == (not contains_factor(w, "11"))

    def test_validation(self):
        with pytest.raises(ValueError):
            FSM([], [])
        with pytest.raises(ValueError):
            FSM([(0, 5)], [0])
        with pytest.raises(ValueError):
            FSM([(0, 0)], [3])
        with pytest.raises(ValueError):
            FSM.universal().accepts("012")


class TestExemplarSequences:
    def test_avoid_000(self):
        assert vertex_system(FSM.from_factors(["000"])).series(11) == SEQ_AVOID_000

    def test_avoid_101(self):
        assert vertex_system(FSM.from_factors(["101"])).series(11) == SEQ_AVOID_101

    def test_intersection(self):
        fsm = FSM.from_factors(["000"]).intersection(FSM.from_factors(["101"]))
        assert vertex_system(fsm).series(11) == SEQ_BOTH
        # one automaton for the whole factor set agrees
        both = FSM.from_factors(["000", "101"])
        assert vertex_system(both).series(11) == SEQ_BOTH

    def test_union(self):
        fsm = FSM.from_factors(["000"]).union(FSM.from_factors(["101"]))
        assert vertex_system(fsm).series(11) == SEQ_EITHER


class TestAlgebra:
    def test_complement_partitions_the_cube(self):
        f = FSM.from_factors(["010"])
        for d in range(9):
            assert f.count_words(d) + f.complement().count_words(d) == 2 ** d

    def test_union_intersection_vs_brute_force(self):
        a = FSM.from_factors(["110"])
        b = FSM.from_factors(["011"])
        for d in range(8):
            in_a = lambda w: not contains_factor(w, "110")  # noqa: E731
            in_b = lambda w: not contains_factor(w, "011")  # noqa: E731
            assert a.union(b).count_words(d) == brute(
                lambda w: in_a(w) or in_b(w), d)
            assert a.intersection(b).count_words(d) == brute(
                lambda w: in_a(w) and in_b(w), d)

    def test_de_morgan(self):
        a = FSM.from_factors(["00"])
        b = FSM.from_factors(["111"])
        lhs = a.union(b).complement()
        rhs = a.complement().intersection(b.complement())
        assert lhs.equivalent(rhs)


class TestMinimize:
    def test_minimization_preserves_the_language(self):
        f = FSM.from_factors(["101", "000"])
        m = f.minimize()
        assert m.num_states <= f.num_states
        for d in range(8):
            assert m.count_words(d) == f.count_words(d)

    def test_canonical_form_decides_equivalence(self):
        # intersecting with the universal language changes nothing
        f = FSM.from_factors(["101"])
        blown_up = f.intersection(FSM.universal()).union(
            f.intersection(FSM.universal()))
        assert blown_up.minimize() == f.minimize()
        assert blown_up.equivalent(f)
        assert not f.equivalent(FSM.from_factors(["110"]))

    def test_minimize_collapses_dead_clones(self):
        # two distinct absorbing reject states must merge: both FSMs
        # accept exactly the all-zero words
        f = FSM([(1, 2), (1, 3), (2, 2), (3, 3)], [0, 1]).minimize()
        g = FSM([(0, 1), (1, 1)], [0]).minimize()
        assert f == g
        assert f.num_states == 2

    def test_subsumed_factors_equivalent_after_construction(self):
        assert FSM.from_factors(["11", "110"]).equivalent(
            FSM.from_factors(["11"]))
