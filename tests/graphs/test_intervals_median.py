"""Unit tests for intervals and medians."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.graphs.intervals import distance_interval, is_on_shortest_path
from repro.graphs.median import (
    is_median_graph,
    majority_word,
    median_of_triple,
    triple_intervals_intersection,
)

from tests.conftest import complete_graph, cycle_graph, grid_graph, path_graph


class TestIntervals:
    def test_path_interval_is_whole_segment(self):
        g = path_graph(6)
        assert distance_interval(g, 1, 4) == [1, 2, 3, 4]

    def test_interval_endpoints_always_in(self):
        g = grid_graph(3, 3)
        for u in range(9):
            for v in range(9):
                iv = distance_interval(g, u, v)
                assert u in iv and v in iv

    def test_cycle_antipodal_interval_is_everything(self):
        g = cycle_graph(6)
        assert distance_interval(g, 0, 3) == list(range(6))

    def test_cycle_short_interval(self):
        g = cycle_graph(6)
        assert distance_interval(g, 0, 1) == [0, 1]

    def test_hypercube_interval_size(self):
        # |I(u, v)| = 2^{hamming} in a hypercube
        g = hypercube(3)
        assert len(distance_interval(g, 0, 7)) == 8
        assert len(distance_interval(g, 0, 3)) == 4

    def test_disconnected_raises(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            distance_interval(g, 0, 2)

    def test_is_on_shortest_path(self):
        g = path_graph(5)
        assert is_on_shortest_path(g, 0, 2, 4)
        g2 = cycle_graph(6)
        assert not is_on_shortest_path(g2, 0, 3, 1)


class TestMedian:
    def test_path_median(self):
        g = path_graph(5)
        assert median_of_triple(g, 0, 2, 4) == 2
        assert median_of_triple(g, 0, 1, 4) == 1

    def test_hypercube_median_is_majority(self):
        g = hypercube(4)
        import itertools

        for u, v, w in itertools.combinations(range(16), 3):
            assert median_of_triple(g, u, v, w) == majority_word(u, v, w)

    def test_even_cycle_has_no_unique_median_for_antipodes(self):
        g = cycle_graph(6)
        hits = triple_intervals_intersection(g, 0, 2, 4)
        assert len(hits) != 1
        assert median_of_triple(g, 0, 2, 4) is None

    def test_trees_are_median(self):
        assert is_median_graph(path_graph(6))

    def test_hypercube_is_median(self):
        assert is_median_graph(hypercube(3))

    def test_k4_not_median(self):
        assert not is_median_graph(complete_graph(4))

    def test_c6_not_median(self):
        assert not is_median_graph(cycle_graph(6))

    def test_c4_is_median(self):
        assert is_median_graph(cycle_graph(4))

    def test_empty_not_median(self):
        assert not is_median_graph(Graph(0))

    def test_disconnected_not_median(self):
        assert not is_median_graph(Graph.from_edges(2, []))

    def test_majority_word_bits(self):
        assert majority_word(0b110, 0b101, 0b011) == 0b111
        assert majority_word(0b000, 0b101, 0b011) == 0b001
        assert majority_word(5, 5, 9) == 5
