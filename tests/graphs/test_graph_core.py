"""Unit tests for the Graph type."""

import pytest

from repro.graphs.core import Graph

from tests.conftest import cycle_graph, path_graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_edges(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.has_edge(0, 1) and g.has_edge(1, 2)
        assert not g.has_edge(0, 2)

    def test_add_edge_out_of_range(self):
        g = Graph(2)
        with pytest.raises(IndexError):
            g.add_edge(0, 2)

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_duplicate_edge_rejected(self):
        g = Graph(2)
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            g.add_edge(1, 0)

    def test_add_vertex(self):
        g = Graph(1)
        idx = g.add_vertex()
        assert idx == 1
        g.add_edge(0, 1)
        assert g.num_edges == 1


class TestQueries:
    def test_degrees(self):
        g = path_graph(4)
        assert g.degrees() == [1, 2, 2, 1]
        assert g.max_degree() == 2
        assert g.degree(0) == 1

    def test_edges_each_once_ordered(self):
        g = cycle_graph(5)
        es = list(g.edges())
        assert len(es) == 5
        assert all(u < v for u, v in es)
        assert len(set(es)) == 5

    def test_has_edge_symmetric(self):
        g = path_graph(3)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_neighbors(self):
        g = cycle_graph(4)
        assert sorted(g.neighbors(0)) == [1, 3]


class TestLabels:
    def test_set_and_lookup(self):
        g = path_graph(3)
        g.set_labels(["a", "b", "c"])
        assert g.label_of(1) == "b"
        assert g.index_of("c") == 2
        assert g.has_label("a") and not g.has_label("z")

    def test_wrong_count_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            g.set_labels(["a", "b"])

    def test_duplicate_labels_rejected(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            g.set_labels(["a", "a", "b"])

    def test_no_labels_raises(self):
        g = path_graph(2)
        with pytest.raises(KeyError):
            g.label_of(0)
        with pytest.raises(KeyError):
            g.index_of("x")

    def test_add_vertex_after_labels_rejected(self):
        g = path_graph(2)
        g.set_labels(["a", "b"])
        with pytest.raises(RuntimeError):
            g.add_vertex()


class TestCSR:
    def test_csr_structure(self):
        g = path_graph(3)
        indptr, indices = g.csr()
        assert indptr.tolist() == [0, 1, 3, 4]
        assert sorted(indices[1:3].tolist()) == [0, 2]

    def test_csr_cache_invalidation(self):
        g = Graph(3)
        g.add_edge(0, 1)
        indptr1, _ = g.csr()
        g.add_edge(1, 2)
        indptr2, _ = g.csr()
        assert indptr2[-1] == 4
        assert indptr1[-1] == 2  # old arrays untouched

    def test_csr_total_is_twice_edges(self):
        g = cycle_graph(7)
        indptr, indices = g.csr()
        assert indptr[-1] == 2 * g.num_edges == indices.size


class TestDerived:
    def test_induced_subgraph(self):
        g = cycle_graph(5)
        sub, old = g.induced_subgraph([0, 1, 2])
        assert old == [0, 1, 2]
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # path 0-1-2

    def test_induced_subgraph_labels_carry(self):
        g = path_graph(3)
        g.set_labels(["x", "y", "z"])
        sub, _ = g.induced_subgraph([2, 0])
        assert sub.labels == ["z", "x"]

    def test_induced_subgraph_dedupes(self):
        g = path_graph(3)
        sub, old = g.induced_subgraph([1, 1, 2])
        assert old == [1, 2]

    def test_copy_independent(self):
        g = path_graph(3)
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert h.num_edges == g.num_edges + 1

    def test_repr(self):
        assert repr(path_graph(3)) == "Graph(n=3, m=2)"
