"""Unit tests for isomorphism and networkx adapters."""

import networkx as nx
import pytest

from repro.graphs.core import Graph
from repro.graphs.isomorphism import are_isomorphic, find_isomorphism, refine_colors
from repro.graphs.nxadapter import from_networkx, to_networkx

from tests.conftest import cycle_graph, path_graph, star_graph


class TestIsomorphism:
    def test_same_graph(self):
        g = cycle_graph(5)
        assert are_isomorphic(g, g)

    def test_relabelled_cycle(self):
        g = cycle_graph(6)
        # cycle with different vertex order: 0-2-4-1-3-5-0
        order = [0, 2, 4, 1, 3, 5]
        h = Graph.from_edges(6, [(order[i], order[(i + 1) % 6]) for i in range(6)])
        assert are_isomorphic(g, h)

    def test_path_vs_star_same_size(self):
        # P4 and K_{1,3} both have 4 vertices, 3 edges -- not isomorphic
        assert not are_isomorphic(path_graph(4), star_graph(3))

    def test_different_edge_count(self):
        assert not are_isomorphic(path_graph(4), cycle_graph(4))

    def test_mapping_preserves_edges_exactly(self):
        g = cycle_graph(7)
        phi = find_isomorphism(g, g)
        for u in range(7):
            for v in range(u + 1, 7):
                assert g.has_edge(u, v) == g.has_edge(phi[u], phi[v])

    def test_regular_non_isomorphic_pair(self):
        # K_{3,3} vs the prism (C_6 with chords): both 3-regular on 6 vertices
        k33 = Graph.from_edges(
            6, [(i, j) for i in (0, 1, 2) for j in (3, 4, 5)]
        )
        prism = Graph.from_edges(
            6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (0, 3), (1, 4), (2, 5)]
        )
        assert not are_isomorphic(k33, prism)

    def test_refine_colors_distinguishes_degrees(self):
        g = star_graph(3)
        colors = refine_colors(g)
        assert colors[0] != colors[1]
        assert colors[1] == colors[2] == colors[3]

    def test_against_networkx_on_random_pairs(self):
        import random

        rng = random.Random(7)
        for trial in range(20):
            n = rng.randrange(4, 9)
            edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < 0.4]
            g = Graph.from_edges(n, edges)
            perm = list(range(n))
            rng.shuffle(perm)
            h = Graph.from_edges(n, [(perm[u], perm[v]) for u, v in edges])
            assert are_isomorphic(g, h)
            nxg, nxh = to_networkx(g, False), to_networkx(h, False)
            assert nx.is_isomorphic(nxg, nxh)


class TestNxAdapter:
    def test_round_trip(self):
        g = cycle_graph(5)
        g.set_labels(list("abcde"))
        back = from_networkx(to_networkx(g))
        assert back.num_vertices == 5 and back.num_edges == 5
        assert sorted(back.labels) == list("abcde")

    def test_to_networkx_without_labels(self):
        g = path_graph(3)
        nxg = to_networkx(g)
        assert set(nxg.nodes()) == {0, 1, 2}

    def test_from_networkx_with_node_order(self):
        nxg = nx.path_graph(3)
        g = from_networkx(nxg, node_order=[2, 1, 0])
        assert g.labels == [2, 1, 0]
        assert g.has_edge(0, 1) and g.has_edge(1, 2)

    def test_from_networkx_bad_order(self):
        nxg = nx.path_graph(3)
        with pytest.raises(ValueError):
            from_networkx(nxg, node_order=[0, 1])

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.num_edges == 1
