"""Unit tests for BFS kernels and distance parameters (vs networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.core import Graph
from repro.graphs.nxadapter import to_networkx
from repro.graphs.traversal import (
    all_pairs_distances,
    bfs_distances,
    bfs_distances_csr,
    connected_components,
    diameter,
    eccentricities,
    is_connected,
    radius,
)

from tests.conftest import complete_graph, cycle_graph, grid_graph, path_graph, star_graph


GRAPHS = {
    "path6": path_graph(6),
    "cycle7": cycle_graph(7),
    "k5": complete_graph(5),
    "grid34": grid_graph(3, 4),
    "star8": star_graph(8),
}


class TestBfsEngines:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_deque_matches_networkx(self, name):
        g = GRAPHS[name]
        nxg = to_networkx(g, use_labels=False)
        for s in range(g.num_vertices):
            want = nx.single_source_shortest_path_length(nxg, s)
            got = bfs_distances(g, s)
            for v in range(g.num_vertices):
                assert got[v] == want.get(v, -1)

    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_csr_matches_deque(self, name):
        g = GRAPHS[name]
        for s in range(g.num_vertices):
            assert np.array_equal(bfs_distances(g, s), bfs_distances_csr(g, s))

    def test_disconnected_marks_unreachable(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        dist = bfs_distances(g, 0)
        assert dist.tolist() == [0, 1, -1, -1]
        assert np.array_equal(dist, bfs_distances_csr(g, 0))

    def test_source_out_of_range(self):
        g = path_graph(3)
        with pytest.raises(IndexError):
            bfs_distances(g, 3)
        with pytest.raises(IndexError):
            bfs_distances_csr(g, -1)

    def test_csr_on_isolated_vertex(self):
        g = Graph(3)
        g.add_edge(0, 1)
        dist = bfs_distances_csr(g, 2)
        assert dist.tolist() == [-1, -1, 0]


class TestAllPairs:
    @pytest.mark.parametrize("engine", ["deque", "csr", "auto"])
    def test_engines_agree(self, engine):
        g = grid_graph(3, 3)
        base = all_pairs_distances(g, engine="deque")
        assert np.array_equal(all_pairs_distances(g, engine=engine), base)

    def test_symmetric(self):
        g = cycle_graph(6)
        d = all_pairs_distances(g)
        assert np.array_equal(d, d.T)

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            all_pairs_distances(path_graph(2), engine="gpu")


class TestParameters:
    def test_path_diameter_radius(self):
        g = path_graph(7)
        assert diameter(g) == 6
        assert radius(g) == 3

    def test_cycle_even(self):
        g = cycle_graph(8)
        assert diameter(g) == 4
        assert radius(g) == 4

    def test_eccentricities_star(self):
        g = star_graph(5)
        ecc = eccentricities(g)
        assert ecc[0] == 1
        assert all(e == 2 for e in ecc[1:])

    def test_disconnected_eccentricity_raises(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            eccentricities(g)

    def test_empty_diameter_raises(self):
        with pytest.raises(ValueError):
            diameter(Graph(0))
        with pytest.raises(ValueError):
            radius(Graph(0))

    def test_diameter_matches_networkx(self):
        for name, g in GRAPHS.items():
            assert diameter(g) == nx.diameter(to_networkx(g, use_labels=False)), name


class TestConnectivity:
    def test_connected(self):
        assert is_connected(path_graph(5))
        assert is_connected(Graph(1))
        assert is_connected(Graph(0))

    def test_disconnected(self):
        assert not is_connected(Graph.from_edges(3, [(0, 1)]))

    def test_components(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        comps = connected_components(g)
        assert sorted(map(sorted, comps)) == [[0, 1, 2], [3, 4], [5]]

    def test_components_cover_all_vertices(self):
        g = Graph.from_edges(5, [(0, 4), (1, 3)])
        comps = connected_components(g)
        assert sorted(v for comp in comps for v in comp) == list(range(5))
