"""Section 8: Conjecture 8.1 sweep and the Q_d(101) ladder."""

import pytest

from repro.conjectures.conj81 import Conjecture81Case, sweep_conjecture_81
from repro.conjectures.q101 import (
    q101_ladder_certificate,
    q101_not_partial_cube,
)


class TestConjecture81:
    @pytest.fixture(scope="class")
    def cases(self):
        return sweep_conjecture_81(max_factor_length=3, max_d=8)

    def test_no_violation_in_range(self, cases):
        assert all(not c.violates for c in cases)

    def test_nonvacuous_support_exists(self, cases):
        assert sum(1 for c in cases if c.supports) > 20

    def test_known_instance_11(self, cases):
        # f = 11 embeddable, ff = 1111 embeddable (both Prop 3.1)
        hits = [c for c in cases if c.f == "11" and c.d == 8]
        assert hits and hits[0].supports

    def test_known_instance_10(self, cases):
        # f = 10 embeddable (Thm 3.3(i)), ff = 1010 embeddable (Thm 4.4)
        hits = [c for c in cases if c.f == "10" and c.d == 8]
        assert hits and hits[0].supports

    def test_premise_false_cases_excluded(self, cases):
        # 101 at d >= 4 is not embeddable, so it must not appear
        assert not any(c.f == "101" and c.d >= 4 for c in cases)

    def test_case_properties(self):
        c = Conjecture81Case("11", 5, True, True)
        assert c.supports and not c.violates
        c2 = Conjecture81Case("11", 5, True, False)
        assert c2.violates


class TestQ101Ladder:
    @pytest.mark.parametrize("d", [4, 5, 6, 7])
    def test_certificate_builds_and_verifies(self, d):
        cert = q101_ladder_certificate(d)
        assert cert.d == d
        assert len(cert.rungs) == 2 * d - 3
        assert cert.theta_direct is False

    def test_ladder_endpoints(self):
        cert = q101_ladder_certificate(5)
        tops = [t for t, _ in cert.rungs]
        assert tops[0] == "11111"
        assert tops[-1] == "11001"

    def test_d_below_4_rejected(self):
        with pytest.raises(ValueError):
            q101_ladder_certificate(3)

    @pytest.mark.parametrize("d", [4, 5, 6])
    def test_not_partial_cube(self, d):
        assert q101_not_partial_cube(d)

    def test_small_d_is_partial_cube(self):
        # for d <= 3, Q_d(101) is isometric in Q_d (Lemma 2.1), hence a
        # partial cube
        assert not q101_not_partial_cube(3)
