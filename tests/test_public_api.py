"""Public API surface and package-level doctests."""

import doctest

import repro


class TestSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_doctests(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0

    def test_subpackage_docs(self):
        import repro.classify
        import repro.combinat
        import repro.conjectures
        import repro.cubes
        import repro.dimension
        import repro.graphs
        import repro.invariants
        import repro.isometry
        import repro.network
        import repro.words

        for mod in (
            repro.classify,
            repro.combinat,
            repro.conjectures,
            repro.cubes,
            repro.dimension,
            repro.graphs,
            repro.invariants,
            repro.isometry,
            repro.network,
            repro.words,
        ):
            assert mod.__doc__ and len(mod.__doc__) > 80, mod.__name__

    def test_quickstart_flow(self):
        """The README quickstart, executed."""
        from repro import classify, generalized_fibonacci_cube, isometry_report

        cube = generalized_fibonacci_cube("1100", 6)
        assert cube.num_vertices == 52
        report = isometry_report(cube)
        assert report.isometric
        verdict = classify("1100", 6)
        assert verdict.status is repro.Status.ISOMETRIC
