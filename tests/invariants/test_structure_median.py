"""Propositions 6.1 and 6.4."""

import pytest

from repro.classify.engine import classify_with_bruteforce
from repro.classify.verdict import Status
from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.median import is_median_graph
from repro.invariants.medianclosed import is_median_closed, median_certificate_triple
from repro.invariants.structure import structure_report
from repro.words.core import all_words, contains_factor, hamming


class TestProposition61:
    """Max degree = diameter = d for embeddable f (|f| >= 2, f not 01/10...
    the statement allows those too via paths; we test the exact claim)."""

    EMBEDDABLE = [
        ("11", 7), ("111", 7), ("110", 7), ("1110", 7),
        ("1010", 8), ("11010", 8), ("1100", 6), ("11100", 7),
        ("110110", 9),
    ]

    @pytest.mark.parametrize("f,d", EMBEDDABLE)
    def test_max_degree_and_diameter(self, f, d):
        rep = structure_report((f, d))
        assert rep.max_degree == d, (f, d)
        assert rep.diameter == d, (f, d)
        assert rep.satisfies_prop_6_1()

    def test_exhaustive_sweep_length_le_4(self):
        """Every embeddable Q_d(f), |f| in 2..4, 2 <= d <= 7 satisfies 6.1."""
        for length in (2, 3, 4):
            for f in all_words(length):
                if f in ("01", "10"):
                    continue  # excluded by the proposition (paths)
                for d in range(max(2, length), 8):
                    v = classify_with_bruteforce(f, d)
                    if v.status is not Status.ISOMETRIC:
                        continue
                    rep = structure_report((f, d))
                    assert rep.satisfies_prop_6_1(), (f, d, rep)

    def test_path_case_10(self):
        # Q_d(10) is the path P_{d+1}: max degree 2, diameter d
        rep = structure_report(("10", 6))
        assert rep.num_vertices == 7
        assert rep.max_degree == 2
        assert rep.diameter == 6

    def test_zero_vertex_all_neighbors_present(self):
        # the proof's observation: 0^d is a vertex with full degree when f
        # has at least two 1s
        cube = generalized_fibonacci_cube("101", 6)
        g = cube.graph()
        assert g.degree(cube.index_of_word("000000")) == 6

    def test_report_fields(self):
        rep = structure_report(("11", 5))
        assert rep.connected
        assert rep.min_degree >= 1
        assert rep.radius <= rep.diameter


class TestProposition64:
    """Median closed iff |f| = 2 (for d >= |f| >= 2)."""

    @pytest.mark.parametrize("f", ["11", "00", "10", "01"])
    @pytest.mark.parametrize("d", [2, 4, 6])
    def test_length_two_median_closed(self, f, d):
        assert is_median_closed(f, d)

    @pytest.mark.parametrize(
        "f", ["110", "101", "111", "1100", "1010", "1110", "11010"]
    )
    def test_longer_factors_not_median_closed(self, f):
        for d in range(len(f), len(f) + 3):
            assert not is_median_closed(f, d), (f, d)

    def test_below_factor_length_is_full_cube(self):
        # d < |f|: Q_d(f) = Q_d is median closed trivially
        assert is_median_closed("11010", 4)

    @pytest.mark.parametrize("f", ["110", "101", "1100", "11010", "10010"])
    def test_certificate_triple(self, f):
        for d in (len(f), len(f) + 2):
            x, y, z, m = median_certificate_triple(f, d)
            cube = generalized_fibonacci_cube(f, d)
            for w in (x, y, z):
                assert w in cube
            assert m not in cube
            assert contains_factor(m, f)
            assert hamming(x, y) == hamming(x, z) == hamming(y, z) == 2

    def test_certificate_rejects_short_factor(self):
        with pytest.raises(ValueError):
            median_certificate_triple("11", 4)

    def test_certificate_rejects_small_d(self):
        with pytest.raises(ValueError):
            median_certificate_triple("110", 2)

    def test_violation_finder_agrees(self):
        cube = generalized_fibonacci_cube("110", 4)
        triple = cube.median_violation()
        assert triple is not None
        x, y, z = triple
        assert all(w in cube for w in (x, y, z))

    def test_fibonacci_cube_is_median_graph(self):
        """The positive side: Gamma_d really is a median graph [12]."""
        assert is_median_graph(generalized_fibonacci_cube("11", 4).graph())

    def test_paths_are_median_graphs(self):
        assert is_median_graph(generalized_fibonacci_cube("10", 5).graph())
