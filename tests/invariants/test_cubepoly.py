"""Cube polynomial: induced Q_k counts extending eqs. (1)-(6)."""

import pytest

from repro.invariants.counts import brute_counts
from repro.invariants.cubepoly import (
    cube_coefficients,
    cube_polynomial_eval,
    gamma_cube_coefficient,
)


def coeff(co, k):
    return co[k] if k < len(co) else 0


class TestCoefficients:
    @pytest.mark.parametrize("f", ["11", "110", "101", "1100"])
    @pytest.mark.parametrize("d", [0, 1, 3, 5, 7])
    def test_first_three_match_section6_counts(self, f, d):
        co = cube_coefficients((f, d))
        bc = brute_counts(f, d)
        assert coeff(co, 0) == bc.vertices
        assert coeff(co, 1) == bc.edges
        assert coeff(co, 2) == bc.squares

    def test_full_hypercube(self):
        # c_k(Q_d) = C(d, k) 2^{d-k}
        from math import comb

        d = 4
        co = cube_coefficients(("11111", d))  # factor longer than d: full Q_4
        for k in range(d + 1):
            assert coeff(co, k) == comb(d, k) * 2 ** (d - k), k

    def test_max_k_truncation(self):
        full = cube_coefficients(("11", 6))
        trunc = cube_coefficients(("11", 6), max_k=2)
        assert trunc == full[:3]

    def test_single_vertex(self):
        assert cube_coefficients(("1", 4)) == [1, 0, 0, 0, 0]

    def test_accepts_cube_object(self):
        from repro.cubes.multifactor import MultiFactorCube

        mc = MultiFactorCube(["11", "000"], 5)
        co = cube_coefficients(mc)
        assert co[0] == mc.num_vertices
        assert co[1] == mc.num_edges


class TestGammaClosedForm:
    @pytest.mark.parametrize("d", range(0, 10))
    def test_recurrence_matches_enumeration(self, d):
        co = cube_coefficients(("11", d))
        for k in range(d + 2):
            assert coeff(co, k) == gamma_cube_coefficient(d, k), (d, k)

    def test_k0_is_fibonacci(self):
        from repro.combinat.sequences import fibonacci

        for d in range(15):
            assert gamma_cube_coefficient(d, 0) == fibonacci(d + 2)

    def test_k1_is_edge_count(self):
        from repro.combinat.identities import gamma_edge_count

        for d in range(12):
            assert gamma_cube_coefficient(d, 1) == gamma_edge_count(d)

    def test_k2_is_square_count(self):
        from repro.combinat.identities import gamma_square_count

        for d in range(12):
            assert gamma_cube_coefficient(d, 2) == gamma_square_count(d)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gamma_cube_coefficient(-1, 0)
        with pytest.raises(ValueError):
            gamma_cube_coefficient(3, -1)


class TestEvaluation:
    def test_eval_at_zero_is_order(self):
        co = cube_coefficients(("11", 5))
        assert cube_polynomial_eval(co, 0) == co[0]

    def test_eval_at_one_counts_all_subcubes(self):
        co = [3, 2, 1]
        assert cube_polynomial_eval(co, 1) == 6

    def test_eval_at_minus_one(self):
        # C(Q_d, -1) = 1 for hypercubes (Euler-characteristic style identity)
        co = cube_coefficients(("111111", 5))  # full Q_5
        assert cube_polynomial_eval(co, -1) == 1
