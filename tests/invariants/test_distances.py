"""Wiener index, average distance, and the coordinate-cut isometry witness."""

import networkx as nx
import pytest

from repro.cubes.generalized import generalized_fibonacci_cube
from repro.graphs.nxadapter import to_networkx
from repro.invariants.distances import (
    average_distance,
    distance_distribution,
    hypercube_wiener,
    wiener_by_cuts,
    wiener_index,
)


class TestWiener:
    @pytest.mark.parametrize("d", range(1, 7))
    def test_hypercube_closed_form(self, d):
        # Q_d realized as Q_d(f) with a factor longer than d
        w = wiener_index(("1" * (d + 1), d))
        assert w == hypercube_wiener(d)

    def test_matches_networkx(self):
        for f, d in [("11", 6), ("110", 6), ("101", 5)]:
            g = to_networkx(generalized_fibonacci_cube(f, d).graph(), use_labels=False)
            assert wiener_index((f, d)) == nx.wiener_index(g)

    def test_disconnected_raises(self):
        from repro.cubes.multifactor import MultiFactorCube

        with pytest.raises(ValueError):
            wiener_index(MultiFactorCube(["11", "00"], 4))

    def test_hypercube_wiener_validation(self):
        assert hypercube_wiener(0) == 0
        with pytest.raises(ValueError):
            hypercube_wiener(-1)


class TestAverageDistance:
    def test_single_vertex(self):
        assert average_distance(("1", 4)) == 0.0

    def test_path(self):
        # Q_3(10) = P_4: distances 1,1,1,2,2,3 -> mean 10/6
        assert average_distance(("10", 3)) == pytest.approx(10 / 6)

    def test_consistent_with_wiener(self):
        f, d = "11", 6
        cube = generalized_fibonacci_cube(f, d)
        n = cube.num_vertices
        assert average_distance((f, d)) == pytest.approx(
            wiener_index((f, d)) / (n * (n - 1) / 2)
        )


class TestDistribution:
    def test_path_distribution(self):
        dist = distance_distribution(("10", 3))
        assert dist == {1: 3, 2: 2, 3: 1}

    def test_sums_to_pair_count(self):
        cube = generalized_fibonacci_cube("110", 6)
        dist = distance_distribution(("110", 6))
        n = cube.num_vertices
        assert sum(dist.values()) == n * (n - 1) // 2

    def test_max_is_diameter(self):
        from repro.graphs.traversal import diameter

        dist = distance_distribution(("11", 6))
        g = generalized_fibonacci_cube("11", 6).graph()
        assert max(dist) == diameter(g)


class TestCutDecomposition:
    """wiener_by_cuts == wiener_index exactly on isometric cubes."""

    @pytest.mark.parametrize("f,d", [("11", 6), ("111", 6), ("110", 7), ("1010", 7), ("11010", 7)])
    def test_equality_on_isometric(self, f, d):
        assert wiener_by_cuts((f, d)) == wiener_index((f, d))

    @pytest.mark.parametrize("f,d", [("101", 4), ("1101", 5), ("1100", 7)])
    def test_strict_inequality_on_non_isometric(self, f, d):
        # internal distances exceed Hamming somewhere, so cuts undercount
        assert wiener_by_cuts((f, d)) < wiener_index((f, d))

    def test_witness_agrees_with_engines(self):
        from repro.isometry.bruteforce import is_isometric_bfs
        from repro.words.core import all_words

        for f in all_words(3):
            for d in range(2, 7):
                iso = is_isometric_bfs((f, d))
                cube = generalized_fibonacci_cube(f, d)
                if cube.num_vertices < 2:
                    continue
                from repro.graphs.traversal import is_connected

                if not is_connected(cube.graph()):
                    continue
                assert (wiener_by_cuts((f, d)) == wiener_index((f, d))) == iso, (f, d)
