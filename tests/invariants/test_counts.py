"""Section 6 counting: recurrences (1)-(6), Props 6.2/6.3, cross-identities."""

import pytest

from repro.combinat.identities import (
    gamma_edge_count,
    gamma_square_count,
    gamma_vertex_count,
)
from repro.combinat.sequences import fibonacci
from repro.invariants.counts import (
    Counts,
    brute_counts,
    edges_110_closed,
    edges_110_convolution,
    recurrences_110,
    recurrences_111,
    squares_110_closed,
    vertices_110_closed,
)
from repro.words.counting import (
    count_edges_automaton,
    count_squares_automaton,
    count_vertices_automaton,
)


MAX_BRUTE_D = 10


@pytest.fixture(scope="module")
def brute111():
    return [brute_counts("111", d) for d in range(MAX_BRUTE_D + 1)]


@pytest.fixture(scope="module")
def brute110():
    return [brute_counts("110", d) for d in range(MAX_BRUTE_D + 1)]


class TestRecurrences111:
    """Eqs. (1)-(3) for G_d = Q_d(111)."""

    def test_starting_values(self):
        rec = recurrences_111(2)
        assert [c.vertices for c in rec] == [1, 2, 4]
        assert [c.edges for c in rec] == [0, 1, 4]
        assert [c.squares for c in rec] == [0, 0, 1]

    def test_matches_bruteforce(self, brute111):
        rec = recurrences_111(MAX_BRUTE_D)
        for d in range(MAX_BRUTE_D + 1):
            assert rec[d] == brute111[d], d

    def test_matches_automaton_far_out(self):
        rec = recurrences_111(80)
        for d in (40, 80):
            assert rec[d].vertices == count_vertices_automaton("111", d)
            assert rec[d].edges == count_edges_automaton("111", d)
            assert rec[d].squares == count_squares_automaton("111", d)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            recurrences_111(-1)


class TestRecurrences110:
    """Eqs. (4)-(6) for H_d = Q_d(110)."""

    def test_starting_values(self):
        rec = recurrences_110(1)
        assert [c.vertices for c in rec] == [1, 2]
        assert [c.edges for c in rec] == [0, 1]
        assert [c.squares for c in rec] == [0, 0]

    def test_matches_bruteforce(self, brute110):
        rec = recurrences_110(MAX_BRUTE_D)
        for d in range(MAX_BRUTE_D + 1):
            assert rec[d] == brute110[d], d

    def test_matches_automaton_far_out(self):
        rec = recurrences_110(100)
        for d in (50, 100):
            assert rec[d].vertices == count_vertices_automaton("110", d)
            assert rec[d].edges == count_edges_automaton("110", d)
            assert rec[d].squares == count_squares_automaton("110", d)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            recurrences_110(-1)


class TestClosedForms110:
    def test_vertices_closed(self, brute110):
        for d in range(MAX_BRUTE_D + 1):
            assert vertices_110_closed(d) == brute110[d].vertices

    def test_vertices_fibonacci_identity(self):
        for d in range(60):
            assert vertices_110_closed(d) == fibonacci(d + 3) - 1

    def test_edges_convolution_prop_6_2(self, brute110):
        for d in range(MAX_BRUTE_D + 1):
            assert edges_110_convolution(d) == brute110[d].edges

    def test_edges_closed_corollary(self, brute110):
        for d in range(MAX_BRUTE_D + 1):
            assert edges_110_closed(d) == brute110[d].edges

    def test_two_edge_forms_agree_far_out(self):
        for d in range(0, 120, 11):
            assert edges_110_convolution(d) == edges_110_closed(d)

    def test_squares_closed_prop_6_3(self, brute110):
        for d in range(MAX_BRUTE_D + 1):
            assert squares_110_closed(d) == brute110[d].squares

    def test_squares_closed_vs_recurrence_far_out(self):
        rec = recurrences_110(150)
        for d in (77, 150):
            assert squares_110_closed(d) == rec[d].squares

    def test_negative_rejected(self):
        for fn in (
            vertices_110_closed,
            edges_110_convolution,
            edges_110_closed,
            squares_110_closed,
        ):
            with pytest.raises(ValueError):
                fn(-1)


class TestFinalRemarkIdentities:
    """|V(H_d)| = |V(Gamma_{d+1})| - 1, |E| off by one, |S| equal (Section 8)."""

    @pytest.mark.parametrize("d", range(0, 12))
    def test_vertex_relation(self, d):
        assert vertices_110_closed(d) == gamma_vertex_count(d + 1) - 1

    @pytest.mark.parametrize("d", range(0, 12))
    def test_edge_relation(self, d):
        assert edges_110_closed(d) == gamma_edge_count(d + 1) - 1

    @pytest.mark.parametrize("d", range(0, 12))
    def test_square_relation(self, d):
        assert squares_110_closed(d) == gamma_square_count(d + 1)


class TestBruteCounts:
    def test_counts_namedtuple_like(self):
        c = brute_counts("11", 4)
        assert isinstance(c, Counts)
        assert c.vertices == 8 and c.edges == gamma_edge_count(4)

    def test_q2_squares(self):
        # Q_2 itself is one square; factor too long to bite
        assert brute_counts("111", 2).squares == 1

    def test_empty_dimension(self):
        c = brute_counts("11", 0)
        assert c == Counts(1, 0, 0)
