"""Golden-snapshot tests for the sweep harness's on-disk output.

The CSV/JSON files `repro sweep` writes are the interface every
downstream plotting/analysis script consumes; their header layout, row
shape and the 6-tuple saturation-curve keys are contracts.  These tests
pin them against fixtures checked in under ``tests/network/golden/``:

- ``sweep_small.csv`` -- the byte-exact output of a small deterministic
  CLI sweep (seeded traffic, so every latency/throughput digit is
  reproducible);
- ``sweep_curve_keys.json`` -- the sorted ``saturation_curves`` keys of
  a mixed grid with the fault, flow-control and collective axes all in
  play, pinning the key normalisation (flow tags, ``"-"`` patterns,
  ``1.0`` loads for collectives).

Regenerating a fixture after an *intentional* schema change is a
one-liner (see each test's docstring); an unintentional diff is a
broken downstream contract.
"""

import csv
import json
from dataclasses import fields
from pathlib import Path

from repro.cli import main
from repro.network.sweep import SweepRecord, run_sweep, saturation_curves

GOLDEN = Path(__file__).parent / "golden"

SMALL_SWEEP_ARGS = [
    "sweep", "--topo", "Q:3", "--patterns", "uniform,hotspot",
    "--loads", "0.2,0.4", "--seeds", "0,1", "--window", "8",
]

MIXED_GRID = dict(
    topologies=["11:5"], patterns=("uniform", "tornado"), loads=(0.2, 0.5),
    seeds=(0, 1), faults=("", "n2@3"), switching=("sf", "wormhole"),
    vcs=(2,), buffers=(4,), flits=("1-4",), collectives=("", "broadcast"),
    inject_window=8,
)


def test_cli_csv_matches_golden_bytes(tmp_path):
    """End-to-end `repro sweep` CSV output is byte-identical to the
    checked-in fixture.  Regenerate after an intentional change with::

        repro sweep --topo Q:3 --patterns uniform,hotspot \\
            --loads 0.2,0.4 --seeds 0,1 --window 8 \\
            --csv tests/network/golden/sweep_small.csv
    """
    out = tmp_path / "out.csv"
    assert main(SMALL_SWEEP_ARGS + ["--csv", str(out)]) == 0
    assert out.read_bytes() == (GOLDEN / "sweep_small.csv").read_bytes()


def test_csv_header_matches_record_schema():
    """The golden header row is exactly the SweepRecord field list, in
    declaration order, with the ``batch`` bookkeeping column last."""
    with open(GOLDEN / "sweep_small.csv", newline="") as fh:
        header = next(csv.reader(fh))
    assert header == [f.name for f in fields(SweepRecord)]
    assert header[-1] == "batch"


def test_golden_rows_have_uniform_shape_and_types():
    """Every data row parses under the schema: one cell per column,
    numeric columns numeric, booleans in CSV's True/False spelling."""
    with open(GOLDEN / "sweep_small.csv", newline="") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 8  # 1 topo x 2 patterns x 2 loads x 2 seeds
    for row in rows:
        assert None not in row and None not in row.values()
        assert row["topology"] == "Q_3"
        int(row["injected"]), int(row["cycles"]), int(row["batch"])
        float(row["load"]), float(row["avg_latency"]), float(row["throughput"])
        assert row["deadlocked"] in ("True", "False")


def test_batched_sweep_writes_identical_csv_except_batch_column(tmp_path):
    """`--batch` must not change a single payload byte of the CSV: only
    the trailing batch column differs from the golden run."""
    out = tmp_path / "batched.csv"
    assert main(SMALL_SWEEP_ARGS + ["--batch", "8", "--csv", str(out)]) == 0
    with open(GOLDEN / "sweep_small.csv", newline="") as fh:
        golden = list(csv.reader(fh))
    with open(out, newline="") as fh:
        batched = list(csv.reader(fh))
    assert [r[:-1] for r in batched] == [r[:-1] for r in golden]
    assert [r[-1] for r in batched[1:]] == ["8"] * 8


def test_curve_keys_match_golden():
    """saturation_curves keys are normalised 6-tuples
    (topology, router, pattern, faults, flow tag, collective); the mixed
    grid's key set is pinned.  Regenerate the fixture by dumping
    ``sorted(saturation_curves(run_sweep(**MIXED_GRID)))`` as JSON."""
    records = run_sweep(**MIXED_GRID)
    curves = saturation_curves(records)
    golden = json.loads((GOLDEN / "sweep_curve_keys.json").read_text())
    assert sorted(curves) == [tuple(k) for k in golden]
    for key, curve in curves.items():
        assert len(key) == 6
        if key[5]:  # collective cells: pattern/load normalised away
            assert key[2] == "-"
            assert [p.load for p in curve] == [1.0]
        else:
            assert [p.load for p in curve] == [0.2, 0.5]


def test_json_rows_share_the_csv_schema(tmp_path):
    out = tmp_path / "out.json"
    assert main(SMALL_SWEEP_ARGS + ["--json", str(out)]) == 0
    data = json.loads(out.read_text())
    names = [f.name for f in fields(SweepRecord)]
    assert len(data) == 8
    for row in data:
        assert list(row) == names
