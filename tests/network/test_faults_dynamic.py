"""The dynamic fault subsystem: FaultPlan, masked views, AdaptiveRouter
and the engines' drop/misroute semantics."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.faults import FaultPlan
from repro.network.routing import AdaptiveRouter, CanonicalRouter, route_stats
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.topology import topology_of
from repro.network.traffic import make_traffic, uniform_traffic


FIB = topology_of(("11", 6))
Q4 = topology_of(hypercube(4), name="Q4")


class TestFaultPlan:
    def test_normalisation_sorts_orders_and_dedupes(self):
        plan = FaultPlan(
            node_faults=((5, 3), (0, 7), (9, 3)),
            link_faults=((2, 4, 1), (2, 1, 4), (0, 0, 2)),
        )
        # node 3 keeps its earliest failure; link endpoints are ordered
        assert plan.node_faults == ((0, 7), (5, 3))
        assert plan.link_faults == ((0, 0, 2), (2, 1, 4))
        assert plan.num_events == 4

    def test_equal_plans_hash_equal(self):
        a = FaultPlan(link_faults=((3, 5, 2),))
        b = FaultPlan(link_faults=((3, 2, 5),))
        assert a == b and hash(a) == hash(b)

    def test_rejects_negative_and_loops(self):
        with pytest.raises(ValueError):
            FaultPlan(node_faults=((-1, 0),))
        with pytest.raises(ValueError):
            FaultPlan(link_faults=((0, 3, 3),))

    def test_parse_spec_round_trip(self):
        plan = FaultPlan.parse("n3, n5@10 ,l0-2@5,l7-4")
        assert plan.node_faults == ((0, 3), (10, 5))
        assert plan.link_faults == ((0, 4, 7), (5, 0, 2))
        assert FaultPlan.parse(plan.spec()) == plan
        assert FaultPlan.parse("") == FaultPlan()
        assert FaultPlan().spec() == ""

    def test_parse_rand_is_seeded_and_needs_n(self):
        a = FaultPlan.parse("rand3@20s7", num_nodes=21)
        b = FaultPlan.parse("rand3@20s7", num_nodes=21)
        assert a == b and len(a.node_faults) == 3
        assert all(c == 20 for c, _ in a.node_faults)
        assert a == FaultPlan.random_nodes(21, 3, seed=7, at_cycle=20)
        with pytest.raises(ValueError, match="num_nodes"):
            FaultPlan.parse("rand3")

    def test_parse_rejects_garbage(self):
        for bad in ("x3", "n3@", "l1", "n3;n4", "l1-2-3"):
            with pytest.raises(ValueError, match="fault token"):
                FaultPlan.parse(bad)

    def test_cycles_and_dead_queries(self):
        plan = FaultPlan.parse("n1,n2@8,l0-2@5")
        assert plan.cycles() == (0, 5, 8)
        assert plan.dead_nodes_at(0) == {1}
        assert plan.dead_nodes_at(8) == {1, 2}
        assert plan.dead_links_at(4) == frozenset()
        assert plan.dead_links_at(5) == {(0, 2)}

    def test_link_death_map_includes_node_incident_links(self):
        plan = FaultPlan.parse("n0@3")
        dead = plan.link_death_map(Q4)
        for u in Q4.graph.neighbors(0):
            assert dead[(0, u)] == 3 and dead[(u, 0)] == 3
        assert len(dead) == 2 * Q4.graph.degree(0)

    def test_validate(self):
        FaultPlan.parse("n0,l0-1").validate(Q4)  # 0-1 is a hypercube edge
        with pytest.raises(ValueError, match="out of range"):
            FaultPlan.parse("n99").validate(Q4)
        with pytest.raises(ValueError, match="not a link"):
            FaultPlan.parse("l0-3").validate(Q4)  # Hamming distance 2


class TestMaskedTopology:
    def test_mask_removes_links_and_hides_dead_words(self):
        plan = FaultPlan.parse("n0,l1-3")
        view = FIB.with_faults(plan, at_cycle=0)
        assert view.num_nodes == FIB.num_nodes  # indices stay stable
        assert view.allow_disconnected
        assert not view.graph.has_edge(1, 3)
        assert view.graph.degree(0) == 0
        word0 = FIB.node_word(0)
        assert not view.graph.has_label(word0)
        with pytest.raises(TypeError):
            view.node_word(0)
        # live nodes keep their addresses
        assert view.node_word(1) == FIB.node_word(1)

    def test_mask_before_first_fault_is_identity(self):
        plan = FaultPlan.parse("n0@10")
        assert FIB.with_faults(plan, at_cycle=9) is FIB
        assert FIB.with_faults(plan, at_cycle=10) is not FIB


class TestAdaptiveRouter:
    def test_matches_canonical_on_unfaulted_1s_cubes(self):
        for spec in (("11", 6), ("111", 5)):
            topo = topology_of(spec)
            adaptive, canonical = AdaptiveRouter(), CanonicalRouter()
            n = topo.num_nodes
            for s in range(n):
                for t in range(n):
                    if s != t:
                        assert adaptive.route(topo, s, t) == canonical.route(topo, s, t)

    def test_full_delivery_and_optimality_unfaulted(self):
        stats = route_stats(Q4, AdaptiveRouter())
        assert stats.delivery_rate == 1.0
        assert stats.optimality_rate == 1.0

    def test_detours_around_a_dead_link(self):
        # 0000 -> 1000 with the direct link dead: must misroute (2 extra hops)
        src, dst = Q4.graph.index_of("0000"), Q4.graph.index_of("1000")
        view = Q4.with_faults(FaultPlan(link_faults=((0, src, dst),)))
        path = AdaptiveRouter().route(view, src, dst)
        assert path is not None
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == 3  # Hamming distance 1 + one misroute
        for a, b in zip(path, path[1:]):
            assert view.graph.has_edge(a, b)

    def test_budget_zero_fails_where_detour_is_needed(self):
        src, dst = Q4.graph.index_of("0000"), Q4.graph.index_of("1000")
        view = Q4.with_faults(FaultPlan(link_faults=((0, src, dst),)))
        assert AdaptiveRouter(max_misroutes=0).route(view, src, dst) is None

    def test_never_routes_through_a_dead_node(self):
        plan = FaultPlan.parse("n5")
        view = FIB.with_faults(plan)
        router = AdaptiveRouter()
        for s in range(FIB.num_nodes):
            for t in range(FIB.num_nodes):
                if s == t or 5 in (s, t):
                    continue
                path = router.route(view, s, t)
                if path is not None:
                    assert 5 not in path

    def test_rejects_bad_budget_and_wordless_topology(self):
        with pytest.raises(ValueError):
            AdaptiveRouter(max_misroutes=-1)
        from repro.graphs.core import Graph

        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        nameless = topology_of(g, name="path")
        with pytest.raises(ValueError, match="word-addressed"):
            AdaptiveRouter().route(nameless, 0, 2)


class TestEngineFaultSemantics:
    def test_static_link_fault_drops_oblivious_packets(self):
        """Canonical ignores link faults: packets crossing the dead link
        are dropped in flight, visible in SimResult.dropped."""
        src, dst = Q4.graph.index_of("0000"), Q4.graph.index_of("1000")
        plan = FaultPlan(link_faults=((0, src, dst),))
        traffic = [(0, src, dst)] * 3
        res = VectorizedSimulator(Q4, CanonicalRouter()).run(traffic, faults=plan)
        assert res.injected == 3 and res.delivered == 0 and res.dropped == 3
        assert res.delivery_rate == 0.0 and res.drop_rate == 1.0

    def test_adaptive_reroutes_what_oblivious_drops(self):
        src, dst = Q4.graph.index_of("0000"), Q4.graph.index_of("1000")
        plan = FaultPlan(link_faults=((0, src, dst),))
        traffic = [(0, src, dst)] * 3
        res = VectorizedSimulator(Q4, AdaptiveRouter()).run(traffic, faults=plan)
        assert res.delivered == 3 and res.dropped == 0
        assert res.misroutes == 3  # one detour per packet
        assert res.hops == (3, 3, 3)

    def test_staged_fault_kills_packets_in_flight(self):
        """A link dying mid-run loses exactly the packets queued on it."""
        src, dst = Q4.graph.index_of("0000"), Q4.graph.index_of("1000")
        # 5 packets injected at cycle 0 serialise on one link: one leaves
        # per cycle, so a fault at cycle 2 kills the 3 still queued
        plan = FaultPlan(link_faults=((2, src, dst),))
        traffic = [(0, src, dst)] * 5
        for sim in (ReferenceSimulator(Q4), VectorizedSimulator(Q4)):
            res = sim.run(traffic, faults=plan)
            assert res.delivered == 2 and res.dropped == 3, type(sim).__name__

    def test_dead_endpoints_drop_at_injection(self):
        plan = FaultPlan.parse("n2@5")
        traffic = [(0, 2, 4), (0, 4, 2), (6, 1, 2), (6, 2, 1), (6, 0, 1)]
        res = VectorizedSimulator(Q4).run(traffic, faults=plan)
        # before cycle 5 node 2 works; after, pairs touching it drop
        assert res.injected == 5
        assert res.dropped == 2
        assert res.delivered == 3

    def test_rebuilt_routes_avoid_late_faults(self):
        """Packets injected after a node fault route around it (BFS on the
        masked view), packets before it may die -- epochs in action."""
        topo = Q4
        mid = topo.graph.index_of("0011")
        plan = FaultPlan(node_faults=((10, mid),))
        src, dst = topo.graph.index_of("0001"), topo.graph.index_of("0111")
        late = [(20, src, dst)] * 4
        res = VectorizedSimulator(topo).run(late, faults=plan)
        assert res.delivered == 4
        assert res.dropped == 0

    def test_engines_validate_the_plan_against_the_topology(self):
        """A typo'd plan must fail loudly at the simulator boundary, not
        crash with an IndexError or silently simulate unfaulted."""
        traffic = [(0, 0, 1)]
        with pytest.raises(ValueError, match="out of range"):
            VectorizedSimulator(Q4).run(traffic, faults=FaultPlan.parse("n999"))
        with pytest.raises(ValueError, match="not a link"):
            ReferenceSimulator(Q4).run(traffic, faults=FaultPlan.parse("l0-3"))

    def test_unfaulted_results_gain_hops_and_misroute_fields(self):
        traffic = uniform_traffic(FIB, 100, 10, seed=2)
        ref = ReferenceSimulator(FIB).run(traffic)
        vec = VectorizedSimulator(FIB).run(traffic)
        assert ref == vec
        assert len(vec.hops) == vec.delivered
        assert vec.misroutes == 0  # BFS on an isometric cube is minimal
        assert vec.avg_hops == sum(vec.hops) / len(vec.hops)

    def test_no_phantom_misroutes_on_non_isometric_cubes(self):
        """Regression: on Q_d(101) graph distance exceeds Hamming distance
        for some pairs; shortest-path routing on the undamaged cube must
        still report zero misroutes (detours are measured against graph
        distance, not the Hamming lower bound)."""
        topo = topology_of(("101", 6))
        traffic = make_traffic("uniform", topo, 400, 16, seed=1)
        for sim in (ReferenceSimulator(topo), VectorizedSimulator(topo)):
            res = sim.run(traffic)
            assert res.misroutes == 0, type(sim).__name__
            assert res.delivery_rate == 1.0

    def test_traffic_generation_silences_dead_sources(self):
        plan = FaultPlan.parse("n0,n1@8")
        traffic = make_traffic("uniform", FIB, 400, 16, seed=3, faults=plan)
        assert all(src != 0 for _, src, _ in traffic)
        assert all(cycle < 8 for cycle, src, _ in traffic if src == 1)
        baseline = make_traffic("uniform", FIB, 400, 16, seed=3)
        assert len(traffic) < len(baseline)
