"""Network substrate: topology metrics and routers."""

import pytest

from repro.cubes.fibonacci import fibonacci_cube
from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.network.routing import BfsRouter, CanonicalRouter, GreedyRouter, route_stats
from repro.network.topology import Topology, topology_of

from tests.conftest import cycle_graph


class TestTopology:
    def test_from_cube(self):
        topo = topology_of(("11", 5))
        assert topo.name == "Q_5(11)"
        assert topo.word_length == 5
        assert topo.num_nodes == 13

    def test_from_cube_object(self):
        topo = topology_of(fibonacci_cube(4))
        assert topo.num_nodes == 8

    def test_from_plain_graph(self):
        g = cycle_graph(6)
        g.set_labels([f"n{i}" for i in range(6)])
        topo = topology_of(g, name="ring")
        assert topo.name == "ring"
        assert topo.word_length == 2  # labels all length 2 ("n0")

    def test_metrics_hypercube(self):
        topo = topology_of(hypercube(4), name="Q4")
        m = topo.metrics()
        assert m["nodes"] == 16
        assert m["links"] == 32
        assert m["diameter"] == 4
        assert m["max_degree"] == 4
        assert m["cost_degree_x_diameter"] == 16

    def test_disconnected_rejected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            Topology("broken", g)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Topology("empty", Graph(0))

    def test_degree_range(self):
        topo = topology_of(("11", 4))
        dmin, dmax = topo.degree_range()
        assert dmin >= 1 and dmax == 4

    def test_bad_input_type(self):
        with pytest.raises(TypeError):
            topology_of(42)


class TestRouters:
    @pytest.fixture(scope="class")
    def gamma6(self):
        return topology_of(("11", 6))

    def test_bfs_router_optimal_everywhere(self, gamma6):
        stats = route_stats(gamma6, BfsRouter())
        assert stats.delivery_rate == 1.0
        assert stats.optimality_rate == 1.0
        assert stats.stretch == 1.0

    def test_canonical_router_optimal_on_1s_factors(self, gamma6):
        """Proposition 3.1 in routing form: canonical bit-fix paths stay
        inside Q_d(1^s) and are therefore optimal."""
        stats = route_stats(gamma6, CanonicalRouter())
        assert stats.delivery_rate == 1.0
        assert stats.optimality_rate == 1.0

    def test_canonical_router_on_111(self):
        topo = topology_of(("111", 6))
        stats = route_stats(topo, CanonicalRouter())
        assert stats.delivery_rate == 1.0
        assert stats.optimality_rate == 1.0

    def test_greedy_router_on_isometric_cube(self, gamma6):
        stats = route_stats(gamma6, GreedyRouter())
        assert stats.delivery_rate == 1.0
        # greedy always reduces Hamming distance by 1 per hop when it
        # delivers, so delivered paths are optimal
        assert stats.optimality_rate == 1.0

    def test_greedy_can_fail_on_non_isometric_cube(self):
        """On Q_4(101) (not isometric) some pairs defeat pure greedy --
        the reason embeddability matters for local routing."""
        topo = topology_of(("101", 4))
        stats = route_stats(topo, GreedyRouter())
        assert stats.delivery_rate < 1.0

    def test_bfs_router_full_delivery_on_non_isometric(self):
        topo = topology_of(("101", 4))
        stats = route_stats(topo, BfsRouter())
        assert stats.delivery_rate == 1.0
        # but some routes are longer than Hamming distance
        assert stats.stretch >= 1.0

    def test_route_specific_pair(self):
        topo = topology_of(("11", 5))
        src = topo.graph.index_of("10000")
        dst = topo.graph.index_of("00001")
        path = CanonicalRouter().route(topo, src, dst)
        assert path is not None
        assert path[0] == src and path[-1] == dst
        assert len(path) == 3  # Hamming distance 2

    def test_route_stats_subset_pairs(self):
        topo = topology_of(("11", 5))
        stats = route_stats(topo, BfsRouter(), pairs=[(0, 1), (1, 0)])
        assert stats.pairs == 2

    def test_canonical_needs_word_topology(self):
        g = cycle_graph(4)
        g.set_labels([0, 1, 2, 3])
        topo = Topology("ring", g)
        with pytest.raises(ValueError):
            CanonicalRouter().route(topo, 0, 2)
