"""Edge cases of the single-port broadcast scheduler and its verifier."""

import pytest

from repro.cubes.hypercube import hypercube
from repro.network.broadcast import (
    binomial_broadcast_schedule,
    broadcast_rounds,
    verify_schedule,
)
from repro.network.topology import Topology, topology_of
from tests.conftest import path_graph


def _single_node():
    g = path_graph(1)
    g.set_labels(["0"])
    return topology_of(g, name="dot")


def _disconnected():
    from repro.graphs.core import Graph

    g = Graph(4)
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    return Topology(name="split", graph=g, allow_disconnected=True)


class TestSingleNode:
    def test_schedule_is_empty(self):
        topo = _single_node()
        assert binomial_broadcast_schedule(topo, 0) == []

    def test_empty_schedule_verifies(self):
        topo = _single_node()
        assert verify_schedule(topo, 0, [])

    def test_rounds_and_bound_are_zero(self):
        assert broadcast_rounds(_single_node(), 0) == (0, 0)


class TestDisconnectedRoot:
    def test_unreachable_nodes_raise_value_error(self):
        topo = _disconnected()
        with pytest.raises(ValueError, match="does not reach"):
            binomial_broadcast_schedule(topo, 0)

    def test_partial_coverage_fails_verification(self):
        topo = _disconnected()
        # a feasible schedule for the {0, 1} component still leaves the
        # other component uninformed: coverage must fail
        assert not verify_schedule(topo, 0, [[(0, 1)]])


class TestVerifierRejections:
    @pytest.fixture(scope="class")
    def topo(self):
        return topology_of(hypercube(3), name="Q3")

    def test_duplicate_sender_per_round(self, topo):
        assert not verify_schedule(topo, 0, [[(0, 1), (0, 2)]])

    def test_uninformed_sender(self, topo):
        assert not verify_schedule(topo, 0, [[(1, 0)]])

    def test_already_informed_receiver(self, topo):
        assert not verify_schedule(topo, 0, [[(0, 1)], [(1, 0)]])

    def test_non_edge_message(self, topo):
        # 0 ("000") and 3 ("011") differ in two bits: not a link
        assert not verify_schedule(topo, 0, [[(0, 3)]])

    def test_valid_schedule_passes(self, topo):
        schedule = binomial_broadcast_schedule(topo, 0)
        assert verify_schedule(topo, 0, schedule)


class TestHypercubeBound:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5])
    def test_rounds_meet_ceil_log2_exactly(self, d):
        """The binomial tree is optimal on Q_d: d rounds for 2^d nodes."""
        topo = topology_of(hypercube(d), name=f"Q{d}")
        rounds, bound = broadcast_rounds(topo, 0)
        assert rounds == bound == d

    def test_fibonacci_cube_is_within_one_of_the_bound(self):
        """Gamma_6 (21 nodes): the greedy tree schedule lands at the
        bound or just above it -- the measured gap the N1 experiment
        reports."""
        topo = topology_of(("11", 6))
        rounds, bound = broadcast_rounds(topo, 0)
        assert bound == 5
        assert bound <= rounds <= bound + 1
