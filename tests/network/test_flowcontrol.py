"""Flow control: wormhole/VCT semantics, backpressure, deadlock detection.

The headline scenario (the acceptance demo): on ``Q_5(1010)`` -- a
non-isometric cube where shortest paths must fix dimensions out of
order -- BFS-routed wormhole switching with one virtual channel drives
the network into a *real* deadlock, detected and reported, while strict
dimension-order (e-cube) routing delivers 100% of the very same traffic;
both verdicts match the static Dally--Seitz analysis of
:mod:`repro.network.deadlock`.
"""

import pytest

from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.network.deadlock import is_deadlock_free
from repro.network.faults import FaultPlan
from repro.network.flowcontrol import FlowControl, link_dimension, vc_of_hop
from repro.network.routing import BfsRouter, DimensionOrderRouter
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.topology import Topology, topology_of
from repro.network.traffic import make_traffic


@pytest.fixture(scope="module")
def gamma6():
    return topology_of(("11", 6))


@pytest.fixture(scope="module")
def q4():
    return topology_of(hypercube(4), name="Q4")


@pytest.fixture(scope="module")
def q5_1010():
    return topology_of(("1010", 5))


def both_engines(topo, router=None):
    return ReferenceSimulator(topo, router), VectorizedSimulator(topo, router)


class TestFlowControlConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown switching mode"):
            FlowControl(switching="teleport")

    def test_bad_depth_and_vcs_rejected(self):
        with pytest.raises(ValueError, match="buffer_depth"):
            FlowControl(switching="wormhole", buffer_depth=0)
        with pytest.raises(ValueError, match="num_vcs"):
            FlowControl(switching="wormhole", num_vcs=0)

    def test_labels(self):
        assert FlowControl().label() == ""
        assert (
            FlowControl("wormhole", buffer_depth=2, num_vcs=3).label()
            == "wormhole:v3:b2"
        )

    def test_engines_reject_unknown_mode_string(self, gamma6):
        for sim in both_engines(gamma6):
            with pytest.raises(ValueError, match="unknown switching mode"):
                sim.run([(0, 0, 1)], switching="cut")


class TestVcAssignment:
    def test_dimension_ordered_on_words(self, q4):
        g = q4.graph
        for u, v in g.edges():
            dim = link_dimension(q4, u, v)
            wu, wv = q4.node_word(u), q4.node_word(v)
            assert wu[dim] != wv[dim]
            assert wu[:dim] == wv[:dim]
            assert vc_of_hop(q4, u, v, hop=7, num_vcs=3) == dim % 3

    def test_hop_index_fallback_off_words(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        ring = Topology("C4", g)  # no word_length: positional VCs
        assert link_dimension(ring, 0, 1) is None
        assert vc_of_hop(ring, 0, 1, hop=5, num_vcs=2) == 1

    def test_single_vc_short_circuits(self, q4):
        assert vc_of_hop(q4, 0, 1, hop=3, num_vcs=1) == 0


class TestStoreAndForwardContract:
    """``switching="sf"`` must be the legacy engine, bit for bit."""

    def test_sf_is_bit_identical_to_default(self, gamma6):
        traffic = make_traffic("hotspot", gamma6, 150, 8, seed=3)
        for sim in both_engines(gamma6):
            assert sim.run(traffic) == sim.run(traffic, switching="sf")
            assert sim.run(traffic) == sim.run(
                traffic, switching=FlowControl("sf")
            )

    def test_sf_rejects_multiflit_packets(self, gamma6):
        traffic = make_traffic("uniform", gamma6, 10, 4, seed=0)
        for sim in both_engines(gamma6):
            with pytest.raises(ValueError, match="single-flit"):
                sim.run(traffic, flits=3)

    def test_flits_sequence_length_checked(self, gamma6):
        traffic = make_traffic("uniform", gamma6, 10, 4, seed=0)
        for sim in both_engines(gamma6):
            with pytest.raises(ValueError, match="entries"):
                sim.run(traffic, switching="wormhole", flits=[2] * 9)
            with pytest.raises(ValueError, match="at least 1 flit"):
                sim.run(traffic, switching="wormhole", flits=[0] * 10)


class TestWormholeSemantics:
    def test_uncontended_latency_is_hops_plus_flits(self, gamma6):
        """One cycle to enter the injection buffer, then the head moves a
        hop per cycle and the tail trails ``F - 1`` flits behind."""
        from repro.graphs.traversal import bfs_distances

        dist = bfs_distances(gamma6.graph, 0)
        far = int(dist.argmax())
        k = int(dist[far])
        for flits in (1, 3, 6):
            for sim in both_engines(gamma6):
                res = sim.run(
                    [(0, 0, far)],
                    switching=FlowControl("wormhole", buffer_depth=8),
                    flits=flits,
                )
                assert res.latencies == (k + flits,), (flits, type(sim))

    def test_shallow_buffers_stall_the_pipeline(self, gamma6):
        """buffer_depth=1 forces a bubble between consecutive flits
        (credit turnaround), so the same packet takes longer than with
        deep buffers."""
        traffic = [(0, 0, gamma6.num_nodes - 1)]
        deep = VectorizedSimulator(gamma6).run(
            traffic, switching=FlowControl("wormhole", buffer_depth=8), flits=5
        )
        shallow = VectorizedSimulator(gamma6).run(
            traffic, switching=FlowControl("wormhole", buffer_depth=1), flits=5
        )
        assert shallow.max_latency > deep.max_latency
        assert shallow.delivered == deep.delivered == 1

    def test_max_queue_bounded_by_buffer_depth(self, gamma6):
        traffic = make_traffic("hotspot", gamma6, 200, 4, seed=1)
        for depth in (1, 2, 4):
            res = VectorizedSimulator(gamma6).run(
                traffic,
                switching=FlowControl("wormhole", buffer_depth=depth),
                flits=3,
            )
            assert 0 < res.max_queue <= depth

    def test_accounting_identity(self, gamma6):
        """delivered + dropped + stalled == injected, in every mode."""
        traffic = make_traffic("bursty", gamma6, 150, 10, seed=2)
        plan = FaultPlan.parse("n3@5,l0-1@2", num_nodes=gamma6.num_nodes)
        for flow in (
            FlowControl("wormhole", buffer_depth=2, num_vcs=2),
            FlowControl("vct", buffer_depth=8),
        ):
            for sim in both_engines(gamma6):
                res = sim.run(traffic, faults=plan, switching=flow, flits=4)
                assert res.delivered + res.dropped + res.stalled == res.injected

    def test_completed_runs_have_no_stall_flags(self, gamma6):
        traffic = make_traffic("uniform", gamma6, 100, 16, seed=5)
        res = VectorizedSimulator(gamma6).run(
            traffic, switching=FlowControl("wormhole", buffer_depth=4), flits=2
        )
        assert res.delivery_rate == 1.0
        assert res.stalled == 0
        assert not res.deadlocked

    def test_truncated_run_reports_stalled_not_deadlocked(self, gamma6):
        traffic = make_traffic("hotspot", gamma6, 200, 2, seed=3)
        for sim in both_engines(gamma6):
            res = sim.run(
                traffic, max_cycles=5,
                switching=FlowControl("wormhole", buffer_depth=2), flits=4,
            )
            assert res.cycles == 5
            assert res.stalled > 0
            assert not res.deadlocked


class TestVirtualCutThrough:
    def test_vct_needs_buffers_that_fit_packets(self, gamma6):
        traffic = make_traffic("uniform", gamma6, 20, 4, seed=0)
        for sim in both_engines(gamma6):
            with pytest.raises(ValueError, match="fit whole packets"):
                sim.run(
                    traffic,
                    switching=FlowControl("vct", buffer_depth=2),
                    flits=4,
                )

    def test_wormhole_accepts_what_vct_rejects(self, gamma6):
        traffic = make_traffic("uniform", gamma6, 20, 4, seed=0)
        res = VectorizedSimulator(gamma6).run(
            traffic, switching=FlowControl("wormhole", buffer_depth=2), flits=4
        )
        assert res.delivered == res.injected

    def test_vct_equals_wormhole_with_whole_packet_buffers(self, gamma6):
        """With atomic VC allocation the two disciplines coincide once
        buffers hold whole packets -- the difference is exactly the
        configurations wormhole admits and VCT forbids."""
        traffic = make_traffic("hotspot", gamma6, 150, 6, seed=7)
        worm = VectorizedSimulator(gamma6).run(
            traffic, switching=FlowControl("wormhole", buffer_depth=6), flits=5
        )
        vct = VectorizedSimulator(gamma6).run(
            traffic, switching=FlowControl("vct", buffer_depth=6), flits=5
        )
        assert worm == vct


class TestDeadlock:
    """The acceptance scenario, cross-checked against Dally--Seitz."""

    @pytest.fixture(scope="class")
    def scenario(self, q5_1010):
        """Heavy single-burst traffic over every pair both routers can
        serve on the non-isometric cube Q_5(1010)."""
        n = q5_1010.num_nodes
        ec = DimensionOrderRouter()
        pairs = [
            (s, t)
            for s in range(n)
            for t in range(n)
            if s != t and ec.route(q5_1010, s, t) is not None
        ]
        return [(0, s, t) for s, t in pairs]

    def test_static_analysis_predicts_the_split(self, q5_1010, scenario):
        pairs = [(s, t) for _, s, t in scenario]
        assert not is_deadlock_free(q5_1010, BfsRouter(), pairs)
        assert is_deadlock_free(q5_1010, DimensionOrderRouter(), pairs)

    def test_bfs_wormhole_deadlocks_and_is_reported(self, q5_1010, scenario):
        flow = FlowControl("wormhole", buffer_depth=1, num_vcs=1)
        ref, vec = both_engines(q5_1010, BfsRouter())
        res = vec.run(scenario, switching=flow, flits=4)
        assert res.deadlocked
        assert res.stalled > 0
        assert res.delivered + res.stalled == res.injected
        # reported, not hung: the run ends long before the cycle cap
        assert res.cycles < 100000
        assert ref.run(scenario, switching=flow, flits=4) == res

    def test_ecube_delivers_everything_on_the_same_scenario(
        self, q5_1010, scenario
    ):
        flow = FlowControl("wormhole", buffer_depth=1, num_vcs=1)
        res = VectorizedSimulator(q5_1010, DimensionOrderRouter()).run(
            scenario, switching=flow, flits=4
        )
        assert res.delivery_rate == 1.0
        assert not res.deadlocked
        assert res.stalled == 0

    def test_infinite_fifos_cannot_deadlock(self, q5_1010, scenario):
        """The same traffic under store-and-forward drains completely:
        the deadlock is a *finite-buffer* phenomenon."""
        res = VectorizedSimulator(q5_1010, BfsRouter()).run(scenario)
        assert res.delivery_rate == 1.0
        assert not res.deadlocked

    def test_deadlock_free_router_never_deadlocks_under_load(self, q4):
        """Acyclic CDG (static) implies no dynamic deadlock -- pushed
        through a saturating burst on every pair of the hypercube."""
        assert is_deadlock_free(q4, DimensionOrderRouter())
        n = q4.num_nodes
        traffic = [(0, s, t) for s in range(n) for t in range(n) if s != t]
        res = VectorizedSimulator(q4, DimensionOrderRouter()).run(
            traffic,
            switching=FlowControl("wormhole", buffer_depth=1, num_vcs=2),
            flits=3,
        )
        assert res.delivery_rate == 1.0
        assert not res.deadlocked


class TestFaultInterplay:
    def test_dying_link_drops_whole_packets(self, gamma6):
        """A link death removes every flit of the packets holding its
        buffers: the packet count, not a flit count, lands in dropped."""
        u, v = next(iter(gamma6.graph.edges()))
        plan = FaultPlan(link_faults=((3, u, v),))
        traffic = make_traffic("uniform", gamma6, 200, 6, seed=4)
        flow = FlowControl("wormhole", buffer_depth=2, num_vcs=2)
        ref, vec = both_engines(gamma6)
        a = ref.run(traffic, faults=plan, switching=flow, flits=5)
        b = vec.run(traffic, faults=plan, switching=flow, flits=5)
        assert a == b
        assert a.dropped > 0
        assert a.delivered + a.dropped + a.stalled == a.injected

    def test_fault_epoch_reroutes_apply_to_flow_modes(self, gamma6):
        """Packets injected after a node death are routed around it in
        wormhole mode exactly as in sf mode."""
        plan = FaultPlan(node_faults=((4, 2),))
        traffic = make_traffic("uniform", gamma6, 150, 20, seed=9)
        flow = FlowControl("wormhole", buffer_depth=4)
        ref, vec = both_engines(gamma6, BfsRouter())
        a = ref.run(traffic, faults=plan, switching=flow, flits=2)
        b = vec.run(traffic, faults=plan, switching=flow, flits=2)
        assert a == b
        assert a.delivered > 0
