"""Differential fuzzing: both engines, random configurations, bit equality.

The equivalence suite pins a fixed grid of scenarios; this harness
generalises it: seeded random sampling over the whole configuration
space -- topology x router x traffic pattern (collectives included) x
switching mode x VC/buffer/flit shape x fault plan x cycle cap -- and
asserts the reference and vectorized engines produce bit-identical
``SimResult``s on every sampled case.  A backend pass replays the same
sampled space through the NumPy and native kernel backends (skipped
where no C toolchain exists).  A companion pass fuzzes the
closed-loop collective compiler the same way, a workload pass samples
random multi-tenant overlays (tenant mixes, priorities, QoS rate caps)
and requires every engine and backend to agree on the per-tenant stats
too, and a batch pass stacks a
random K of mixed replications (seeds, loads, patterns, routers, fault
plans, switching modes -- sf, wormhole and vct all batch natively
through the fused kernel) into one ``BatchedSimulator`` run and checks
it against K sequential vectorized runs.

Scaling and reproduction
------------------------
``REPRO_FUZZ_CASES`` (default 30, CI-friendly) scales the sample count;
the nightly CI job runs 500.  ``REPRO_FUZZ_SEED`` moves the seed base.
Every failure is reported (and appended to ``REPRO_FUZZ_LOG`` when set)
as a one-line repro of the form ``seed=<s> topology=... router=...``;
re-running just that case is::

    REPRO_FUZZ_SEED=<s> REPRO_FUZZ_CASES=1 \
        pytest tests/network/test_differential_fuzz.py -q
"""

import os
import random

import pytest

from repro.network.backends import native as _native
from repro.network.batch import BatchedSimulator, BatchItem
from repro.network.collectives import COLLECTIVES, run_collective
from repro.network.faults import FaultPlan
from repro.network.flowcontrol import FlowControl
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.sweep import ROUTERS, parse_topology
from repro.network.traffic import PATTERNS, flit_sizes, make_traffic
from repro.network.workloads import compile_workload

CASES = int(os.environ.get("REPRO_FUZZ_CASES", "30"))
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260730"))
LOG_PATH = os.environ.get("REPRO_FUZZ_LOG", "")

# word-addressed topologies (every router works), <= 32 nodes so the
# reference engine stays fast enough for hundreds of cases
TOPO_SPECS = ("Q:3", "Q:4", "11:5", "11:6", "101:4", "101:5", "1010:5")

FLIT_SPECS = ("1", "2", "4", "1-4", "2-6")


def _sample_faults(rng: random.Random, topo) -> str:
    """A random valid fault-plan spec ('' half the time)."""
    if rng.random() < 0.5:
        return ""
    tokens = []
    for _ in range(rng.randint(1, 2)):
        tokens.append(f"n{rng.randrange(topo.num_nodes)}@{rng.randrange(30)}")
    if rng.random() < 0.5:
        edges = list(topo.graph.edges())
        u, v = edges[rng.randrange(len(edges))]
        tokens.append(f"l{u}-{v}@{rng.randrange(30)}")
    return ",".join(tokens)


def sample_case(seed: int) -> dict:
    """The deterministic case a seed denotes (the repro contract)."""
    rng = random.Random(seed)
    topology = rng.choice(TOPO_SPECS)
    topo = parse_topology(topology)
    switching = rng.choice(("sf", "wormhole", "vct"))
    if switching == "sf":
        num_vcs, buffer_depth, flits = 1, 0, "1"
    else:
        num_vcs = rng.randint(1, 3)
        flits = rng.choice(FLIT_SPECS)
        buffer_depth = rng.randint(1, 8)
        if switching == "vct":  # vct buffers must fit the largest packet
            _, _, hi = flits.rpartition("-")
            buffer_depth = max(buffer_depth, int(hi))
    return {
        "topology": topology,
        "router": rng.choice(sorted(ROUTERS)),
        "pattern": rng.choice(sorted(PATTERNS)),
        "switching": switching,
        "num_vcs": num_vcs,
        "buffer_depth": buffer_depth,
        "flits": flits,
        "packets": rng.randint(1, 120),
        "window": rng.randint(1, 40),
        "max_cycles": rng.choice((100000, 100000, 100000, 37)),
        "faults": _sample_faults(rng, topo),
        "traffic_seed": rng.randrange(10**6),
        "flit_seed": rng.randrange(10**6),
        "collective": rng.choice(sorted(COLLECTIVES)),
        "root": rng.randrange(topo.num_nodes),
    }


def _describe(seed: int, cfg: dict, mode: str) -> str:
    parts = " ".join(f"{k}={cfg[k]!r}" for k in sorted(cfg))
    return f"seed={seed} mode={mode} {parts}"


def run_engine_case(seed: int) -> "str | None":
    """One differential case; the repro line on divergence, else None."""
    cfg = sample_case(seed)
    topo = parse_topology(cfg["topology"])
    router = ROUTERS[cfg["router"]]()
    plan = (
        FaultPlan.parse(cfg["faults"], num_nodes=topo.num_nodes)
        if cfg["faults"] else None
    )
    traffic = make_traffic(
        cfg["pattern"], topo, cfg["packets"], cfg["window"],
        seed=cfg["traffic_seed"], faults=plan,
    )
    if cfg["switching"] == "sf":
        flow, sizes = "sf", 1
    else:
        flow = FlowControl(
            switching=cfg["switching"],
            buffer_depth=cfg["buffer_depth"],
            num_vcs=cfg["num_vcs"],
        )
        sizes = flit_sizes(len(traffic), cfg["flits"], seed=cfg["flit_seed"])
    kwargs = dict(
        max_cycles=cfg["max_cycles"], faults=plan, switching=flow, flits=sizes
    )
    ref = ReferenceSimulator(topo, router).run(traffic, **kwargs)
    vec = VectorizedSimulator(topo, router).run(traffic, **kwargs)
    if ref != vec:
        return _describe(seed, cfg, "engine")
    return None


def run_native_case(seed: int) -> "str | None":
    """One case through the NumPy and native kernels, bit equality.

    The engine pass above already pins vectorized == reference; this
    pass pins backend == backend on the same sampled space, so a native
    divergence is reported against the cheap oracle it actually
    diverged from."""
    cfg = sample_case(seed)
    topo = parse_topology(cfg["topology"])
    router = ROUTERS[cfg["router"]]()
    plan = (
        FaultPlan.parse(cfg["faults"], num_nodes=topo.num_nodes)
        if cfg["faults"] else None
    )
    traffic = make_traffic(
        cfg["pattern"], topo, cfg["packets"], cfg["window"],
        seed=cfg["traffic_seed"], faults=plan,
    )
    if cfg["switching"] == "sf":
        flow, sizes = "sf", 1
    else:
        flow = FlowControl(
            switching=cfg["switching"],
            buffer_depth=cfg["buffer_depth"],
            num_vcs=cfg["num_vcs"],
        )
        sizes = flit_sizes(len(traffic), cfg["flits"], seed=cfg["flit_seed"])
    kwargs = dict(
        max_cycles=cfg["max_cycles"], faults=plan, switching=flow, flits=sizes
    )
    ref = VectorizedSimulator(topo, router, backend="numpy").run(
        traffic, **kwargs
    )
    nat = VectorizedSimulator(topo, router, backend="native").run(
        traffic, **kwargs
    )
    if ref != nat:
        return _describe(seed, cfg, "native")
    return None


def run_collective_case(seed: int) -> "str | None":
    """One closed-loop collective case through both engines."""
    cfg = sample_case(seed)
    topo = parse_topology(cfg["topology"])
    router = ROUTERS[cfg["router"]]()
    plan = (
        FaultPlan.parse(cfg["faults"], num_nodes=topo.num_nodes)
        if cfg["faults"] else None
    )
    flow = "sf" if cfg["switching"] == "sf" else FlowControl(
        switching=cfg["switching"],
        buffer_depth=cfg["buffer_depth"],
        num_vcs=cfg["num_vcs"],
    )
    kwargs = dict(
        root=cfg["root"], router=router, switching=flow,
        flits=1 if cfg["switching"] == "sf" else cfg["flits"],
        flit_seed=cfg["flit_seed"], faults=plan, max_cycles=cfg["max_cycles"],
    )
    ref = run_collective(topo, cfg["collective"], engine="reference", **kwargs)
    vec = run_collective(topo, cfg["collective"], engine="vectorized", **kwargs)
    if ref != vec:
        return _describe(seed, cfg, "collective")
    return None


def sample_workload(rng: random.Random) -> str:
    """A random multi-tenant workload spec: 2-4 tenants with mixed
    patterns, loads and priorities, rate drawn from {0, 1, 2}."""
    tenants = []
    for i in range(rng.randint(2, 4)):
        pattern = rng.choice(sorted(PATTERNS))
        load = round(rng.uniform(0.05, 0.6), 2)
        prio = rng.randint(0, 3)
        tenants.append(f"t{i}:{pattern}:{load}:{prio}")
    spec = ";".join(tenants)
    rate = rng.choice((0, 1, 2))
    return f"{spec};rate={rate}" if rate != 1 else spec


def run_workload_case(seed: int) -> "str | None":
    """One multi-tenant overlay case through both engines (and, where a
    toolchain exists, both kernel backends): bit-identical SimResults
    with per-tenant stats required."""
    cfg = sample_case(seed)
    rng = random.Random(seed ^ 0x5EED)
    workload = sample_workload(rng)
    topo = parse_topology(cfg["topology"])
    router = ROUTERS[cfg["router"]]()
    plan = (
        FaultPlan.parse(cfg["faults"], num_nodes=topo.num_nodes)
        if cfg["faults"] else None
    )
    compiled = compile_workload(
        workload, topo, cfg["window"], seed=cfg["traffic_seed"], faults=plan
    )
    if cfg["switching"] == "sf":
        flow, sizes = "sf", 1
    else:
        flow = FlowControl(
            switching=cfg["switching"],
            buffer_depth=cfg["buffer_depth"],
            num_vcs=cfg["num_vcs"],
        )
        sizes = flit_sizes(
            len(compiled.traffic), cfg["flits"], seed=cfg["flit_seed"]
        )
    kwargs = dict(
        max_cycles=cfg["max_cycles"], faults=plan, switching=flow,
        flits=sizes, tenants=compiled.tenants,
    )
    results = [
        ReferenceSimulator(topo, router).run(compiled.traffic, **kwargs),
        VectorizedSimulator(topo, router).run(compiled.traffic, **kwargs),
    ]
    if _native.load_library()[0] is not None:
        results.append(
            VectorizedSimulator(topo, router, backend="native").run(
                compiled.traffic, **kwargs
            )
        )
    if any(r != results[0] for r in results[1:]):
        flat = dict(cfg, workload=workload)
        return _describe(seed, flat, "workload")
    return None


def sample_batch_case(seed: int) -> dict:
    """A deterministic batch of K mixed replications on one topology."""
    rng = random.Random(seed)
    topology = rng.choice(TOPO_SPECS)
    topo = parse_topology(topology)
    reps = []
    for _ in range(rng.randint(2, 6)):
        # equal thirds: every switching mode batches natively, so the
        # batch pass stresses the fused kernel's flow-control engine as
        # hard as its store-and-forward one
        switching = rng.choice(("sf", "wormhole", "vct"))
        if switching == "sf":
            num_vcs, buffer_depth, flits = 1, 0, "1"
        else:
            num_vcs = rng.randint(1, 3)
            flits = rng.choice(FLIT_SPECS)
            buffer_depth = rng.randint(1, 8)
            if switching == "vct":
                _, _, hi = flits.rpartition("-")
                buffer_depth = max(buffer_depth, int(hi))
        reps.append({
            "router": rng.choice(sorted(ROUTERS)),
            "pattern": rng.choice(sorted(PATTERNS)),
            "switching": switching,
            "num_vcs": num_vcs,
            "buffer_depth": buffer_depth,
            "flits": flits,
            "packets": rng.randint(0, 120),
            "window": rng.randint(1, 40),
            "faults": _sample_faults(rng, topo),
            "traffic_seed": rng.randrange(10**6),
            "flit_seed": rng.randrange(10**6),
        })
    return {
        "topology": topology,
        "max_cycles": rng.choice((100000, 100000, 100000, 41)),
        "reps": reps,
    }


def run_batch_fuzz_case(seed: int) -> "str | None":
    """One K-replication batch vs K sequential vectorized runs."""
    cfg = sample_batch_case(seed)
    topo = parse_topology(cfg["topology"])
    routers: dict = {}
    items = []
    for rep in cfg["reps"]:
        # shared router instances, so the batch also exercises its
        # union-route-table sharing path
        router = routers.setdefault(rep["router"], ROUTERS[rep["router"]]())
        plan = (
            FaultPlan.parse(rep["faults"], num_nodes=topo.num_nodes)
            if rep["faults"] else None
        )
        traffic = make_traffic(
            rep["pattern"], topo, rep["packets"], rep["window"],
            seed=rep["traffic_seed"], faults=plan,
        )
        if rep["switching"] == "sf":
            flow: "str | FlowControl" = "sf"
            sizes: "int | list" = 1
        else:
            flow = FlowControl(
                switching=rep["switching"],
                buffer_depth=rep["buffer_depth"],
                num_vcs=rep["num_vcs"],
            )
            sizes = flit_sizes(len(traffic), rep["flits"], seed=rep["flit_seed"])
        items.append(BatchItem(
            traffic=traffic, router=router, faults=plan,
            switching=flow, flits=sizes,
        ))
    batched = BatchedSimulator(topo).run_batch(
        items, max_cycles=cfg["max_cycles"]
    )
    sequential = [
        VectorizedSimulator(topo, it.router).run(
            it.traffic, max_cycles=cfg["max_cycles"], faults=it.faults,
            switching=it.switching, flits=it.flits,
        )
        for it in items
    ]
    if batched != sequential:
        flat = {
            "topology": cfg["topology"],
            "max_cycles": cfg["max_cycles"],
            "k": len(items),
            "diverged_at": [
                i for i, (b, s) in enumerate(zip(batched, sequential)) if b != s
            ],
        }
        return _describe(seed, flat, "batch")
    return None


def _report(failures):
    if not failures:
        return
    if LOG_PATH:
        with open(LOG_PATH, "a") as fh:
            for line in failures:
                fh.write(line + "\n")
    pytest.fail(
        f"{len(failures)} differential-fuzz case(s) diverged:\n"
        + "\n".join(failures)
    )


def test_sampler_is_deterministic():
    """The seed IS the repro: the same seed must denote the same case."""
    assert sample_case(BASE_SEED) == sample_case(BASE_SEED)
    assert sample_case(BASE_SEED) != sample_case(BASE_SEED + 1)


@pytest.mark.heavy
def test_differential_fuzz_engines():
    """CASES random configurations, bit-identical SimResults required."""
    _report(
        [
            line
            for line in (
                run_engine_case(BASE_SEED + i) for i in range(CASES)
            )
            if line
        ]
    )


@pytest.mark.heavy
@pytest.mark.skipif(
    _native.load_library()[0] is None,
    reason="no usable C toolchain for the native backend",
)
def test_differential_fuzz_native_backend():
    """The same sampled space through both kernel backends: the C sf
    loop must be bit-identical to the NumPy engines on every case."""
    _report(
        [
            line
            for line in (
                run_native_case(BASE_SEED + i) for i in range(CASES)
            )
            if line
        ]
    )


@pytest.mark.heavy
def test_differential_fuzz_collectives():
    """A smaller closed-loop pass: the collective compiler's barriers and
    results must match across engines on random configurations."""
    cases = max(1, CASES // 5)
    _report(
        [
            line
            for line in (
                run_collective_case(BASE_SEED + i) for i in range(cases)
            )
            if line
        ]
    )


@pytest.mark.heavy
def test_differential_fuzz_workloads():
    """The multi-tenant pass: random overlay workloads (tenant mixes,
    priorities, rate caps) through reference, NumPy and -- when
    available -- native, per-tenant stats included, bit for bit."""
    cases = max(1, CASES // 3)
    _report(
        [
            line
            for line in (
                run_workload_case(BASE_SEED + i) for i in range(cases)
            )
            if line
        ]
    )


@pytest.mark.heavy
def test_differential_fuzz_batches():
    """The batch pass: random-K mixed batches (seeds, loads, patterns,
    routers, fault plans, switching modes) through ``BatchedSimulator``
    must match K sequential vectorized runs bit for bit."""
    cases = max(1, CASES // 3)
    _report(
        [
            line
            for line in (
                run_batch_fuzz_case(BASE_SEED + i) for i in range(cases)
            )
            if line
        ]
    )
