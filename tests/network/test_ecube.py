"""Strict dimension-order (e-cube) routing."""

import pytest

from repro.network.deadlock import is_deadlock_free
from repro.network.routing import DimensionOrderRouter, route_stats
from repro.network.topology import topology_of
from repro.cubes.hypercube import hypercube


class TestDelivery:
    @pytest.mark.parametrize("spec", [("11", 5), ("11", 6), ("111", 6), ("1111", 5)])
    def test_full_delivery_on_1s_family(self, spec):
        """Proposition 3.1's canonical path makes strict e-cube complete
        and optimal on Q_d(1^s)."""
        stats = route_stats(topology_of(spec), DimensionOrderRouter())
        assert stats.delivery_rate == 1.0
        assert stats.optimality_rate == 1.0

    def test_full_delivery_on_hypercube(self):
        stats = route_stats(topology_of(hypercube(4), name="Q4"), DimensionOrderRouter())
        assert stats.delivery_rate == 1.0

    def test_partial_delivery_elsewhere(self):
        """On Q_6(1010) (isometric, Thm 4.4) strictness costs delivery."""
        stats = route_stats(topology_of(("1010", 6)), DimensionOrderRouter())
        assert 0 < stats.delivery_rate < 1.0
        # ... but what it delivers, it delivers optimally
        assert stats.optimality_rate == 1.0

    def test_needs_word_topology(self):
        from repro.graphs.core import Graph
        from repro.network.topology import Topology

        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        g.set_labels([0, 1, 2])
        with pytest.raises(ValueError):
            DimensionOrderRouter().route(Topology("p", g), 0, 2)


class TestDeadlockFreedom:
    @pytest.mark.parametrize(
        "spec", [("11", 5), ("111", 5), ("1010", 5), ("1010", 6)]
    )
    def test_always_deadlock_free(self, spec):
        """Strict dimension order is deadlock-free on EVERY topology --
        including the ones where the fallback router is not."""
        assert is_deadlock_free(topology_of(spec), DimensionOrderRouter())

    def test_contrast_with_fallback_router(self):
        """The fallback CanonicalRouter deadlocks on Q_5(1010) where the
        strict router does not -- the delivery/deadlock trade-off."""
        from repro.network.routing import CanonicalRouter

        topo = topology_of(("1010", 5))
        assert not is_deadlock_free(topo, CanonicalRouter())
        assert is_deadlock_free(topo, DimensionOrderRouter())
