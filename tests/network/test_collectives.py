"""Collective workloads: verified schedules, barriered compilation, and
bit-identical results through both cycle engines.

The acceptance grid of the collectives issue: all five collectives
produce schedules that pass :func:`verify_collective_schedule` (valid
single-port rounds, tree messages on real links, full coverage) and run
through :class:`ReferenceSimulator` and :class:`VectorizedSimulator`
bit-identically under store-and-forward and wormhole switching, plus a
fault-plan case for each collective.
"""

import pytest

from repro.cubes.hypercube import hypercube
from repro.graphs.core import Graph
from repro.network.broadcast import verify_schedule
from repro.network.collectives import (
    COLLECTIVES,
    allgather_schedule,
    alltoall_schedule,
    broadcast_schedule,
    collective_schedule,
    reduce_schedule,
    ring_schedule,
    round_lower_bound,
    run_collective,
    schedule_link_loads,
    verify_collective_schedule,
)
from repro.network.flowcontrol import FlowControl
from repro.network.simulator import ReferenceSimulator, VectorizedSimulator
from repro.network.topology import Topology, topology_of
from repro.network.traffic import flit_sizes


def _topologies():
    return {
        "hypercube": topology_of(hypercube(4), name="Q4"),
        "fibonacci": topology_of(("11", 6)),
        "q101": topology_of(("101", 5)),
    }


TOPOLOGIES = _topologies()

WORMHOLE = FlowControl("wormhole", buffer_depth=2, num_vcs=2)


class TestSchedules:
    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    def test_every_schedule_verifies(self, topo_name, name):
        topo = TOPOLOGIES[topo_name]
        for root in (0, topo.num_nodes // 2):
            schedule = collective_schedule(name, topo, root=root)
            assert verify_collective_schedule(topo, name, schedule, root=root), (
                topo_name, name, root,
            )

    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    def test_tree_collectives_ride_real_links(self, topo_name):
        topo = TOPOLOGIES[topo_name]
        g = topo.graph
        for name in ("broadcast", "reduce", "allgather"):
            for rnd in collective_schedule(name, topo, root=1):
                for u, v in rnd:
                    assert g.has_edge(u, v), (name, u, v)

    def test_broadcast_meets_log2_bound_on_hypercube(self):
        topo = TOPOLOGIES["hypercube"]
        schedule = broadcast_schedule(topo, root=0)
        assert len(schedule) == round_lower_bound(topo) == 4

    def test_allgather_is_recursive_doubling_on_hypercube(self):
        topo = TOPOLOGIES["hypercube"]
        schedule = allgather_schedule(topo)
        assert len(schedule) == round_lower_bound(topo) == 4
        for rnd in schedule:
            # every node sends and receives exactly once per round
            assert sorted(u for u, _ in rnd) == list(range(topo.num_nodes))
            assert sorted(v for _, v in rnd) == list(range(topo.num_nodes))
            # exchanges are symmetric: u -> v implies v -> u
            pairs = set(rnd)
            assert all((v, u) in pairs for u, v in rnd)

    def test_allgather_falls_back_to_tree_on_generalized_cube(self):
        topo = TOPOLOGIES["fibonacci"]
        assert allgather_schedule(topo, root=2) == (
            reduce_schedule(topo, root=2) + broadcast_schedule(topo, root=2)
        )

    def test_reduce_is_the_reversed_broadcast(self):
        topo = TOPOLOGIES["fibonacci"]
        fwd = broadcast_schedule(topo, root=3)
        rev = reduce_schedule(topo, root=3)
        assert len(rev) == len(fwd)
        rebuilt = [[(v, u) for u, v in rnd] for rnd in reversed(rev)]
        assert rebuilt == fwd
        assert verify_schedule(topo, 3, rebuilt)

    @pytest.mark.parametrize("topo_name", sorted(TOPOLOGIES))
    def test_alltoall_serves_every_ordered_pair_once(self, topo_name):
        topo = TOPOLOGIES[topo_name]
        n = topo.num_nodes
        pairs = [
            (u, v) for rnd in alltoall_schedule(topo) for u, v in rnd
        ]
        assert len(pairs) == n * (n - 1)
        assert len(set(pairs)) == len(pairs)

    @pytest.mark.parametrize("topo_name", ["hypercube", "fibonacci"])
    def test_ring_rides_a_real_hamiltonian_path(self, topo_name):
        """On the clean cube families the search finds a true Hamiltonian
        path, so every ring message is a single link activation."""
        topo = TOPOLOGIES[topo_name]
        g = topo.graph
        schedule = ring_schedule(topo)
        assert len(schedule) == topo.num_nodes - 1
        for rnd in schedule:
            for u, v in rnd:
                assert g.has_edge(u, v)

    def test_ring_falls_back_to_virtual_ring(self):
        """A star graph has no Hamiltonian path; ring emulation degrades
        to a routed virtual ring instead of failing."""
        g = Graph(5)
        for leaf in range(1, 5):
            g.add_edge(0, leaf)
        topo = Topology(name="star", graph=g)
        schedule = ring_schedule(topo)
        assert verify_collective_schedule(topo, "ring", schedule)
        assert len(schedule) == 4

    def test_unknown_collective_raises(self):
        with pytest.raises(ValueError, match="unknown collective"):
            collective_schedule("gossip", TOPOLOGIES["hypercube"])

    def test_bad_root_raises(self):
        with pytest.raises(ValueError, match="root"):
            collective_schedule("broadcast", TOPOLOGIES["hypercube"], root=99)

    def test_verify_rejects_double_send_and_double_receive(self):
        topo = TOPOLOGIES["hypercube"]
        g = topo.graph
        a, b = sorted(g.neighbors(0))[:2]
        assert not verify_collective_schedule(topo, "ring", [[(0, a), (0, b)]])
        c = next(v for v in g.neighbors(a) if v != 0)
        assert not verify_collective_schedule(topo, "ring", [[(0, a), (c, a)]])

    def test_verify_rejects_self_message_and_bad_node(self):
        topo = TOPOLOGIES["hypercube"]
        assert not verify_collective_schedule(topo, "ring", [[(0, 0)]])
        assert not verify_collective_schedule(topo, "ring", [[(0, 99)]])


class TestLinkLoads:
    def test_broadcast_tree_uses_each_link_once(self):
        topo = TOPOLOGIES["hypercube"]
        schedule = broadcast_schedule(topo, root=0)
        loads = schedule_link_loads(topo, schedule)
        assert max(loads.values()) == 1
        assert sum(loads.values()) == topo.num_nodes - 1

    def test_loads_match_simulated_hops_without_faults(self):
        topo = TOPOLOGIES["fibonacci"]
        res = run_collective(topo, "alltoall")
        loads = schedule_link_loads(topo, collective_schedule("alltoall", topo))
        assert sum(loads.values()) == sum(res.result.hops)
        assert res.max_link_load == max(loads.values())


ENGINE_GRID = [
    ("sf", "sf", 1),
    ("wormhole", WORMHOLE, "1-4"),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("topo_name", ["hypercube", "fibonacci"])
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    @pytest.mark.parametrize(
        "switching, flow, flits", ENGINE_GRID, ids=["sf", "wormhole"]
    )
    def test_engines_bit_identical(self, topo_name, name, switching, flow, flits):
        """The acceptance grid: every collective, both engines, sf and
        wormhole -- CollectiveResults (barrier cycles, compiled traffic
        and the full SimResult) must be equal field for field."""
        topo = TOPOLOGIES[topo_name]
        ref = run_collective(
            topo, name, root=1, engine="reference", switching=flow, flits=flits
        )
        vec = run_collective(
            topo, name, root=1, engine="vectorized", switching=flow, flits=flits
        )
        assert ref == vec, (topo_name, name, switching)
        assert vec.completed
        assert vec.result.delivered == vec.result.injected
        assert vec.rounds >= vec.round_bound

    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    def test_engines_bit_identical_under_faults(self, name):
        """One fault-plan case per collective: a node dies mid-collective
        and both engines agree on the degraded outcome."""
        from repro.network.faults import FaultPlan

        topo = TOPOLOGIES["fibonacci"]
        plan = FaultPlan(node_faults=((3, 5),), link_faults=((7, 0, 1),))
        ref = run_collective(topo, name, root=0, engine="reference", faults=plan)
        vec = run_collective(topo, name, root=0, engine="vectorized", faults=plan)
        assert ref == vec, name
        res = vec.result
        assert res.delivered + res.dropped + res.stalled == res.injected
        assert res.dropped > 0  # the dead node actually bites

    def test_simulator_classes_accepted_directly(self):
        topo = TOPOLOGIES["hypercube"]
        by_name = run_collective(topo, "broadcast", engine="reference")
        by_cls = run_collective(topo, "broadcast", engine=ReferenceSimulator)
        assert by_name == by_cls

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            run_collective(TOPOLOGIES["hypercube"], "broadcast", engine="quantum")


class TestBarriers:
    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    def test_round_starts_strictly_increase(self, name):
        res = run_collective(TOPOLOGIES["fibonacci"], name)
        assert len(res.round_starts) == res.rounds
        assert list(res.round_starts) == sorted(set(res.round_starts))
        assert res.round_starts[0] == 0

    @pytest.mark.parametrize("name", sorted(COLLECTIVES))
    @pytest.mark.parametrize(
        "switching, flow, flits", ENGINE_GRID, ids=["sf", "wormhole"]
    )
    def test_compiled_traffic_replays_to_the_same_result(
        self, name, switching, flow, flits
    ):
        """The barriers are discovered by probing each round in isolation
        (the network is drained at every barrier), so replaying the full
        compiled traffic in one engine run must reproduce the reported
        SimResult exactly -- the probe scheme's correctness proof, run
        for every collective in both switching modes."""
        topo = TOPOLOGIES["fibonacci"]
        res = run_collective(topo, name, root=4, switching=flow, flits=flits)
        sizes = flit_sizes(len(res.traffic), flits, seed=0)
        replay = VectorizedSimulator(topo).run(
            list(res.traffic), switching=flow, flits=sizes
        )
        assert replay == res.result

    def test_compiled_traffic_replays_identically_under_faults(self):
        from repro.network.faults import FaultPlan

        topo = TOPOLOGIES["fibonacci"]
        plan = FaultPlan(node_faults=((3, 5),))
        res = run_collective(topo, "broadcast", root=0, faults=plan)
        replay = VectorizedSimulator(topo).run(list(res.traffic), faults=plan)
        assert replay == res.result

    def test_rounds_complete_before_the_next_barrier(self):
        """Dependency order: every message of round r is delivered at or
        before the injection cycle of round r + 1."""
        topo = TOPOLOGIES["fibonacci"]
        res = run_collective(topo, "broadcast", root=0)
        deliveries = {}
        for (cycle, _, _), latency in zip(res.traffic, res.result.latencies):
            deliveries.setdefault(cycle, []).append(cycle + latency)
        starts = list(res.round_starts) + [res.result.cycles]
        for rnd, start in enumerate(res.round_starts):
            assert max(deliveries[start]) <= starts[rnd + 1]

    def test_max_cycles_cap_stops_compilation(self):
        """A capped run stops injecting rounds instead of looping; the
        wedged state is reported, never hung."""
        topo = TOPOLOGIES["fibonacci"]
        res = run_collective(topo, "alltoall", max_cycles=10)
        assert len(res.round_starts) < res.rounds
        assert not res.completed
        assert res.result.cycles <= 10

    def test_wormhole_collective_with_deep_contention_terminates(self):
        """Single-VC depth-1 wormhole on the non-isometric Q_5(1010):
        per-round barriers keep concurrency low enough to finish, and
        both engines agree on every barrier."""
        topo = topology_of(("1010", 5))
        flow = FlowControl("wormhole", buffer_depth=1, num_vcs=1)
        ref = run_collective(
            topo, "alltoall", engine="reference", switching=flow, flits=4
        )
        vec = run_collective(
            topo, "alltoall", engine="vectorized", switching=flow, flits=4
        )
        assert ref == vec
        assert vec.completed and not vec.result.deadlocked


class TestEdgeCases:
    def test_single_node_collectives_are_empty(self):
        g = Graph(1)
        g.set_labels(["0"])
        topo = topology_of(g, name="dot")
        for name in sorted(COLLECTIVES):
            res = run_collective(topo, name)
            assert res.rounds == 0 and res.round_bound == 0
            assert res.traffic == () and res.completed

    def test_two_node_broadcast_is_one_round(self):
        g = Graph(2)
        g.add_edge(0, 1)
        g.set_labels(["0", "1"])
        topo = topology_of(g, name="pair")
        res = run_collective(topo, "broadcast")
        assert res.rounds == res.round_bound == 1
        assert res.result.delivered == 1

    def test_completion_time_is_the_run_length(self):
        res = run_collective(TOPOLOGIES["hypercube"], "reduce", root=5)
        assert res.completion_time == res.result.cycles
